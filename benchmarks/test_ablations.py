"""Design-choice ablations beyond the paper's own (DESIGN.md section 5).

These quantify the impact of the reproduction's notable design choices:
futurePoints granularity in Algorithm 1, predictor quality (oracle vs trained
vs static), blocking vs asynchronous P2P transfer, and sliding-window length
in the work stealer.
"""

import numpy as np
import pytest

from repro.core import TDPipeEngine
from repro.core.greedy_prefill import default_future_points
from repro.core.policies import GreedyPrefillPolicy
from repro.experiments import default_scale, eval_requests, get_dataset, get_predictor
from repro.hardware import make_node
from repro.models import QWEN25_32B
from repro.predictor import ConstantPredictor, OraclePredictor


@pytest.fixture(scope="module")
def workload():
    # Large enough that the KV capacity is contended — switch policies and
    # predictor quality only matter under memory pressure.
    scale = default_scale(factor=0.4, seed=0)
    return scale, eval_requests(scale)


def _run_tdpipe(workload, **kwargs):
    scale, requests = workload
    node = make_node("L20", 4)
    requests = [
        type(r)(r.request_id, r.prompt_len, r.output_len, r.features, r.intent)
        for r in requests
    ]
    engine = TDPipeEngine(node, QWEN25_32B, **kwargs)
    return engine.run(requests)


def test_future_points_granularity(run_once, workload):
    """Coarser futurePoints grids barely change throughput (cheap decision)."""
    scale, _ = workload
    predictor = get_predictor(scale)

    def sweep():
        out = {}
        for stride in (16, 32, 128):
            policy = GreedyPrefillPolicy(future_points=default_future_points(stride=stride))
            res = _run_tdpipe(workload, predictor=predictor, prefill_policy=policy)
            out[stride] = res.throughput
        return out

    tps = run_once(sweep)
    print("\nfuturePoints stride -> throughput:", {k: round(v) for k, v in tps.items()})
    base = tps[32]
    for stride, tp in tps.items():
        assert abs(tp - base) / base < 0.1, (stride, tp, base)


def test_predictor_quality_matters(run_once, workload):
    """Oracle >= trained >> static P99-style reservation (why 'AI-based')."""
    scale, _ = workload
    lengths = np.array([r.output_len for r in get_dataset(scale).train])

    def sweep():
        res_oracle = _run_tdpipe(workload, predictor=OraclePredictor())
        res_trained = _run_tdpipe(workload, predictor=get_predictor(scale))
        res_p99 = _run_tdpipe(
            workload, predictor=ConstantPredictor(float(np.percentile(lengths, 99)))
        )
        return res_oracle.throughput, res_trained.throughput, res_p99.throughput

    oracle, trained, p99 = run_once(sweep)
    print(f"\noracle={oracle:.0f} trained={trained:.0f} static-P99={p99:.0f} tok/s")
    # A pessimistic static reservation under-fills memory and loses throughput.
    assert trained > p99
    # The trained predictor recovers most of the oracle's benefit.
    assert trained > 0.85 * oracle


def test_async_transfer_benefit(run_once, workload):
    """Hierarchy-controller's asynchronous P2P never loses to blocking sends."""
    scale, _ = workload
    predictor = get_predictor(scale)

    def sweep():
        res_async = _run_tdpipe(workload, predictor=predictor)
        engine_blocking = None

        def run_blocking():
            nonlocal engine_blocking
            node = make_node("L20", 4)
            _, requests = workload
            requests = [
                type(r)(r.request_id, r.prompt_len, r.output_len, r.features, r.intent)
                for r in requests
            ]
            engine_blocking = TDPipeEngine(node, QWEN25_32B, predictor=predictor)
            engine_blocking.runtime.async_transfer = False
            for w in engine_blocking.runtime.workers:
                w.async_transfer = False
            return engine_blocking.run(requests)

        return res_async.throughput, run_blocking().throughput

    t_async, t_blocking = run_once(sweep)
    print(f"\nasync={t_async:.0f} blocking={t_blocking:.0f} tok/s")
    assert t_async >= 0.99 * t_blocking
