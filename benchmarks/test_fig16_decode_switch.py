"""Figure 16: decode->prefill switch ablation (Approach 3 vs finish ratios).

Paper shape: hand-tuned finish ratios perform reasonably (memory is plentiful
on these configs), but the spatial-temporal intensity comparison consistently
achieves the highest throughput.
"""

from repro.experiments import fig16_decode_switch


def test_fig16_decode_switch(run_once, scale_large):
    abls = run_once(fig16_decode_switch.run, scale=scale_large)
    print("\n" + fig16_decode_switch.format_results(abls))
    for a in abls:
        best_ratio_tp = max(a.ratio_throughputs.values())
        assert a.tdpipe_throughput >= 0.95 * best_ratio_tp, (a.node, a.model)
