"""Figure 2: GPU utilisation over time, PP+HB (vLLM chunked prefill) vs TD-Pipe.

Paper shape: the chunked-prefill pipeline oscillates well below saturation;
TD-Pipe stays near-saturated and delivers higher throughput.
"""

from repro.experiments import fig02_utilization


def test_fig02_utilization(run_once, scale):
    series = run_once(fig02_utilization.run, scale=scale)
    print("\n" + fig02_utilization.format_results(series))
    by_name = {s.system: s for s in series}
    td, pp = by_name["TD-Pipe"], by_name["PP+HB"]
    # TD-Pipe sustains higher utilisation and higher throughput.
    assert td.mean > pp.mean
    assert td.throughput > pp.throughput
    # Both produce a full time series covering the run.
    assert len(td.utilization) > 5 and len(pp.utilization) > 5
