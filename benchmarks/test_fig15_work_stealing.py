"""Figure 15: inter-batch work stealing ablation (Approach 2).

Paper shape: enabling stealing improves throughput by 1.14x (L20+32B) and
1.07x (A100+70B).
"""

from repro.experiments import fig15_work_stealing


def test_fig15_work_stealing(run_once, scale_large):
    abls = run_once(fig15_work_stealing.run, scale=scale_large)
    print("\n" + fig15_work_stealing.format_results(abls))
    for a in abls:
        # Stealing never hurts materially and helps on average.  The paper
        # reports 1.07-1.14x; our roofline decode cost is dominated by weight
        # streaming, which mutes the batch-imbalance penalty, so the simulated
        # gain is directionally right but smaller (see EXPERIMENTS.md).
        assert a.gain > 0.985, (a.node, a.model, a.gain)
    assert max(a.gain for a in abls) > 1.005
