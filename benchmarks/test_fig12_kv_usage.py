"""Figure 12: KV-cache usage fluctuation during a TD-Pipe run.

Paper shape: usage climbs until memory approaches saturation, then the system
alternates prefill/decode phases; decode-phase peaks approach full occupancy
and fall as requests complete.  Memory pressure requires a workload that
exceeds the KV capacity, hence the larger scale fixture.
"""

from repro.experiments import fig12_kv_usage


def test_fig12_kv_usage(run_once, scale_large):
    r = run_once(fig12_kv_usage.run, scale=scale_large)
    print("\n" + fig12_kv_usage.format_results(r))
    assert len(r.usage) > 100
    # Memory is driven close to saturation by the greedy prefill.
    assert r.peak_usage > 0.80
    # The run alternates phases (temporal disaggregation).
    assert r.phase_switches >= 2
    # Usage never exceeds capacity (the block manager enforces it).
    assert r.usage.max() <= 1.0 + 1e-9
