"""Figure 13: prefill->decode switch ablation (Approach 1 vs fixed ratios).

Paper shape: the AI-based greedy prefill matches or beats every hand-tuned
KV-occupancy switching ratio on both 4xL20+32B and 4xA100+70B.
"""

from repro.experiments import fig13_prefill_switch


def test_fig13_prefill_switch(run_once, scale_large):
    abls = run_once(fig13_prefill_switch.run, scale=scale_large)
    print("\n" + fig13_prefill_switch.format_results(abls))
    for a in abls:
        best_ratio_tp = max(a.ratio_throughputs.values())
        # Greedy prefill is at least competitive with the best hand-tuned
        # ratio (paper: strictly best; we allow 5% slack at benchmark scale).
        assert a.tdpipe_throughput >= 0.95 * best_ratio_tp, (a.node, a.model)
        # ... and clearly better than the worst hand-tuned ratio.
        assert a.tdpipe_throughput > 1.02 * min(a.ratio_throughputs.values())
