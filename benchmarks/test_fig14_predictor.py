"""Figure 14 + Section 4.4.1: predictor accuracy and accumulated error.

Paper shape: per-request bin accuracy 0.52-0.58 (well above the 0.2 chance
level); accumulated relative error decreases with group size, becoming small
(paper: 2.8-6.2% at 256 requests); prediction overhead is negligible.
"""

from repro.experiments import fig14_predictor


def test_fig14_predictor(run_once):
    from repro.experiments import default_scale

    # Predictor quality needs the full corpus protocol at a reasonable size.
    ev = run_once(fig14_predictor.run, scale=default_scale(factor=0.3))
    print("\n" + fig14_predictor.format_results(ev))
    assert ev.bin_accuracy > 2 * ev.chance_level  # far above random guessing
    assert 0.45 <= ev.bin_accuracy <= 0.70  # the paper's regime
    # Error shrinks as groups grow and is small for large groups.
    assert ev.accumulated_errors[0] > ev.accumulated_errors[-1]
    assert ev.error_at(256) < 0.12
    assert ev.error_at(2) > ev.error_at(64)
    # Overhead: microseconds per request (paper: <0.16% of total runtime).
    assert ev.prediction_time_per_request_s < 1e-3
