"""Figure 6: TP prefill computation/communication breakdown.

Paper shape: communication grows with device count, reaching roughly half of
the execution time at 4 GPUs (47.4% on L20, 53.9% on A100), and scaling from
1 to 4 devices is far below linear (1.84x / 1.64x).
"""

from repro.experiments import fig06_tp_breakdown


def test_fig06_breakdown(run_once):
    points = run_once(fig06_tp_breakdown.run)
    print("\n" + fig06_tp_breakdown.format_results(points))
    by_key = {(p.node, p.num_gpus): p for p in points}
    for node in ("L20", "A100"):
        # Communication share grows with the device count.
        assert by_key[(node, 1)].comm_fraction == 0.0
        assert by_key[(node, 2)].comm_fraction < by_key[(node, 4)].comm_fraction
        # ~half the time is communication at 4 GPUs (paper: 47-54%).
        assert 0.30 <= by_key[(node, 4)].comm_fraction <= 0.65
        # Far-below-linear scaling: 4 GPUs give < 2.8x, > 1.3x.
        speedup = 1.0 / by_key[(node, 4)].normalized_total
        assert 1.3 <= speedup <= 2.8
