"""Figure 11: overall throughput across systems, combos and device counts.

Paper shape checks encoded below:
* OOM where weights cannot fit (32B on 1x L20, 70B on 1x A100);
* TD-Pipe is the best system at 4 devices in every combo;
* TP+SB and TP+HB are close; PP+HB >= PP+SB at 4 devices;
* TD-Pipe's 4-device advantage over TP+SB / PP+SB is a meaningful factor;
* throughput grows with device count (super-linearly where memory binds).
"""

from repro.experiments import fig11_overall


def test_fig11_overall(run_once, scale_large):
    # The paper's regime needs a deep request backlog: with too few requests
    # the KV cache never saturates and the decode tail (which penalises
    # pipeline layouts) dominates the run, flipping the comparison.
    fig11 = run_once(fig11_overall.run, scale=scale_large)
    print("\n" + fig11_overall.format_results(fig11))

    # OOM cells (paper Figure 11 b and d).
    assert fig11.throughput("L20", "32B", 1, "TP+SB") is None
    assert fig11.throughput("A100", "70B", 1, "PP+SB") is None

    # TD-Pipe wins every 4-device combo.
    for node, model in (("L20", "13B"), ("L20", "32B"), ("A100", "32B"), ("A100", "70B")):
        assert fig11.best_system(node, model, 4) == "TD-Pipe", (node, model)

    # Meaningful factors at 4 devices (paper: up to 1.91x / 2.73x).
    assert fig11.speedup("A100", "70B", 4, "TD-Pipe", "TP+SB") > 1.3
    assert fig11.speedup("A100", "32B", 4, "TD-Pipe", "PP+SB") > 1.3

    # TP+SB ~ TP+HB ("fewer differences"), PP+HB >= PP+SB.
    for node, model in (("L20", "32B"), ("A100", "70B")):
        r = fig11.speedup(node, model, 4, "TP+HB", "TP+SB")
        assert r is not None and 0.75 <= r <= 1.35, (node, model, r)
        r = fig11.speedup(node, model, 4, "PP+HB", "PP+SB")
        assert r is not None and r >= 0.9, (node, model, r)

    # Scaling: more devices -> more throughput for TD-Pipe.
    for node, model in (("L20", "13B"), ("A100", "32B")):
        t1 = fig11.throughput(node, model, 1, "TD-Pipe")
        t4 = fig11.throughput(node, model, 4, "TD-Pipe")
        assert t1 is not None and t4 is not None and t4 > 1.8 * t1
