"""Figure 1: simulated schedules and bubble shares per system.

Paper shape: pipeline parallelism with separate or hybrid batching leaves
visible bubbles; TD-Pipe's temporally-disaggregated schedule is compact.
"""

from repro.experiments import fig01_schedules


def test_fig01_schedules(run_once, scale):
    views = run_once(fig01_schedules.run, scale=scale)
    print("\n" + fig01_schedules.format_results(views))
    by = {v.system: v for v in views}
    # TD-Pipe's mid-run window has fewer bubbles than both PP baselines.
    assert by["TD-Pipe"].bubble_ratio < by["PP+SB"].bubble_ratio
    assert by["TD-Pipe"].bubble_ratio < by["PP+HB"].bubble_ratio
    assert by["TD-Pipe"].bubble_ratio < 0.15
