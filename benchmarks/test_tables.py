"""Tables 1 and 2: configuration tables (consistency checks)."""

from repro.experiments import tables


def test_table1(benchmark):
    rows = benchmark(tables.table1_rows)
    print("\n" + tables.format_table1())
    l20, a100 = rows
    assert l20["FP16 Tensor Core (TFLOPS)"] == 119.5
    assert a100["Memory (GB)"] == 80.0


def test_table2(benchmark):
    rows = benchmark(tables.table2_rows)
    print("\n" + tables.format_table2())
    by_name = {r["Name"]: r for r in rows}
    # Parameter-derived weights must match Table 2 within a few GB.
    assert abs(by_name["Llama2-13B-chat"]["Parameters (GB)"] - 26) <= 1
    assert abs(by_name["Qwen2.5-32B-Instruct"]["Parameters (GB)"] - 64) <= 3
    assert abs(by_name["Llama2-70B-chat"]["Parameters (GB)"] - 140) <= 3
    # GQA models have much smaller KV per token.
    assert by_name["Llama2-70B-chat"]["GQA"]
    assert (
        by_name["Llama2-70B-chat"]["KV cache (MB/token)"]
        < by_name["Llama2-13B-chat"]["KV cache (MB/token)"]
    )
