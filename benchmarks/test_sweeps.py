"""Sensitivity sweeps (DESIGN.md section 5): robustness of the headline result.

These verify TD-Pipe's advantage is not an artefact of one calibration
constant: its throughput is insensitive to the all-reduce efficiency (it
barely communicates) and to the driver-overhead model (its engine overlaps
scheduling), while the TP baseline moves with both.
"""

from repro.experiments import default_scale
from repro.experiments.sweeps import (
    allreduce_efficiency_sweep,
    chunk_budget_sweep,
    driver_overhead_sweep,
    max_num_seqs_sweep,
)

# Memory-pressure scale: sweep conclusions only hold in the paper's regime
# of a deep backlog (see test_fig11_overall for the same reasoning).
SCALE = default_scale(factor=0.4, seed=0)


def _by_system(points):
    out = {}
    for p in points:
        out.setdefault(p.system, []).append((p.value, p.throughput))
    return {k: sorted(v) for k, v in out.items()}


def test_allreduce_efficiency_sensitivity(run_once):
    points = run_once(allreduce_efficiency_sweep, scale=SCALE)
    by = _by_system(points)
    print("\nallreduce efficiency sweep:", by)
    td = [t for _, t in by["TD-Pipe"]]
    tp = [t for _, t in by["TP+SB"]]
    # TD-Pipe flat (pipeline parallelism barely communicates).
    assert (max(td) - min(td)) / max(td) < 0.05
    # TP gains from a faster fabric.
    assert tp[-1] > tp[0] * 1.05


def test_driver_overhead_sensitivity(run_once):
    points = run_once(driver_overhead_sweep, scale=SCALE)
    by = _by_system(points)
    print("\ndriver overhead sweep:", by)
    td = [t for _, t in by["TD-Pipe"]]
    tp = [t for _, t in by["TP+SB"]]
    # TD-Pipe does not pay the driver (hierarchy-controller).
    assert (max(td) - min(td)) / max(td) < 0.02
    # The baseline slows as the driver gets more expensive.
    assert tp[0] > tp[-1] * 1.02
    # Even with a free driver, TD-Pipe still wins on this config.
    assert td[0] > tp[0]


def test_chunk_budget_sweep(run_once):
    points = run_once(chunk_budget_sweep, scale=SCALE)
    print("\nchunk budget sweep:", [(p.value, round(p.throughput)) for p in points])
    assert all(p.throughput > 0 for p in points)


def test_max_num_seqs_sweep(run_once):
    points = run_once(max_num_seqs_sweep, scale=SCALE)
    print("\nmax_num_seqs sweep:", [(p.value, round(p.throughput)) for p in points])
    tps = [p.throughput for p in points]
    # Larger decode caps never hurt badly at this scale.
    assert max(tps) / min(tps) < 2.5
