"""Shared benchmark fixtures.

Benchmarks run the experiment harness at a reduced workload scale (the
paper's full 5,000-request scale is available via ``tdpipe-bench --full``).
Each benchmark prints the regenerated rows/series so the output can be
compared with the paper directly (run with ``-s`` to see them).
"""

from __future__ import annotations

import pytest

from repro.experiments import default_scale


@pytest.fixture(scope="session")
def scale():
    """Default benchmark scale: 10% of the paper's request count."""
    return default_scale(factor=0.1, seed=0)


@pytest.fixture(scope="session")
def scale_large():
    """Memory-pressure scale for the phase-switching experiments.

    The ablation figures (12/13/15/16) only discriminate when the workload's
    KV demand exceeds capacity, forcing multiple prefill/decode phases; 80%
    of the paper's request count achieves that on both ablation configs.
    """
    return default_scale(factor=0.8, seed=0)


@pytest.fixture()
def run_once(benchmark):
    """Run an expensive experiment exactly once under pytest-benchmark."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
