"""Smoke the perf harness at miniature sizes.

The real sizes (and the CI speedup gate) live in the ``perf-smoke`` CI job;
here we only pin that the harness runs every section, emits the documented
BENCH_perf.json shape, and that the parallel grid leg reproduces the serial
records byte-for-byte.  No speedup assertion: test machines (and this
container) may have a single core.
"""

from __future__ import annotations

from repro.perf import format_report, run_perf_suite
from repro.perf.harness import PERF_SCHEMA_VERSION, bench_kernel, bench_vectorized


def test_kernel_bench_counts_every_event():
    section = bench_kernel(5_000)
    assert section["events"] == 5_000
    assert section["events_per_sec"] > 0


def test_suite_shape_and_record_identity():
    report = run_perf_suite(
        quick=True,
        jobs=2,
        kernel_events=10_000,
        costmodel_calls=2_000,
        regime_arrivals=2_000,
        cluster_scale=0.02,
        grid_scale=0.02,
        scale_decisions=400,
        scale_fleets=(2, 3),
        scale_requests_per_replica=1,
    )
    assert report["schema_version"] == PERF_SCHEMA_VERSION
    assert report["kind"] == "perf"
    assert set(report) >= {
        "kernel", "costmodel", "cluster", "cluster_scale", "grid",
        "vectorized", "regime",
    }

    vector = report["vectorized"]
    assert vector["grid_points"] > 0
    assert vector["grid_points_per_sec"] > 0
    assert vector["lookup_calls_per_sec"] > 0
    assert vector["curve_points_per_sec"] > 0
    # Grid construction is a startup cost paid once per engine; it must stay
    # negligible (<5% even of this *quick* cluster run — mid-scale runs are
    # an order of magnitude longer, so the real margin is far wider).
    assert vector["build_wall_s"] < 0.05 * report["cluster"]["wall_s"]

    cost = report["costmodel"]
    assert cost["decode_warm_calls_per_sec"] > cost["decode_cold_calls_per_sec"]
    assert cost["prefill_warm_calls_per_sec"] > cost["prefill_cold_calls_per_sec"]

    regime = report["regime"]
    assert regime["arrivals"] > 0
    assert regime["arrivals_per_sec"] > 0

    cluster = report["cluster"]
    assert cluster["completed_requests"] > 0
    assert cluster["throughput_tps"] > 0

    scale = report["cluster_scale"]
    assert scale["fleets"] == [2, 3]
    for fleet in ("2", "3"):
        for router in ("jsq", "deadline"):
            leg = scale["routing"][fleet][router]
            assert leg["decisions_per_sec"] > 0
            assert leg["sweep_decisions_per_sec"] > 0
        # The bench itself gates allocation freedom (it raises on capture),
        # so a recorded zero is a measurement, not a hope.
        assert scale["routing"][fleet]["jsq"]["snapshot_captures"] == 0
        assert scale["e2e"][fleet]["events_per_sec"] > 0
    # The trajectory gate reads the flattened largest-fleet keys.
    assert scale["routing_decisions_per_sec_3"] > 0
    assert scale["routing_speedup_3"] > 0
    assert scale["cluster_events_per_sec_3"] > 0

    grid = report["grid"]
    assert grid["points"] == 7
    assert grid["serial_points_per_sec"] > 0
    assert grid["parallel_points_per_sec"] > 0
    assert grid["records_identical"] is True

    text = format_report(report)
    assert "events/s" in text and "speedup" in text
    assert "arrivals/s" in text
    assert "ctrl-plane: routing" in text and "ctrl-plane: e2e" in text
    # records written before the regime section existed still format
    assert "arrivals/s" not in format_report(
        {k: v for k, v in report.items() if k != "regime"}
    )
    # likewise for records predating the cluster_scale section
    assert "ctrl-plane" not in format_report(
        {k: v for k, v in report.items() if k != "cluster_scale"}
    )


def test_vectorized_bench_section_shape():
    section = bench_vectorized(1_000)
    assert section["grid_points"] == 256 * 256 + 2048
    assert section["build_wall_s"] > 0


def test_repeat_records_all_samples_and_medians():
    report = run_perf_suite(
        quick=True,
        jobs=2,
        repeat=3,
        kernel_events=5_000,
        costmodel_calls=1_000,
        regime_arrivals=1_000,
        cluster_scale=0.02,
        grid_scale=0.02,
        scale_decisions=400,
        scale_fleets=(2,),
        scale_requests_per_replica=1,
    )
    assert report["repeat"] == 3

    kernel = report["kernel"]
    samples = kernel["samples_events_per_sec"]
    assert len(samples) == 3
    # The reported number is the (lower) median of the recorded samples.
    assert kernel["events_per_sec"] == sorted(samples)[1]
    assert kernel["events_per_sec"] in samples

    cost = report["costmodel"]
    assert len(cost["samples"]) == 3
    assert cost["decode_warm_calls_per_sec"] == sorted(
        s["decode_warm_calls_per_sec"] for s in cost["samples"]
    )[1]

    vector = report["vectorized"]
    assert len(vector["samples_grid_points_per_sec"]) == 3
    assert vector["grid_points_per_sec"] in vector["samples_grid_points_per_sec"]

    regime = report["regime"]
    assert len(regime["samples_arrivals_per_sec"]) == 3
    assert regime["arrivals_per_sec"] in regime["samples_arrivals_per_sec"]

    assert "median of 3" in format_report(report)
