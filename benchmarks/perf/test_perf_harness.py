"""Smoke the perf harness at miniature sizes.

The real sizes (and the CI speedup gate) live in the ``perf-smoke`` CI job;
here we only pin that the harness runs every section, emits the documented
BENCH_perf.json shape, and that the parallel grid leg reproduces the serial
records byte-for-byte.  No speedup assertion: test machines (and this
container) may have a single core.
"""

from __future__ import annotations

from repro.perf import format_report, run_perf_suite
from repro.perf.harness import PERF_SCHEMA_VERSION, bench_kernel


def test_kernel_bench_counts_every_event():
    section = bench_kernel(5_000)
    assert section["events"] == 5_000
    assert section["events_per_sec"] > 0


def test_suite_shape_and_record_identity():
    report = run_perf_suite(
        quick=True,
        jobs=2,
        kernel_events=10_000,
        costmodel_calls=2_000,
        cluster_scale=0.02,
        grid_scale=0.02,
    )
    assert report["schema_version"] == PERF_SCHEMA_VERSION
    assert report["kind"] == "perf"
    assert set(report) >= {"kernel", "costmodel", "cluster", "grid"}

    cost = report["costmodel"]
    assert cost["decode_warm_calls_per_sec"] > cost["decode_cold_calls_per_sec"]
    assert cost["prefill_warm_calls_per_sec"] > cost["prefill_cold_calls_per_sec"]

    cluster = report["cluster"]
    assert cluster["completed_requests"] > 0
    assert cluster["throughput_tps"] > 0

    grid = report["grid"]
    assert grid["points"] == 7
    assert grid["serial_points_per_sec"] > 0
    assert grid["parallel_points_per_sec"] > 0
    assert grid["records_identical"] is True

    text = format_report(report)
    assert "events/s" in text and "speedup" in text
