"""Unit + property tests for Approach 2 (inter-batch work stealing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WorkStealingBalancer


class TestInitBatches:
    def test_equal_division(self):
        b = WorkStealingBalancer(window_size=4)
        batches = b.init_batches(list(range(512)), 4)
        assert [len(x) for x in batches] == [128, 128, 128, 128]
        assert b.withheld_count == 0

    def test_uneven_division(self):
        b = WorkStealingBalancer(window_size=4)
        batches = b.init_batches(list(range(10)), 4)
        assert sorted(len(x) for x in batches) == [2, 2, 3, 3]

    def test_overflow_withheld(self):
        b = WorkStealingBalancer(window_size=2, max_batch_size=4)
        batches = b.init_batches(list(range(12)), 2)
        assert [len(x) for x in batches] == [4, 4]
        assert b.withheld_count == 4

    def test_invalid(self):
        b = WorkStealingBalancer(window_size=4)
        with pytest.raises(ValueError):
            b.init_batches([1], 0)
        with pytest.raises(ValueError):
            WorkStealingBalancer(window_size=0)


class TestFigure9Example:
    """The paper's worked 4-stage example (Section 3.4, Figure 9)."""

    def test_first_rounds(self):
        b = WorkStealingBalancer(window_size=4, max_batch_size=1000)
        batches = b.init_batches(list(range(512)), 4)
        # Batch 0 returns with 48 finished -> 80 left; average
        # (4*128 - 48)/4 = 116 -> below average, all resubmitted.
        out0 = b.on_batch_return(batches[0][:80], n_finished=48)
        assert len(out0) == 80
        # Batch 1 returns with 8 finished -> 120 left; window now
        # [128,128,128,80]: average (464-8)/4 = 114 -> steal 6.
        out1 = b.on_batch_return(batches[1][:120], n_finished=8)
        assert len(out1) == 114
        assert b.withheld_count == 6
        assert b.steals == 6

    def test_withheld_redistributed(self):
        b = WorkStealingBalancer(window_size=4, max_batch_size=1000)
        b.init_batches(list(range(400)), 4)
        b.on_batch_return(list(range(150)), n_finished=0)  # above avg -> steals
        stolen = b.withheld_count
        assert stolen > 0
        out = b.on_batch_return(list(range(60)), n_finished=0)  # below avg
        assert len(out) > 60  # supplemented from the withheld pool
        assert b.supplements > 0


class TestDisabledMode:
    def test_no_stealing_when_disabled(self):
        b = WorkStealingBalancer(window_size=4, enabled=False)
        b.init_batches(list(range(512)), 4)
        out = b.on_batch_return(list(range(128)), n_finished=64)
        assert len(out) == 128  # untouched
        assert b.steals == 0

    def test_disabled_still_drains_overflow(self):
        b = WorkStealingBalancer(window_size=2, max_batch_size=4, enabled=False)
        b.init_batches(list(range(12)), 2)
        out = b.on_batch_return(list(range(2)), n_finished=2)
        assert len(out) == 4  # topped up to the cap from phase-start overflow


class TestCaps:
    def test_never_exceeds_max_batch(self):
        b = WorkStealingBalancer(window_size=2, max_batch_size=10)
        b.init_batches(list(range(30)), 2)
        out = b.on_batch_return(list(range(5)), n_finished=5)
        assert len(out) <= 10

    def test_drain_withheld(self):
        b = WorkStealingBalancer(window_size=2, max_batch_size=4)
        b.init_batches(list(range(12)), 2)
        drained = b.drain_withheld()
        assert len(drained) == 4
        assert b.withheld_count == 0


@settings(max_examples=100, deadline=None)
@given(
    n_items=st.integers(1, 400),
    n_batches=st.integers(1, 8),
    rounds=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 30)), max_size=40),
)
def test_conservation_property(n_items, n_batches, rounds):
    """Property: stealing never loses or duplicates a request."""
    b = WorkStealingBalancer(window_size=n_batches, max_batch_size=64)
    items = list(range(n_items))
    batches = b.init_batches(items, n_batches)
    finished: set[int] = set()
    for batch_idx, n_fin in rounds:
        batch_idx %= len(batches)
        batch = batches[batch_idx]
        n_fin = min(n_fin, len(batch))
        finished.update(batch[:n_fin])
        survivors = batch[n_fin:]
        batches[batch_idx] = b.on_batch_return(list(survivors), n_finished=n_fin)
        # Conservation: everything is finished, in a batch, or withheld.
        in_batches = [x for bt in batches for x in bt]
        withheld = list(b._withheld)  # peek without draining
        everything = sorted([*finished, *in_batches, *withheld])
        assert everything == sorted(items)
        # No batch exceeds the cap.
        assert all(len(bt) <= 64 for bt in batches)
