"""Unit tests for comparison reports."""

import pytest

from repro.metrics import ComparisonReport, RunResult
from repro.sim import TraceRecorder


def fake_result(system, throughput, makespan=100.0):
    tr = TraceRecorder(1)
    tr[0].record(0.0, makespan * 0.9)
    total = int(throughput * makespan)
    return RunResult(
        system=system,
        node="4xL20",
        model="32B",
        num_devices=4,
        makespan=makespan,
        completed_requests=10,
        total_prompt_tokens=total // 2,
        total_output_tokens=total - total // 2,
        trace=tr,
    )


@pytest.fixture()
def report():
    r = ComparisonReport(title="test")
    r.add(fake_result("TP+SB", 1000.0))
    r.add(fake_result("TD-Pipe", 1500.0))
    r.add(fake_result("PP+SB", 800.0))
    return r


class TestComparisonReport:
    def test_best(self, report):
        assert report.best().system == "TD-Pipe"

    def test_speedup(self, report):
        assert report.speedup_of_reference_over("TP+SB") == pytest.approx(1.5)

    def test_get_missing(self, report):
        with pytest.raises(KeyError):
            report.get("nope")

    def test_render(self, report):
        out = report.render()
        assert "TD-Pipe" in out and "1.50x" in out

    def test_markdown(self, report):
        md = report.to_markdown()
        assert md.startswith("### test")
        assert "| TD-Pipe |" in md

    def test_validate_same_workload(self, report):
        with pytest.raises(ValueError):
            # 800*100 != 1000*100 totals
            report.validate_same_workload()
        ok = ComparisonReport(title="ok")
        ok.add(fake_result("A", 1000.0))
        ok.add(fake_result("B", 500.0, makespan=200.0))
        ok.validate_same_workload()

    def test_empty_best_raises(self):
        with pytest.raises(ValueError):
            ComparisonReport(title="x").best()

    def test_missing_reference(self):
        r = ComparisonReport(title="x", reference_system="TD-Pipe")
        r.add(fake_result("TP+SB", 100.0))
        assert r.reference is None
        assert "TP+SB" in r.render()
