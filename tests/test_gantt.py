"""Tests for the ASCII Gantt schedule renderer."""

import pytest

from repro.sim import TraceRecorder
from repro.viz import gantt


def make_trace():
    tr = TraceRecorder(2)
    # GPU0: busy [0, 4) prefill, idle [4, 8)
    tr[0].record(0.0, 4.0, tag="prefill")
    # GPU1: idle [0, 4), busy [4, 8) decode
    tr[1].record(4.0, 8.0, tag="decode")
    return tr


class TestGantt:
    def test_phase_characters(self):
        out = gantt(make_trace(), t0=0.0, t1=8.0, width=8)
        lines = out.splitlines()
        assert lines[0] == "GPU0 |PPPP....|"
        assert lines[1] == "GPU1 |....dddd|"

    def test_legend_present(self):
        out = gantt(make_trace())
        assert "idle/bubble" in out

    def test_window_clipping(self):
        out = gantt(make_trace(), t0=2.0, t1=6.0, width=4)
        lines = out.splitlines()
        assert lines[0] == "GPU0 |PP..|"
        assert lines[1] == "GPU1 |..dd|"

    def test_majority_kind_wins(self):
        tr = TraceRecorder(1)
        tr[0].record(0.0, 0.3, tag="decode")
        tr[0].record(0.3, 1.0, tag="prefill")
        out = gantt(tr, t0=0.0, t1=1.0, width=1)
        assert out.splitlines()[0] == "GPU0 |P|"

    def test_accumulates_short_intervals(self):
        # Many sub-cell intervals must still register as busy.
        tr = TraceRecorder(1)
        for i in range(100):
            tr[0].record(i * 0.01, i * 0.01 + 0.009, tag="decode")
        out = gantt(tr, t0=0.0, t1=1.0, width=4)
        assert out.splitlines()[0] == "GPU0 |dddd|"

    def test_empty_window(self):
        assert gantt(make_trace(), t0=5.0, t1=5.0) == ""

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            gantt(make_trace(), width=0)


class TestFig01Experiment:
    def test_structure(self):
        from repro.experiments import default_scale, fig01_schedules

        views = fig01_schedules.run(
            scale=default_scale(factor=0.02), systems=("PP+SB", "TD-Pipe"), width=40
        )
        assert [v.system for v in views] == ["PP+SB", "TD-Pipe"]
        for v in views:
            assert "GPU0" in v.rendering and "GPU3" in v.rendering
            assert 0.0 <= v.bubble_ratio <= 1.0
        assert fig01_schedules.format_results(views)
