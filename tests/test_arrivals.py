"""Tests for the online-arrivals extension and latency metrics."""

import numpy as np
import pytest

from repro.baselines import PPHybridEngine, TPSeparateEngine
from repro.core import TDPipeEngine
from repro.hardware import make_node
from repro.metrics import compute_latency_stats
from repro.models import QWEN25_32B
from repro.predictor import OraclePredictor
from repro.workload import (
    generate_requests,
    with_burst_arrivals,
    with_poisson_arrivals,
    with_uniform_arrivals,
)


class TestArrivalProcesses:
    def test_poisson_monotone_and_seeded(self):
        reqs = generate_requests(50, seed=1)
        a = with_poisson_arrivals(reqs, rate_rps=2.0, seed=5)
        b = with_poisson_arrivals(reqs, rate_rps=2.0, seed=5)
        times = [r.arrival_time for r in a]
        assert times == sorted(times)
        assert all(t > 0 for t in times)
        assert times == [r.arrival_time for r in b]

    def test_poisson_rate_roughly_respected(self):
        reqs = generate_requests(2000, seed=1)
        a = with_poisson_arrivals(reqs, rate_rps=10.0, seed=0)
        span = a[-1].arrival_time
        assert 2000 / span == pytest.approx(10.0, rel=0.15)

    def test_uniform_spacing(self):
        reqs = generate_requests(5, seed=1)
        a = with_uniform_arrivals(reqs, rate_rps=4.0)
        gaps = np.diff([r.arrival_time for r in a])
        np.testing.assert_allclose(gaps, 0.25)

    def test_burst_structure(self):
        reqs = generate_requests(10, seed=1)
        a = with_burst_arrivals(reqs, burst_size=4, burst_interval_s=10.0)
        assert [r.arrival_time for r in a] == [0, 0, 0, 0, 10, 10, 10, 10, 20, 20]

    def test_originals_untouched(self):
        reqs = generate_requests(3, seed=1)
        with_poisson_arrivals(reqs, rate_rps=1.0)
        assert all(r.arrival_time == 0.0 for r in reqs)

    def test_invalid_rates(self):
        reqs = generate_requests(3, seed=1)
        with pytest.raises(ValueError):
            with_poisson_arrivals(reqs, rate_rps=0.0)
        with pytest.raises(ValueError):
            with_uniform_arrivals(reqs, rate_rps=-1.0)
        with pytest.raises(ValueError):
            with_burst_arrivals(reqs, burst_size=0, burst_interval_s=1.0)


class TestOnlineEngines:
    def _run(self, engine_factory, requests):
        return engine_factory().run(requests)

    def test_tdpipe_completes_online_stream(self):
        node = make_node("L20", 4)
        stream = with_poisson_arrivals(generate_requests(120, seed=2), rate_rps=8.0, seed=1)
        res = TDPipeEngine(node, QWEN25_32B, OraclePredictor()).run(stream)
        assert res.completed_requests == 120

    def test_baselines_complete_online_stream(self):
        node = make_node("L20", 4)
        for cls in (TPSeparateEngine, PPHybridEngine):
            stream = with_poisson_arrivals(
                generate_requests(80, seed=2), rate_rps=8.0, seed=1
            )
            res = cls(node, QWEN25_32B).run(stream)
            assert res.completed_requests == 80, cls.system_name

    def test_idle_gap_wakeup(self):
        # Bursts separated by long idle gaps: the engine must wake on arrival.
        node = make_node("L20", 4)
        stream = with_burst_arrivals(
            generate_requests(40, seed=3), burst_size=20, burst_interval_s=300.0
        )
        res = TDPipeEngine(node, QWEN25_32B, OraclePredictor()).run(stream)
        assert res.completed_requests == 40
        assert res.makespan > 300.0  # second burst processed after the gap

    def test_makespan_respects_arrivals(self):
        node = make_node("L20", 4)
        stream = with_uniform_arrivals(generate_requests(30, seed=3), rate_rps=1.0)
        res = TDPipeEngine(node, QWEN25_32B, OraclePredictor()).run(stream)
        assert res.makespan >= 30.0  # last arrival at t=30s


class TestLatencyStats:
    def test_ttft_measured_from_arrival(self):
        node = make_node("L20", 4)
        stream = with_uniform_arrivals(generate_requests(40, seed=5), rate_rps=100.0)
        res = TPSeparateEngine(node, QWEN25_32B).run(stream)
        assert res.latency is not None
        assert res.latency.count == 40
        assert res.latency.ttft_mean > 0
        assert res.latency.latency_mean > res.latency.ttft_mean

    def test_tdpipe_trades_ttft_for_throughput(self):
        # The documented trade-off: TD-Pipe's batching phases delay first
        # tokens relative to the latency-oriented TP baseline.
        node = make_node("L20", 4)
        base = generate_requests(150, seed=6)
        s1 = with_poisson_arrivals(base, rate_rps=5.0, seed=2)
        s2 = with_poisson_arrivals(base, rate_rps=5.0, seed=2)
        td = TDPipeEngine(node, QWEN25_32B, OraclePredictor()).run(s1)
        tp = TPSeparateEngine(node, QWEN25_32B).run(s2)
        assert td.latency.ttft_mean > tp.latency.ttft_mean

    def test_empty_stats(self):
        stats = compute_latency_stats([])
        assert stats.count == 0
        assert np.isnan(stats.ttft_mean)

    def test_offline_runs_still_get_latency(self):
        node = make_node("L20", 4)
        res = TPSeparateEngine(node, QWEN25_32B).run(generate_requests(30, seed=7))
        assert res.latency is not None and res.latency.count == 30
