"""Cluster engine, routing policies, and engine invariants for all systems."""

import pytest

from invariants import check_cluster_invariants, check_engine_invariants

from repro.baselines import (
    PPHybridEngine,
    PPSeparateEngine,
    TPHybridEngine,
    TPSeparateEngine,
)
from repro.cluster import (
    ROUTERS,
    ClusterEngine,
    JoinShortestQueueRouter,
    PhaseAwareRouter,
    RoundRobinRouter,
    StaticRouter,
    make_router,
)
from repro.core import TDPipeEngine
from repro.experiments import cluster_scaling, run_cluster
from repro.experiments.common import default_scale
from repro.hardware import make_node
from repro.models import LLAMA2_13B
from repro.predictor import OraclePredictor
from repro.runtime.state import RequestState
from repro.sim import Simulator
from repro.workload import (
    generate_requests,
    split_round_robin,
    static_assignment,
    with_poisson_arrivals,
)

NODE = make_node("L20", 2)


def build(system, sim=None):
    if system == "TD-Pipe":
        return TDPipeEngine(NODE, LLAMA2_13B, OraclePredictor(), sim=sim)
    cls = {
        "TP+SB": TPSeparateEngine,
        "TP+HB": TPHybridEngine,
        "PP+SB": PPSeparateEngine,
        "PP+HB": PPHybridEngine,
    }[system]
    return cls(NODE, LLAMA2_13B, sim=sim)


ALL_SYSTEMS = ("TP+SB", "TP+HB", "PP+SB", "PP+HB", "TD-Pipe")


# --------------------------------------------------------------------- #
# Engine invariants: all five single-node systems.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_invariants_offline(system):
    reqs = generate_requests(60, seed=3)
    engine = build(system)
    result = engine.run(reqs)
    check_engine_invariants(engine, result, reqs)


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_invariants_online_arrivals(system):
    reqs = with_poisson_arrivals(generate_requests(40, seed=5), rate_rps=3.0, seed=5)
    engine = build(system)
    result = engine.run(reqs)
    # Online runs may idle between arrivals, so phases need not tile.
    check_engine_invariants(engine, result, reqs, contiguous_phases=False)


# --------------------------------------------------------------------- #
# ClusterEngine basics.
# --------------------------------------------------------------------- #
class TestClusterEngine:
    def run_cluster_engine(self, router="round-robin", n=3, replicas=None, reqs=None):
        systems = replicas or ["TD-Pipe"] * n
        cluster = ClusterEngine(
            [lambda sim, s=s: build(s, sim=sim) for s in systems], router=router
        )
        if reqs is None:
            reqs = with_poisson_arrivals(generate_requests(45, seed=7), 4.0, seed=7)
        return cluster, reqs, cluster.run(reqs)

    def test_shared_clock(self):
        cluster, reqs, result = self.run_cluster_engine()
        assert all(r.sim is cluster.sim for r in cluster.replicas)
        assert result.completed_requests == len(reqs)
        # All replica activity advanced the one shared heap.
        assert cluster.sim.events_processed > 0 and cluster.sim.pending == 0

    @pytest.mark.parametrize("router", ROUTERS)
    def test_invariants_every_router(self, router):
        cluster, reqs, result = self.run_cluster_engine(router=router)
        check_cluster_invariants(cluster, result, reqs)

    def test_offline_workload(self):
        cluster, reqs, result = self.run_cluster_engine(
            reqs=generate_requests(50, seed=2)
        )
        check_cluster_invariants(cluster, result, reqs)
        assert result.throughput > 0 and result.goodput > 0

    def test_mixed_fleet(self):
        cluster, reqs, result = self.run_cluster_engine(
            replicas=["TD-Pipe", "PP+SB", "TP+HB"]
        )
        check_cluster_invariants(cluster, result, reqs)
        assert result.system == "PP+SB+TD-Pipe+TP+HB"

    def test_round_robin_spreads_evenly(self):
        cluster, reqs, result = self.run_cluster_engine(router="round-robin")
        counts = result.requests_per_replica
        assert max(counts) - min(counts) <= 1

    def test_static_router_honours_presplit(self):
        reqs = generate_requests(30, seed=9)
        shards = split_round_robin(reqs, 3)
        router = StaticRouter(static_assignment(shards))
        cluster, reqs, result = self.run_cluster_engine(router=router, reqs=reqs)
        for i, shard in enumerate(shards):
            assert all(cluster.assignments[r.request_id] == i for r in shard)
        check_cluster_invariants(cluster, result, reqs)

    def test_metrics_are_aggregates(self):
        cluster, reqs, result = self.run_cluster_engine()
        assert result.num_replicas == 3
        assert 0.0 <= result.utilization_imbalance <= 1.0
        assert result.latency is not None and result.latency.count == len(reqs)
        assert result.total_tokens == sum(r.prompt_len + r.output_len for r in reqs)
        assert "goodput" in result.summary()

    def test_rejects_duplicate_ids(self):
        reqs = generate_requests(10, seed=1)
        cluster = ClusterEngine([lambda sim: build("TD-Pipe", sim=sim)])
        with pytest.raises(ValueError, match="duplicate"):
            cluster.run(reqs + reqs[:1])

    def test_rejects_empty_workload(self):
        cluster = ClusterEngine([lambda sim: build("TD-Pipe", sim=sim)])
        with pytest.raises(ValueError, match="empty"):
            cluster.run([])

    def test_rejects_factory_ignoring_shared_sim(self):
        with pytest.raises(ValueError, match="shared simulator"):
            ClusterEngine([lambda sim: build("TD-Pipe", sim=Simulator())])

    def test_rejects_no_replicas(self):
        with pytest.raises(ValueError, match="at least one replica"):
            ClusterEngine([])

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("fastest")


# --------------------------------------------------------------------- #
# Routing policies.
# --------------------------------------------------------------------- #
class TestRouters:
    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        replicas = [build("TD-Pipe") for _ in range(3)]
        router.reset(replicas)
        picks = []
        for i in range(6):
            idx = router.choose(None, replicas)
            router.on_routed(None, idx)
            picks.append(idx)
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_jsq_prefers_lighter_replica(self):
        replicas = [build("TD-Pipe") for _ in range(2)]
        replicas[0].start(generate_requests(5, seed=0), allow_empty=True)
        replicas[1].start([], allow_empty=True)
        router = JoinShortestQueueRouter()
        router.reset(replicas)
        assert router.choose(generate_requests(1, seed=1)[0], replicas) == 1

    def test_scored_ties_rotate(self):
        replicas = [build("TD-Pipe") for _ in range(3)]
        for r in replicas:
            r.start([], allow_empty=True)
        router = JoinShortestQueueRouter()
        router.reset(replicas)
        picks = []
        for _ in range(6):
            idx = router.choose(None, replicas)
            router.on_routed(None, idx)
            picks.append(idx)
        assert picks == [0, 1, 2, 0, 1, 2]  # equal scores must not herd

    def test_phase_aware_prefers_decode_phase(self):
        replicas = [build("TD-Pipe") for _ in range(2)]
        replicas[0].phase = "prefill"
        replicas[1].phase = "decode"
        router = PhaseAwareRouter()
        router.reset(replicas)
        req = generate_requests(1, seed=4)[0]
        assert router.choose(req, replicas) == 1

    def test_phase_aware_queue_depth_dominates_eventually(self):
        replicas = [build("TD-Pipe") for _ in range(2)]
        replicas[0].phase = "decode"
        replicas[1].phase = "prefill"
        # Register the queue in `states` too so the in-system load signal
        # (the one all scored routers now share) sees it.
        backlog = [RequestState(r) for r in generate_requests(8, seed=0)]
        replicas[0].states = {s.request_id: s for s in backlog}
        replicas[0].waiting.extend(backlog)
        router = PhaseAwareRouter()
        router.reset(replicas)
        req = generate_requests(1, seed=4)[0]
        # 8 in-system beats the 1.5 decode bonus: go to the empty replica.
        assert router.choose(req, replicas) == 1


# --------------------------------------------------------------------- #
# run_cluster + sweep plumbing.
# --------------------------------------------------------------------- #
class TestRunCluster:
    SCALE = default_scale(factor=0.02, seed=0)

    def test_homogeneous(self):
        result = run_cluster(
            "TD-Pipe",
            "L20",
            "13B",
            replicas=2,
            router="phase-aware",
            rate_rps=6.0,
            scale=self.SCALE,
            predictor=OraclePredictor(),
        )
        assert result.num_replicas == 2
        assert result.router == "phase-aware"
        assert result.completed_requests == self.SCALE.eval_requests

    def test_mixed_systems_list(self):
        result = run_cluster(
            ["TD-Pipe", "PP+SB"],
            "L20",
            "13B",
            replicas=2,
            router="jsq",
            scale=self.SCALE,
            predictor=OraclePredictor(),
        )
        assert result.system == "PP+SB+TD-Pipe"

    def test_replica_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="system names"):
            run_cluster(["TD-Pipe"], replicas=2, scale=self.SCALE,
                        predictor=OraclePredictor())

    def test_sweep_rows_and_formatting(self):
        rows = cluster_scaling.run(
            scale=self.SCALE,
            model="13B",
            replica_counts=(2,),
            routers=("round-robin", "phase-aware"),
            rates_per_replica=(2.0,),
        )
        assert len(rows) == 2
        assert {row["router"] for row in rows} == {"round-robin", "phase-aware"}
        table = cluster_scaling.format_results(rows)
        assert "phase-aware" in table and "TTFT p99" in table and "*" in table
