"""Unit + property tests for the paged KV-cache manager and capacity math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import A100, L20
from repro.kvcache import (
    BlockManager,
    KVCacheOverflow,
    OutOfMemoryError,
    fits_in_memory,
    kv_token_capacity,
)
from repro.models import LLAMA2_13B, LLAMA2_70B, QWEN25_32B


class TestBlockManager:
    def test_capacity_rounds_to_blocks(self):
        bm = BlockManager(capacity_tokens=100, block_size=16)
        assert bm.num_blocks == 6
        assert bm.capacity_tokens == 96

    def test_allocate_free_cycle(self):
        bm = BlockManager(1600, 16)
        bm.allocate(1, 33)  # 3 blocks
        assert bm.used_blocks == 3
        assert bm.tokens_of(1) == 33
        freed = bm.free(1)
        assert freed == 33
        assert bm.used_blocks == 0

    def test_append_grows_blocks_lazily(self):
        bm = BlockManager(1600, 16)
        bm.allocate(1, 16)
        assert bm.used_blocks == 1
        bm.append(1, 1)  # spills into a new block
        assert bm.used_blocks == 2
        bm.append(1, 15)  # fills it, no new block
        assert bm.used_blocks == 2

    def test_overflow_raises(self):
        bm = BlockManager(32, 16)
        bm.allocate(1, 32)
        with pytest.raises(KVCacheOverflow):
            bm.allocate(2, 1)
        with pytest.raises(KVCacheOverflow):
            bm.append(1, 1)

    def test_double_allocate_rejected(self):
        bm = BlockManager(160, 16)
        bm.allocate(1, 5)
        with pytest.raises(KVCacheOverflow):
            bm.allocate(1, 5)

    def test_can_allocate_and_append(self):
        bm = BlockManager(48, 16)
        assert bm.can_allocate(48)
        assert not bm.can_allocate(49)
        bm.allocate(1, 40)
        assert bm.can_append(1, 8)
        assert not bm.can_append(1, 9)

    def test_evict_newest(self):
        bm = BlockManager(1600, 16)
        bm.allocate(1, 10)
        bm.allocate(2, 10)
        bm.allocate(3, 10)
        assert bm.evict_newest() == 3
        assert not bm.contains(3)
        assert bm.contains(1) and bm.contains(2)
        # Re-admitted requests become "newest" again.
        bm.allocate(3, 10)
        bm.append(1, 5)  # appending does not change admission order
        assert bm.evict_newest() == 3

    def test_evict_empty_raises(self):
        bm = BlockManager(160, 16)
        with pytest.raises(KVCacheOverflow):
            bm.evict_newest()

    def test_usage_ratio(self):
        bm = BlockManager(160, 16)  # 10 blocks
        assert bm.usage_ratio == 0.0
        bm.allocate(1, 80)  # 5 blocks
        assert bm.usage_ratio == pytest.approx(0.5)

    def test_request_ids_in_admission_order(self):
        bm = BlockManager(1600, 16)
        for rid in (5, 2, 9):
            bm.allocate(rid, 10)
        assert bm.request_ids() == [5, 2, 9]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BlockManager(-1, 16)
        with pytest.raises(ValueError):
            BlockManager(100, 0)
        bm = BlockManager(160, 16)
        with pytest.raises(ValueError):
            bm.allocate(1, 0)


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["alloc", "append", "free", "evict"]),
            st.integers(0, 8),
            st.integers(1, 64),
        ),
        max_size=60,
    )
)
def test_block_manager_invariants(ops):
    """Property: block accounting is always consistent under random op mixes."""
    bm = BlockManager(capacity_tokens=640, block_size=16)
    live: dict[int, int] = {}
    for op, rid, n in ops:
        if op == "alloc" and rid not in live:
            if bm.can_allocate(n):
                bm.allocate(rid, n)
                live[rid] = n
        elif op == "append" and rid in live:
            if bm.can_append(rid, n):
                bm.append(rid, n)
                live[rid] += n
        elif op == "free" and rid in live:
            assert bm.free(rid) == live.pop(rid)
        elif op == "evict" and live:
            victim = bm.evict_newest()
            live.pop(victim)
        # Invariants after every operation:
        assert 0 <= bm.free_blocks <= bm.num_blocks
        assert bm.total_tokens == sum(live.values())
        used = sum(-(-t // 16) for t in live.values())
        assert bm.used_blocks == used
        for rid_, tokens in live.items():
            assert bm.tokens_of(rid_) == tokens


class TestCapacity:
    def test_fig11_oom_pattern(self):
        # Paper Figure 11: 32B OOMs on one L20; 70B OOMs on one A100.
        assert not fits_in_memory(QWEN25_32B, L20, pp_degree=1)
        assert fits_in_memory(QWEN25_32B, L20, pp_degree=2)
        assert not fits_in_memory(LLAMA2_70B, A100, pp_degree=1)
        assert fits_in_memory(LLAMA2_70B, A100, pp_degree=2)
        assert fits_in_memory(LLAMA2_13B, L20, pp_degree=1)

    def test_capacity_grows_with_devices(self):
        c2 = kv_token_capacity(QWEN25_32B, L20, pp_degree=2)
        c4 = kv_token_capacity(QWEN25_32B, L20, pp_degree=4)
        assert c4 > 2 * c2  # super-linear: weights amortise across stages

    def test_tp_pp_similar_capacity(self):
        # Both layouts spread weights and KV evenly; PP is slightly smaller
        # because the first stage also hosts the (unsharded) embedding and the
        # minimum over stages governs.
        c_tp = kv_token_capacity(QWEN25_32B, L20, pp_degree=1, tp_degree=4)
        c_pp = kv_token_capacity(QWEN25_32B, L20, pp_degree=4, tp_degree=1)
        assert c_pp <= c_tp
        assert c_tp == pytest.approx(c_pp, rel=0.10)

    def test_oom_raises_with_message(self):
        with pytest.raises(OutOfMemoryError, match="70B"):
            kv_token_capacity(LLAMA2_70B, A100, pp_degree=1)

    def test_min_tokens_threshold(self):
        # A layout that technically fits but can't hold min_tokens is OOM.
        cap = kv_token_capacity(LLAMA2_13B, L20, pp_degree=1)
        with pytest.raises(OutOfMemoryError):
            kv_token_capacity(LLAMA2_13B, L20, pp_degree=1, min_tokens=cap + 1)
