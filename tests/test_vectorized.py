"""Bit-identity of the vectorized cost surfaces vs the scalar roofline.

The numpy grids/curves in :mod:`repro.costmodel.vectorized` are allowed to
change *where* a number is computed, never the number: every grid entry
must equal the scalar ``StageCostModel`` result to the bit, across models,
GPUs, TP degrees and pipeline shards.  Hypothesis drives random
configurations through all three surfaces; separate tests pin the grid
fallback contract and the memo-reset regression (a ``_COST_CACHE_MAX``
overflow must clear only the memo dicts, never the installed grids, and
must not change any result).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.costmodel.roofline as roofline
from repro.costmodel.roofline import StageCostModel
from repro.costmodel.vectorized import (
    DecodeGrid,
    PrefillGrid,
    build_decode_grid,
    build_prefill_grid,
    decode_rate_curve,
    decode_time_surface,
    install_default_grids,
    prefill_time_surface,
)
from repro.core.intensity import DecodeRateProfile
from repro.hardware.gpu import GPU_PRESETS
from repro.hardware.interconnect import pcie_switch
from repro.models.partition import pipeline_shards
from repro.models.spec import MODEL_PRESETS


def bits(x: float) -> bytes:
    """IEEE-754 representation — equality up to the last bit."""
    return np.float64(x).tobytes()


stage_configs = st.builds(
    lambda model, gpu, tp, pp, idx: (model, gpu, tp, pp, idx % pp),
    model=st.sampled_from(sorted(MODEL_PRESETS)),
    gpu=st.sampled_from(sorted(GPU_PRESETS)),
    tp=st.sampled_from([1, 2, 4]),
    pp=st.sampled_from([1, 2, 4]),
    idx=st.integers(0, 3),
)


def make_stage(config) -> StageCostModel:
    model_name, gpu_name, tp, pp, idx = config
    model = MODEL_PRESETS[model_name]
    gpu = GPU_PRESETS[gpu_name]
    interconnect = pcie_switch(gpu.allreduce_bw_gbps) if tp > 1 else None
    shard = pipeline_shards(model, pp, tp)[idx]
    return StageCostModel(shard=shard, gpu=gpu, interconnect=interconnect)


@settings(max_examples=60, deadline=None)
@given(
    config=stage_configs,
    batches=st.lists(st.integers(1, 512), min_size=1, max_size=16),
    kvs=st.lists(
        st.one_of(
            st.integers(0, 1 << 20).map(float),
            st.floats(0.0, 2**20, allow_nan=False),
        ),
        min_size=1,
        max_size=16,
    ),
)
def test_decode_surface_bit_identical(config, batches, kvs):
    stage = make_stage(config)
    n = min(len(batches), len(kvs))
    b = np.asarray(batches[:n], dtype=np.float64)
    kv = np.asarray(kvs[:n], dtype=np.float64)
    surface = decode_time_surface(stage, b, kv)
    for bi, kvi, got in zip(batches, kvs, surface):
        assert bits(got) == bits(stage.decode_time(bi, float(kvi)))


@settings(max_examples=60, deadline=None)
@given(
    config=stage_configs,
    lens=st.lists(st.integers(1, 8192), min_size=1, max_size=16),
)
def test_prefill_surface_bit_identical(config, lens):
    stage = make_stage(config)
    surface = prefill_time_surface(stage, np.asarray(lens, dtype=np.float64))
    for length, got in zip(lens, surface):
        assert bits(got) == bits(stage.prefill_time((length,)))


@settings(max_examples=40, deadline=None)
@given(
    config=stage_configs,
    mean_context=st.floats(0.0, 8192.0, allow_nan=False),
    max_batch=st.integers(1, 64),
)
def test_rate_curve_bit_identical(config, mean_context, max_batch):
    stage = make_stage(config)
    batch_sizes = np.arange(1, max_batch + 1, dtype=np.float64)
    times, rates = decode_rate_curve(stage, batch_sizes, mean_context)
    for b, t, r in zip(range(1, max_batch + 1), times, rates):
        scalar_t = stage.decode_time(b, b * (mean_context + 1.0))
        assert bits(t) == bits(scalar_t)
        assert bits(r) == bits(b / scalar_t)


@settings(max_examples=40, deadline=None)
@given(config=stage_configs, mean_context=st.floats(0.0, 8192.0, allow_nan=False))
def test_profile_answers_from_table_bit_identically(config, mean_context):
    """DecodeRateProfile's cached curve == the scalar rate chain."""
    stage = make_stage(config)
    tabled = DecodeRateProfile(stage_model=stage, peak_batch_size=32)
    for b in (1, 7, 32, 40):  # 40 > table: exercises the scalar fallback
        scalar_t = stage.decode_time(b, b * (mean_context + 1.0))
        assert bits(tabled.rate(b, mean_context)) == bits(b / scalar_t)
        assert bits(tabled.step_time(b, mean_context)) == bits(scalar_t)
    assert bits(tabled.peak(mean_context)) == bits(
        32 / stage.decode_time(32, 32 * (mean_context + 1.0))
    )
    assert tabled.rate(0, mean_context) == 0.0


def fresh_stage() -> StageCostModel:
    return make_stage(("32B", "L20", 1, 4, 0))


class TestGridLookupContract:
    """On-grid points answer from the table; everything else returns None."""

    def test_decode_grid_exact_points_only(self):
        stage = fresh_stage()
        grid = DecodeGrid(stage, max_batch=8, kv_start=16, kv_step=16, n_kv=4)
        assert grid.lookup(3, 32.0) == stage.decode_time(3, 32.0)
        assert grid.lookup(8, 64.0) == stage.decode_time(8, 64.0)
        for batch, kv in [
            (0, 16.0),      # batch below range
            (9, 16.0),      # batch above range
            (1, 15.0),      # off the progression
            (1, 17.5),      # non-integer kv
            (1, 16.0 * 5),  # beyond the last column
            (1, -16.0),     # negative
            (1, float("nan")),
            (1, float("inf")),
        ]:
            assert grid.lookup(batch, kv) is None
        assert grid.hits == 2 and grid.misses == 8

    def test_prefill_grid_single_prompt_only(self):
        stage = fresh_stage()
        grid = PrefillGrid(stage, max_len=16)
        assert grid.lookup((5,)) == stage.prefill_time((5,))
        assert grid.lookup((16,)) == stage.prefill_time((16,))
        assert grid.lookup(()) is None
        assert grid.lookup((17,)) is None
        assert grid.lookup((0,)) is None
        assert grid.lookup((4, 4)) is None

    def test_install_is_consulted_on_memo_miss(self):
        stage = fresh_stage()
        install_default_grids([stage], max_batch=16, max_prompt_len=64)
        assert stage._decode_grid is not None
        assert stage._prefill_grid is not None
        before_hits = stage._prefill_grid.hits
        t = stage.prefill_time((32,))
        assert stage._prefill_grid.hits == before_hits + 1
        # Second call answers from the memo, not the grid.
        assert stage.prefill_time((32,)) == t
        assert stage._prefill_grid.hits == before_hits + 1

    def test_build_cache_shares_grids_across_identical_stages(self):
        a, b = fresh_stage(), fresh_stage()
        assert build_decode_grid(a) is build_decode_grid(b)
        assert build_prefill_grid(a) is build_prefill_grid(b)


class TestCacheResetRegression:
    """_COST_CACHE_MAX overflow clears the memo dicts, never the grids."""

    def test_reset_preserves_grids_and_results(self, monkeypatch):
        monkeypatch.setattr(roofline, "_COST_CACHE_MAX", 8)
        stage = fresh_stage()
        install_default_grids([stage], max_batch=16, max_prompt_len=64)
        reference = fresh_stage()  # scalar-only, never overflows in this test

        decode_shapes = [(1 + i % 16, float(16 * (1 + i % 4))) for i in range(40)]
        prefill_shapes = [(1 + i % 64,) for i in range(40)]
        first = [stage.decode_time(b, kv) for b, kv in decode_shapes]
        first += [stage.prefill_time(s) for s in prefill_shapes]

        # The memo overflowed (40 distinct keys through a max of 8) and was
        # wholesale-cleared at least once; the grids must have survived.
        assert len(stage._decode_cache) <= 8
        assert len(stage._prefill_cache) <= 8
        assert stage._decode_grid is not None
        assert stage._prefill_grid is not None

        second = [stage.decode_time(b, kv) for b, kv in decode_shapes]
        second += [stage.prefill_time(s) for s in prefill_shapes]
        expected = [reference.decode_time(b, kv) for b, kv in decode_shapes]
        expected += [reference.prefill_time(s) for s in prefill_shapes]
        assert [bits(x) for x in first] == [bits(x) for x in expected]
        assert [bits(x) for x in second] == [bits(x) for x in expected]

    def test_grid_keeps_serving_after_forced_reset(self, monkeypatch):
        monkeypatch.setattr(roofline, "_COST_CACHE_MAX", 2)
        stage = fresh_stage()
        install_default_grids([stage], max_batch=8, max_prompt_len=8)
        grid = stage._decode_grid
        for i in range(20):
            stage.decode_time(1 + i % 8, 16.0)
            stage.decode_time(1 + i % 8, 32.0)
        assert stage._decode_grid is grid
        assert grid.hits > 0
