"""Batched same-timestamp dispatch vs the pre-batching tuple-heap kernel.

The bucket-based :class:`repro.sim.engine.Simulator` drains all entries
sharing the head timestamp in one inner loop instead of re-sifting the heap
per event.  That is a pure mechanical change: execution order is still
exactly (time, seq), so every engine must produce *identical* results —
same ``events_processed``, same traces, same metrics — on both kernels.

``ReferenceSimulator`` below is a faithful copy of the previous tuple-heap
kernel (one ``heappop`` per event, ``Event`` tombstones, ratio-triggered
compaction).  The tests run all five systems against both kernels on the
same workload and diff everything observable, including the byte-level
``RunResult``/``ClusterResult`` records the :class:`~repro.api.ArtifactStore`
hashes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

import pytest

from repro import api
from repro.api.store.canonical import canonical_json
from repro.experiments.common import SYSTEMS, build_engine
from repro.hardware import make_node
from repro.models import LLAMA2_13B
from repro.predictor import OraclePredictor
from repro.workload import generate_requests, with_poisson_arrivals

from invariants import check_engine_invariants


# --------------------------------------------------------------------- #
# Reference kernel: the pre-batching tuple-heap simulator, verbatim.
# --------------------------------------------------------------------- #
class _RefEvent:
    __slots__ = ("time", "seq", "callback", "cancelled", "_on_cancel")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._on_cancel: Callable[[], None] | None = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()


class ReferenceSimulator:
    """The tuple-heap event loop this PR replaced: one heappop per event."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, object]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._live = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> _RefEvent:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _RefEvent:
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        ev = _RefEvent(time, next(self._seq), callback)
        ev._on_cancel = self._note_cancelled
        heapq.heappush(self._heap, (time, ev.seq, ev))
        self._live += 1
        return ev

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.schedule_callback_at(self._now + delay, callback)

    def schedule_callback_at(self, time: float, callback: Callable[[], None]) -> None:
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        heapq.heappush(self._heap, (time, next(self._seq), callback))
        self._live += 1

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > len(self._heap) // 2 and len(self._heap) >= 8:
            self._compact()

    def _compact(self) -> None:
        self._heap = [
            entry
            for entry in self._heap
            if not (type(entry[2]) is _RefEvent and entry[2].cancelled)
        ]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def step(self) -> bool:
        heap = self._heap
        while heap:
            time, _seq, item = heapq.heappop(heap)
            callback = item
            if type(item) is _RefEvent:
                item._on_cancel = None
                if item.cancelled:
                    self._cancelled -= 1
                    continue
                callback = item.callback
            self._live -= 1
            self._now = time
            self._events_processed += 1
            callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        processed = 0
        while self._heap:
            heap = self._heap
            while heap:
                head_item = heap[0][2]
                if type(head_item) is _RefEvent and head_item.cancelled:
                    heapq.heappop(heap)
                    head_item._on_cancel = None
                    self._cancelled -= 1
                else:
                    break
            if not heap:
                return
            if until is not None and heap[0][0] > until:
                self._now = max(self._now, until)
                return
            if not self.step():
                return
            processed += 1
            if max_events is not None and processed >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events}")

    @property
    def pending(self) -> int:
        return self._live


# --------------------------------------------------------------------- #
# Every system, both kernels, one workload: everything observable matches.
# --------------------------------------------------------------------- #
def make_requests():
    return with_poisson_arrivals(generate_requests(60, seed=13), 6.0, seed=13)


def run_once(system: str, sim):
    predictor = OraclePredictor() if system == "TD-Pipe" else None
    engine = build_engine(
        system, make_node("L20", 4), LLAMA2_13B, predictor=predictor, sim=sim
    )
    requests = make_requests()
    result = engine.run(requests)
    return engine, result, requests


@pytest.mark.parametrize("system", SYSTEMS)
def test_batched_dispatch_matches_reference_kernel(system):
    new_engine, new_result, new_reqs = run_once(system, sim=None)
    ref_engine, ref_result, ref_reqs = run_once(system, sim=ReferenceSimulator())
    assert type(new_engine.sim).__module__ == "repro.sim.engine"

    # Same event count: batching drains the same entries, just per-bucket.
    assert new_engine.sim.events_processed == ref_engine.sim.events_processed
    assert new_engine.sim.now == ref_engine.sim.now

    # Metrics, traces and phase structure are identical, not just close.
    assert new_result.summary() == ref_result.summary()
    assert new_result.makespan == ref_result.makespan
    assert new_result.latency.summary() == ref_result.latency.summary()
    assert new_result.trace.timelines == ref_result.trace.timelines
    assert [(s.phase, s.start, s.end) for s in new_result.phase_spans] == [
        (s.phase, s.start, s.end) for s in ref_result.phase_spans
    ]
    assert new_result.to_record(detail=True) == ref_result.to_record(detail=True)

    # Both runs are individually sound (online workload: phases may gap).
    check_engine_invariants(new_engine, new_result, new_reqs, contiguous_phases=False)
    check_engine_invariants(ref_engine, ref_result, ref_reqs, contiguous_phases=False)


# --------------------------------------------------------------------- #
# Store-level byte identity: records and content hashes cannot drift.
# --------------------------------------------------------------------- #
ENGINE_SPEC = api.ScenarioSpec(
    mode="engine",
    workload=api.WorkloadSpec(scale=0.02, seed=0),
    fleet=api.FleetSpec(node="l20", num_gpus=4),
    engine=api.EngineSpec(system="TD-Pipe", model="13B", predictor="oracle"),
)

CLUSTER_SPEC = api.ScenarioSpec(
    mode="cluster",
    workload=api.WorkloadSpec(
        scale=0.02, seed=0, arrival="poisson", rate_rps=8.0
    ),
    fleet=api.FleetSpec(node="l20", num_gpus=4, replicas=2),
    engine=api.EngineSpec(system="TD-Pipe", model="13B", predictor="oracle"),
    control=api.ControlSpec(router="phase-aware"),
)


def _record_sans_wall(artifact) -> str:
    """Canonical JSON of the full record, minus the host-dependent wall time."""
    record = artifact.to_record(detail=True)
    record.pop("wall_time_s")
    return canonical_json(record)


@pytest.mark.parametrize(
    "spec", [ENGINE_SPEC, CLUSTER_SPEC], ids=["engine", "cluster"]
)
def test_artifact_records_byte_identical_across_kernels(spec, tmp_path, monkeypatch):
    """RunResult/ClusterResult records file identically under both kernels."""
    new_store = api.ArtifactStore(tmp_path / "new")
    new_artifact = api.run(spec, store=new_store)

    import repro.cluster.engine as cluster_engine
    import repro.runtime.base_engine as base_engine

    monkeypatch.setattr(base_engine, "Simulator", ReferenceSimulator)
    monkeypatch.setattr(cluster_engine, "Simulator", ReferenceSimulator)
    ref_store = api.ArtifactStore(tmp_path / "ref")
    ref_artifact = api.run(spec, store=ref_store)

    assert _record_sans_wall(new_artifact) == _record_sans_wall(ref_artifact)
    # Same content address in both stores, and both round-trip to equality.
    assert new_store.refs() == ref_store.refs()
    (ref,) = new_store.refs()
    assert ref == api.content_hash(new_artifact.spec)
    assert api.RunArtifact.from_record(new_store.get_record(ref)).result.summary() == (
        api.RunArtifact.from_record(ref_store.get_record(ref)).result.summary()
    )
