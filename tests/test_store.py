"""Tests for the artifact store and the record/replay/diff workflow.

Covers the full record round-trip (``from_record(to_record(x))`` equality
through actual JSON for `RunResult`/`ClusterResult`/`RunArtifact`), stable
content addressing (key order, float canonicalization, cross-process), the
store's put/resolve/index behavior, replay determinism (record then replay
reports zero diffs), structural diffing with tolerances, and the CLI
``record``/``replay``/``diff`` subcommands.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

from repro import api
from repro.api.store.canonical import canonical_json, canonicalize
from repro.metrics.cluster import ClusterResult
from repro.metrics.latency import LatencyStats
from repro.metrics.results import RunResult
from repro.metrics.slo import SLOClassStats

SCALE = 0.02


def engine_spec(**engine_kwargs) -> api.ScenarioSpec:
    engine = dict(system="TP+SB", model="13B")
    engine.update(engine_kwargs)
    return api.ScenarioSpec(
        name="engine-test",
        mode="engine",
        workload=api.WorkloadSpec(scale=SCALE, seed=0),
        fleet=api.FleetSpec(node="L20", num_gpus=2),
        engine=api.EngineSpec(**engine),
    )


def cluster_spec(router: str = "jsq") -> api.ScenarioSpec:
    return api.ScenarioSpec(
        name="cluster-test",
        mode="cluster",
        workload=api.WorkloadSpec(
            scale=SCALE, seed=0, arrival="poisson", rate_rps=8.0,
            slo_mix={"interactive": 0.7, "batch": 0.3},
        ),
        fleet=api.FleetSpec(fleet="l20:1,a100:1"),
        engine=api.EngineSpec(system="TD-Pipe", model="13B"),
        control=api.ControlSpec(router=router, autoscale=True),
    )


@pytest.fixture(scope="module")
def engine_artifact() -> api.RunArtifact:
    return api.run(engine_spec())


@pytest.fixture(scope="module")
def cluster_artifact() -> api.RunArtifact:
    return api.run(cluster_spec())


def through_json(record: dict) -> dict:
    """Round-trip through real JSON text, as the store does on disk."""
    return json.loads(json.dumps(record, allow_nan=False))


# --------------------------------------------------------------------- #
# Record round-trips.
# --------------------------------------------------------------------- #
class TestRecordRoundTrip:
    def test_run_result_round_trip_equality(self, engine_artifact):
        result = engine_artifact.result
        rebuilt = RunResult.from_record(through_json(result.to_record()))
        assert rebuilt == result
        assert rebuilt.trace == result.trace
        assert rebuilt.summary() == result.summary()
        assert rebuilt.throughput == result.throughput

    def test_cluster_result_round_trip_equality(self, cluster_artifact):
        result = cluster_artifact.result
        rebuilt = ClusterResult.from_record(through_json(result.to_record()))
        assert rebuilt == result
        assert rebuilt.replica_results == result.replica_results
        assert rebuilt.fleet_timeline == result.fleet_timeline
        assert rebuilt.summary() == result.summary()

    def test_artifact_round_trip_equality(self, cluster_artifact):
        rebuilt = api.RunArtifact.from_record(
            through_json(cluster_artifact.to_record())
        )
        assert rebuilt == cluster_artifact

    def test_lean_record_cannot_reconstruct(self, engine_artifact):
        lean = engine_artifact.to_record(detail=False)
        assert "detail" not in lean
        with pytest.raises(ValueError, match="detail"):
            RunResult.from_record(lean)

    def test_latency_stats_round_trip_with_nan(self):
        nan = float("nan")
        empty = LatencyStats(0, nan, nan, nan, nan, nan, nan, nan)
        rebuilt = LatencyStats.from_record(through_json(empty.to_record()))
        assert rebuilt.count == 0
        assert rebuilt.ttft_p99 != rebuilt.ttft_p99  # NaN preserved
        # Equality is NaN-tolerant so even degenerate runs round-trip equal.
        assert rebuilt == empty
        assert hash(rebuilt) == hash(empty)
        assert empty != LatencyStats(0, nan, nan, 1.0, nan, nan, nan, nan)

    def test_slo_stats_round_trip_with_inf_deadline(self):
        from repro.workload.slo import SLOClass

        stats = SLOClassStats(
            slo=SLOClass("lax", ttft_deadline_s=float("inf")),
            count=3, ttft_attainment=1.0, tpot_attainment=1.0, attainment=1.0,
        )
        rebuilt = SLOClassStats.from_record(through_json(stats.to_record()))
        assert rebuilt == stats

    def test_bad_kind_rejected(self, engine_artifact):
        record = engine_artifact.to_record()
        record["kind"] = "quantum"
        with pytest.raises(ValueError, match="kind"):
            api.RunArtifact.from_record(record)


# --------------------------------------------------------------------- #
# Content addressing.
# --------------------------------------------------------------------- #
class TestContentHash:
    def test_identical_specs_hash_equal(self):
        assert api.content_hash(cluster_spec()) == api.content_hash(cluster_spec())

    def test_key_order_does_not_matter(self):
        spec = cluster_spec()
        data = spec.to_dict()
        shuffled = dict(reversed(list(data.items())))
        shuffled["workload"] = dict(reversed(list(data["workload"].items())))
        assert api.content_hash(api.ScenarioSpec.from_dict(shuffled)) == (
            api.content_hash(spec)
        )

    def test_float_canonicalization(self):
        # 8 and 8.0 are the same rate; -0.0 is 0.0.
        a = cluster_spec().with_overrides({"workload.rate_rps": 8})
        b = cluster_spec().with_overrides({"workload.rate_rps": 8.0})
        assert a == b
        assert api.content_hash(a) == api.content_hash(b)
        assert canonicalize(8.0) == 8 and canonicalize(-0.0) == 0
        assert canonicalize(0.1) == 0.1

    def test_resolved_and_auto_mode_share_identity(self):
        spec = api.ScenarioSpec(fleet=api.FleetSpec(replicas=2))
        assert spec.mode == "auto"
        assert api.content_hash(spec) == api.content_hash(spec.resolved())

    def test_name_is_a_label_not_an_identity(self):
        import dataclasses

        spec = cluster_spec()
        renamed = dataclasses.replace(spec, name="renamed")
        assert api.content_hash(renamed) == api.content_hash(spec)

    def test_any_spec_change_changes_identity(self):
        assert api.content_hash(cluster_spec("jsq")) != (
            api.content_hash(cluster_spec("round-robin"))
        )

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            canonical_json({"x": float("inf")})

    def test_stable_across_processes(self):
        spec = cluster_spec()
        expected = api.content_hash(spec)
        code = (
            "import json, sys\n"
            "from repro import api\n"
            "spec = api.ScenarioSpec.from_dict(json.loads(sys.argv[1]))\n"
            "print(api.content_hash(spec))\n"
        )
        src = str(Path(__file__).parent.parent / "src")
        for seed in ("0", "1", "random"):
            out = subprocess.run(
                [sys.executable, "-c", code, spec.to_json()],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": src, "PYTHONHASHSEED": seed, "PATH": "/usr/bin"},
            )
            assert out.stdout.strip() == expected, f"PYTHONHASHSEED={seed}"


# --------------------------------------------------------------------- #
# The store.
# --------------------------------------------------------------------- #
class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path, cluster_artifact):
        store = api.ArtifactStore(tmp_path / "store")
        ref = store.put(cluster_artifact)
        assert ref == api.content_hash(cluster_artifact.spec)
        assert ref in store and len(store) == 1
        assert store.get(ref) == cluster_artifact

    def test_record_files_are_pure_records(self, tmp_path, engine_artifact):
        store = api.ArtifactStore(tmp_path / "store")
        ref = store.put(engine_artifact)
        on_disk = json.loads((store.records_dir / f"{ref}.json").read_text())
        assert on_disk == engine_artifact.to_record()

    def test_resolve_prefix_name_and_errors(self, tmp_path, cluster_artifact,
                                            engine_artifact):
        store = api.ArtifactStore(tmp_path / "store")
        ref_c = store.put(cluster_artifact)
        ref_e = store.put(engine_artifact)
        assert store.resolve(ref_c[:10]) == ref_c
        assert store.resolve("cluster-test") == ref_c
        assert store.resolve("engine-test") == ref_e
        with pytest.raises(KeyError, match="no record matches"):
            store.resolve("doesnotexist")
        with pytest.raises(KeyError, match="ambiguous"):
            store.resolve("")  # empty prefix matches both

    def test_same_spec_overwrites_one_entry(self, tmp_path, engine_artifact):
        store = api.ArtifactStore(tmp_path / "store")
        store.put(engine_artifact)
        store.put(engine_artifact)
        assert len(store) == 1
        assert len(store.session_refs) == 2

    def test_index_is_human_readable(self, tmp_path, cluster_artifact):
        store = api.ArtifactStore(tmp_path / "store")
        ref = store.put(cluster_artifact)
        index = json.loads(store.index_path.read_text())
        entry = index["entries"][ref]
        assert entry["name"] == "cluster-test"
        assert entry["kind"] == "cluster"
        assert entry["file"] == f"records/{ref}.json"
        assert entry["throughput_tps"] > 0

    def test_opaque_artifacts_rejected(self, tmp_path):
        from repro.experiments.common import eval_requests, default_scale

        scale = default_scale(factor=SCALE)
        artifact = api.run(engine_spec(), requests=eval_requests(scale))
        store = api.ArtifactStore(tmp_path / "store")
        with pytest.raises(ValueError, match="opaque"):
            store.put(artifact)
        store.put(artifact, allow_opaque=True)
        assert len(store) == 1

    def test_run_with_store_files_artifact(self, tmp_path):
        store = api.ArtifactStore(tmp_path / "store")
        artifact = api.run(engine_spec(), store=store)
        assert store.get(store.session_refs[0]) == artifact

    def test_run_sweep_with_store_tags_overrides(self, tmp_path):
        import dataclasses

        sweep = api.SweepSpec(
            name="ws",
            base=dataclasses.replace(engine_spec(), name=None),
            axes=(api.SweepAxis("engine.work_stealing", (True, False)),),
        )
        store = api.ArtifactStore(tmp_path / "store")
        artifacts = api.run_sweep(sweep, store=store)
        assert len(store) == 2
        for artifact, ref in zip(artifacts, store.session_refs):
            stored = store.get(ref)
            assert stored == artifact
            assert stored.overrides == artifact.overrides
            assert stored.spec.name == "ws"  # sweep name stamped on points


# --------------------------------------------------------------------- #
# Replay and diff.
# --------------------------------------------------------------------- #
class TestReplayAndDiff:
    def test_record_then_replay_reports_zero_diffs(self, tmp_path,
                                                   cluster_artifact):
        """The acceptance keystone: a seeded scenario replays drift-free."""
        store = api.ArtifactStore(tmp_path / "store")
        ref = store.put(cluster_artifact)
        report = api.replay(ref, store, strict=True)
        assert report.ok and not report.drifted
        assert len(report.diffs) > 10  # actually compared something
        assert "zero drift" in report.summary()

    def test_replay_detects_drift(self, tmp_path, engine_artifact):
        store = api.ArtifactStore(tmp_path / "store")
        ref = store.put(engine_artifact)
        # Corrupt one recorded metric: replay must flag exactly that drift.
        path = store.records_dir / f"{ref}.json"
        record = json.loads(path.read_text())
        record["throughput_tps"] *= 1.5
        record["completed_requests"] += 1
        path.write_text(json.dumps(record))
        report = api.replay(ref, store, strict=True)
        assert not report.ok
        drifted = {d.metric for d in report.drifted}
        assert drifted == {"throughput_tps", "completed_requests"}

    def test_tolerances_forgive_small_drift(self, tmp_path, engine_artifact):
        store = api.ArtifactStore(tmp_path / "store")
        ref = store.put(engine_artifact)
        path = store.records_dir / f"{ref}.json"
        record = json.loads(path.read_text())
        record["throughput_tps"] *= 1.0001
        path.write_text(json.dumps(record))
        loose = api.replay(
            ref, store, tolerances={"throughput_tps": api.Tolerance(rel=1e-3)}
        )
        assert loose.ok
        strict = api.replay(ref, store, strict=True)
        assert not strict.ok

    def test_replay_all(self, tmp_path, engine_artifact, cluster_artifact):
        store = api.ArtifactStore(tmp_path / "store")
        store.put(engine_artifact)
        store.put(cluster_artifact)
        reports = api.replay_all(store, strict=True)
        assert len(reports) == 2 and all(r.ok for r in reports)

    def test_diff_refs_same_and_different(self, tmp_path, cluster_artifact):
        store = api.ArtifactStore(tmp_path / "store")
        ref_a = store.put(cluster_artifact)
        ref_b = store.put(api.run(cluster_spec("round-robin")))
        same = api.diff_refs(ref_a, ref_a, store)
        assert same.ok
        different = api.diff_refs(ref_a, ref_b, store)
        assert not different.ok
        assert any(d.metric == "router" for d in different.drifted)

    def test_diff_across_two_stores(self, tmp_path, engine_artifact):
        store_a = api.ArtifactStore(tmp_path / "a")
        store_b = api.ArtifactStore(tmp_path / "b")
        ref = store_a.put(engine_artifact)
        store_b.put(engine_artifact)
        report = api.diff_refs(ref, ref, store_a, store_b=store_b)
        assert report.ok

    def test_compare_records_missing_key(self):
        diffs = api.compare_records(
            {"throughput_tps": 1.0, "extra": 2}, {"throughput_tps": 1.0}
        )
        assert [d for d in diffs if not d.within][0].metric == "extra"


# --------------------------------------------------------------------- #
# Registered figure grids.
# --------------------------------------------------------------------- #
class TestFigureRegistry:
    def test_fig_scenarios_registered(self):
        names = api.scenario_names()
        for expected in (
            "fig11-overall", "fig13-prefill-switch", "fig16-decode-switch",
        ):
            assert expected in names, names

    def test_fig11_grid_shape(self):
        sweep = api.get_scenario(
            "fig11-overall", device_counts=(2, 4), systems=("TP+SB", "TD-Pipe"),
            scale_factor=SCALE,
        )
        assert isinstance(sweep, api.SweepSpec)
        assert sweep.num_points == 4
        points = sweep.expand()
        assert points[0].spec.mode == "engine"
        assert points[0].overrides == {
            "fleet.num_gpus": 2, "engine.system": "TP+SB",
        }

    def test_fig13_fig16_axis_includes_adaptive_default(self):
        for name, field in (
            ("fig13-prefill-switch", "prefill_policy"),
            ("fig16-decode-switch", "decode_policy"),
        ):
            sweep = api.get_scenario(name, ratios=(0.5,), scale_factor=SCALE)
            policies = [
                getattr(p.spec.engine, field) for p in sweep.expand()
            ]
            assert None in policies and len(policies) == 2

    def test_fig11_run_files_store_artifacts(self, tmp_path):
        from repro.experiments import fig11_overall
        from repro.experiments.common import default_scale

        store = api.ArtifactStore(tmp_path / "store")
        res = fig11_overall.run(
            scale=default_scale(factor=SCALE),
            combos=(("L20", "13B"),),
            device_counts=(2,),
            systems=("TP+SB",),
            store=store,
        )
        assert len(res.cells) == len(res.artifacts) == len(store) == 1
        stored = store.get(store.refs()[0])
        assert stored.spec.engine.system == "TP+SB"
        assert stored.result.throughput == res.cells[0].throughput
        assert api.replay(store.refs()[0], store, strict=True).ok

    def test_fig11_oom_cells_skip_store(self, tmp_path):
        from repro.experiments import fig11_overall
        from repro.experiments.common import default_scale

        store = api.ArtifactStore(tmp_path / "store")
        res = fig11_overall.run(
            scale=default_scale(factor=SCALE),
            combos=(("L20", "32B"),),
            device_counts=(1,),
            systems=("TP+SB",),
            store=store,
        )
        assert res.cells[0].oom and len(store) == 0


# --------------------------------------------------------------------- #
# CLI record / replay / diff.
# --------------------------------------------------------------------- #
class TestCLIStore:
    def test_record_replay_diff_round_trip(self, capsys, tmp_path):
        from repro.cli import main

        spec_path = tmp_path / "scenario.json"
        spec_path.write_text(engine_spec().to_json())
        store = str(tmp_path / "store")
        assert main(["record", str(spec_path), "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 record(s)" in out
        assert main(["replay", "--store", store, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "zero drift" in out and "all reproduce" in out
        assert main([
            "diff", "engine-test", "engine-test", "--store", store,
        ]) == 0
        assert "identical" in capsys.readouterr().out

    def test_record_registry_name_with_set(self, capsys, tmp_path):
        from repro.cli import main

        store = str(tmp_path / "store")
        assert main([
            "record", "fig15-work-stealing",
            "--set", f"workload.scale={SCALE}", "--store", store,
        ]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out
        assert len(api.ArtifactStore(store)) == 2

    def test_replay_flags_corrupted_record_nonzero_exit(self, capsys, tmp_path):
        from repro.cli import main

        store_dir = tmp_path / "store"
        store = api.ArtifactStore(store_dir)
        ref = store.put(api.run(engine_spec()))
        path = store.records_dir / f"{ref}.json"
        record = json.loads(path.read_text())
        record["throughput_tps"] *= 2
        path.write_text(json.dumps(record))
        assert main(["replay", "--store", str(store_dir), "--strict"]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_replay_unknown_ref_exits(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["replay", "nope", "--store", str(tmp_path / "store")])

    def test_diff_needs_two_refs(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["diff", "only-one", "--store", str(tmp_path / "store")])

    def test_bench_json_allowed_for_registry_backed_experiment(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        out_path = tmp_path / "BENCH_fig15.json"
        assert main([
            "fig15", "--scale", str(SCALE), "--bench-json", str(out_path),
        ]) == 0
        record = json.loads(out_path.read_text())
        assert record["kind"] == "store"
        assert record["experiment"] == "fig15"
        assert len(record["records"]) == 4
        for rec in record["records"]:
            assert "detail" not in rec
            rebuilt = api.ScenarioSpec.from_dict(rec["spec"])
            assert rebuilt.resolved() == rebuilt

    def test_bench_json_still_rejected_for_static_experiments(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["table1", "--bench-json", "x.json"])

    def test_strict_rejected_elsewhere(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fig11", "--strict"])

    def test_scale_flag_rejected_for_store_commands(self, tmp_path):
        # --scale would be silently ignored (specs carry their own scale);
        # filing wrong-scale records into a durable store must fail loudly.
        from repro.cli import main

        store = str(tmp_path / "store")
        for argv in (
            ["record", "cluster-hetero", "--scale", "0.02", "--store", store],
            ["replay", "--seed", "1", "--store", store],
            ["run", "--spec", "cluster-hetero", "--full"],
        ):
            with pytest.raises(SystemExit):
                main(argv)

    def test_bench_json_throwaway_store_is_cleaned_up(self, tmp_path, monkeypatch):
        import glob

        from repro.cli import main

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        out_path = tmp_path / "BENCH.json"
        assert main([
            "fig15", "--scale", str(SCALE), "--bench-json", str(out_path),
        ]) == 0
        assert out_path.exists()
        assert glob.glob(str(tmp_path / "tdpipe-store-*")) == []
