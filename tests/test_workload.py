"""Unit tests for the synthetic ShareGPT-like workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    Request,
    ShareGPTSynthesizer,
    build_dataset,
    generate_requests,
    sample_eval_requests,
)


class TestRequest:
    def test_total_len(self):
        r = Request(request_id=0, prompt_len=10, output_len=5)
        assert r.total_len == 15

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            Request(request_id=0, prompt_len=0, output_len=5)
        with pytest.raises(ValueError):
            Request(request_id=0, prompt_len=5, output_len=0)

    def test_identity_semantics(self):
        a = Request(request_id=0, prompt_len=10, output_len=5)
        b = Request(request_id=0, prompt_len=10, output_len=5)
        assert a != b and a == a
        assert len({a, b}) == 2


class TestSynthesizer:
    def test_deterministic(self):
        a = generate_requests(50, seed=3)
        b = generate_requests(50, seed=3)
        assert [(r.prompt_len, r.output_len, r.intent) for r in a] == [
            (r.prompt_len, r.output_len, r.intent) for r in b
        ]
        np.testing.assert_array_equal(a[0].features, b[0].features)

    def test_seeds_differ(self):
        a = generate_requests(50, seed=1)
        b = generate_requests(50, seed=2)
        assert [r.output_len for r in a] != [r.output_len for r in b]

    def test_input_length_filtering(self):
        # The paper filters inputs < 1024 tokens.
        reqs = generate_requests(2000, seed=0)
        lens = [r.prompt_len for r in reqs]
        assert max(lens) <= 1024
        assert min(lens) >= 4

    def test_sharegpt_like_means(self):
        reqs = generate_requests(5000, seed=0)
        mean_in = np.mean([r.prompt_len for r in reqs])
        mean_out = np.mean([r.output_len for r in reqs])
        # ShareGPT-like marginals: a couple hundred tokens each way.
        assert 120 <= mean_in <= 320
        assert 150 <= mean_out <= 400

    def test_output_lengths_heavy_tailed(self):
        reqs = generate_requests(5000, seed=0)
        outs = np.array([r.output_len for r in reqs])
        assert np.percentile(outs, 99) > 4 * np.median(outs)

    def test_intents_correlate_with_length(self):
        reqs = generate_requests(5000, seed=0)
        by_intent: dict[int, list[int]] = {}
        for r in reqs:
            by_intent.setdefault(r.intent, []).append(r.output_len)
        medians = [np.median(v) for _, v in sorted(by_intent.items())]
        assert medians == sorted(medians)  # profiles are ordered by length

    def test_feature_shape(self):
        synth = ShareGPTSynthesizer(seed=0, feature_dim=8)
        reqs = synth.generate(10)
        assert all(r.features.shape == (9,) for r in reqs)  # +1 length feature

    def test_id_offset(self):
        synth = ShareGPTSynthesizer(seed=0)
        reqs = synth.generate(5, id_offset=100)
        assert [r.request_id for r in reqs] == [100, 101, 102, 103, 104]

    def test_invalid_weights(self):
        from repro.workload.sharegpt import IntentProfile

        with pytest.raises(ValueError):
            ShareGPTSynthesizer(
                seed=0, intents=(IntentProfile("x", 0.5, 100, 0.3, 0.0),)
            )

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(0, 200), seed=st.integers(0, 10_000))
    def test_generate_any_size(self, n, seed):
        reqs = ShareGPTSynthesizer(seed=seed).generate(n)
        assert len(reqs) == n
        assert all(1 <= r.output_len <= 2048 for r in reqs)
        assert all(4 <= r.prompt_len <= 1024 for r in reqs)


class TestDataset:
    def test_split_proportions(self):
        splits = build_dataset(total=1000, seed=0)
        assert len(splits.train) == 600
        assert len(splits.val) == 200
        assert len(splits.test) == 200
        assert splits.total == 1000

    def test_split_disjoint_ids(self):
        splits = build_dataset(total=300, seed=0)
        ids = {r.request_id for r in splits.train + splits.val + splits.test}
        assert len(ids) == 300

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            build_dataset(total=100, train_frac=0.9, val_frac=0.2)

    def test_sample_eval_requests(self):
        splits = build_dataset(total=500, seed=0)
        sample = sample_eval_requests(splits, n=50, seed=1)
        assert len(sample) == 50
        assert [r.request_id for r in sample] == list(range(50))  # fresh ids

    def test_sample_with_replacement_when_small(self):
        splits = build_dataset(total=100, seed=0)
        sample = sample_eval_requests(splits, n=50, seed=1)
        assert len(sample) == 50

    def test_sample_deterministic(self):
        splits = build_dataset(total=500, seed=0)
        a = sample_eval_requests(splits, n=50, seed=1)
        b = sample_eval_requests(splits, n=50, seed=1)
        assert [r.output_len for r in a] == [r.output_len for r in b]
