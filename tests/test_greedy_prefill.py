"""Unit + property tests for Approach 1 (Algorithm 1, AI-based greedy prefill)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GreedyPrefillPlanner,
    default_future_points,
    plan_prefill_admission,
)


class TestFuturePoints:
    def test_paper_grid(self):
        pts = default_future_points()
        assert pts[0] == 32
        assert pts[-1] == 1024
        assert all(b - a == 32 for a, b in zip(pts, pts[1:]))

    def test_custom_grid(self):
        assert default_future_points(stride=128, horizon=512) == (128, 256, 384, 512)

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_future_points(stride=0)
        with pytest.raises(ValueError):
            default_future_points(stride=64, horizon=32)


class TestPlanner:
    def test_update_usage_semantics(self):
        # Algorithm 1: usage[p] += (inputLen + p) for p <= predictLen.
        planner = GreedyPrefillPlanner(10_000, future_points=(32, 64, 96))
        planner.update(input_len=100, predicted_len=64)
        usage = planner.usage_map()
        assert usage[32] == 132
        assert usage[64] == 164
        assert usage[96] == 0  # predicted to have finished and freed its KV

    def test_switch_when_capacity_exceeded(self):
        planner = GreedyPrefillPlanner(300, future_points=(32,))
        planner.update(100, 100)  # usage[32] = 132
        assert not planner.should_switch()
        planner.update(200, 100)  # usage[32] = 364 > 300
        assert planner.should_switch()

    def test_short_requests_still_charge_prompt(self):
        # A request predicted to finish before the first future point still
        # occupies memory until then.
        planner = GreedyPrefillPlanner(10_000, future_points=(32, 64))
        planner.update(input_len=500, predicted_len=10)
        assert planner.predicted_peak() > 0

    def test_carry_over_preloads_usage(self):
        planner = GreedyPrefillPlanner(10_000, future_points=(32, 64))
        planner.reset(carry_over=[(400.0, 50.0)])  # ctx 400, 50 steps left
        usage = planner.usage_map()
        assert usage[32] == 432
        assert usage[64] == 0  # predicted complete by then

    def test_reset_clears(self):
        planner = GreedyPrefillPlanner(1000, future_points=(32,))
        planner.update(100, 100)
        planner.reset()
        assert planner.predicted_peak() == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GreedyPrefillPlanner(0)
        with pytest.raises(ValueError):
            GreedyPrefillPlanner(100, future_points=())


class TestAdmissionPlan:
    def test_admits_all_when_room(self):
        plan = plan_prefill_admission([100, 100], [50, 50], kv_capacity_tokens=10_000)
        assert plan.n_requests == 2
        assert plan.admitted_tokens == 200

    def test_stops_at_crossing_inclusive(self):
        # Launch-then-check: the crossing request is included.
        plan = plan_prefill_admission(
            [100] * 10, [100] * 10, kv_capacity_tokens=500, future_points=(32,)
        )
        # usage[32] per request = 132; crosses 500 at the 4th request.
        assert plan.n_requests == 4
        assert plan.predicted_peak > 500

    def test_zero_when_carry_over_saturates(self):
        # Carried-over requests already exceed capacity -> nothing admissible.
        plan = plan_prefill_admission(
            [100], [100], kv_capacity_tokens=300, carry_over=[(400.0, 200.0)]
        )
        assert plan.n_requests == 0
        assert not plan.any_admissible

    def test_empty_waiting(self):
        plan = plan_prefill_admission([], [], kv_capacity_tokens=100)
        assert plan.n_requests == 0

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            plan_prefill_admission([1, 2], [1], kv_capacity_tokens=100)


@settings(max_examples=100, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(4, 1024), st.integers(1, 2048)), min_size=1, max_size=40
    ),
    capacity=st.integers(1_000, 200_000),
)
def test_plan_matches_incremental_planner(data, capacity):
    """Property: the vectorised what-if plan replays Algorithm 1 exactly."""
    lens = [d[0] for d in data]
    preds = [d[1] for d in data]
    plan = plan_prefill_admission(lens, preds, kv_capacity_tokens=capacity)

    planner = GreedyPrefillPlanner(capacity)
    n = 0
    for L, P in zip(lens, preds):
        planner.update(L, P)
        n += 1
        if planner.should_switch():
            break
    assert plan.n_requests == n
    assert plan.admitted_tokens == sum(lens[:n])
    assert plan.predicted_peak == pytest.approx(planner.predicted_peak())
