"""The distributed sweep fabric must be fault-tolerant and loss-free.

The contracts under test (repro.fabric):

* **serial parity** — a fabric sweep on N workers files records whose
  content hashes (and bodies, modulo wall time) are identical to a serial
  ``run_sweep``; the spool is pure coordination, never semantics.
* **lease-expiry requeue** — SIGKILLing a worker mid-task loses nothing:
  the stale lease expires, the coordinator requeues, another worker
  finishes, and the store ends up exactly where the serial run would.
* **bounded retry + quarantine** — transient errors retry with backoff;
  a poison task is quarantined after ``max_attempts`` and surfaces as
  ``SpecExecutionError`` naming its batch index, like the pool backend.
* **memoizing warm path** — re-submitting against a warm store acks every
  task as a provenance-matched hit without executing anything.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro import api
from repro.fabric import (
    FabricCoordinator,
    FabricSpool,
    FabricWorker,
    run_fabric,
    spawn_local_workers,
)

SCALE = 0.02


def tiny_specs(n: int = 2) -> list[api.ScenarioSpec]:
    """The n cheapest distinct engine points (no predictor needed)."""
    systems = ("TP+SB", "PP+SB", "PP+HB", "TP+HB")[:n]
    return [
        api.ScenarioSpec(
            mode="engine",
            workload=api.WorkloadSpec(scale=SCALE, seed=0),
            fleet=api.FleetSpec(node="L20", num_gpus=4, replicas=1),
            engine=api.EngineSpec(system=system, model="13B"),
        )
        for system in systems
    ]


def strip_wall(record: dict) -> dict:
    return {k: v for k, v in record.items() if k != "wall_time_s"}


def canonical(record: dict) -> str:
    return json.dumps(strip_wall(record), sort_keys=True)


def wait_for(predicate, timeout_s: float = 20.0, interval_s: float = 0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("condition not reached within the timeout")


# --------------------------------------------------------------------- #
# Spool primitives
# --------------------------------------------------------------------- #
class TestFabricSpool:
    def submit_one(self, tmp_path) -> tuple[FabricSpool, str]:
        spool = FabricSpool(tmp_path / "spool")
        spec = tiny_specs(1)[0].resolved()
        (task_id,) = spool.submit(
            [spec.to_dict()], names=["t"], overrides=[{"k": 1}]
        )
        return spool, task_id

    def test_submit_load_round_trip(self, tmp_path):
        spool, task_id = self.submit_one(tmp_path)
        task = spool.load_task(task_id)
        assert task.index == 0 and task.name == "t"
        assert task.overrides == {"k": 1}
        assert api.ScenarioSpec.from_dict(task.spec) == tiny_specs(1)[0].resolved()

    def test_task_ids_sort_in_submission_order(self, tmp_path):
        spool = FabricSpool(tmp_path / "spool")
        specs = [s.resolved().to_dict() for s in tiny_specs(3)]
        ids = spool.submit(specs, names=["a", "b", "c"])
        assert spool.task_ids() == ids == sorted(ids)

    def test_claim_is_exclusive(self, tmp_path):
        spool, task_id = self.submit_one(tmp_path)
        assert spool.claim(task_id, "w1") is True
        assert spool.claim(task_id, "w2") is False
        assert spool.lease_info(task_id)["worker"] == "w1"
        spool.release(task_id)
        assert spool.lease_info(task_id) is None
        assert spool.claim(task_id, "w2") is True

    def test_heartbeat_refreshes_lease_age(self, tmp_path):
        spool, task_id = self.submit_one(tmp_path)
        spool.claim(task_id, "w1")
        lease_path = spool._lease_path(task_id)
        old = lease_path.stat().st_mtime - 60
        os.utime(lease_path, (old, old))
        assert spool.lease_age_s(task_id) > 50
        spool.heartbeat(task_id, "w1")
        assert spool.lease_age_s(task_id) < 5
        assert spool.lease_info(task_id)["worker"] == "w1"

    def test_result_status_validated(self, tmp_path):
        spool, task_id = self.submit_one(tmp_path)
        with pytest.raises(ValueError, match="status"):
            spool.write_result(task_id, {"status": "sideways"})
        spool.write_result(task_id, {"status": "done", "ref": "r"})
        assert spool.read_result(task_id)["ref"] == "r"

    def test_requeue_clears_lease_and_result(self, tmp_path):
        spool, task_id = self.submit_one(tmp_path)
        spool.claim(task_id, "w1")
        spool.write_result(task_id, {"status": "error", "error": "x"})
        spool.requeue(task_id)
        assert spool.lease_info(task_id) is None
        assert spool.read_result(task_id) is None
        assert task_id in spool.task_ids()

    def test_quarantine_removes_task_from_circulation(self, tmp_path):
        spool, task_id = self.submit_one(tmp_path)
        spool.quarantine(task_id, "poison", attempts=3)
        assert spool.task_ids() == []
        assert spool.quarantined_ids() == [task_id]
        # The evidence and the task body both survive for the post-mortem.
        assert spool.load_task(task_id).name == "t"
        error = json.loads(
            (spool.quarantine_dir / f"{task_id}.error.json").read_text()
        )
        assert error["error"] == "poison" and error["attempts"] == 3

    def test_priority_claim_order_and_round_trip(self, tmp_path):
        spool = FabricSpool(tmp_path / "spool")
        specs = [s.resolved().to_dict() for s in tiny_specs(3)]
        a, b, c = spool.submit(specs, names=list("abc"), priorities=[0, 7, 7])
        assert spool.task_ids() == [a, b, c]  # listing stays submission order
        assert spool.claim_order() == [b, c, a]  # tiers first, then order
        # Priority survives the trip through the task file (cold cache).
        fresh = FabricSpool(spool.root)
        assert fresh.load_task(b).priority == 7
        assert fresh.task_priority(a) == 0
        assert fresh.claim_order() == [b, c, a]

    def test_whole_batch_priority_and_validation(self, tmp_path):
        spool = FabricSpool(tmp_path / "spool")
        specs = [s.resolved().to_dict() for s in tiny_specs(2)]
        first = spool.submit(specs, names=["a", "b"])
        urgent = spool.submit([specs[0]], names=["u"], priority=3)
        assert spool.claim_order() == urgent + first
        with pytest.raises(ValueError, match="priorities"):
            spool.submit(specs, names=["a", "b"], priorities=[1])

    def test_restore_quarantined_round_trip(self, tmp_path):
        spool, task_id = self.submit_one(tmp_path)
        with pytest.raises(KeyError, match="no quarantined task"):
            spool.restore_quarantined(task_id)  # live tasks must be loud
        spool.quarantine(task_id, "poison", attempts=3)
        spool.restore_quarantined(task_id)
        assert spool.task_ids() == [task_id]
        assert spool.quarantined_ids() == []
        # The error evidence went with it, and the task is claimable again.
        assert not (spool.quarantine_dir / f"{task_id}.error.json").exists()
        assert spool.claim(task_id, "w1") is True

    def test_drain_sentinel(self, tmp_path):
        spool = FabricSpool(tmp_path / "spool")
        assert not spool.drain_requested()
        spool.request_drain()
        assert spool.drain_requested()
        spool.clear_drain()
        assert not spool.drain_requested()

    def test_status_counts_every_state(self, tmp_path):
        spool = FabricSpool(tmp_path / "spool")
        specs = [s.resolved().to_dict() for s in tiny_specs(4)]
        ids = spool.submit(specs, names=list("abcd"))
        spool.claim(ids[0], "w1")
        spool.write_result(ids[1], {"status": "done", "ref": "r"})
        spool.claim(ids[2], "w2")
        stale = spool._lease_path(ids[2])
        old = stale.stat().st_mtime - 120
        os.utime(stale, (old, old))
        snap = spool.status(lease_timeout_s=30.0)
        assert snap["pending"] == 1 and snap["running"] == 1
        assert snap["stale"] == 1 and snap["done"] == 1
        assert snap["tasks"] == 4 and snap["workers"] == {"w1": 1}


# --------------------------------------------------------------------- #
# Serial parity
# --------------------------------------------------------------------- #
class TestFabricParity:
    def test_two_workers_match_serial_store(self, tmp_path):
        sweep = api.SweepSpec(
            name="fabric-parity",
            base=tiny_specs(1)[0],
            axes=(api.SweepAxis("engine.system", ("TP+SB", "PP+SB")),),
        )
        serial_store = api.ArtifactStore(tmp_path / "serial")
        fabric_store = api.ArtifactStore(tmp_path / "fabric")
        serial = api.run_sweep(sweep, store=serial_store)
        fabric = api.run_sweep(
            sweep, store=fabric_store, backend="fabric", jobs=2
        )
        assert sorted(serial_store.refs()) == sorted(fabric_store.refs())
        for a, b in zip(serial, fabric):
            assert a.spec == b.spec
            assert a.result == b.result
            assert a.overrides == b.overrides
        for ref in serial_store.refs():
            assert canonical(serial_store.get_record(ref)) == canonical(
                fabric_store.get_record(ref)
            )

    def test_run_many_fabric_backend(self, tmp_path):
        specs = tiny_specs(2)
        serial = api.run_many(specs, jobs=1)
        fabric = api.run_many(specs, backend="fabric", jobs=2)
        for a, b in zip(serial, fabric):
            assert a.result == b.result
            assert api.content_hash(a.spec) == api.content_hash(b.spec)

    def test_even_one_worker_goes_through_the_spool(self, tmp_path):
        spool = FabricSpool(tmp_path / "spool")
        store = api.ArtifactStore(tmp_path / "store")
        artifacts = run_fabric(
            tiny_specs(1), workers=1, store=store, spool=spool
        )
        assert len(artifacts) == 1 and len(store) == 1
        # The spool kept the full audit trail of the batch.
        (task_id,) = spool.task_ids()
        result = spool.read_result(task_id)
        assert result["status"] == "done"
        assert result["ref"] == api.content_hash(artifacts[0].spec)

    def test_lean_store_rejected(self, tmp_path):
        lean = api.ArtifactStore(tmp_path / "lean", lean=True)
        with pytest.raises(ValueError, match="lean"):
            run_fabric(tiny_specs(1), workers=1, store=lean)
        with pytest.raises(ValueError, match="lean"):
            FabricWorker(FabricSpool(tmp_path / "spool"), lean)

    def test_workers_validated(self, tmp_path):
        for bad in (0, -2, 1.5, True):
            with pytest.raises(ValueError, match="workers"):
                run_fabric(tiny_specs(1), workers=bad)


# --------------------------------------------------------------------- #
# Fault tolerance
# --------------------------------------------------------------------- #
class TestFabricFaultTolerance:
    def test_sigkilled_worker_loses_nothing(self, tmp_path, monkeypatch):
        """The tentpole robustness pin: kill -9 mid-task, finish anyway.

        A victim worker claims a task and stalls inside it (the documented
        ``TDPIPE_FABRIC_TEST_DELAY_S`` seam), then dies to SIGKILL — no
        cleanup, heartbeat stops mid-lease.  The coordinator must expire
        the lease, requeue, and a healthy worker must complete the batch
        with store contents identical to a serial run: no task lost, none
        duplicated.
        """
        specs = tiny_specs(2)
        spool = FabricSpool(tmp_path / "spool")
        store = api.ArtifactStore(tmp_path / "store")
        coordinator = FabricCoordinator(
            spool,
            store,
            lease_timeout_s=1.0,
            max_attempts=3,
            backoff_base_s=0.05,
            poll_interval_s=0.02,
        )
        task_ids = coordinator.submit(specs)

        monkeypatch.setenv("TDPIPE_FABRIC_TEST_DELAY_S", "60")
        (victim,) = spawn_local_workers(
            spool, store, 1, poll_interval_s=0.02, heartbeat_interval_s=0.1
        )
        # The env seam is inherited at fork time; clear it immediately so
        # the healthy worker below executes for real.
        monkeypatch.delenv("TDPIPE_FABRIC_TEST_DELAY_S")
        try:
            wait_for(
                lambda: any(
                    spool.lease_info(tid) is not None for tid in task_ids
                )
            )
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10.0)
            assert not victim.is_alive()
            killed = [
                tid for tid in task_ids if spool.lease_info(tid) is not None
            ]
            assert killed, "victim died without leaving a lease behind"

            (healthy,) = spawn_local_workers(
                spool, store, 1, poll_interval_s=0.02, heartbeat_interval_s=0.1
            )
            try:
                coordinator.wait(task_ids, timeout_s=120.0)
                artifacts = coordinator.collect(task_ids)
            finally:
                spool.request_drain()
                healthy.join(timeout=10.0)
        finally:
            if victim.is_alive():  # pragma: no cover - defensive cleanup
                victim.terminate()

        # The crash was seen and acted on: a lease-expiry requeue happened.
        assert any(
            "lease expired" in entry["reason"] for entry in coordinator.requeues
        )
        # Nothing lost, nothing duplicated, bodies identical to serial runs.
        assert len(artifacts) == len(specs) and len(store) == len(specs)
        serial_store = api.ArtifactStore(tmp_path / "serial")
        for spec in specs:
            serial_store.put(api.run(spec))
        assert sorted(store.refs()) == sorted(serial_store.refs())
        for ref in store.refs():
            assert canonical(store.get_record(ref)) == canonical(
                serial_store.get_record(ref)
            )

    def test_poison_task_quarantined_after_max_attempts(
        self, tmp_path, monkeypatch
    ):
        spool = FabricSpool(tmp_path / "spool")
        monkeypatch.setenv("TDPIPE_FABRIC_TEST_FAIL", "boom")
        with pytest.raises(api.SpecExecutionError) as excinfo:
            run_fabric(
                tiny_specs(1),
                workers=1,
                spool=spool,
                store=api.ArtifactStore(tmp_path / "store"),
                max_attempts=2,
                backoff_base_s=0.01,
                lease_timeout_s=30.0,
            )
        assert excinfo.value.index == 0
        assert "quarantined after 2 attempt(s)" in str(excinfo.value)
        assert "RuntimeError: injected failure" in str(excinfo.value)
        # The poison task left circulation with its evidence attached.
        assert spool.task_ids() == []
        (task_id,) = spool.quarantined_ids()
        error = json.loads(
            (spool.quarantine_dir / f"{task_id}.error.json").read_text()
        )
        assert error["attempts"] == 2

    def test_transient_error_retries_with_backoff(self, tmp_path):
        """An error ack is retried after the backoff window, then succeeds."""
        spool = FabricSpool(tmp_path / "spool")
        store = api.ArtifactStore(tmp_path / "store")
        coordinator = FabricCoordinator(
            spool, store, max_attempts=3, backoff_base_s=0.05
        )
        (task_id,) = coordinator.submit(tiny_specs(1))
        spool.write_result(task_id, {"status": "error", "error": "flaky once"})

        assert coordinator._poll_one(task_id) is False
        assert coordinator.requeues[-1]["reason"] == "flaky once"
        # Inside the backoff window the error ack stays put (not claimable).
        assert coordinator._poll_one(task_id) is False
        assert spool.read_result(task_id) is not None
        time.sleep(0.06)
        assert coordinator._poll_one(task_id) is False  # requeued now
        assert spool.read_result(task_id) is None

        worker = FabricWorker(
            spool, store, worker_id="inline", poll_interval_s=0.01
        )
        stats = worker.run(max_tasks=1, idle_exit_s=1.0)
        assert stats == {"claimed": 1, "executed": 1, "reused": 0, "failed": 0}
        assert coordinator._poll_one(task_id) is True
        (artifact,) = coordinator.collect([task_id])
        assert artifact.result is not None and not artifact.reused

    def test_oom_is_terminal_and_collects_like_run_many(self, tmp_path):
        oversized = api.ScenarioSpec(
            mode="engine",
            workload=api.WorkloadSpec(scale=SCALE, seed=0),
            fleet=api.FleetSpec(node="L20", num_gpus=1, replicas=1),
            engine=api.EngineSpec(system="TP+SB", model="32B"),
        )
        spool = FabricSpool(tmp_path / "spool")
        store = api.ArtifactStore(tmp_path / "store")
        coordinator = FabricCoordinator(spool, store)
        task_ids = coordinator.submit([oversized])
        worker = FabricWorker(spool, store, worker_id="inline")
        worker.run(max_tasks=1, idle_exit_s=1.0)
        coordinator.wait(task_ids, timeout_s=10.0)
        assert coordinator.collect(task_ids, oom_to_none=True) == [None]
        assert coordinator.requeues == []  # OOM is never retried
        from repro.kvcache.capacity import OutOfMemoryError

        with pytest.raises(OutOfMemoryError):
            coordinator.collect(task_ids, oom_to_none=False)


# --------------------------------------------------------------------- #
# The memoizing warm path
# --------------------------------------------------------------------- #
class TestFabricReuse:
    def test_warm_resubmit_hits_everything(self, tmp_path):
        specs = tiny_specs(2)
        store = api.ArtifactStore(tmp_path / "store")
        cold = run_fabric(specs, workers=2, store=store)
        assert [a.reused for a in cold] == [False, False]
        cold_records = {
            ref: canonical(store.get_record(ref)) for ref in store.refs()
        }

        warm = run_fabric(specs, workers=2, store=store, reuse=True)
        assert [a.reused for a in warm] == [True, True]
        report = api.ReuseReport.from_artifacts(warm)
        assert (report.hits, report.executed) == (2, 0)
        assert report.summary() == "reuse: 2/2 hit, 0 executed"
        # The warm pass executed nothing and rewrote nothing.
        assert {
            ref: canonical(store.get_record(ref)) for ref in store.refs()
        } == cold_records
        for a, b in zip(cold, warm):
            assert a.result == b.result and a.overrides == b.overrides

    def test_fingerprint_walk_once_per_worker(self, tmp_path, monkeypatch):
        """One provenance walk serves every reuse check a worker makes."""
        import repro.api.provenance as provenance

        specs = tiny_specs(2)
        store = api.ArtifactStore(tmp_path / "store")
        run_fabric(specs, workers=1, store=store)  # warm the store

        real = provenance.provenance_stamp
        calls = []
        monkeypatch.setattr(
            provenance,
            "provenance_stamp",
            lambda *a, **kw: calls.append(1) or real(*a, **kw),
        )
        spool = FabricSpool(tmp_path / "spool")
        coordinator = FabricCoordinator(spool, store, backoff_base_s=0.01)
        task_ids = coordinator.submit(specs, reuse=True)
        worker = FabricWorker(spool, store, worker_id="inline")
        stats = worker.run(max_tasks=2, idle_exit_s=1.0)
        assert stats["reused"] == 2
        assert len(calls) == 1  # lazily computed once, then cached
        coordinator.wait(task_ids, timeout_s=10.0)
        assert [a.reused for a in coordinator.collect(task_ids)] == [True, True]

    def test_high_priority_task_claimed_first(self, tmp_path):
        spool = FabricSpool(tmp_path / "spool")
        store = api.ArtifactStore(tmp_path / "store")
        coordinator = FabricCoordinator(spool, store)
        low, high = coordinator.submit(tiny_specs(2), priorities=[0, 5])
        worker = FabricWorker(spool, store, worker_id="inline")
        worker.run(max_tasks=1, idle_exit_s=1.0)
        assert spool.read_result(high) is not None  # jumped the queue
        assert spool.read_result(low) is None

    def test_provenance_mismatch_misses(self, tmp_path, monkeypatch):
        store = api.ArtifactStore(tmp_path / "store")
        run_fabric(tiny_specs(1), workers=1, store=store)
        monkeypatch.setenv("TDPIPE_CODE_FINGERPRINT", "different-code")
        (artifact,) = run_fabric(
            tiny_specs(1), workers=1, store=store, reuse=True
        )
        assert not artifact.reused  # stale-code record must not be served


# --------------------------------------------------------------------- #
# CLI verbs
# --------------------------------------------------------------------- #
class TestFabricCli:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def spec_file(self, tmp_path) -> str:
        path = tmp_path / "spec.json"
        path.write_text(tiny_specs(1)[0].to_json())
        return str(path)

    def test_submit_worker_status_drain(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        rc = self.run_cli(
            ["fabric", "submit", "--spec", self.spec_file(tmp_path),
             "--spool", spool]
        )
        assert rc == 0
        assert "submitted 1 task(s)" in capsys.readouterr().out
        rc = self.run_cli(["fabric", "status", "--spool", spool])
        assert rc == 0 and "pending      1" in capsys.readouterr().out
        rc = self.run_cli(
            ["fabric", "worker", "--spool", spool, "--max-tasks", "1",
             "--worker-id", "cli-test"]
        )
        out = capsys.readouterr().out
        assert rc == 0 and "1 claimed, 1 executed" in out
        rc = self.run_cli(["fabric", "status", "--spool", spool])
        assert rc == 0 and "done         1" in capsys.readouterr().out
        rc = self.run_cli(["fabric", "drain", "--spool", spool])
        assert rc == 0
        assert FabricSpool(spool).drain_requested()
        # Records landed in the spool-default store.
        assert len(api.ArtifactStore(os.path.join(spool, "store"))) == 1

    def test_submit_wait_completes_with_external_worker(self, tmp_path, capsys):
        spool_dir = tmp_path / "spool"
        spool = FabricSpool(spool_dir)
        store = api.ArtifactStore(spool_dir / "store")
        (worker,) = spawn_local_workers(
            spool, store, 1, poll_interval_s=0.02, heartbeat_interval_s=0.1
        )
        try:
            rc = self.run_cli(
                ["fabric", "submit", "--spec", self.spec_file(tmp_path),
                 "--spool", str(spool_dir), "--wait"]
            )
        finally:
            spool.request_drain()
            worker.join(timeout=10.0)
        assert rc == 0
        assert "throughput" in capsys.readouterr().out

    def test_requeue_round_trip(self, tmp_path, capsys, monkeypatch):
        """quarantine -> `fabric requeue` -> worker completes the task."""
        spool_dir = str(tmp_path / "spool")
        spool = FabricSpool(spool_dir)
        store = api.ArtifactStore(os.path.join(spool_dir, "store"))
        monkeypatch.setenv("TDPIPE_FABRIC_TEST_FAIL", "poison")
        with pytest.raises(api.SpecExecutionError):
            run_fabric(
                tiny_specs(1),
                workers=1,
                spool=spool,
                store=store,
                max_attempts=1,
                backoff_base_s=0.01,
            )
        monkeypatch.delenv("TDPIPE_FABRIC_TEST_FAIL")
        (task_id,) = spool.quarantined_ids()

        with pytest.raises(SystemExit, match="not quarantined"):
            self.run_cli(["fabric", "requeue", "nope", "--spool", spool_dir])
        rc = self.run_cli(["fabric", "requeue", task_id, "--spool", spool_dir])
        assert rc == 0 and "requeued" in capsys.readouterr().out
        assert spool.quarantined_ids() == []
        assert spool.task_ids() == [task_id]

        spool.clear_drain()  # run_fabric's cleanup left the drain sentinel
        rc = self.run_cli(
            ["fabric", "worker", "--spool", spool_dir, "--max-tasks", "1",
             "--worker-id", "redo"]
        )
        assert rc == 0 and "1 executed" in capsys.readouterr().out
        assert spool.read_result(task_id)["status"] == "done"

    def test_requeue_needs_a_task_id(self, tmp_path):
        with pytest.raises(SystemExit, match="usage"):
            self.run_cli(["fabric", "requeue", "--spool", str(tmp_path)])

    def test_fabric_flags_gated(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            self.run_cli(["fig11", "--spool", str(tmp_path)])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            self.run_cli(["fabric", "bogus-verb", "--spool", str(tmp_path)])

    def test_missing_spool_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--spool"):
            self.run_cli(["fabric", "status"])
