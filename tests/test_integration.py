"""Cross-system integration tests: invariants every engine must satisfy."""

import pytest

from repro.baselines import (
    PPHybridEngine,
    PPSeparateEngine,
    TPHybridEngine,
    TPSeparateEngine,
)
from repro.core import TDPipeEngine
from repro.hardware import make_node
from repro.models import LLAMA2_13B, QWEN25_32B
from repro.predictor import OraclePredictor
from repro.workload import generate_requests

ALL_SYSTEMS = ["TP+SB", "TP+HB", "PP+SB", "PP+HB", "TD-Pipe"]


def build(system, node, model):
    if system == "TP+SB":
        return TPSeparateEngine(node, model)
    if system == "TP+HB":
        return TPHybridEngine(node, model)
    if system == "PP+SB":
        return PPSeparateEngine(node, model)
    if system == "PP+HB":
        return PPHybridEngine(node, model)
    return TDPipeEngine(node, model, OraclePredictor())


@pytest.mark.parametrize("system", ALL_SYSTEMS)
class TestUniversalInvariants:
    """Every system, same workload, same substrate: shared guarantees."""

    def test_token_conservation(self, system):
        node = make_node("L20", 4)
        reqs = generate_requests(120, seed=21)
        res = build(system, node, QWEN25_32B).run(reqs)
        assert res.completed_requests == 120
        assert res.total_prompt_tokens == sum(r.prompt_len for r in reqs)
        assert res.total_output_tokens == sum(r.output_len for r in reqs)

    def test_per_request_final_state(self, system):
        node = make_node("L20", 4)
        reqs = generate_requests(60, seed=22)
        engine = build(system, node, QWEN25_32B)
        engine.run(reqs)
        for s in engine.finished:
            assert s.done
            assert s.generated == s.request.output_len
            assert s.finish_time is not None

    def test_memory_clean_at_exit(self, system):
        node = make_node("L20", 4)
        engine = build(system, node, QWEN25_32B)
        engine.run(generate_requests(60, seed=23))
        assert engine.block_manager.num_requests == 0
        assert engine.block_manager.total_tokens == 0

    def test_trace_within_makespan(self, system):
        node = make_node("L20", 4)
        engine = build(system, node, QWEN25_32B)
        res = engine.run(generate_requests(60, seed=24))
        for tl in res.trace.timelines:
            assert tl.end_time <= res.makespan + 1e-9

    def test_memory_pressure_survival(self, system):
        # 13B on 2x L20: small capacity, forced recompute/admission control.
        node = make_node("L20", 2)
        engine = build(system, node, LLAMA2_13B)
        res = engine.run(generate_requests(300, seed=25))
        assert res.completed_requests == 300


class TestCrossSystemRelations:
    @pytest.fixture(scope="class")
    def results(self):
        node = make_node("L20", 4)
        reqs = generate_requests(400, seed=26)
        out = {}
        for system in ALL_SYSTEMS:
            out[system] = build(system, node, QWEN25_32B).run(list(reqs))
        return out

    def test_same_tokens_all_systems(self, results):
        totals = {r.total_tokens for r in results.values()}
        assert len(totals) == 1, "every system must process the same workload"

    def test_tdpipe_highest_utilization(self, results):
        td = results["TD-Pipe"].mean_utilization
        for name in ("PP+SB", "PP+HB"):
            assert td > results[name].mean_utilization

    def test_tdpipe_beats_pp_baselines(self, results):
        td = results["TD-Pipe"].throughput
        assert td > results["PP+SB"].throughput

    def test_pp_systems_have_multi_stage_traces(self, results):
        for name in ("PP+SB", "PP+HB", "TD-Pipe"):
            trace = results[name].trace
            busy = [t.busy_time for t in trace.timelines]
            assert all(b > 0 for b in busy), f"{name}: some stage never worked"
