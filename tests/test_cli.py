"""Tests for the command-line entry point."""

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_experiment_list_complete(self):
        # One target per paper artifact plus "all".
        for name in ("table1", "table2", "fig02", "fig06", "fig11", "fig12",
                      "fig13", "fig14", "fig15", "fig16", "all"):
            assert name in EXPERIMENTS

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "L20" in out and "A100" in out

    def test_fig06(self, capsys):
        assert main(["fig06"]) == 0
        out = capsys.readouterr().out
        assert "comm%" in out

    def test_fig14_small_scale(self, capsys):
        assert main(["fig14", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "bin accuracy" in out

    def test_cluster_single_configuration(self, capsys):
        assert main(["cluster", "--replicas", "2", "--router", "round-robin",
                     "--rate", "4", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "round-robin" in out and "goodput" in out

    def test_cluster_in_experiment_list(self):
        assert "cluster" in EXPERIMENTS
        assert "cluster-hetero" in EXPERIMENTS
        assert "cluster-autoscale" in EXPERIMENTS
        assert "run" in EXPERIMENTS

    def test_cluster_fleet_autoscale_bench_json(self, capsys, tmp_path):
        path = tmp_path / "BENCH_cluster.json"
        assert main([
            "cluster", "--fleet", "l20:1,a100:1", "--router", "jsq",
            "--rate", "6", "--scale", "0.02",
            "--slo-mix", "interactive:0.7,batch:0.3",
            "--autoscale", "--bench-json", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet: 4xL20+4xA100" in out and "fleet timeline" in out
        record = json.loads(path.read_text())
        assert record["fleet"] == ["4xL20", "4xA100"]
        assert record["goodput_rps"] > 0 and record["wall_time_s"] > 0
        assert set(record["slo_attainment"]) <= {"interactive", "batch"}
        # The record embeds the resolved scenario spec for provenance.
        from repro import api

        assert record["schema_version"] == api.SCHEMA_VERSION
        spec = api.ScenarioSpec.from_dict(record["spec"])
        assert spec.fleet.fleet == "l20:1,a100:1"
        assert spec.control.autoscale and spec.mode == "cluster"

    def test_cluster_flags_rejected_elsewhere(self):
        with pytest.raises(SystemExit):
            main(["fig11", "--fleet", "l20:2"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_scale_flag_parsed(self, capsys):
        assert main(["table2", "--scale", "0.5", "--seed", "3"]) == 0

    def test_workload_preview_preset(self, capsys):
        assert "cluster-regimes" in EXPERIMENTS
        assert main(["workload", "preview", "diurnal"]) == 0
        out = capsys.readouterr().out
        assert "regime diurnal: 4 segments" in out
        assert "morning-ramp" in out and "expected" in out

    def test_workload_preview_spec_file(self, capsys):
        assert main(
            ["workload", "preview", "examples/scenarios/regime_diurnal.json"]
        ) == 0
        out = capsys.readouterr().out
        assert "night" in out and "evening-drain" in out

    def test_workload_preview_rejects_scale(self):
        with pytest.raises(SystemExit):
            main(["workload", "preview", "diurnal", "--scale", "0.05"])

    def test_workload_preview_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["workload", "preview", "nosuch-regime"])
