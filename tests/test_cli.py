"""Tests for the command-line entry point."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_experiment_list_complete(self):
        # One target per paper artifact plus "all".
        for name in ("table1", "table2", "fig02", "fig06", "fig11", "fig12",
                      "fig13", "fig14", "fig15", "fig16", "all"):
            assert name in EXPERIMENTS

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "L20" in out and "A100" in out

    def test_fig06(self, capsys):
        assert main(["fig06"]) == 0
        out = capsys.readouterr().out
        assert "comm%" in out

    def test_fig14_small_scale(self, capsys):
        assert main(["fig14", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "bin accuracy" in out

    def test_cluster_single_configuration(self, capsys):
        assert main(["cluster", "--replicas", "2", "--router", "round-robin",
                     "--rate", "4", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "round-robin" in out and "goodput" in out

    def test_cluster_in_experiment_list(self):
        assert "cluster" in EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_scale_flag_parsed(self, capsys):
        assert main(["table2", "--scale", "0.5", "--seed", "3"]) == 0
