"""Parallel spec execution must be indistinguishable from serial execution.

The process-pool executor (:mod:`repro.api.parallel`) promises byte-level
equivalence: the same ``RunResult``s, the same content hashes, the same
store index, and records that replay ``--strict`` — only wall time may
differ.  These tests pin that contract with real (tiny) workloads.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro import api
from repro.api.parallel import resolve_jobs

SCALE = 0.02


def small_sweep() -> api.SweepSpec:
    """A cheap four-point grid (baseline systems need no predictor)."""
    return api.SweepSpec(
        name="parallel-test",
        base=api.ScenarioSpec(
            mode="engine",
            workload=api.WorkloadSpec(scale=SCALE, seed=0),
            fleet=api.FleetSpec(node="L20", num_gpus=4, replicas=1),
            engine=api.EngineSpec(system="TP+SB", model="13B"),
        ),
        axes=(
            api.SweepAxis("engine.system", ("TP+SB", "PP+SB", "PP+HB", "TP+HB")),
        ),
    )


def strip_wall(record: dict) -> dict:
    return {k: v for k, v in record.items() if k != "wall_time_s"}


class TestResolveJobs:
    def test_serial_spellings(self):
        assert resolve_jobs(None) == resolve_jobs(0) == resolve_jobs(1) == 1

    def test_positive_passthrough(self):
        assert resolve_jobs(4) == 4

    def test_negative_means_all_cores(self):
        assert resolve_jobs(-1) >= 1

    def test_other_negatives_rejected(self):
        for bad in (-2, -17):
            with pytest.raises(ValueError, match="positive integer"):
                resolve_jobs(bad)

    def test_non_integers_rejected(self):
        for bad in (1.5, "4", True, False, [2]):
            with pytest.raises(ValueError, match="must be an integer"):
                resolve_jobs(bad)


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        specs = [point.spec for point in small_sweep().expand()][:1]
        with pytest.raises(ValueError, match="unknown backend"):
            api.run_many(specs, backend="carrier-pigeon")
        with pytest.raises(ValueError, match="unknown backend"):
            api.run_sweep(small_sweep(), backend="carrier-pigeon")

    def test_serial_backend_forces_one_worker(self):
        specs = [point.spec for point in small_sweep().expand()][:2]
        serial = api.run_many(specs, backend="serial", jobs=8)
        baseline = api.run_many(specs, jobs=1)
        for a, b in zip(serial, baseline):
            assert a.result == b.result

    def test_fabric_opts_need_fabric_backend(self):
        specs = [point.spec for point in small_sweep().expand()][:1]
        with pytest.raises(ValueError, match="fabric_opts"):
            api.run_many(specs, fabric_opts={"lease_timeout_s": 5.0})


class TestRunManyEquivalence:
    def test_parallel_matches_serial(self):
        specs = [point.spec for point in small_sweep().expand()]
        serial = api.run_many(specs, jobs=1)
        parallel = api.run_many(specs, jobs=4)
        assert len(serial) == len(parallel) == len(specs)
        for a, b in zip(serial, parallel):
            assert a.spec == b.spec
            assert a.result == b.result  # full equality, traces included
            assert api.content_hash(a.spec) == api.content_hash(b.spec)

    def test_canonical_records_byte_identical(self):
        specs = [point.spec for point in small_sweep().expand()][:2]
        serial = api.run_many(specs, jobs=1)
        parallel = api.run_many(specs, jobs=2)
        for a, b in zip(serial, parallel):
            assert json.dumps(strip_wall(a.to_record()), sort_keys=True) == (
                json.dumps(strip_wall(b.to_record()), sort_keys=True)
            )

    def test_oom_layouts_become_none(self):
        ok = api.ScenarioSpec(
            mode="engine",
            workload=api.WorkloadSpec(scale=SCALE, seed=0),
            fleet=api.FleetSpec(node="L20", num_gpus=4, replicas=1),
            engine=api.EngineSpec(system="TP+SB", model="13B"),
        )
        # 32B never fits on one L20 (fig11's grey cell).
        oom = ok.with_overrides(
            {"fleet.num_gpus": 1, "engine.model": "32B"}
        )
        for jobs in (1, 2):
            artifacts = api.run_many([ok, oom], jobs=jobs, oom_to_none=True)
            assert artifacts[0] is not None and artifacts[1] is None

    def test_oom_raises_without_tolerance(self):
        from repro.kvcache.capacity import OutOfMemoryError

        oom = api.ScenarioSpec(
            mode="engine",
            workload=api.WorkloadSpec(scale=SCALE, seed=0),
            fleet=api.FleetSpec(node="L20", num_gpus=1, replicas=1),
            engine=api.EngineSpec(system="TP+SB", model="32B"),
        )
        with pytest.raises(OutOfMemoryError):
            api.run_many([oom], jobs=1)


class TestRunSweepJobs:
    def test_same_results_hashes_and_index(self, tmp_path):
        sweep = small_sweep()
        store_serial = api.ArtifactStore(tmp_path / "serial")
        store_parallel = api.ArtifactStore(tmp_path / "parallel")
        serial = api.run_sweep(sweep, store=store_serial, jobs=1)
        parallel = api.run_sweep(sweep, store=store_parallel, jobs=4)

        for a, b in zip(serial, parallel):
            assert a.result == b.result
            assert a.overrides == b.overrides
        assert store_serial.refs() == store_parallel.refs()

        index_a = json.load(open(store_serial.index_path))
        index_b = json.load(open(store_parallel.index_path))
        for entries in (index_a["entries"], index_b["entries"]):
            for entry in entries.values():
                entry.pop("created_at")  # the only legitimately varying field
        assert index_a == index_b

        # The filed records differ only in wall_time_s.
        for ref in store_serial.refs():
            rec_a = strip_wall(store_serial.get_record(ref))
            rec_b = strip_wall(store_parallel.get_record(ref))
            assert rec_a == rec_b

    def test_live_object_overrides_require_serial(self):
        from repro.predictor import OraclePredictor

        sweep = small_sweep()
        with pytest.raises(ValueError, match="live-object overrides"):
            api.run_sweep(sweep, jobs=2, predictor=OraclePredictor())

    def test_serial_kwargs_path_still_works(self):
        from repro.predictor import OraclePredictor

        artifacts = api.run_sweep(small_sweep(), predictor=OraclePredictor())
        assert len(artifacts) == 4
        assert all(a.opaque_overrides == ("predictor",) for a in artifacts)


class TestParallelReplay:
    def test_parallel_recorded_store_replays_strict(self, tmp_path):
        store = api.ArtifactStore(tmp_path / "store")
        api.run_sweep(small_sweep(), store=store, jobs=4)
        reports = api.replay_all(store, strict=True, jobs=4)
        assert len(reports) == 4
        assert all(report.ok for report in reports)

    def test_explicit_refs_replay_in_parallel(self, tmp_path):
        store = api.ArtifactStore(tmp_path / "store")
        api.run_sweep(small_sweep(), store=store, jobs=1)
        chosen = store.refs()[:2]
        # Prefixes resolve, order is preserved, and the pool path is used.
        reports = api.replay_all(
            store, refs=[ref[:12] for ref in chosen], strict=True, jobs=2
        )
        assert [r.ref for r in reports] == chosen
        assert all(r.ok for r in reports)

    def test_parallel_replay_matches_serial_reports(self, tmp_path):
        store = api.ArtifactStore(tmp_path / "store")
        api.run_sweep(small_sweep(), store=store, jobs=1)
        serial = api.replay_all(store, strict=True, jobs=1)
        parallel = api.replay_all(store, strict=True, jobs=2)
        assert [r.ref for r in serial] == [r.ref for r in parallel]
        assert [strip_wall(r.fresh) for r in serial] == [
            strip_wall(r.fresh) for r in parallel
        ]
        assert all(r.ok for r in parallel)


class TestCompactStores:
    def test_gzip_records_round_trip(self, tmp_path):
        spec = small_sweep().expand()[0].spec
        plain = api.ArtifactStore(tmp_path / "plain")
        packed = api.ArtifactStore(tmp_path / "packed", compress=True)
        artifact = api.run(spec)
        ref_plain = plain.put(artifact)
        ref_packed = packed.put(artifact)
        assert ref_plain == ref_packed
        assert (packed.records_dir / f"{ref_packed}.json.gz").exists()
        assert not (packed.records_dir / f"{ref_packed}.json").exists()
        # Same record through either store; reconstruction equality holds.
        assert plain.get_record(ref_plain) == packed.get_record(ref_packed)
        assert packed.get(ref_packed) == artifact
        # A compressed record is materially smaller than the plain one.
        plain_size = (plain.records_dir / f"{ref_plain}.json").stat().st_size
        gz_size = (packed.records_dir / f"{ref_packed}.json.gz").stat().st_size
        assert gz_size < plain_size / 2

    def test_gzip_bytes_deterministic(self, tmp_path):
        spec = small_sweep().expand()[0].spec
        artifact = api.run(spec)
        blobs = []
        for name in ("a", "b"):
            store = api.ArtifactStore(tmp_path / name, compress=True)
            ref = store.put(artifact)
            blobs.append((store.records_dir / f"{ref}.json.gz").read_bytes())
        assert blobs[0] == blobs[1]

    def test_plain_store_reads_gzip_records(self, tmp_path):
        spec = small_sweep().expand()[0].spec
        store = api.ArtifactStore(tmp_path / "store", compress=True)
        ref = store.put(api.run(spec))
        reader = api.ArtifactStore(tmp_path / "store")  # default settings
        assert reader.get_record(ref)["kind"] == "engine"

    def test_recompress_removes_stale_sibling(self, tmp_path):
        spec = small_sweep().expand()[0].spec
        artifact = api.run(spec)
        plain = api.ArtifactStore(tmp_path / "store")
        ref = plain.put(artifact)
        packed = api.ArtifactStore(tmp_path / "store", compress=True)
        assert packed.put(artifact) == ref
        assert not (plain.records_dir / f"{ref}.json").exists()
        with gzip.open(plain.records_dir / f"{ref}.json.gz", "rt") as fh:
            assert json.load(fh)["kind"] == "engine"

    def test_reads_prefer_index_named_file_over_stale_sibling(self, tmp_path):
        spec = small_sweep().expand()[0].spec
        store = api.ArtifactStore(tmp_path / "store", compress=True)
        ref = store.put(api.run(spec))
        # Simulate a put interrupted after writing the .json.gz but before
        # unlinking the pre-existing plain sibling: the index names the
        # completed write, so reads must not fall back to the stale file.
        (store.records_dir / f"{ref}.json").write_text('{"kind": "stale"}\n')
        assert store.get_record(ref)["kind"] == "engine"

    def test_lean_records_replay_but_do_not_reconstruct(self, tmp_path):
        spec = small_sweep().expand()[0].spec
        store = api.ArtifactStore(tmp_path / "store", lean=True)
        ref = store.put(api.run(spec))
        record = store.get_record(ref)
        assert "detail" not in record
        assert "spec" in record and "throughput_tps" in record
        report = api.replay(ref, store, strict=True)
        assert report.ok
        with pytest.raises(ValueError, match="lean"):
            store.get(ref)
