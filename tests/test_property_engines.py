"""Engine-level property tests: random workloads, universal invariants.

Hypothesis drives request counts, length mixes and seeds through every
system; whatever the mix, each engine must complete all requests, conserve
tokens, release all KV memory, and keep every GPU timeline overlap-free
(Timeline.record raises on overlap, so completion itself certifies that).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    PPHybridEngine,
    PPSeparateEngine,
    TPHybridEngine,
    TPSeparateEngine,
)
from repro.core import TDPipeEngine
from repro.hardware import make_node
from repro.models import LLAMA2_13B
from repro.predictor import OraclePredictor
from repro.workload import Request

ENGINES = [TPSeparateEngine, TPHybridEngine, PPSeparateEngine, PPHybridEngine]

workloads = st.lists(
    st.tuples(st.integers(4, 800), st.integers(1, 400)),
    min_size=1,
    max_size=25,
)


def build_requests(pairs):
    return [
        Request(request_id=i, prompt_len=p, output_len=o)
        for i, (p, o) in enumerate(pairs)
    ]


@settings(max_examples=12, deadline=None)
@given(pairs=workloads, engine_idx=st.integers(0, len(ENGINES) - 1))
def test_baseline_engines_random_workloads(pairs, engine_idx):
    node = make_node("L20", 2)
    engine = ENGINES[engine_idx](node, LLAMA2_13B)
    reqs = build_requests(pairs)
    result = engine.run(reqs)
    assert result.completed_requests == len(reqs)
    assert result.total_output_tokens == sum(o for _, o in pairs)
    assert engine.block_manager.num_requests == 0
    assert result.makespan > 0


@settings(max_examples=12, deadline=None)
@given(pairs=workloads, stealing=st.booleans())
def test_tdpipe_random_workloads(pairs, stealing):
    node = make_node("L20", 2)
    engine = TDPipeEngine(node, LLAMA2_13B, OraclePredictor(), work_stealing=stealing)
    reqs = build_requests(pairs)
    result = engine.run(reqs)
    assert result.completed_requests == len(reqs)
    assert engine.block_manager.num_requests == 0
    # Phases alternate strictly.
    phases = [s.phase for s in result.phase_spans]
    assert all(a != b for a, b in zip(phases, phases[1:]))


@settings(max_examples=8, deadline=None)
@given(
    pairs=workloads,
    rate=st.floats(0.5, 50.0),
    seed=st.integers(0, 100),
)
def test_tdpipe_online_random_streams(pairs, rate, seed):
    from repro.workload import with_poisson_arrivals

    node = make_node("L20", 2)
    engine = TDPipeEngine(node, LLAMA2_13B, OraclePredictor())
    reqs = with_poisson_arrivals(build_requests(pairs), rate_rps=rate, seed=seed)
    result = engine.run(reqs)
    assert result.completed_requests == len(reqs)
    assert result.latency is not None and result.latency.count == len(reqs)
    # Nothing finishes before it arrives.
    for s in engine.finished:
        assert s.finish_time >= s.request.arrival_time
