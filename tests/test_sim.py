"""Unit tests for the discrete-event simulation kernel and traces."""

import numpy as np
import pytest

from repro.sim import SimulationError, Simulator, Timeline, TraceRecorder


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_insertion_order(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(1.0, lambda: times.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 2.0]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        ev.cancel()
        sim.run()
        assert fired == []
        assert sim.pending == 0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 2]

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestTimeline:
    def test_busy_time(self):
        t = Timeline(0)
        t.record(0.0, 1.0)
        t.record(2.0, 3.5)
        assert t.busy_time == pytest.approx(2.5)
        assert t.end_time == 3.5

    def test_overlap_rejected(self):
        t = Timeline(0)
        t.record(0.0, 2.0)
        with pytest.raises(ValueError):
            t.record(1.0, 3.0)

    def test_backwards_interval_rejected(self):
        t = Timeline(0)
        with pytest.raises(ValueError):
            t.record(2.0, 1.0)

    def test_busy_between_partial_overlap(self):
        t = Timeline(0)
        t.record(0.0, 4.0)
        assert t.busy_between(1.0, 3.0) == pytest.approx(2.0)
        assert t.busy_between(3.5, 10.0) == pytest.approx(0.5)
        assert t.busy_between(5.0, 6.0) == 0.0

    def test_utilization(self):
        t = Timeline(0)
        t.record(0.0, 1.0)
        t.record(3.0, 4.0)
        assert t.utilization(0.0, 4.0) == pytest.approx(0.5)

    def test_utilization_series(self):
        t = Timeline(0)
        t.record(0.0, 1.0)
        t.record(2.0, 4.0)
        centres, util = t.utilization_series(window=1.0)
        assert len(centres) == 4
        np.testing.assert_allclose(util, [1.0, 0.0, 1.0, 1.0])

    def test_empty_timeline(self):
        t = Timeline(0)
        assert t.busy_time == 0.0
        assert t.utilization() == 0.0


class TestTraceRecorder:
    def test_makespan_across_gpus(self):
        tr = TraceRecorder(2)
        tr[0].record(0.0, 1.0)
        tr[1].record(0.0, 3.0)
        assert tr.makespan == 3.0

    def test_mean_utilization_and_bubbles(self):
        tr = TraceRecorder(2)
        tr[0].record(0.0, 4.0)  # fully busy
        tr[1].record(0.0, 2.0)  # half busy
        assert tr.mean_utilization(0.0, 4.0) == pytest.approx(0.75)
        assert tr.bubble_ratio(0.0, 4.0) == pytest.approx(0.25)

    def test_utilization_series_shape(self):
        tr = TraceRecorder(3)
        for i in range(3):
            tr[i].record(0.0, 10.0)
        centres, util = tr.utilization_series(window=2.0)
        assert len(centres) == len(util) == 5
        np.testing.assert_allclose(util, 1.0)
