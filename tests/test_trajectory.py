"""Unit tests for the cross-run perf-trajectory gate (repro.perf.trajectory).

The CI contract under test: an injected regression beyond tolerance FAILS
the gate, anything within tolerance (or an improvement) passes, expected
slowdowns can be waived but stay visible, and schema drift (a metric
missing on either side) degrades to SKIP instead of a false alarm.
"""

from __future__ import annotations

import json

import pytest

from repro.perf.trajectory import (
    DEFAULT_CLUSTER_TOLERANCES,
    DEFAULT_TOLERANCES,
    compare_perf,
    load_baseline,
    parse_waivers,
)


def perf_record(**overrides):
    """A minimal but complete BENCH_perf.json-shaped record."""
    record = {
        "kind": "perf",
        "kernel": {"events_per_sec": 2_000_000.0},
        "costmodel": {
            "decode_cold_calls_per_sec": 200_000.0,
            "decode_warm_calls_per_sec": 3_500_000.0,
            "prefill_cold_calls_per_sec": 250_000.0,
            "prefill_warm_calls_per_sec": 3_000_000.0,
        },
        "vectorized": {"grid_points_per_sec": 8_000_000.0},
        "regime": {"arrivals_per_sec": 180_000.0},
        "cluster_scale": {
            "routing_decisions_per_sec_128": 50_000.0,
            "routing_speedup_128": 50.0,
            "cluster_events_per_sec_128": 30_000.0,
        },
        "cluster": {"requests_per_sec_wall": 900.0},
        "grid": {
            "serial_points_per_sec": 1.5,
            "parallel_points_per_sec": 5.0,
        },
    }
    for path, value in overrides.items():
        section, _, key = path.partition(".")
        record[section][key] = value
    return record


def test_identical_records_pass():
    report = compare_perf(perf_record(), perf_record())
    assert report.ok
    assert not report.failures
    assert {c.metric for c in report.checks} == set(DEFAULT_TOLERANCES)
    assert all(c.ratio == 1.0 for c in report.checks)


def test_improvement_always_passes():
    current = perf_record(**{"kernel.events_per_sec": 50_000_000.0})
    assert compare_perf(perf_record(), current).ok


def test_regression_beyond_tolerance_fails():
    # kernel tolerance is 0.35; a 0.4x run is far beyond it.
    current = perf_record(**{"kernel.events_per_sec": 800_000.0})
    report = compare_perf(perf_record(), current)
    assert not report.ok
    assert [c.metric for c in report.failures] == ["kernel.events_per_sec"]
    assert "FAIL" in report.describe()


def test_regression_within_tolerance_passes():
    # 0.70x against a 0.35 tolerance: jitter, not rot.
    current = perf_record(**{"kernel.events_per_sec": 1_400_000.0})
    report = compare_perf(perf_record(), current)
    assert report.ok
    (check,) = [c for c in report.checks if c.metric == "kernel.events_per_sec"]
    assert check.ratio == pytest.approx(0.7)
    assert not check.regressed


def test_waiver_turns_fail_into_waived_but_stays_visible():
    current = perf_record(**{"kernel.events_per_sec": 100_000.0})
    waivers = {"kernel.events_per_sec": "rewrote kernel for clarity"}
    report = compare_perf(perf_record(), current, waivers=waivers)
    assert report.ok
    assert not report.failures
    assert [c.metric for c in report.waived] == ["kernel.events_per_sec"]
    assert "rewrote kernel for clarity" in report.describe()
    assert "WAIVED" in report.describe()


def test_waiver_for_unknown_metric_is_an_error():
    with pytest.raises(ValueError, match="unknown metric"):
        compare_perf(perf_record(), perf_record(), waivers={"nope.such_metric": "x"})


def test_missing_metric_skips_not_fails():
    baseline = perf_record()
    del baseline["vectorized"]  # e.g. a baseline recorded before this PR
    report = compare_perf(baseline, perf_record())
    assert report.ok
    (check,) = [c for c in report.checks if c.metric == "vectorized.grid_points_per_sec"]
    assert check.skipped and not check.failed
    assert "SKIP" in check.describe()


def test_non_numeric_and_zero_baselines_never_divide():
    baseline = perf_record(**{"kernel.events_per_sec": 0.0})
    current = perf_record(**{"cluster.requests_per_sec_wall": "broken"})
    report = compare_perf(baseline, current)
    assert report.ok  # zero baseline and non-numeric current both skip
    by_metric = {c.metric: c for c in report.checks}
    assert by_metric["kernel.events_per_sec"].ratio is None
    assert by_metric["cluster.requests_per_sec_wall"].skipped


def test_parse_waivers():
    assert parse_waivers(None) == {}
    assert parse_waivers(["a.b:known slow", "c.d"]) == {
        "a.b": "known slow",
        "c.d": "declared expected",
    }
    with pytest.raises(ValueError, match="empty metric"):
        parse_waivers([":reason but no metric"])


class TestLoadBaseline:
    def test_missing_file_is_none(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) is None

    def test_corrupt_json_is_none(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        assert load_baseline(str(path)) is None

    def test_wrong_kind_is_none(self, tmp_path):
        path = tmp_path / "cluster.json"
        path.write_text(json.dumps({"kind": "cluster"}))
        assert load_baseline(str(path)) is None

    def test_perf_record_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(perf_record()))
        baseline = load_baseline(str(path))
        assert baseline is not None
        assert compare_perf(baseline, perf_record()).ok

    def test_kind_selects_the_bench_family(self, tmp_path):
        path = tmp_path / "BENCH_cluster.json"
        path.write_text(json.dumps(cluster_record()))
        assert load_baseline(str(path)) is None  # default kind is perf
        assert load_baseline(str(path), kind="cluster") is not None
        perf_path = tmp_path / "BENCH_perf.json"
        perf_path.write_text(json.dumps(perf_record()))
        assert load_baseline(str(perf_path), kind="cluster") is None


def cluster_record(**overrides):
    """A minimal BENCH_cluster.json-shaped record (flat simulated metrics)."""
    record = {
        "kind": "cluster",
        "throughput_tps": 710.0,
        "output_throughput_tps": 418.0,
        "goodput_rps": 1.49,
        "completed_requests": 100,
        "mean_utilization": 0.48,
        "slo_attainment": {"interactive": 1.0, "batch": 1.0},
    }
    for path, value in overrides.items():
        if "." in path:
            section, _, key = path.partition(".")
            record[section][key] = value
        else:
            record[path] = value
    return record


class TestClusterTrajectory:
    def test_identical_records_pass(self):
        report = compare_perf(
            cluster_record(), cluster_record(),
            tolerances=DEFAULT_CLUSTER_TOLERANCES,
        )
        assert report.ok
        assert {c.metric for c in report.checks} == set(DEFAULT_CLUSTER_TOLERANCES)

    def test_lost_requests_fail_at_zero_tolerance(self):
        # completed_requests has tolerance 0.0: losing even one request is
        # a bug (the simulator is deterministic), never acceptable drift.
        current = cluster_record(completed_requests=99)
        report = compare_perf(
            cluster_record(), current, tolerances=DEFAULT_CLUSTER_TOLERANCES
        )
        assert not report.ok
        assert [c.metric for c in report.failures] == ["completed_requests"]

    def test_throughput_drop_beyond_tolerance_fails(self):
        current = cluster_record(throughput_tps=600.0)  # 0.85x vs -5%
        report = compare_perf(
            cluster_record(), current, tolerances=DEFAULT_CLUSTER_TOLERANCES
        )
        assert [c.metric for c in report.failures] == ["throughput_tps"]

    def test_small_drift_within_tolerance_passes(self):
        current = cluster_record(
            **{"throughput_tps": 690.0, "slo_attainment.batch": 0.97}
        )
        assert compare_perf(
            cluster_record(), current, tolerances=DEFAULT_CLUSTER_TOLERANCES
        ).ok

    def test_waivers_apply_to_cluster_metrics_too(self):
        current = cluster_record(goodput_rps=0.5)
        report = compare_perf(
            cluster_record(), current,
            tolerances=DEFAULT_CLUSTER_TOLERANCES,
            waivers={"goodput_rps": "slo model rework"},
        )
        assert report.ok
        assert [c.metric for c in report.waived] == ["goodput_rps"]
