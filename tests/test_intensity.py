"""Unit tests for Approach 3 (spatial-temporal intensity comparison)."""

import pytest

from repro.core import DecodeRateProfile, spatial_intensity, temporal_intensity
from repro.hardware import L20
from repro.models import QWEN25_32B, pipeline_shards
from repro.costmodel import StageCostModel


@pytest.fixture(scope="module")
def profile():
    shard = pipeline_shards(QWEN25_32B, 4)[0]
    cm = StageCostModel(shard=shard, gpu=L20)
    return DecodeRateProfile(stage_model=cm, peak_batch_size=256)


class TestSpatialIntensity:
    def test_rate_increases_with_batch(self, profile):
        assert profile.rate(8, 400) < profile.rate(64, 400) < profile.rate(256, 400)

    def test_si_in_unit_interval(self, profile):
        for b in (1, 16, 64, 256, 512):
            si = spatial_intensity(profile, b, 400.0)
            assert 0.0 <= si <= 1.0

    def test_si_monotone_in_batch(self, profile):
        sis = [spatial_intensity(profile, b, 400.0) for b in (8, 32, 128, 256)]
        assert sis == sorted(sis)

    def test_si_is_one_at_peak(self, profile):
        assert spatial_intensity(profile, 256, 400.0) == pytest.approx(1.0)

    def test_zero_batch(self, profile):
        assert spatial_intensity(profile, 0, 400.0) == 0.0
        assert profile.rate(0, 400.0) == 0.0


class TestTemporalIntensity:
    def test_no_pending_never_switch(self):
        assert temporal_intensity([], 0.02) == float("-inf")

    def test_bubble_free_when_decode_covers_prefill(self):
        # Decode steps longer than the longest pending prefill -> no bubble.
        ti = temporal_intensity([0.01, 0.01], current_decode_stage_time=0.02)
        assert ti == pytest.approx(1.0)

    def test_bubble_lowers_ti(self):
        ti_small = temporal_intensity([0.5], current_decode_stage_time=0.02)
        ti_big = temporal_intensity([0.5] * 10, current_decode_stage_time=0.02)
        # The same bubble amortised over a longer prefill phase -> higher TI.
        assert ti_big > ti_small
        assert 0.0 < ti_small < 1.0

    def test_formula(self):
        # bubble = 0.5 - 0.1 = 0.4; total = (0.5 + 0.5) + 0.4 = 1.4.
        ti = temporal_intensity([0.5, 0.5], current_decode_stage_time=0.1)
        assert ti == pytest.approx(1.0 - 0.4 / 1.4)


class TestDecisionDynamics:
    def test_switch_happens_as_batch_shrinks(self, profile):
        """As decode drains, SI drops below a fixed TI at some point."""
        ti = 0.8
        switched_at = None
        for b in range(256, 0, -8):
            if spatial_intensity(profile, b, 400.0) < ti:
                switched_at = b
                break
        assert switched_at is not None
        assert 0 < switched_at < 256
