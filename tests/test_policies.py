"""Unit tests for the phase-switch policies against a real engine."""

import pytest

from repro.core import TDPipeEngine
from repro.core.policies import (
    FinishRatioPolicy,
    GreedyPrefillPolicy,
    IntensityPolicy,
    OccupancyRatioPolicy,
)
from repro.hardware import make_node
from repro.models import LLAMA2_13B, QWEN25_32B
from repro.predictor import OraclePredictor
from repro.workload import generate_requests


def make_engine(model=QWEN25_32B, **kwargs):
    node = make_node("L20", 4)
    return TDPipeEngine(node, model, OraclePredictor(), **kwargs)


class TestGreedyPrefillPolicy:
    def test_requires_reset(self):
        policy = GreedyPrefillPolicy()
        engine = make_engine(prefill_policy=policy)
        with pytest.raises(AssertionError):
            policy.should_switch(engine)

    def test_fresh_phase_does_not_switch(self):
        policy = GreedyPrefillPolicy()
        engine = make_engine(prefill_policy=policy)
        policy.reset_phase(engine)
        assert not policy.should_switch(engine)

    def test_switches_after_overfill(self):
        policy = GreedyPrefillPolicy()
        engine = make_engine(prefill_policy=policy)
        policy.reset_phase(engine)
        engine.states = {}
        cap = engine.block_manager.capacity_tokens
        # Launch hypothetical batches until predicted usage crosses capacity.
        from repro.runtime.state import RequestState
        from repro.workload import Request

        n = 0
        while not policy.should_switch(engine):
            n += 1
            req = Request(request_id=n, prompt_len=512, output_len=256)
            policy.on_batch_launched(engine, [RequestState(req)])
            assert n < 10_000, "policy never switched"
        # Predicted peak must exceed capacity at the switch.
        assert n * (512 + 32) > cap * 0.5  # sanity: many launches needed

    def test_carry_over_accounted(self):
        policy = GreedyPrefillPolicy()
        engine = make_engine(model=LLAMA2_13B, prefill_policy=policy)
        # Simulate mid-generation carry-over requests holding most of memory.
        from repro.runtime.state import RequestState
        from repro.workload import Request

        cap = engine.block_manager.capacity_tokens
        big = RequestState(Request(request_id=1, prompt_len=cap - 1000, output_len=2000))
        big.kv_len = cap - 1000
        big.generated = 5
        engine.running = {1: big}
        policy.reset_phase(engine)
        assert policy.should_switch(engine)  # no room for anything


class TestIntensityPolicy:
    def test_throttled_checks(self):
        policy = IntensityPolicy(check_interval=4)
        engine = make_engine(decode_policy=policy)
        policy.reset_phase(engine)
        # Calls 2..4 are skipped regardless of state (interval throttling).
        engine.running = {}
        assert not policy.should_switch(engine)  # call 1: empty running
        for _ in range(3):
            assert not policy.should_switch(engine)

    def test_no_waiting_never_switches(self):
        policy = IntensityPolicy(check_interval=1)
        engine = make_engine(decode_policy=policy)
        res = engine.run(generate_requests(100, seed=8))
        # With everything admitted up front, decode never hands back.
        assert res.completed_requests == 100

    def test_si_ti_recorded(self):
        policy = IntensityPolicy(check_interval=1)
        engine = make_engine(model=LLAMA2_13B, decode_policy=policy)
        # Enough requests that the first prefill phase cannot admit everyone,
        # so decode runs with a non-empty waiting queue and evaluates SI/TI.
        engine.run(generate_requests(1200, seed=8))
        # At least one real evaluation happened during this pressured run.
        assert policy.last_si == policy.last_si  # not NaN
        assert policy.last_ti == policy.last_ti


class TestRatioPolicies:
    def test_occupancy_threshold(self):
        policy = OccupancyRatioPolicy(ratio=0.5)
        engine = make_engine(prefill_policy=policy)
        policy.reset_phase(engine)
        assert not policy.should_switch(engine)
        # Fill beyond 50%.
        need = int(engine.block_manager.capacity_tokens * 0.6)
        engine.block_manager.allocate(1, need)
        assert policy.should_switch(engine)

    def test_finish_ratio_counts_from_phase_start(self):
        policy = FinishRatioPolicy(ratio=0.5)
        engine = make_engine(decode_policy=policy)
        from repro.runtime.state import RequestState
        from repro.workload import Request

        engine.running = {
            i: RequestState(Request(request_id=i, prompt_len=8, output_len=8))
            for i in range(10)
        }
        engine.waiting.append(RequestState(Request(request_id=99, prompt_len=8, output_len=8)))
        policy.reset_phase(engine)
        assert not policy.should_switch(engine)
        engine.finished = [object()] * 5  # 5 of 10 done
        assert policy.should_switch(engine)

    def test_finish_ratio_requires_waiting(self):
        policy = FinishRatioPolicy(ratio=0.1)
        engine = make_engine(decode_policy=policy)
        from repro.runtime.state import RequestState
        from repro.workload import Request

        engine.running = {
            1: RequestState(Request(request_id=1, prompt_len=8, output_len=8))
        }
        policy.reset_phase(engine)
        engine.finished = [object()]
        assert not policy.should_switch(engine)  # nothing to prefill
