"""Integration tests for the four vLLM-style baseline systems."""

import pytest

from repro.baselines import (
    PPHybridEngine,
    PPSeparateEngine,
    TPHybridEngine,
    TPSeparateEngine,
)
from repro.hardware import make_node
from repro.models import LLAMA2_13B, QWEN25_32B
from repro.runtime import EngineConfig
from repro.workload import generate_requests

ALL_BASELINES = [TPSeparateEngine, TPHybridEngine, PPSeparateEngine, PPHybridEngine]


@pytest.mark.parametrize("engine_cls", ALL_BASELINES)
class TestAllBaselines:
    def test_completes_and_accounts_tokens(self, engine_cls):
        node = make_node("L20", 4)
        engine = engine_cls(node, QWEN25_32B)
        reqs = generate_requests(100, seed=5)
        result = engine.run(reqs)
        assert result.completed_requests == 100
        assert result.total_output_tokens == sum(r.output_len for r in reqs)
        assert result.system == engine_cls.system_name

    def test_kv_fully_freed(self, engine_cls):
        node = make_node("L20", 4)
        engine = engine_cls(node, QWEN25_32B)
        engine.run(generate_requests(60, seed=5))
        assert engine.block_manager.num_requests == 0

    def test_deterministic(self, engine_cls):
        node = make_node("L20", 4)
        r1 = engine_cls(node, QWEN25_32B).run(generate_requests(60, seed=5))
        r2 = engine_cls(node, QWEN25_32B).run(generate_requests(60, seed=5))
        assert r1.makespan == r2.makespan

    def test_two_gpus(self, engine_cls):
        node = make_node("L20", 2)
        result = engine_cls(node, LLAMA2_13B).run(generate_requests(50, seed=5))
        assert result.completed_requests == 50


class TestParallelLayouts:
    def test_tp_uses_one_stage(self):
        node = make_node("L20", 4)
        engine = TPSeparateEngine(node, QWEN25_32B)
        assert engine.num_stages == 1
        assert engine.tp_degree == 4

    def test_pp_uses_one_stage_per_gpu(self):
        node = make_node("L20", 4)
        engine = PPSeparateEngine(node, QWEN25_32B)
        assert engine.num_stages == 4
        assert engine.pp_degree == 4

    def test_pp_streams_match_stages(self):
        node = make_node("L20", 4)
        assert len(PPSeparateEngine(node, QWEN25_32B).streams) == 4
        assert len(TPSeparateEngine(node, QWEN25_32B).streams) == 1


class TestHybridSemantics:
    def test_chunked_prefill_splits_long_prompts(self):
        node = make_node("L20", 4)
        cfg = EngineConfig(chunk_budget_tokens=128)
        engine = PPHybridEngine(node, QWEN25_32B, config=cfg)
        reqs = generate_requests(20, seed=9)
        assert max(r.prompt_len for r in reqs) > 128  # needs >1 chunk
        result = engine.run(reqs)
        assert result.completed_requests == 20
        # Hybrid engines never issue pure prefill batches.
        assert result.prefill_batches == 0
        assert result.decode_steps > 0

    def test_budget_respected(self):
        node = make_node("L20", 4)
        cfg = EngineConfig(chunk_budget_tokens=64)
        engine = TPHybridEngine(node, QWEN25_32B, config=cfg)
        seen = []
        orig = engine.make_hybrid_task

        def spy(decode_batch, chunks, **meta):
            seen.append(len(decode_batch) + sum(c.chunk_len for _, c in chunks))
            return orig(decode_batch, chunks, **meta)

        engine.make_hybrid_task = spy
        engine.run(generate_requests(30, seed=9))
        assert seen and max(seen) <= 64

    def test_separate_never_mixes(self):
        node = make_node("L20", 4)
        engine = PPSeparateEngine(node, QWEN25_32B)
        kinds = []
        orig = engine.submit

        def spy(task):
            kinds.append(task.kind)
            orig(task)

        engine.submit = spy
        engine.run(generate_requests(40, seed=9))
        assert set(kinds) <= {"prefill", "decode"}


class TestMemoryPressureBaselines:
    @pytest.mark.parametrize("engine_cls", ALL_BASELINES)
    def test_small_capacity_still_completes(self, engine_cls):
        # 13B on L20 (small KV capacity) with many requests: admission
        # control and recomputation must keep the system live.
        node = make_node("L20", 4)
        engine = engine_cls(node, LLAMA2_13B)
        result = engine.run(generate_requests(400, seed=3))
        assert result.completed_requests == 400


class TestDriverOverheadModel:
    def test_driver_serialises(self):
        node = make_node("L20", 4)
        engine = PPSeparateEngine(node, QWEN25_32B)
        d1 = engine.driver_delay(100)
        d2 = engine.driver_delay(100)
        assert d2 > d1  # second step queues behind the first

    def test_driver_cost_scales_with_batch(self):
        node = make_node("L20", 4)
        e1 = PPSeparateEngine(node, QWEN25_32B)
        e2 = PPSeparateEngine(node, QWEN25_32B)
        assert e2.driver_delay(500) > e1.driver_delay(1)

    def test_zero_overhead_config(self):
        node = make_node("L20", 4)
        cfg = EngineConfig(driver_base_overhead_s=0.0, driver_per_seq_overhead_s=0.0)
        engine = PPSeparateEngine(node, QWEN25_32B, config=cfg)
        assert engine.driver_delay(100) == 0.0
