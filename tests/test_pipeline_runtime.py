"""Unit tests for the execution plane (stage workers, pipeline runtime)."""

import pytest

from repro.hardware import pcie_switch
from repro.runtime import BatchTask, PipelineRuntime
from repro.runtime.tasks import DECODE, PREFILL
from repro.sim import Simulator, TraceRecorder


def make_runtime(num_stages=4, async_transfer=True, rpc=0.0):
    sim = Simulator()
    trace = TraceRecorder(num_stages)
    done = []
    rt = PipelineRuntime(
        sim=sim,
        trace=trace,
        gpu_groups=[(i,) for i in range(num_stages)],
        interconnect=pcie_switch(14.65),
        on_complete=lambda task, t: done.append((task, t)),
        async_transfer=async_transfer,
        rpc_latency_s=rpc,
    )
    return sim, trace, rt, done


def task(times, kind=DECODE, activation=0.0):
    return BatchTask(
        kind=kind, request_ids=(0,), stage_times=tuple(times), activation_bytes=activation
    )


class TestBatchTask:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchTask(kind="nope", request_ids=(), stage_times=(1.0,))
        with pytest.raises(ValueError):
            BatchTask(kind=PREFILL, request_ids=(), stage_times=())
        with pytest.raises(ValueError):
            BatchTask(kind=PREFILL, request_ids=(), stage_times=(-1.0,))

    def test_total_time(self):
        t = task([1.0, 2.0, 3.0, 4.0])
        assert t.total_time == 10.0
        assert t.num_stages == 4


class TestPipelineFlow:
    def test_single_task_traverses_all_stages(self):
        sim, trace, rt, done = make_runtime()
        rt.submit(task([1.0, 1.0, 1.0, 1.0]))
        sim.run()
        assert len(done) == 1
        # Completion at sum of stage times (zero transfer for 0 bytes).
        assert done[0][1] == pytest.approx(4.0)
        for g in range(4):
            assert trace[g].busy_time == pytest.approx(1.0)

    def test_pipelining_overlaps_tasks(self):
        sim, trace, rt, done = make_runtime()
        for _ in range(4):
            rt.submit(task([1.0, 1.0, 1.0, 1.0]))
        sim.run()
        assert len(done) == 4
        # Perfect pipeline: last completion at 4 (fill) + 3 = 7, not 16.
        assert done[-1][1] == pytest.approx(7.0)
        # Stage 0 is busy back-to-back.
        assert trace[0].busy_time == pytest.approx(4.0)

    def test_stage_mismatch_rejected(self):
        sim, _, rt, _ = make_runtime(num_stages=4)
        with pytest.raises(ValueError):
            rt.submit(task([1.0, 1.0]))

    def test_fifo_order_preserved(self):
        sim, _, rt, done = make_runtime(num_stages=2)
        t1 = task([1.0, 1.0])
        t2 = task([0.1, 0.1])
        rt.submit(t1)
        rt.submit(t2)
        sim.run()
        assert [d[0] for d in done] == [t1, t2]

    def test_rpc_latency_applied(self):
        sim, _, rt, done = make_runtime(num_stages=1, rpc=0.5)
        rt.submit(task([1.0]))
        sim.run()
        # 0.5 submit RPC + 1.0 compute + 0.5 completion RPC.
        assert done[0][1] == pytest.approx(1.5)  # worker end time
        assert sim.now == pytest.approx(2.0)

    def test_activation_transfer_delays_next_stage(self):
        ic = pcie_switch(14.65)
        sim, _, rt, done = make_runtime(num_stages=2)
        nbytes = 12e9 * 1.0  # 1 second at 12 GB/s
        rt.submit(task([1.0, 1.0], activation=nbytes))
        sim.run()
        # 1.0 compute + ~1.0 transfer + 1.0 compute.
        assert done[0][1] == pytest.approx(3.0, rel=0.01)


class TestTransferModes:
    def _two_tasks_completion(self, async_transfer):
        sim, trace, rt, done = make_runtime(num_stages=2, async_transfer=async_transfer)
        nbytes = 12e9 * 0.5  # 0.5 s transfer
        rt.submit(task([1.0, 1.0], activation=nbytes))
        rt.submit(task([1.0, 1.0], activation=nbytes))
        sim.run()
        return done[-1][1]

    def test_async_beats_blocking(self):
        t_async = self._two_tasks_completion(async_transfer=True)
        t_blocking = self._two_tasks_completion(async_transfer=False)
        # Blocking sends keep stage 0 occupied during the transfer, delaying
        # the second task; the hierarchy-controller's async send does not.
        assert t_async < t_blocking

    def test_worker_counts_tasks(self):
        sim, _, rt, _ = make_runtime(num_stages=2)
        rt.submit(task([1.0, 1.0]))
        rt.submit(task([1.0, 1.0]))
        sim.run()
        assert all(w.tasks_executed == 2 for w in rt.workers)


class TestTPGrouping:
    def test_tp_records_on_all_gpus(self):
        sim = Simulator()
        trace = TraceRecorder(4)
        done = []
        rt = PipelineRuntime(
            sim=sim,
            trace=trace,
            gpu_groups=[(0, 1, 2, 3)],
            interconnect=pcie_switch(14.65),
            on_complete=lambda task, t: done.append(t),
            rpc_latency_s=0.0,
        )
        rt.submit(BatchTask(kind=DECODE, request_ids=(0,), stage_times=(2.0,)))
        sim.run()
        for g in range(4):
            assert trace[g].busy_time == pytest.approx(2.0)
