"""Store-as-memoizer incremental campaigns + concurrency-safe store.

The tentpole contract: ``run_many(specs, store=..., reuse=True)`` serves any
spec whose content hash is already filed under the current code-provenance
stamp straight from the store and executes only the misses — bit-identical
(modulo wall time) to running everything fresh.  Around that, the store has
to be safe as a shared cache: concurrent ``put``\\ s serialize under the
index lock, ``gc``/``fsck`` recover from orphaned files and lost indexes,
``resolve`` prefers exact ref > name > prefix, one-sided metric diffs carry
an explicit ``MISSING`` sentinel, and batch failures name their spec.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import pickle
import re
import time

import pytest

from repro import api

SCALE = 0.02


def base_spec(**workload_kwargs) -> api.ScenarioSpec:
    workload = dict(scale=SCALE, seed=0)
    workload.update(workload_kwargs)
    return api.ScenarioSpec(
        name="memo-test",
        mode="engine",
        workload=api.WorkloadSpec(**workload),
        fleet=api.FleetSpec(node="L20", num_gpus=2, replicas=1),
        engine=api.EngineSpec(system="TP+SB", model="13B"),
    )


def seed_sweep(seeds=(0, 1, 2, 3)) -> api.SweepSpec:
    """A cheap grid whose axis values we can move between campaigns."""
    return api.SweepSpec(
        name="memo-test",
        base=base_spec(),
        axes=(api.SweepAxis("workload.seed", tuple(seeds)),),
    )


def canon(record: dict) -> str:
    """Canonical record text minus the only legitimately varying key."""
    return json.dumps(
        {k: v for k, v in record.items() if k != "wall_time_s"}, sort_keys=True
    )


@pytest.fixture(scope="module")
def base_artifact() -> api.RunArtifact:
    return api.run(base_spec())


def variant(artifact: api.RunArtifact, seed: int) -> api.RunArtifact:
    """A distinct-ref artifact without paying for another simulation."""
    art = api.RunArtifact.from_record(artifact.to_record())
    art.spec = art.spec.with_overrides({"workload.seed": seed})
    return art


def spy_on_run(monkeypatch) -> list[api.ScenarioSpec]:
    """Count (serial) executions through the one true ``api.run``."""
    import repro.api.runner as runner_mod

    calls: list[api.ScenarioSpec] = []
    real_run = runner_mod.run

    def counting_run(spec, **kwargs):
        calls.append(spec)
        return real_run(spec, **kwargs)

    monkeypatch.setattr(runner_mod, "run", counting_run)
    return calls


# --------------------------------------------------------------------- #
# Code provenance: the reuse gate.
# --------------------------------------------------------------------- #
class TestProvenance:
    def test_fingerprint_is_deterministic_hex(self):
        fp = api.code_fingerprint()
        assert fp == api.code_fingerprint()
        assert re.fullmatch(r"[0-9a-f]{64}", fp)

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("TDPIPE_CODE_FINGERPRINT", "cafe")
        assert api.code_fingerprint() == "cafe"
        assert api.provenance_stamp()["code"] == "cafe"

    def test_records_carry_current_stamp(self, base_artifact):
        record = base_artifact.to_record()
        assert record["provenance"] == api.provenance_stamp()
        assert set(record["provenance"]) == {"package", "code"}

    def test_provenance_is_not_a_compared_metric(self, base_artifact):
        record = base_artifact.to_record(detail=False)
        other = dict(record, provenance={"package": "0.0.0", "code": "beef"})
        diffs = api.compare_records(record, other, strict=True)
        assert all(d.within for d in diffs)


# --------------------------------------------------------------------- #
# The tentpole: run_many as an incremental campaign.
# --------------------------------------------------------------------- #
class TestMemoizedRunMany:
    def test_reuse_needs_store(self):
        with pytest.raises(ValueError, match="needs a store"):
            api.run_many([base_spec()], reuse=True)

    def test_second_pass_all_hits_bit_identical(self, tmp_path, monkeypatch):
        specs = [p.spec for p in seed_sweep().expand()]
        store = api.ArtifactStore(tmp_path / "store")
        first = api.run_many(specs, store=store)
        calls = spy_on_run(monkeypatch)
        second = api.run_many(specs, store=store, reuse=True)
        assert calls == []  # nothing executed: the whole campaign was warm
        report = api.ReuseReport.from_artifacts(second)
        assert (report.hits, report.executed, report.total) == (4, 0, 4)
        assert report.summary() == "reuse: 4/4 hit, 0 executed"
        for fresh, memo in zip(first, second):
            assert memo.reused and not fresh.reused
            assert canon(memo.to_record()) == canon(fresh.to_record())
        # Hits are never re-put: the index is untouched by the second pass.
        assert len(store.session_refs) == 4
        assert store.session_reused_refs == store.session_refs

    def test_changed_cell_executes_exactly_the_miss(self, tmp_path, monkeypatch):
        """The acceptance keystone: move one axis value, pay for one cell."""
        store = api.ArtifactStore(tmp_path / "store")
        api.run_many([p.spec for p in seed_sweep((0, 1, 2, 3)).expand()], store=store)

        moved = [p.spec for p in seed_sweep((0, 1, 9, 3)).expand()]
        fresh = api.run_many(moved)  # reference: everything from scratch
        calls = spy_on_run(monkeypatch)
        memo = api.run_many(moved, store=store, reuse=True)
        assert [s.workload.seed for s in calls] == [9]
        assert [a.reused for a in memo] == [True, True, False, True]
        for a, b in zip(fresh, memo):
            assert canon(a.to_record()) == canon(b.to_record())
        assert api.ReuseReport.from_artifacts(memo).summary() == (
            "reuse: 3/4 hit, 1 executed"
        )
        # The miss was filed, so the next pass is fully warm.
        assert len(store) == 5

    def test_provenance_flip_invalidates_every_hit(self, tmp_path, monkeypatch):
        store = api.ArtifactStore(tmp_path / "store")
        specs = [p.spec for p in seed_sweep((0, 1)).expand()]
        api.run_many(specs, store=store)
        monkeypatch.setenv("TDPIPE_CODE_FINGERPRINT", "f" * 64)
        calls = spy_on_run(monkeypatch)
        memo = api.run_many(specs, store=store, reuse=True)
        assert len(calls) == 2  # different code stamp: everything re-runs
        assert all(not a.reused for a in memo)
        # Re-execution re-records under the new stamp, so the *next* pass
        # under the same stamp is warm again.
        calls.clear()
        memo = api.run_many(specs, store=store, reuse=True)
        assert calls == [] and all(a.reused for a in memo)

    def test_lean_records_never_hit(self, tmp_path, monkeypatch):
        store = api.ArtifactStore(tmp_path / "store", lean=True)
        api.run(base_spec(), store=store)
        calls = spy_on_run(monkeypatch)
        (memo,) = api.run_many([base_spec()], store=store, reuse=True)
        assert len(calls) == 1 and not memo.reused

    def test_parallel_reuse_matches_serial(self, tmp_path):
        specs = [p.spec for p in seed_sweep().expand()]
        store = api.ArtifactStore(tmp_path / "store")
        api.run_many(specs[:2], store=store)  # warm half the grid
        fresh = api.run_many(specs)
        memo = api.run_many(specs, store=store, reuse=True, jobs=2)
        assert [a.reused for a in memo] == [True, True, False, False]
        for a, b in zip(fresh, memo):
            assert canon(a.to_record()) == canon(b.to_record())
        assert len(store) == 4


class TestMemoizedRunSweep:
    def test_run_sweep_reuse_round_trip(self, tmp_path):
        sweep = seed_sweep((0, 1))
        store = api.ArtifactStore(tmp_path / "store")
        first = api.run_sweep(sweep, store=store)
        memo = api.run_sweep(sweep, store=store, reuse=True)
        assert all(a.reused for a in memo)
        for a, b in zip(first, memo):
            assert b.overrides == a.overrides  # grid coordinates survive
            assert canon(a.to_record()) == canon(b.to_record())
        assert len(store) == 2

    def test_reuse_rejects_live_object_overrides(self, tmp_path):
        from repro.experiments.common import default_scale, eval_requests

        requests = eval_requests(default_scale(factor=SCALE))
        with pytest.raises(ValueError, match="live-object"):
            api.run_sweep(
                seed_sweep((0, 1)),
                store=tmp_path / "store",
                reuse=True,
                requests=requests,
            )


# --------------------------------------------------------------------- #
# Batch failures name their spec (and survive the pickle boundary).
# --------------------------------------------------------------------- #
class TestSpecExecutionError:
    def bad_batch(self) -> list[api.ScenarioSpec]:
        bad = api.ScenarioSpec(
            name="bad-cell",
            mode="engine",
            workload=api.WorkloadSpec(scale=SCALE, seed=0),
            fleet=api.FleetSpec(node="L20", num_gpus=2, replicas=1),
            # Passes spec validation (field names are checked, values are
            # not) and dies in the engine constructor.
            engine=api.EngineSpec(system="TP+SB", model="13B",
                                  config={"block_size": 0}),
        )
        return [base_spec(), bad, base_spec(seed=1)]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failure_carries_index_and_name(self, jobs):
        with pytest.raises(api.SpecExecutionError) as excinfo:
            api.run_many(self.bad_batch(), jobs=jobs)
        err = excinfo.value
        assert err.index == 1
        assert err.name == "bad-cell"
        assert "spec [1] 'bad-cell' failed" in str(err)
        assert "block_size" in str(err)

    def test_error_pickles_intact(self):
        err = api.SpecExecutionError(3, "cell", "ValueError: nope")
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.index, clone.name, clone.message) == (3, "cell",
                                                            "ValueError: nope")
        assert str(clone) == str(err)

    def test_oom_keeps_its_own_type(self):
        from repro.kvcache.capacity import OutOfMemoryError

        oom = api.ScenarioSpec(
            mode="engine",
            workload=api.WorkloadSpec(scale=SCALE, seed=0),
            fleet=api.FleetSpec(node="L20", num_gpus=1, replicas=1),
            engine=api.EngineSpec(system="TP+SB", model="32B"),
        )
        with pytest.raises(OutOfMemoryError):
            api.run_many([oom])


# --------------------------------------------------------------------- #
# Concurrent puts: the lost-update regression.
# --------------------------------------------------------------------- #
def _hammer_put(root, record_json, seeds, barrier, hold_s):
    from repro import api as _api

    store = _api.ArtifactStore(root)
    # Hold the locked critical section open so the two writers provably
    # overlap in time; without the index lock this schedule loses entries
    # and double-assigns seq from a stale next_seq.
    store._after_load_index = lambda: time.sleep(hold_s)
    record = json.loads(record_json)
    barrier.wait()
    for seed in seeds:
        artifact = _api.RunArtifact.from_record(record)
        artifact.spec = artifact.spec.with_overrides({"workload.seed": seed})
        store.put(artifact)


class TestConcurrentPut:
    def test_two_writers_lose_nothing(self, tmp_path, base_artifact):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork to share the startup barrier cheaply")
        ctx = mp.get_context("fork")
        root = tmp_path / "store"
        record_json = json.dumps(base_artifact.to_record())
        barrier = ctx.Barrier(2)
        writers = [
            ctx.Process(
                target=_hammer_put,
                args=(str(root), record_json, seeds, barrier, 0.02),
            )
            for seeds in ([0, 1, 2, 3], [10, 11, 12, 13])
        ]
        for p in writers:
            p.start()
        for p in writers:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in writers)

        index = json.loads((root / "index.json").read_text())
        assert len(index["entries"]) == 8  # both writers' entries survived
        seqs = sorted(e["seq"] for e in index["entries"].values())
        assert seqs == list(range(8))  # no double-assigned seq
        assert index["next_seq"] == 8
        store = api.ArtifactStore(root)
        for ref in store.refs():
            assert store.get(ref).result == base_artifact.result


# --------------------------------------------------------------------- #
# resolve() ordering: exact ref > name > prefix.
# --------------------------------------------------------------------- #
class TestResolveOrdering:
    def two_entry_store(self, tmp_path, base_artifact):
        store = api.ArtifactStore(tmp_path / "store")
        ref_a = store.put(variant(base_artifact, 100))
        ref_b = store.put(variant(base_artifact, 200))
        return store, ref_a, ref_b

    def rename(self, store, ref, name):
        index = json.loads(store.index_path.read_text())
        index["entries"][ref]["name"] = name
        store.index_path.write_text(json.dumps(index))

    def test_name_beats_hex_prefix(self, tmp_path, base_artifact):
        store, ref_a, ref_b = self.two_entry_store(tmp_path, base_artifact)
        # A scenario named like the *other* record's hash prefix must win
        # over the prefix interpretation.
        self.rename(store, ref_a, ref_b[:12])
        assert store.resolve(ref_b[:12]) == ref_a

    def test_exact_ref_beats_name(self, tmp_path, base_artifact):
        store, ref_a, ref_b = self.two_entry_store(tmp_path, base_artifact)
        self.rename(store, ref_a, ref_b)  # name collides with a full ref
        assert store.resolve(ref_b) == ref_b

    def test_duplicate_name_resolves_most_recent(self, tmp_path, base_artifact):
        store, ref_a, ref_b = self.two_entry_store(tmp_path, base_artifact)
        self.rename(store, ref_a, "dup")
        self.rename(store, ref_b, "dup")
        assert store.resolve("dup") == ref_b  # highest seq wins

    def test_ambiguous_prefix_still_fails(self, tmp_path, base_artifact):
        store, _, _ = self.two_entry_store(tmp_path, base_artifact)
        with pytest.raises(KeyError, match="ambiguous"):
            store.resolve("")


# --------------------------------------------------------------------- #
# gc / fsck: the store survives as a long-lived shared cache.
# --------------------------------------------------------------------- #
def _strip_created(text: str) -> str:
    return re.sub(r'"created_at": "[^"]*"', '"created_at": "T"', text)


class TestStoreMaintenance:
    def seeded_store(self, tmp_path, base_artifact) -> api.ArtifactStore:
        store = api.ArtifactStore(tmp_path / "store")
        tagged = variant(base_artifact, 300)
        tagged.overrides = {"workload.seed": 300}
        store.put(tagged)
        store.put(variant(base_artifact, 301))
        store.put(variant(base_artifact, 302))
        return store

    def test_fsck_rebuilds_deleted_index_byte_identical(self, tmp_path,
                                                        base_artifact):
        store = self.seeded_store(tmp_path, base_artifact)
        store.fsck()  # canonicalize (put order -> ref-sorted rank order)
        canonical = store.index_path.read_text()
        # Idempotent while the old index is readable: created_at carries.
        store.fsck()
        assert store.index_path.read_text() == canonical
        store.index_path.unlink()
        report = store.fsck()
        assert report == {"entries": 3, "mismatched": [], "stale_siblings": []}
        rebuilt = store.index_path.read_text()
        assert _strip_created(rebuilt) == _strip_created(canonical)
        # Everything except the (mtime-derived) timestamps is recovered,
        # overrides and seq numbering included.
        entry = json.loads(rebuilt)["entries"][
            api.content_hash(variant(base_artifact, 300).spec)
        ]
        assert entry["overrides"] == {"workload.seed": 300}

    def test_fsck_excludes_mismatched_files(self, tmp_path, base_artifact):
        store = self.seeded_store(tmp_path, base_artifact)
        ref = store.refs()[0]
        forged = store.records_dir / ("0" * 64 + ".json")
        forged.write_text((store.records_dir / f"{ref}.json").read_text())
        report = store.fsck()
        assert report["mismatched"] == [forged.name]
        assert report["entries"] == 3 and ("0" * 64) not in store
        # gc trusts the fsck'd index and prunes the forgery.
        gc_report = store.gc()
        assert gc_report["removed_files"] == [forged.name]
        assert not forged.exists()

    def test_fsck_recovers_gzip_and_lean_entries(self, tmp_path, base_artifact):
        root = tmp_path / "store"
        api.ArtifactStore(root, compress=True).put(variant(base_artifact, 310))
        api.ArtifactStore(root, lean=True).put(variant(base_artifact, 311))
        store = api.ArtifactStore(root)
        store.index_path.unlink()
        assert store.fsck()["entries"] == 2
        entries = dict(store.entries())
        gz_ref = api.content_hash(variant(base_artifact, 310).spec)
        lean_ref = api.content_hash(variant(base_artifact, 311).spec)
        assert entries[gz_ref]["file"].endswith(".json.gz")
        assert entries[lean_ref]["lean"] is True

    def test_gc_prunes_orphans_and_dead_entries(self, tmp_path, base_artifact):
        store = self.seeded_store(tmp_path, base_artifact)
        (store.records_dir / ("e" * 64 + ".json")).write_text("{}\n")
        (store.records_dir / "leftover.json.tmp").write_text("")
        dead_ref = store.refs()[1]
        (store.records_dir / f"{dead_ref}.json").unlink()
        report = store.gc()
        assert sorted(report["removed_files"]) == sorted(
            ["e" * 64 + ".json", "leftover.json.tmp"]
        )
        assert report["dropped_entries"] == [dead_ref]
        assert report["entries"] == 2 and len(store) == 2

    def test_gc_dry_run_reports_without_deleting(self, tmp_path, base_artifact):
        store = self.seeded_store(tmp_path, base_artifact)
        orphan = store.records_dir / ("e" * 64 + ".json")
        orphan.write_text("{}\n")
        dead_ref = store.refs()[1]
        (store.records_dir / f"{dead_ref}.json").unlink()
        report = store.gc(dry_run=True)
        # The report is exactly what a real gc would do...
        assert report["dry_run"] is True
        assert report["removed_files"] == [orphan.name]
        assert report["dropped_entries"] == [dead_ref]
        assert report["entries"] == 2
        # ...but nothing was touched: the orphan and the dead entry remain.
        assert orphan.exists()
        assert dead_ref in store
        real = store.gc()
        assert real["dry_run"] is False
        assert real["removed_files"] == report["removed_files"]
        assert real["dropped_entries"] == report["dropped_entries"]
        assert not orphan.exists() and dead_ref not in store


# --------------------------------------------------------------------- #
# MISSING sentinel: one-sided diffs are explicit, null stays null.
# --------------------------------------------------------------------- #
class TestMissingSentinel:
    def test_one_sided_keys_keep_the_sentinel(self):
        recorded = {"kind": "engine", "throughput_tps": 5.0,
                    "only_recorded": 1.5, "null_metric": None}
        fresh = {"kind": "engine", "throughput_tps": 5.0,
                 "null_metric": None, "only_fresh": 2}
        by = {d.metric: d for d in api.compare_records(recorded, fresh,
                                                       strict=True)}
        gone = by["only_recorded"]
        assert gone.fresh is api.MISSING and gone.one_sided
        assert gone.delta is None and not gone.within
        assert gone.describe() == "only_recorded: 1.5 -> <missing>"
        new = by["only_fresh"]
        assert new.recorded is api.MISSING and new.delta is None
        # A recorded null is a value, not an absence.
        null = by["null_metric"]
        assert null.within and null.recorded is None and not null.one_sided

    def test_null_vs_missing_are_distinct(self):
        (diff,) = api.compare_records({"kind": "engine", "m": None},
                                      {"kind": "engine"}, strict=True)
        assert diff.recorded is None and diff.fresh is api.MISSING
        assert not diff.within

    def test_missing_is_a_singleton(self):
        assert type(api.MISSING)() is api.MISSING
        assert repr(api.MISSING) == "<missing>"


# --------------------------------------------------------------------- #
# Store edge paths.
# --------------------------------------------------------------------- #
class TestStoreEdgePaths:
    def test_store_version_mismatch_fails_loudly(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "index.json").write_text(
            json.dumps({"store_version": 999, "next_seq": 0, "entries": {}})
        )
        with pytest.raises(ValueError, match="layout version"):
            len(api.ArtifactStore(root))

    def test_mixed_plain_and_gzip_records_replay(self, tmp_path, base_artifact):
        root = tmp_path / "store"
        api.ArtifactStore(root).put(base_artifact)
        gz_artifact = api.run(base_spec(seed=1))
        api.ArtifactStore(root, compress=True).put(gz_artifact)
        store = api.ArtifactStore(root)
        assert len(store) == 2
        assert store.get(api.content_hash(base_artifact.spec)) == base_artifact
        assert store.get(api.content_hash(gz_artifact.spec)) == gz_artifact
        reports = api.replay_all(store, strict=True)
        assert len(reports) == 2 and all(r.ok for r in reports)

    def test_lean_record_replays_but_get_raises(self, tmp_path):
        store = api.ArtifactStore(tmp_path / "store", lean=True)
        ref = api.content_hash(base_spec().resolved())
        api.run(base_spec(), store=store)
        with pytest.raises(ValueError, match="lean"):
            store.get(ref)
        (report,) = api.replay_all(store, strict=True)
        assert report.ok and report.ref == ref


# --------------------------------------------------------------------- #
# CLI: --reuse, replay --update, store gc|fsck.
# --------------------------------------------------------------------- #
class TestCLIMemoAndMaintenance:
    def test_flag_validation(self, tmp_path):
        from repro.cli import main

        store = str(tmp_path / "store")
        for argv in (
            ["replay", "--store", store, "--reuse"],  # not a reuse user
            ["run", "--spec", "cluster-hetero", "--reuse"],  # no --store
            ["fig11", "--reuse"],  # figure experiments need --store too
            ["record", "x", "--update"],  # --update is replay-only
            ["store", "--store", store],  # needs an action
            ["store", "defrag", "--store", store],  # unknown action
            ["store", "gc", "--scale", "0.5", "--store", store],
        ):
            with pytest.raises(SystemExit):
                main(argv)

    def test_record_reuse_update_fsck_round_trip(self, capsys, tmp_path):
        from repro.cli import main

        spec_path = tmp_path / "scenario.json"
        spec_path.write_text(base_spec().to_json())
        store_dir = tmp_path / "store"
        store = str(store_dir)

        assert main(["record", str(spec_path), "--store", store]) == 0
        capsys.readouterr()
        assert main(["record", str(spec_path), "--store", store, "--reuse"]) == 0
        out = capsys.readouterr().out
        assert "(reused)" in out
        assert "reuse: 1/1 hit, 0 executed" in out

        # `run --reuse` serves the same record.
        assert main(["run", "--spec", str(spec_path), "--store", store,
                     "--reuse"]) == 0
        assert "reuse: 1/1 hit, 0 executed" in capsys.readouterr().out

        # Corrupt a metric: strict replay fails, --update re-records it.
        ref = api.ArtifactStore(store_dir).refs()[0]
        record_path = store_dir / "records" / f"{ref}.json"
        record = json.loads(record_path.read_text())
        record["throughput_tps"] *= 2
        record_path.write_text(json.dumps(record))
        assert main(["replay", "--store", store, "--strict"]) == 1
        capsys.readouterr()
        assert main(["replay", "--store", store, "--strict", "--update"]) == 0
        assert "re-recorded in place" in capsys.readouterr().out
        assert main(["replay", "--store", store, "--strict"]) == 0
        capsys.readouterr()

        # fsck rebuilds a deleted index; gc then has nothing to prune.
        (store_dir / "index.json").unlink()
        assert main(["store", "fsck", "--store", store]) == 0
        assert "index rebuilt from records (1 entry)" in capsys.readouterr().out
        assert main(["replay", "--store", store, "--strict"]) == 0
        capsys.readouterr()
        assert main(["store", "gc", "--store", store]) == 0
        assert "removed 0 orphaned file(s)" in capsys.readouterr().out
