"""Unit tests for the roofline cost model."""

import pytest

from repro.costmodel import FullModelCostModel, PrefillChunk, StageCostModel
from repro.hardware import A100, L20, pcie_switch
from repro.models import LLAMA2_13B, QWEN25_32B, pipeline_shards


def stage_model(model=QWEN25_32B, gpu=L20, pp=4, tp=1, stage=0):
    shards = pipeline_shards(model, pp, tp)
    ic = pcie_switch(gpu.allreduce_bw_gbps) if tp > 1 else None
    return StageCostModel(shard=shards[stage], gpu=gpu, interconnect=ic)


class TestPrefill:
    def test_empty_batch_free(self):
        assert stage_model().prefill_time([]) == 0.0

    def test_monotone_in_tokens(self):
        cm = stage_model()
        assert cm.prefill_time([256]) < cm.prefill_time([512]) < cm.prefill_time([1024])

    def test_attention_superlinear(self):
        cm = stage_model()
        # One 1024-token prompt costs more than four 256-token prompts
        # (quadratic attention).
        assert cm.prefill_time([1024]) > cm.prefill_time([256, 256, 256, 256])

    def test_faster_gpu_is_faster(self):
        t_l20 = stage_model(gpu=L20).prefill_time([1024])
        t_a100 = stage_model(gpu=A100).prefill_time([1024])
        assert t_a100 < t_l20

    def test_tp_requires_interconnect(self):
        shards = pipeline_shards(QWEN25_32B, 1, 4)
        with pytest.raises(ValueError):
            StageCostModel(shard=shards[0], gpu=L20, interconnect=None)

    def test_tp_adds_communication(self):
        comp4, comm4 = stage_model(pp=1, tp=4).prefill_breakdown([512] * 4)
        comp1, comm1 = stage_model(pp=1, tp=1).prefill_breakdown([512] * 4)
        assert comm1 == 0.0
        assert comm4 > 0.0
        # TP divides the compute.
        assert comp4 < comp1

    def test_tp_total_speedup_sublinear(self):
        t1 = stage_model(pp=1, tp=1).prefill_time([512] * 4)
        t4 = stage_model(pp=1, tp=4).prefill_time([512] * 4)
        assert t4 < t1  # still faster overall
        assert t4 > t1 / 4  # but far from linear (paper Figure 6)


class TestDecode:
    def test_zero_batch_free(self):
        assert stage_model().decode_time(0, 0) == 0.0

    def test_monotone_in_batch_and_context(self):
        cm = stage_model()
        t1 = cm.decode_time(16, 16 * 300)
        t2 = cm.decode_time(64, 64 * 300)
        t3 = cm.decode_time(64, 64 * 900)
        assert t1 < t2 < t3

    def test_bandwidth_bound_floor(self):
        # A batch of one still pays the full weight-streaming time.
        cm = stage_model()
        weight_bytes = (
            cm.shard.n_layers * QWEN25_32B.params_per_layer * QWEN25_32B.dtype_bytes
        )
        floor = weight_bytes / L20.effective_mem_bandwidth
        assert cm.decode_time(1, 300) > floor

    def test_per_request_efficiency_improves_with_batch(self):
        # The saturating Achieved(b) curve behind spatial intensity.
        cm = stage_model()
        r16 = 16 / cm.decode_time(16, 16 * 400)
        r256 = 256 / cm.decode_time(256, 256 * 400)
        assert r256 > 2 * r16


class TestHybrid:
    def test_empty_free(self):
        assert stage_model().hybrid_time(0, 0, []) == 0.0

    def test_decode_only_close_to_decode(self):
        cm = stage_model()
        hybrid = cm.hybrid_time(64, 64 * 300, [])
        decode = cm.decode_time(64, 64 * 300)
        assert hybrid == pytest.approx(decode, rel=0.35)

    def test_chunk_prefix_reload_costs(self):
        # Same chunk, longer already-cached prefix -> more KV re-reading.
        cm = stage_model()
        short = cm.hybrid_time(32, 32 * 300, [PrefillChunk(256, prefix_len=0)])
        long = cm.hybrid_time(32, 32 * 300, [PrefillChunk(256, prefix_len=2048)])
        assert long > short

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            PrefillChunk(-1, 0)
        with pytest.raises(ValueError):
            PrefillChunk(1, -5)

    def test_hybrid_more_expensive_than_parts_interleaved(self):
        # Splitting a prompt into chunks across hybrid steps costs more than
        # one whole-prompt prefill (the chunked-prefill overhead).
        cm = stage_model()
        whole = cm.prefill_time([1024])
        chunked = sum(
            cm.hybrid_time(0, 0, [PrefillChunk(256, prefix_len=256 * i)]) for i in range(4)
        )
        assert chunked > whole


class TestFullModel:
    def test_wraps_all_layers(self):
        cm = FullModelCostModel(LLAMA2_13B, L20)
        assert cm.stage.n_layers == LLAMA2_13B.n_layers
        assert cm.stage.shard.has_embedding and cm.stage.shard.has_lm_head

    def test_consistent_with_stage_sum(self):
        # Whole-model prefill ~ sum of the four stage prefills (same math).
        full = FullModelCostModel(QWEN25_32B, L20, step_overhead_s=0.0)
        stages = [
            StageCostModel(shard=s, gpu=L20, step_overhead_s=0.0)
            for s in pipeline_shards(QWEN25_32B, 4)
        ]
        t_full = full.prefill_time([512])
        t_stages = sum(s.prefill_time([512]) for s in stages)
        assert t_full == pytest.approx(t_stages, rel=1e-6)

    def test_activation_bytes(self):
        cm = stage_model()
        assert cm.activation_bytes(10) == 10 * QWEN25_32B.hidden_size * 2
