"""Tests for the declarative scenario API (`repro.api`).

Covers the spec tree's strict validation and JSON round-trip, dotted-path
overrides, sweep expansion, the scenario registry, and — the acceptance
keystone — that `api.run(spec)` and the legacy `run_cluster(...)` shim
produce identical `ClusterResult`s for the same scenario.
"""

import dataclasses
import json

import pytest

from repro import api
from repro.experiments.common import default_scale, run_cluster, run_system
from repro.runtime.config import EngineConfig

TINY = default_scale(factor=0.02, seed=0)


def hetero_spec(**workload_kwargs) -> api.ScenarioSpec:
    workload = dict(
        scale=0.02, seed=0, arrival="poisson", rate_rps=8.0,
        slo_mix={"interactive": 0.7, "batch": 0.3},
    )
    workload.update(workload_kwargs)
    return api.ScenarioSpec(
        name="hetero-test",
        mode="cluster",
        workload=api.WorkloadSpec(**workload),
        fleet=api.FleetSpec(fleet="l20:1,a100:1"),
        engine=api.EngineSpec(system="TD-Pipe", model="13B"),
        control=api.ControlSpec(router="jsq", autoscale=True),
    )


# --------------------------------------------------------------------- #
# Serialization round-trips.
# --------------------------------------------------------------------- #
class TestRoundTrip:
    def test_json_round_trip_equality(self):
        for spec in (
            api.ScenarioSpec(),
            hetero_spec(),
            api.ScenarioSpec(
                mode="engine",
                engine=api.EngineSpec(
                    system="TD-Pipe",
                    model="32B",
                    config={"max_num_seqs": 128},
                    predictor="oracle",
                    decode_policy={"name": "finish-ratio", "ratio": 0.5},
                ),
            ),
        ):
            assert api.ScenarioSpec.from_json(spec.to_json()) == spec

    def test_sweep_round_trip_equality(self):
        sweep = api.SweepSpec(
            name="s",
            base=hetero_spec(),
            axes=(api.SweepAxis("control.router", ("jsq", "round-robin")),),
        )
        assert api.SweepSpec.from_json(sweep.to_json()) == sweep
        loaded = api.load_spec(json.loads(sweep.to_json()))
        assert isinstance(loaded, api.SweepSpec) and loaded == sweep

    def test_string_slo_mix_normalized_to_dict(self):
        spec = api.WorkloadSpec(slo_mix="interactive:0.7,batch:0.3")
        assert spec.slo_mix == {"interactive": 0.7, "batch": 0.3}

    def test_unknown_fields_rejected(self):
        data = api.ScenarioSpec().to_dict()
        data["turbo"] = True
        with pytest.raises(ValueError, match="unknown field"):
            api.ScenarioSpec.from_dict(data)
        data = api.ScenarioSpec().to_dict()
        data["workload"]["qps"] = 3
        with pytest.raises(ValueError, match="unknown field"):
            api.ScenarioSpec.from_dict(data)

    def test_schema_version_mismatch_rejected(self):
        data = api.ScenarioSpec().to_dict()
        data["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            api.ScenarioSpec.from_dict(data)


# --------------------------------------------------------------------- #
# Validation.
# --------------------------------------------------------------------- #
class TestValidation:
    def test_unknown_system(self):
        with pytest.raises(ValueError, match="unknown system"):
            api.EngineSpec(system="ZeroBubble")

    def test_unknown_router(self):
        with pytest.raises(ValueError, match="unknown router"):
            api.ControlSpec(router="chaos")

    def test_unknown_config_key(self):
        with pytest.raises(ValueError, match="EngineConfig"):
            api.EngineSpec(config={"warp_speed": 9})

    def test_unknown_autoscaler_key(self):
        with pytest.raises(ValueError, match="Autoscaler"):
            api.ControlSpec(autoscaler={"vibes": 1})

    def test_bad_workload(self):
        with pytest.raises(ValueError, match="positive"):
            api.WorkloadSpec(scale=-1.0)
        with pytest.raises(ValueError, match="rate_rps"):
            api.WorkloadSpec(arrival="poisson")
        with pytest.raises(ValueError, match="arrival"):
            api.WorkloadSpec(arrival="psychic")
        with pytest.raises(ValueError, match="sum to 1"):
            api.WorkloadSpec(slo_mix="interactive:3,batch:1")

    def test_bad_fleet(self):
        with pytest.raises(ValueError, match="unknown node"):
            api.FleetSpec(node="TPU")
        with pytest.raises(ValueError, match="replicas"):
            api.FleetSpec(replicas=0)

    def test_engine_mode_constraints(self):
        with pytest.raises(ValueError, match="exactly one replica"):
            api.ScenarioSpec(mode="engine", fleet=api.FleetSpec(replicas=2))
        with pytest.raises(ValueError, match="autoscale"):
            api.ScenarioSpec(mode="engine", control=api.ControlSpec(autoscale=True))

    def test_systems_length_checked_against_fleet(self):
        with pytest.raises(ValueError, match="system names"):
            api.ScenarioSpec(
                fleet=api.FleetSpec(replicas=3),
                engine=api.EngineSpec(systems=("TD-Pipe", "PP+SB")),
            )

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="ratio"):
            api.EngineSpec(prefill_policy={"name": "occupancy"})
        with pytest.raises(ValueError, match="unknown prefill_policy"):
            api.EngineSpec(prefill_policy={"name": "vibes"})

    def test_policy_rejects_keys_the_builder_would_drop(self):
        # A knob the policy constructor ignores must fail at build time, not
        # silently record a setting that never applied.
        with pytest.raises(ValueError, match="check_interval"):
            api.EngineSpec(
                prefill_policy={"name": "occupancy", "ratio": 0.8, "check_interval": 5}
            )
        with pytest.raises(ValueError, match="ratio"):
            api.EngineSpec(prefill_policy={"name": "greedy", "ratio": 0.5})
        # Keys the builder consumes stay accepted.
        api.EngineSpec(
            decode_policy={"name": "intensity", "peak_batch_size": 128},
        )

    def test_workload_slo_mix_string_as_strict_as_parser(self):
        # The spec front door must reject exactly what parse_slo_mix rejects.
        with pytest.raises(ValueError, match="duplicate"):
            api.WorkloadSpec(slo_mix="interactive:0.5,interactive:0.5")
        with pytest.raises(ValueError, match="malformed"):
            api.WorkloadSpec(slo_mix="interactive:abc")

    def test_auto_mode_resolution(self):
        assert api.ScenarioSpec().resolved_mode == "engine"
        assert hetero_spec().resolved_mode == "cluster"
        assert (
            api.ScenarioSpec(fleet=api.FleetSpec(replicas=2)).resolved_mode
            == "cluster"
        )


# --------------------------------------------------------------------- #
# Overrides and sweeps.
# --------------------------------------------------------------------- #
class TestOverridesAndSweeps:
    def test_dotted_override(self):
        spec = hetero_spec().with_overrides(
            {"control.router": "deadline", "engine.config.max_num_seqs": 64}
        )
        assert spec.control.router == "deadline"
        assert spec.engine.config == {"max_num_seqs": 64}
        # The original is untouched (value semantics).
        assert hetero_spec().control.router == "jsq"

    def test_override_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            hetero_spec().with_overrides({"control.warp": 1})

    def test_override_into_none_dict_fields(self):
        # Any dict-typed field that is currently None seeds an empty dict —
        # not just control.autoscaler.
        spec = api.ScenarioSpec().with_overrides(
            {"engine.prefill_policy.name": "greedy"}
        )
        assert spec.engine.prefill_policy == {"name": "greedy"}
        spec = api.ScenarioSpec().with_overrides(
            {"control.autoscaler.min_replicas": 2}
        )
        assert spec.control.autoscaler == {"min_replicas": 2}
        spec = api.ScenarioSpec().with_overrides(
            {"workload.slo_mix.interactive": 1.0}
        )
        assert spec.workload.slo_mix == {"interactive": 1.0}

    def test_override_validates_value(self):
        with pytest.raises(ValueError, match="unknown router"):
            hetero_spec().with_overrides({"control.router": "chaos"})

    def test_parse_set_override(self):
        assert api.parse_set_override("workload.scale=0.05") == (
            "workload.scale", 0.05,
        )
        assert api.parse_set_override("control.router=jsq") == (
            "control.router", "jsq",
        )
        assert api.parse_set_override("control.autoscale=true") == (
            "control.autoscale", True,
        )

    def test_sweep_expansion_order(self):
        sweep = api.SweepSpec(
            base=api.ScenarioSpec(mode="engine"),
            axes=(
                api.SweepAxis("engine.config.max_num_seqs", (128, 256)),
                api.SweepAxis("engine.system", ("TP+SB", "TD-Pipe")),
            ),
        )
        points = sweep.expand()
        assert sweep.num_points == len(points) == 4
        # First axis outermost: classic nested-loop order.
        assert [p.overrides["engine.system"] for p in points] == [
            "TP+SB", "TD-Pipe", "TP+SB", "TD-Pipe",
        ]
        assert points[0].spec.engine.config["max_num_seqs"] == 128
        assert points[3].spec.engine.system == "TD-Pipe"

    def test_sweep_bad_axis_value_fails_at_build_time(self):
        with pytest.raises(ValueError, match="unknown router"):
            api.SweepSpec(
                base=api.ScenarioSpec(),
                axes=(api.SweepAxis("control.router", ("jsq", "chaos")),),
            )


# --------------------------------------------------------------------- #
# Registry.
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_registered_names(self):
        names = api.scenario_names()
        for expected in (
            "cluster-hetero",
            "cluster-autoscale",
            "fig15-work-stealing",
            "sweep-chunk-budget",
            "sweep-allreduce-efficiency",
        ):
            assert expected in names, names

    def test_get_scenario_builds_parameterized_spec(self):
        sweep = api.get_scenario(
            "cluster-hetero", scale_factor=0.02, routers=("jsq",)
        )
        assert isinstance(sweep, api.SweepSpec)
        assert sweep.base.workload.scale == 0.02
        assert sweep.num_points == 1

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            api.get_scenario("fig99")


# --------------------------------------------------------------------- #
# Execution: spec path == legacy shim path.
# --------------------------------------------------------------------- #
class TestRunEquivalence:
    def test_run_spec_matches_run_cluster_shim(self):
        """The acceptance keystone: one scenario, two entry points, byte-
        identical ClusterResults."""
        spec = hetero_spec()
        direct = api.run(spec).result
        legacy = run_cluster(
            "TD-Pipe",
            model="13B",
            router="jsq",
            rate_rps=8.0,
            scale=TINY,
            fleet="l20:1,a100:1",
            slo_mix="interactive:0.7,batch:0.3",
            autoscaler=True,
        )
        assert direct.summary() == legacy.summary()
        assert direct.makespan == legacy.makespan
        assert direct.requests_per_replica == legacy.requests_per_replica
        assert direct.fleet_timeline == legacy.fleet_timeline
        assert direct.latency.summary() == legacy.latency.summary()
        assert [r.summary() for r in direct.replica_results] == [
            r.summary() for r in legacy.replica_results
        ]

    def test_run_spec_matches_run_system_shim(self):
        spec = api.ScenarioSpec(
            mode="engine",
            workload=api.WorkloadSpec(scale=TINY.factor, seed=TINY.seed),
            fleet=api.FleetSpec(node="L20", num_gpus=2),
            engine=api.EngineSpec(system="TP+SB", model="13B"),
        )
        direct = api.run(spec).result
        legacy = run_system("TP+SB", "L20", "13B", scale=TINY, num_gpus=2)
        assert direct.summary() == legacy.summary()
        assert direct.makespan == legacy.makespan

    def test_config_override_equivalence(self):
        cfg = EngineConfig(max_num_seqs=64)
        legacy = run_system("PP+HB", "L20", "13B", scale=TINY, config=cfg)
        spec = api.ScenarioSpec(
            mode="engine",
            workload=api.WorkloadSpec(scale=TINY.factor, seed=TINY.seed),
            fleet=api.FleetSpec(node="L20"),
            engine=api.EngineSpec(
                system="PP+HB", model="13B", config={"max_num_seqs": 64}
            ),
        )
        direct = api.run(spec).result
        assert direct.summary() == legacy.summary()

    def test_artifact_embeds_resolved_replayable_spec(self):
        artifact = api.run(hetero_spec())
        record = artifact.to_record()
        assert record["schema_version"] == api.SCHEMA_VERSION
        assert record["kind"] == "cluster"
        rebuilt = api.ScenarioSpec.from_dict(record["spec"])
        assert rebuilt == artifact.spec
        # Replaying the embedded spec reproduces the run exactly.
        replay = api.run(rebuilt).result
        assert replay.summary() == artifact.result.summary()

    def test_shim_records_no_opaque_overrides_for_declarative_args(self):
        # A fully declarative call leaves nothing opaque: the spec alone
        # reproduces it.
        artifact = api.run(hetero_spec())
        assert artifact.opaque_overrides == ()

    def test_engine_artifact_kind(self):
        artifact = api.run(
            api.ScenarioSpec(
                mode="engine",
                workload=api.WorkloadSpec(scale=TINY.factor),
                engine=api.EngineSpec(system="TP+SB", model="13B"),
                fleet=api.FleetSpec(num_gpus=2),
            )
        )
        assert artifact.kind == "engine"
        assert artifact.to_record()["throughput_tps"] > 0


# --------------------------------------------------------------------- #
# CLI `run` subcommand.
# --------------------------------------------------------------------- #
class TestCLIRun:
    def test_run_spec_file_with_set_and_bench_json(self, capsys, tmp_path):
        from repro.cli import main

        spec_path = tmp_path / "scenario.json"
        spec_path.write_text(hetero_spec().to_json())
        out_path = tmp_path / "BENCH_spec.json"
        assert main([
            "run", "--spec", str(spec_path),
            "--set", "control.router=round-robin",
            "--bench-json", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "round-robin" in out
        record = json.loads(out_path.read_text())
        assert record["spec"]["control"]["router"] == "round-robin"
        assert record["schema_version"] == api.SCHEMA_VERSION

    def test_run_registered_sweep(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--spec", "fig15-work-stealing",
            "--set", "workload.scale=0.02",
        ]) == 0
        out = capsys.readouterr().out
        assert "engine.work_stealing=True" in out
        assert "engine.work_stealing=False" in out

    def test_run_requires_spec(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run"])

    def test_spec_flag_rejected_elsewhere(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fig11", "--spec", "x.json"])

    def test_missing_spec_file(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "--spec", "/nonexistent/spec.json"])


def test_sweep_points_carry_coordinates():
    sweep = api.get_scenario("sweep-max-num-seqs", caps=(128,), scale_factor=0.02)
    artifacts = api.run_sweep(sweep)
    assert len(artifacts) == 1
    assert artifacts[0].overrides == {"engine.config.max_num_seqs": 128}
    assert artifacts[0].result.throughput > 0


def test_example_scenarios_load_and_validate():
    from pathlib import Path

    scenario_dir = Path(__file__).parent.parent / "examples" / "scenarios"
    paths = sorted(scenario_dir.glob("*.json"))
    assert len(paths) >= 3, "gallery must hold at least three scenarios"
    kinds = set()
    for path in paths:
        spec = api.load_spec(json.loads(path.read_text()))
        kinds.add(type(spec).__name__)
        if isinstance(spec, api.ScenarioSpec):
            assert api.ScenarioSpec.from_json(spec.to_json()) == spec
    assert kinds == {"ScenarioSpec", "SweepSpec"}


def test_with_overrides_immutability_of_dataclasses():
    spec = hetero_spec()
    frozen = dataclasses.replace(spec)  # frozen dataclasses copy cleanly
    assert frozen == spec
