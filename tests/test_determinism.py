"""Determinism regression: same seed + config => byte-identical summaries.

Guards the shared-clock refactor: every engine event now lives on a heap that
may be shared between replicas, so any hidden ordering dependence (dict
iteration, float accumulation order, tie-breaking) would show up here as a
summary drift between two identical runs.
"""

from repro.cluster import Autoscaler
from repro.core import TDPipeEngine
from repro.experiments.common import default_scale, run_cluster
from repro.hardware import make_node
from repro.models import LLAMA2_13B
from repro.predictor import OraclePredictor
from repro.workload import generate_requests, with_poisson_arrivals

SCALE = default_scale(factor=0.02, seed=0)


def run_tdpipe_once():
    engine = TDPipeEngine(make_node("L20", 4), LLAMA2_13B, OraclePredictor())
    reqs = with_poisson_arrivals(generate_requests(80, seed=13), 6.0, seed=13)
    return engine.run(reqs)


def run_cluster_once():
    return run_cluster(
        "TD-Pipe",
        "L20",
        "13B",
        replicas=3,
        router="phase-aware",
        rate_rps=9.0,
        scale=SCALE,
        predictor=OraclePredictor(),
    )


def test_tdpipe_summary_byte_identical():
    r1, r2 = run_tdpipe_once(), run_tdpipe_once()
    assert r1.summary() == r2.summary()
    assert r1.latency.summary() == r2.latency.summary()
    assert r1.makespan == r2.makespan
    assert [(s.phase, s.start, s.end) for s in r1.phase_spans] == [
        (s.phase, s.start, s.end) for s in r2.phase_spans
    ]


def test_cluster_summary_byte_identical():
    r1, r2 = run_cluster_once(), run_cluster_once()
    assert r1.summary() == r2.summary()
    assert r1.makespan == r2.makespan
    assert r1.requests_per_replica == r2.requests_per_replica
    assert [r.summary() for r in r1.replica_results] == [
        r.summary() for r in r2.replica_results
    ]
    assert r1.latency.summary() == r2.latency.summary()
    # Fixed fleets have the trivial timeline — no autoscaler, no drift.
    assert r1.fleet_timeline == r2.fleet_timeline == [(0.0, 3)]


def run_autoscaled_cluster_once():
    return run_cluster(
        "TD-Pipe",
        "L20",
        "13B",
        replicas=3,
        router="jsq",
        rate_rps=12.0,
        scale=SCALE,
        predictor=OraclePredictor(),
        slo_mix="interactive:0.7,batch:0.3",
        autoscaler=Autoscaler(min_replicas=1),
    )


def test_autoscaled_cluster_byte_identical():
    """Fleet-size changes ride the shared heap; two runs must not drift."""
    r1, r2 = run_autoscaled_cluster_once(), run_autoscaled_cluster_once()
    assert r1.summary() == r2.summary()
    assert r1.fleet_timeline == r2.fleet_timeline
    assert len({n for _, n in r1.fleet_timeline}) > 1, "autoscaler never acted"
    assert r1.replica_active_time == r2.replica_active_time
    assert r1.requests_per_replica == r2.requests_per_replica
    assert [
        (name, s.count, s.attainment) for name, s in r1.slo_attainment.items()
    ] == [(name, s.count, s.attainment) for name, s in r2.slo_attainment.items()]
    assert r1.latency.summary() == r2.latency.summary()
