"""Property-based tests for the discrete-event simulation kernel.

Hypothesis drives arbitrary schedule/cancel programs through the
:class:`Simulator` and checks the kernel's contract:

* callbacks execute in (time, insertion-seq) order, cancelled ones never run;
* ``run(until=...)`` never executes an event stamped past ``until``;
* ``events_processed`` equals the number of callbacks actually run;
* ``pending`` (now an O(1) counter) always agrees with a naive heap scan,
  including across the cancelled-event compaction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Event, Simulator

# A program is a list of operations: ("schedule", delay, cancel_later) or
# ("run_until", horizon-fraction).  Delays are floats in [0, 10].
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("schedule"),
            st.floats(0.0, 10.0, allow_nan=False),
            st.booleans(),
        ),
        st.tuples(st.just("run_until"), st.floats(0.0, 10.0, allow_nan=False)),
    ),
    min_size=1,
    max_size=60,
)


def stored_entries(sim):
    """All undispatched bucket entries, including any step() cursor tail."""
    entries = [cb for bucket in sim._buckets.values() for cb in bucket]
    if sim._cursor is not None:
        _t, bucket, i = sim._cursor
        entries.extend(bucket[i:])
    return entries


def naive_pending(sim):
    # Bucket entries are bare callbacks (never cancellable) or Events
    # carrying the cancelled flag.
    return sum(
        1
        for item in stored_entries(sim)
        if not (isinstance(item, Event) and item.cancelled)
    )


def execute(program):
    """Run a schedule/cancel program; return (sim, executed, live_records)."""
    sim = Simulator()
    executed = []
    records = []  # (time, seq, cancelled_flag) in creation order

    for op in program:
        if op[0] == "schedule":
            _, delay, cancel_later = op
            record = {"cancelled": cancel_later}

            def cb(record=record):
                executed.append((record["time"], record["seq"]))

            ev = sim.schedule(delay, cb)
            record["time"], record["seq"] = ev.time, ev.seq
            records.append((ev, record))
            if cancel_later:
                ev.cancel()
        else:
            sim.run(until=sim.now + op[1])
        assert sim.pending == naive_pending(sim)
    sim.run()
    assert sim.pending == naive_pending(sim) == 0
    return sim, executed, records


@settings(max_examples=120, deadline=None)
@given(program=ops)
def test_execution_order_and_cancellation(program):
    sim, executed, records = execute(program)
    live = [(r["time"], r["seq"]) for _, r in records if not r["cancelled"]]
    # Every live event ran exactly once; cancelled events never ran.
    assert sorted(executed) == sorted(live)
    # Execution respects (time, seq) order *within* each drain segment; the
    # full trace is still globally time-ordered because later segments only
    # schedule at or after the current clock.
    times = [t for t, _ in executed]
    assert times == sorted(times)
    for (t1, s1), (t2, s2) in zip(executed, executed[1:]):
        if t1 == t2:
            assert s1 < s2, "tie not broken by insertion order"


@settings(max_examples=120, deadline=None)
@given(program=ops)
def test_events_processed_matches_callbacks_run(program):
    sim, executed, _ = execute(program)
    assert sim.events_processed == len(executed)


@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=40),
    until=st.floats(0.0, 10.0, allow_nan=False),
)
def test_run_until_never_overshoots(delays, until):
    sim = Simulator()
    executed = []
    for d in delays:
        sim.schedule(d, lambda d=d: executed.append(d))
    sim.run(until=until)
    assert all(d <= until for d in executed)
    assert sim.now <= until or not executed
    # The remainder still runs to completion afterwards.
    sim.run()
    assert sorted(executed) == sorted(delays)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(8, 80),
    cancel_frac=st.floats(0.5, 1.0),
    seed=st.integers(0, 2**16),
)
def test_compaction_preserves_semantics(n, cancel_frac, seed):
    """Cancelling most of the heap triggers compaction; order must survive."""
    import random

    rng = random.Random(seed)
    sim = Simulator()
    executed = []
    events = []
    for i in range(n):
        delay = rng.uniform(0.0, 5.0)
        events.append(sim.schedule(delay, lambda i=i: executed.append(i)))
    keep = set()
    for i, ev in enumerate(events):
        if rng.random() < cancel_frac:
            ev.cancel()
            ev.cancel()  # double-cancel must not corrupt the counters
        else:
            keep.add(i)
    assert sim.pending == naive_pending(sim) == len(keep)
    # Compaction keeps the stored entries within 2x the live count (plus
    # slack for the small-queue threshold below which tombstones are
    # tolerated).
    assert len(stored_entries(sim)) <= max(2 * sim.pending + 1, 8)
    sim.run()
    assert set(executed) == keep
    assert sim.events_processed == len(keep)


def test_run_until_ignores_tombstone_at_heap_top():
    """Regression: a cancelled event at time <= until must not let run()
    execute (and rewind from) a live event stamped past the horizon."""
    sim = Simulator()
    fired = []
    ev = sim.schedule(0.0, lambda: fired.append("cancelled"))
    sim.schedule(1.0, lambda: fired.append("late"))
    ev.cancel()
    sim.run(until=0.0)
    assert fired == []
    assert sim.now == 0.0
    sim.run()
    assert fired == ["late"]
    assert sim.now == 1.0


def test_cancel_after_execution_is_harmless():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, lambda: fired.append(1))
    other = sim.schedule(2.0, lambda: fired.append(2))
    sim.run(until=1.5)
    ev.cancel()  # already executed: must not corrupt the pending counter
    assert fired == [1]
    assert sim.pending == naive_pending(sim) == 1
    sim.run()
    assert fired == [1, 2]
    assert sim.pending == 0
    assert other.cancelled is False


def test_nested_scheduling_keeps_counters_consistent():
    sim = Simulator()
    seen = []

    def recurse(depth):
        seen.append(sim.now)
        if depth:
            sim.schedule(1.0, lambda: recurse(depth - 1))

    sim.schedule(0.0, lambda: recurse(4))
    sim.run()
    assert seen == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert sim.pending == 0
    assert sim.events_processed == 5
