"""Smoke tests for the experiment harness (tiny scale, structure checks).

Full-fidelity shape checks live in benchmarks/; these verify the harness
machinery itself: caching, OOM handling, result structures and formatting.
"""

import pytest

from repro.experiments import (
    PAPER_COMBOS,
    SYSTEMS,
    default_scale,
    eval_requests,
    fig06_tp_breakdown,
    fig11_overall,
    fig14_predictor,
    get_dataset,
    get_predictor,
    run_system,
    tables,
)
from repro.kvcache import OutOfMemoryError

TINY = default_scale(factor=0.02, seed=0)  # 100 requests


class TestCommon:
    def test_dataset_cached(self):
        assert get_dataset(TINY) is get_dataset(TINY)

    def test_predictor_cached(self):
        assert get_predictor(TINY) is get_predictor(TINY)

    def test_eval_requests_fresh_copies(self):
        a = eval_requests(TINY)
        b = eval_requests(TINY)
        assert a[0] is not b[0]
        assert a[0].output_len == b[0].output_len

    def test_scale_arithmetic(self):
        s = default_scale(factor=0.5)
        assert s.eval_requests == 2500
        assert s.corpus_size == 10_000

    def test_run_system_all_names(self):
        for system in SYSTEMS:
            res = run_system(system, "L20", "13B", scale=TINY, num_gpus=2)
            assert res.completed_requests == TINY.eval_requests, system

    def test_run_system_oom(self):
        with pytest.raises(OutOfMemoryError):
            run_system("TP+SB", "L20", "32B", scale=TINY, num_gpus=1)

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            run_system("ZeroBubble", "L20", "13B", scale=TINY)

    def test_paper_combos(self):
        assert len(PAPER_COMBOS) == 4


class TestTables:
    def test_table1_formatting(self):
        out = tables.format_table1()
        assert "L20" in out and "A100" in out and "14.65" in out

    def test_table2_formatting(self):
        out = tables.format_table2()
        assert "Qwen2.5-32B-Instruct" in out


class TestFig06:
    def test_points_structure(self):
        pts = fig06_tp_breakdown.run(device_counts=(1, 2))
        assert len(pts) == 4  # 2 nodes x 2 counts
        assert fig06_tp_breakdown.format_results(pts)

    def test_normalised_to_one_gpu(self):
        pts = fig06_tp_breakdown.run(device_counts=(1, 4))
        for p in pts:
            if p.num_gpus == 1:
                assert p.normalized_total == pytest.approx(1.0)
            else:
                assert p.normalized_total < 1.0


class TestFig11:
    def test_small_grid(self):
        res = fig11_overall.run(scale=TINY, combos=(("L20", "13B"),), device_counts=(1, 2))
        assert len(res.cells) == 10
        assert res.throughput("L20", "13B", 2, "TD-Pipe") > 0
        assert fig11_overall.format_results(res)

    def test_oom_cells_recorded(self):
        res = fig11_overall.run(
            scale=TINY, combos=(("L20", "32B"),), device_counts=(1,), systems=("TP+SB",)
        )
        assert res.cells[0].oom
        assert res.best_system("L20", "32B", 1) == "OOM"

    def test_speedup_handles_oom(self):
        res = fig11_overall.run(
            scale=TINY, combos=(("L20", "32B"),), device_counts=(1,),
            systems=("TP+SB", "PP+SB"),
        )
        assert res.speedup("L20", "32B", 1, "TP+SB", "PP+SB") is None


class TestFig14:
    def test_structure(self):
        ev = fig14_predictor.run(scale=default_scale(factor=0.05))
        assert 0.0 < ev.bin_accuracy <= 1.0
        assert len(ev.group_sizes) == len(ev.accumulated_errors)
        assert fig14_predictor.format_results(ev)
