"""The incremental routing fast path must be bit-identical to the sweep.

Contracts under test (the large-fleet control-plane fast path):

* **decision parity** — every dynamic router picks the same destination
  for every request whether routing cost is paid by re-sweeping the fleet
  (``TDPIPE_ROUTING_SWEEP=1``, the reference path) or by the incremental
  dirty-tracking structures, including under autoscaler activations and
  drains and under externally forced ``active``/``draining`` flag writes;
* **store identity** — ``api.run`` on a cluster spec files records that
  are byte-identical (modulo wall time) either way, so the fast path can
  never fork memoized sweeps;
* **allocation freedom** — incremental routing with a request-independent
  router captures zero ``ReplicaSnapshot`` objects; the sweep path
  captures O(fleet) of them per decision;
* **graceful fallback** — replicas without the observer hook, or an
  explicit ``routing_sweep`` override, silently keep the sweep semantics.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.cluster import ClusterEngine, ControlPlane, make_router
from repro.cluster.control import (
    reset_snapshot_capture_count,
    snapshot_capture_count,
)
from repro.cluster.control.autoscaler import Autoscaler
from repro.cluster.routing import ROUTERS
from repro.core import TDPipeEngine
from repro.hardware import make_node
from repro.models import LLAMA2_13B
from repro.predictor import OraclePredictor
from repro.runtime.state import RequestState
from repro.sim import Simulator
from repro.workload import (
    generate_requests,
    with_poisson_arrivals,
    with_slo_mix,
)

#: Every router with per-request dynamics (static needs a fixed plan).
DYNAMIC_ROUTERS = (*ROUTERS, "jsq-raw")


def build(node_name="L20", sim=None):
    return TDPipeEngine(
        make_node(node_name, 2), LLAMA2_13B, OraclePredictor(), sim=sim
    )


def mixed_workload(n=48, seed=3):
    reqs = with_poisson_arrivals(generate_requests(n, seed=seed), 10.0, seed=seed)
    return with_slo_mix(reqs, "interactive:0.5,batch:0.5", seed=seed)


def run_cluster(router, *, sweep, autoscale=True, n=48, seed=3):
    nodes = ("L20", "A100", "L20", "L20")
    autoscaler = (
        Autoscaler(min_replicas=1, interval_s=0.25) if autoscale else None
    )
    cluster = ClusterEngine(
        [lambda sim, node=node: build(node, sim=sim) for node in nodes],
        router=router,
        autoscaler=autoscaler,
        routing_sweep=sweep,
    )
    result = cluster.run(mixed_workload(n, seed))
    return cluster, result


class _StubBlockManager:
    def __init__(self):
        self.usage_ratio = 0.0


class _StubReplica:
    """Just the routing signal surface: waiting/in_system/kv + the hook."""

    system_name = "stub"

    def __init__(self):
        self.waiting = []
        self.in_system = 0
        self.block_manager = _StubBlockManager()
        self.phase = None
        self._observer = None

    def set_load_observer(self, observer):
        self._observer = observer

    def notify(self):
        if self._observer is not None:
            self._observer()

    def admit_fake(self, request):
        self.waiting.append(RequestState(request))
        self.in_system += 1
        self.notify()

    def finish_fake(self):
        if self.waiting:
            self.waiting.pop(0)
        self.in_system -= 1
        self.block_manager.usage_ratio = max(
            0.0, self.block_manager.usage_ratio - 0.01
        )
        self.notify()


def drive_plane(router_name, *, sweep, fleet=6, n=40, flag_script=()):
    """Route n requests through a stub fleet, applying forced flag writes.

    ``flag_script`` maps a decision step to a list of ``(attr, idx, value)``
    writes poked straight into ``plane.active``/``plane.draining`` — the
    external-actor path (operator, test, future policy) that must reset the
    router's incremental indices via the ``_FlagList`` write hook.
    Returns the destination sequence.
    """
    script = dict(flag_script)
    stubs = [_StubReplica() for _ in range(fleet)]
    plane = ControlPlane(
        stubs, router=make_router(router_name), routing_sweep=sweep
    )
    plane.begin(Simulator(), total_requests=n)
    requests = generate_requests(min(n, 64), seed=0)
    destinations = []
    in_flight = []
    for step in range(n):
        for attr, idx, value in script.get(step, ()):
            getattr(plane, attr)[idx] = value
        idx = plane.route(requests[step % len(requests)])
        destinations.append(idx)
        stubs[idx].admit_fake(requests[step % len(requests)])
        in_flight.append(idx)
        if len(in_flight) > 2 * fleet:
            stubs[in_flight.pop(0)].finish_fake()
    return plane, destinations


# --------------------------------------------------------------------- #
# Decision parity
# --------------------------------------------------------------------- #
class TestRoutingParity:
    @pytest.mark.parametrize("router", DYNAMIC_ROUTERS)
    def test_cluster_run_parity_with_autoscaler(self, router):
        """Same destinations and same result on a mixed, autoscaled fleet."""
        sweep_cluster, sweep_result = run_cluster(router, sweep=True)
        inc_cluster, inc_result = run_cluster(router, sweep=False)
        # The fast path actually engaged (and the reference did not).
        assert sweep_cluster.control._tracker is None
        assert inc_cluster.control._tracker is not None
        assert inc_cluster.assignments == sweep_cluster.assignments
        assert inc_result.completed_requests == sweep_result.completed_requests
        assert inc_result.makespan == sweep_result.makespan
        assert (
            inc_result.requests_per_replica == sweep_result.requests_per_replica
        )

    @pytest.mark.parametrize("router", DYNAMIC_ROUTERS)
    def test_forced_flag_writes_keep_parity(self, router):
        """Externally poked active/draining flags reset incremental state.

        The satellite pin: an external actor writing ``plane.active`` /
        ``plane.draining`` directly (not through the autoscaler) must
        invalidate the router's cached indices — destinations stay
        identical to a sweep plane given the same forced sequence.
        """
        script = {
            5: (("draining", 2, True),),
            9: (("active", 4, False),),
            14: (("draining", 2, False), ("active", 4, True)),
            20: (("active", 0, False), ("active", 1, False)),
            28: (("active", 0, True), ("active", 1, True)),
        }
        _, sweep_dests = drive_plane(
            router, sweep=True, flag_script=script.items()
        )
        plane, inc_dests = drive_plane(
            router, sweep=False, flag_script=script.items()
        )
        assert plane._tracker is not None
        assert inc_dests == sweep_dests

    def test_flag_write_bumps_topology_epoch(self):
        plane, _ = drive_plane("jsq", sweep=False, n=4)
        epoch = plane._tracker.epoch
        plane.draining[1] = True
        assert plane._tracker.epoch == epoch + 1
        plane.active[2] = False
        assert plane._tracker.epoch == epoch + 2


# --------------------------------------------------------------------- #
# Store identity through api.run
# --------------------------------------------------------------------- #
class TestStoreIdentity:
    @pytest.mark.parametrize("router", ("jsq", "deadline"))
    def test_records_identical_across_paths(self, tmp_path, router, monkeypatch):
        spec = api.ScenarioSpec(
            mode="cluster",
            workload=api.WorkloadSpec(
                scale=0.02, seed=0, arrival="poisson", rate_rps=10.0
            ),
            fleet=api.FleetSpec(node="L20", num_gpus=4, replicas=2),
            engine=api.EngineSpec(system="TD-Pipe", model="13B"),
            control=api.ControlSpec(router=router, autoscale=True),
        )
        monkeypatch.setenv("TDPIPE_ROUTING_SWEEP", "1")
        sweep_store = api.ArtifactStore(tmp_path / "sweep")
        sweep_store.put(api.run(spec))
        monkeypatch.delenv("TDPIPE_ROUTING_SWEEP")
        inc_store = api.ArtifactStore(tmp_path / "inc")
        inc_store.put(api.run(spec))

        assert sorted(inc_store.refs()) == sorted(sweep_store.refs())
        for ref in inc_store.refs():
            a = {
                k: v
                for k, v in inc_store.get_record(ref).items()
                if k != "wall_time_s"
            }
            b = {
                k: v
                for k, v in sweep_store.get_record(ref).items()
                if k != "wall_time_s"
            }
            assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


# --------------------------------------------------------------------- #
# Allocation freedom
# --------------------------------------------------------------------- #
class TestAllocationFreedom:
    def test_incremental_jsq_captures_no_snapshots(self):
        reset_snapshot_capture_count()
        drive_plane("jsq", sweep=False, n=50)
        assert snapshot_capture_count() == 0

    def test_sweep_jsq_captures_per_decision(self):
        reset_snapshot_capture_count()
        drive_plane("jsq", sweep=True, fleet=6, n=50)
        # O(routable) captures per decision: at least one per routed request.
        assert snapshot_capture_count() >= 50


# --------------------------------------------------------------------- #
# Fallback and overrides
# --------------------------------------------------------------------- #
class TestFallback:
    def test_replicas_without_hook_fall_back_to_sweep(self):
        class Hookless:
            def __init__(self):
                self.waiting = []
                self.in_system = 0
                self.block_manager = _StubBlockManager()

        plane = ControlPlane(
            [Hookless() for _ in range(3)], router=make_router("jsq")
        )
        plane.begin(Simulator(), total_requests=4)
        assert plane._tracker is None
        (req,) = generate_requests(1, seed=0)
        assert plane.route(req) in range(3)

    def test_env_var_and_ctor_precedence(self, monkeypatch):
        stubs = [_StubReplica() for _ in range(2)]

        def tracker_with(sweep_env, ctor):
            if sweep_env is None:
                monkeypatch.delenv("TDPIPE_ROUTING_SWEEP", raising=False)
            else:
                monkeypatch.setenv("TDPIPE_ROUTING_SWEEP", sweep_env)
            plane = ControlPlane(
                stubs, router=make_router("jsq"), routing_sweep=ctor
            )
            plane.begin(Simulator(), total_requests=0)
            return plane._tracker

        assert tracker_with(None, None) is not None  # default: fast path
        assert tracker_with("1", None) is None  # env forces the sweep
        assert tracker_with("0", None) is not None  # explicit "off" value
        assert tracker_with("1", False) is not None  # ctor beats the env
        assert tracker_with(None, True) is None  # ctor forces the sweep
