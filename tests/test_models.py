"""Unit tests for model specs (Table 2) and device partitioning."""

import pytest

from repro.models import (
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA_30B,
    QWEN25_32B,
    ModelSpec,
    get_model,
    partition_layers,
    pipeline_shards,
    weight_bytes_per_gpu,
)


class TestModelSpec:
    def test_table2_weights(self):
        # Paper Table 2: 26 GB / 64 GB / 140 GB.
        assert LLAMA2_13B.weight_bytes / 1e9 == pytest.approx(26, rel=0.05)
        assert QWEN25_32B.weight_bytes / 1e9 == pytest.approx(64, rel=0.05)
        assert LLAMA2_70B.weight_bytes / 1e9 == pytest.approx(140, rel=0.05)

    def test_table2_architecture(self):
        assert (LLAMA2_13B.n_layers, LLAMA2_13B.hidden_size) == (40, 5120)
        assert (QWEN25_32B.n_layers, QWEN25_32B.hidden_size) == (64, 5120)
        assert (LLAMA2_70B.n_layers, LLAMA2_70B.hidden_size) == (80, 8192)

    def test_gqa_shrinks_kv(self):
        # Paper: GQA gives the 32B/70B models smaller KV than the 13B.
        assert QWEN25_32B.n_kv_heads < QWEN25_32B.n_heads
        assert QWEN25_32B.kv_bytes_per_token < LLAMA2_13B.kv_bytes_per_token
        assert LLAMA2_70B.kv_bytes_per_token < LLAMA2_13B.kv_bytes_per_token

    def test_llama30b_kv_matches_paper(self):
        # Section 2.2.1: "KV cache of a single token in the Llama-30B occupies 1.52 MB".
        assert LLAMA_30B.kv_bytes_per_token / 1e6 == pytest.approx(1.52, rel=0.06)

    def test_head_dim(self):
        assert LLAMA2_70B.head_dim == 128
        assert LLAMA2_70B.kv_dim == 8 * 128

    def test_flops_positive_and_ordered(self):
        f13 = LLAMA2_13B.linear_flops_per_token_per_layer()
        f70 = LLAMA2_70B.linear_flops_per_token_per_layer()
        assert 0 < f13 < f70

    def test_prefill_attention_quadratic(self):
        m = LLAMA2_13B
        a = m.prefill_attn_flops_per_layer(128)
        b = m.prefill_attn_flops_per_layer(256)
        assert b == pytest.approx(4 * a)

    def test_invalid_heads_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec("bad", "bad", 2, 100, 7, 7, 400, 1000)
        with pytest.raises(ValueError):
            ModelSpec("bad", "bad", 2, 128, 8, 3, 400, 1000)

    def test_get_model(self):
        assert get_model("13b") is LLAMA2_13B
        assert get_model("Qwen2.5-32B-Instruct") is QWEN25_32B
        with pytest.raises(KeyError):
            get_model("405B")


class TestPartition:
    def test_partition_layers_balanced(self):
        assert partition_layers(80, 4) == [20, 20, 20, 20]
        assert partition_layers(62, 4) == [16, 16, 15, 15]
        assert sum(partition_layers(63, 4)) == 63

    def test_partition_single_stage(self):
        assert partition_layers(40, 1) == [40]

    def test_partition_invalid(self):
        with pytest.raises(ValueError):
            partition_layers(2, 4)
        with pytest.raises(ValueError):
            partition_layers(4, 0)

    def test_shards_cover_all_layers(self):
        shards = pipeline_shards(LLAMA2_70B, 4)
        assert sum(s.n_layers for s in shards) == 80
        assert shards[0].layer_start == 0
        for a, b in zip(shards, shards[1:]):
            assert b.layer_start == a.layer_start + a.n_layers

    def test_embedding_and_head_placement(self):
        shards = pipeline_shards(LLAMA2_13B, 4)
        assert shards[0].has_embedding and not shards[0].has_lm_head
        assert shards[-1].has_lm_head and not shards[-1].has_embedding
        for s in shards[1:-1]:
            assert not s.has_embedding and not s.has_lm_head

    def test_single_stage_owns_everything(self):
        (shard,) = pipeline_shards(LLAMA2_13B, 1)
        assert shard.has_embedding and shard.has_lm_head

    def test_pp_weight_shards_sum_to_total(self):
        shards = pipeline_shards(LLAMA2_70B, 4)
        total = sum(s.weight_bytes_per_gpu for s in shards)
        assert total == pytest.approx(LLAMA2_70B.weight_bytes, rel=1e-6)

    def test_tp_divides_weights(self):
        w1 = weight_bytes_per_gpu(LLAMA2_13B, 1, 1)
        w4 = weight_bytes_per_gpu(LLAMA2_13B, 1, 4)
        assert w4 == pytest.approx(w1 / 4)

    def test_tp_divides_kv(self):
        shards = pipeline_shards(QWEN25_32B, 1, tp_degree=4)
        assert shards[0].kv_bytes_per_token_per_gpu == pytest.approx(
            QWEN25_32B.kv_bytes_per_token / 4
        )

    def test_pp_kv_per_stage(self):
        shards = pipeline_shards(QWEN25_32B, 4)
        per_stage = QWEN25_32B.kv_bytes_per_token / 4
        for s in shards:
            assert s.kv_bytes_per_token_per_gpu == pytest.approx(per_stage)
