"""Unit tests for the output-length predictor stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictor import (
    ConstantPredictor,
    OraclePredictor,
    PercentileBins,
    SoftmaxClassifier,
    accumulated_error,
    accumulated_error_curve,
    train_length_predictor,
)
from repro.workload import Request, build_dataset


class TestPercentileBins:
    def test_fit_basic(self):
        lengths = np.arange(1, 101, dtype=float)
        bins = PercentileBins.fit(lengths)
        assert bins.n_bins == 5
        assert len(bins.edges) == 4
        assert list(bins.edges) == sorted(bins.edges)

    def test_bin_of_respects_edges(self):
        lengths = np.arange(1, 101, dtype=float)
        bins = PercentileBins.fit(lengths)
        assert bins.bin_of(1.0) == 0
        assert bins.bin_of(1e9) == bins.n_bins - 1
        assert list(bins.bin_of(np.array([10.0, 60.0]))) == [0, 2]

    def test_bin_means_are_in_range(self):
        lengths = np.random.default_rng(0).lognormal(5, 1, size=1000)
        bins = PercentileBins.fit(lengths)
        assert list(bins.bin_means) == sorted(bins.bin_means)
        assert bins.bin_means[0] >= lengths.min()
        assert bins.bin_means[-1] <= lengths.max()

    def test_roundtrip_mean_consistency(self):
        lengths = np.random.default_rng(1).lognormal(5, 1, size=2000)
        bins = PercentileBins.fit(lengths)
        labels = bins.bin_of(lengths)
        for b in range(bins.n_bins):
            sel = lengths[labels == b]
            assert bins.bin_means[b] == pytest.approx(sel.mean())

    def test_describe(self):
        bins = PercentileBins.fit(np.arange(1, 101, dtype=float))
        desc = bins.describe()
        assert len(desc) == 5
        assert desc[-1].endswith("inf)")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PercentileBins.fit(np.array([]))

    def test_unsorted_percentiles_rejected(self):
        with pytest.raises(ValueError):
            PercentileBins.fit(np.arange(10.0), percentiles=(50.0, 25.0))


class TestSoftmaxClassifier:
    def test_learns_separable_data(self):
        rng = np.random.default_rng(0)
        n = 600
        y = rng.integers(0, 3, size=n)
        centres = np.array([[0, 0], [4, 0], [0, 4]], dtype=float)
        X = centres[y] + rng.normal(scale=0.5, size=(n, 2))
        clf = SoftmaxClassifier(n_classes=3, epochs=60, seed=0)
        clf.fit(X, y)
        assert clf.accuracy(X, y) > 0.95

    def test_predict_proba_normalised(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 4))
        y = rng.integers(0, 2, size=50)
        clf = SoftmaxClassifier(n_classes=2, epochs=5, seed=0)
        clf.fit(X, y)
        probs = clf.predict_proba(X)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)
        assert (probs >= 0).all()

    def test_unfitted_raises(self):
        clf = SoftmaxClassifier(n_classes=2)
        with pytest.raises(RuntimeError):
            clf.predict(np.zeros((1, 3)))

    def test_label_validation(self):
        clf = SoftmaxClassifier(n_classes=2)
        with pytest.raises(ValueError):
            clf.fit(np.zeros((4, 2)), np.array([0, 1, 2, 0]))

    def test_early_stopping_uses_validation(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 3))
        y = (X[:, 0] > 0).astype(int)
        clf = SoftmaxClassifier(n_classes=2, epochs=100, patience=3, seed=0)
        stats = clf.fit(X[:200], y[:200], X[200:], y[200:])
        assert stats.epochs_run <= 100
        assert 0.8 <= stats.best_val_accuracy <= 1.0


class TestLengthPredictor:
    @pytest.fixture(scope="class")
    def trained(self):
        splits = build_dataset(total=3000, seed=0)
        return splits, train_length_predictor(splits.train, splits.val, seed=0)

    def test_accuracy_in_paper_regime(self, trained):
        splits, predictor = trained
        acc = predictor.bin_accuracy(splits.test)
        # Paper Section 4.4.1: 0.52-0.58, well above 0.2 chance.
        assert acc > 0.40

    def test_predicted_lengths_are_bin_means(self, trained):
        _, predictor = trained
        req = Request(request_id=0, prompt_len=100, output_len=50,
                      features=np.zeros(9))
        assert predictor.predict_length(req) in list(predictor.bins.bin_means)

    def test_vectorised_matches_scalar(self, trained):
        splits, predictor = trained
        some = splits.test[:20]
        vec = predictor.predict_lengths(some)
        scal = [predictor.predict_length(r) for r in some]
        np.testing.assert_allclose(vec, scal)

    def test_accumulated_error_shrinks(self, trained):
        splits, predictor = trained
        curve = accumulated_error_curve(
            predictor, splits.test, group_sizes=(2, 32, 256), seed=0
        )
        assert curve.errors[0] > curve.errors[-1]
        assert curve.errors[-1] < 0.25

    def test_oracle_has_zero_error(self, trained):
        splits, _ = trained
        err = accumulated_error(OraclePredictor(), splits.test, group_size=16)
        assert err == 0.0

    def test_constant_predictor(self):
        p = ConstantPredictor(123.0)
        req = Request(request_id=0, prompt_len=10, output_len=5)
        assert p.predict_length(req) == 123.0

    def test_accumulated_error_validation(self, trained):
        splits, predictor = trained
        with pytest.raises(ValueError):
            accumulated_error(predictor, splits.test, group_size=0)
        with pytest.raises(ValueError):
            accumulated_error(predictor, splits.test[:3], group_size=10)

    def test_empty_train_rejected(self):
        with pytest.raises(ValueError):
            train_length_predictor([])


@settings(max_examples=30, deadline=None)
@given(lengths=st.lists(st.integers(1, 2000), min_size=10, max_size=300))
def test_bins_partition_property(lengths):
    """Property: every length maps to exactly one bin, and bin means are
    monotone non-decreasing."""
    arr = np.array(lengths, dtype=float)
    bins = PercentileBins.fit(arr)
    labels = bins.bin_of(arr)
    assert ((0 <= labels) & (labels < bins.n_bins)).all()
    assert list(bins.bin_means) == sorted(bins.bin_means)
