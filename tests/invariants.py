"""Reusable engine invariant checkers.

Universal properties every inference engine in this repo must satisfy after a
run, regardless of scheduling policy:

1. every submitted request finishes exactly once;
2. all KV-cache blocks are freed at end of run;
3. generated tokens equal requested output tokens (conservation);
4. phase spans (for phase-switching engines) are non-overlapping, lie within
   [0, makespan], cover every busy GPU interval, and — for offline workloads —
   tile the makespan without gaps.

``test_cluster.py`` applies these to all five single-node systems and to
every replica of a cluster; any new engine should import and reuse them.
"""

from __future__ import annotations

EPS = 1e-6


def check_phase_spans(result, contiguous=True):
    """Phase spans are ordered, non-overlapping, and cover the execution.

    ``contiguous=True`` (offline workloads: the engine never idles) further
    requires the spans to tile [0, makespan] exactly.  Online workloads may
    have idle gaps between spans, but busy GPU time must still be covered.
    """
    spans = result.phase_spans
    makespan = result.makespan
    if not spans:
        assert makespan == 0.0, "work was executed but no phase was recorded"
        return
    assert result.phase_switches == len(spans) - 1
    for span in spans:
        assert span.duration >= -EPS, f"negative-duration span {span}"
        assert -EPS <= span.start and span.end <= makespan + EPS, (
            f"span {span} outside [0, {makespan}]"
        )
    ordered = sorted(spans, key=lambda s: (s.start, s.end))
    for a, b in zip(ordered, ordered[1:]):
        assert b.start >= a.end - EPS, f"overlapping spans {a} / {b}"
    if contiguous:
        assert ordered[0].start <= EPS, f"first span starts at {ordered[0].start}"
        assert abs(ordered[-1].end - makespan) <= EPS, (
            f"last span ends at {ordered[-1].end}, makespan {makespan}"
        )
        for a, b in zip(ordered, ordered[1:]):
            assert b.start <= a.end + EPS, f"gap between {a} and {b}"
    # Every busy GPU interval belongs to exactly one phase.
    for timeline in result.trace.timelines:
        for iv in timeline.intervals:
            assert any(
                s.start - EPS <= iv.start and iv.end <= s.end + EPS for s in ordered
            ), f"busy interval [{iv.start}, {iv.end}) not covered by any phase span"


def check_engine_invariants(engine, result, requests, contiguous_phases=True):
    """Apply the universal single-engine invariants (see module docstring)."""
    reqs = list(requests)
    ids = sorted(r.request_id for r in reqs)

    # 1. Every submitted request finishes exactly once.
    finished_ids = [s.request_id for s in engine.finished]
    assert len(finished_ids) == len(set(finished_ids)), "request finished twice"
    assert sorted(finished_ids) == ids, "finished set != submitted set"
    assert result.completed_requests == len(reqs)
    assert not engine.waiting, "requests left waiting after run"
    assert not engine.inflight, "tasks left in flight after run"

    # 2. All KV blocks freed.
    bm = engine.block_manager
    assert bm.num_requests == 0, f"{bm.num_requests} allocations leaked"
    assert bm.free_blocks == bm.num_blocks, "KV blocks leaked"

    # 3. Token conservation.
    for state in engine.finished:
        assert state.generated == state.request.output_len, (
            f"request {state.request_id}: generated {state.generated} "
            f"of {state.request.output_len}"
        )
    assert result.total_output_tokens == sum(r.output_len for r in reqs)
    assert result.total_prompt_tokens == sum(r.prompt_len for r in reqs)

    # 4. Phase structure.  Only phase-switching engines (those exposing a
    # `phase` attribute, i.e. TD-Pipe) record spans; for them the spans must
    # exist whenever work was done.
    if hasattr(engine, "phase"):
        check_phase_spans(result, contiguous=contiguous_phases)
    else:
        assert not result.phase_spans


def check_cluster_invariants(cluster, result, requests):
    """Cluster-level invariants: routing is total, replicas are individually
    sound, and the aggregate equals the sum of its parts."""
    reqs = list(requests)
    ids = {r.request_id for r in reqs}

    # Routing assigned every request to exactly one valid replica.
    assert set(cluster.assignments) == ids, "router missed or invented requests"
    assert all(0 <= i < cluster.num_replicas for i in cluster.assignments.values())
    assert sum(result.requests_per_replica) == len(reqs)

    # Each replica satisfies the single-engine invariants on its share.
    by_replica = {i: [] for i in range(cluster.num_replicas)}
    for req in reqs:
        by_replica[cluster.assignments[req.request_id]].append(req)
    for i, (replica, rres) in enumerate(zip(cluster.replicas, result.replica_results)):
        assert replica.sim is cluster.sim, f"replica {i} not on the shared clock"
        check_engine_invariants(
            replica, rres, by_replica[i], contiguous_phases=False
        )
        assert result.requests_per_replica[i] == len(by_replica[i])

    # Aggregates equal the sum/max over replicas.
    parts = result.replica_results
    assert result.completed_requests == sum(r.completed_requests for r in parts) == len(reqs)
    assert result.total_prompt_tokens == sum(r.prompt_len for r in reqs)
    assert result.total_output_tokens == sum(r.output_len for r in reqs)
    assert abs(result.makespan - max(r.makespan for r in parts)) <= EPS
