"""Unit tests for the hardware substrate (GPU specs, interconnect, nodes)."""

import pytest

from repro.hardware import (
    A100,
    A100_NODE,
    L20,
    L20_NODE,
    GPUSpec,
    allreduce_time,
    get_gpu,
    make_node,
    p2p_time,
    pcie_switch,
)


class TestGPUSpec:
    def test_table1_l20(self):
        assert L20.fp16_tflops == 119.5
        assert L20.mem_bandwidth_gbps == 864.0
        assert L20.memory_gb == 48.0
        assert L20.allreduce_bw_gbps == 14.65

    def test_table1_a100(self):
        assert A100.fp16_tflops == 312.0
        assert A100.mem_bandwidth_gbps == 1935.0
        assert A100.memory_gb == 80.0
        assert A100.allreduce_bw_gbps == 14.82

    def test_derived_units(self):
        assert L20.flops == pytest.approx(119.5e12)
        assert L20.memory_bytes == pytest.approx(48e9)
        assert L20.effective_flops < L20.flops
        assert L20.effective_mem_bandwidth < L20.mem_bandwidth

    def test_usable_memory_subtracts_reserve(self):
        assert L20.usable_memory_bytes == pytest.approx(48e9 - L20.reserved_bytes)

    def test_usable_memory_never_negative(self):
        tiny = GPUSpec("tiny", 1.0, 1.0, 0.001, 1.0)
        assert tiny.usable_memory_bytes == 0.0

    def test_effective_flops_at_saturates(self):
        small = L20.effective_flops_at(64)
        large = L20.effective_flops_at(8192)
        assert small < large <= L20.effective_flops
        # Saturation: large batches approach the asymptote.
        assert large > 0.95 * L20.effective_flops

    def test_effective_flops_at_zero_tokens(self):
        assert L20.effective_flops_at(0) == L20.effective_flops

    def test_with_overrides(self):
        fast = L20.with_overrides(fp16_tflops=200.0)
        assert fast.fp16_tflops == 200.0
        assert fast.memory_gb == L20.memory_gb
        assert L20.fp16_tflops == 119.5  # original untouched

    def test_get_gpu_lookup(self):
        assert get_gpu("l20") is L20
        assert get_gpu("A100") is A100
        with pytest.raises(KeyError):
            get_gpu("H100")


class TestInterconnect:
    def test_allreduce_single_rank_free(self):
        ic = pcie_switch(14.65)
        assert allreduce_time(1e6, 1, ic) == 0.0

    def test_allreduce_scales_with_bytes(self):
        ic = pcie_switch(14.65)
        t1 = allreduce_time(1e6, 4, ic)
        t2 = allreduce_time(2e6, 4, ic)
        assert t2 > t1
        # Doubling bytes less than doubles the time (latency floor).
        assert t2 < 2 * t1

    def test_allreduce_efficiency_slows_transfers(self):
        fast = pcie_switch(14.65, allreduce_efficiency=1.0)
        slow = pcie_switch(14.65, allreduce_efficiency=0.5)
        assert allreduce_time(1e8, 4, slow) > allreduce_time(1e8, 4, fast)

    def test_allreduce_negative_bytes_rejected(self):
        ic = pcie_switch(14.65)
        with pytest.raises(ValueError):
            allreduce_time(-1, 4, ic)

    def test_p2p_zero_bytes_free(self):
        ic = pcie_switch(14.65)
        assert p2p_time(0, ic) == 0.0

    def test_p2p_latency_plus_bandwidth(self):
        ic = pcie_switch(14.65)
        t = p2p_time(12e9, ic)  # one second of payload at 12 GB/s
        assert t == pytest.approx(1.0 + ic.p2p_latency_s)


class TestNode:
    def test_presets_match_paper_testbeds(self):
        assert L20_NODE.num_gpus == 4
        assert A100_NODE.num_gpus == 4
        assert L20_NODE.gpu is L20
        assert A100_NODE.interconnect.allreduce_bw_gbps == 14.82

    def test_make_node(self):
        n = make_node("L20", 2)
        assert n.num_gpus == 2
        assert n.gpu is L20
        assert "2x" in n.name

    def test_with_num_gpus(self):
        n = L20_NODE.with_num_gpus(1)
        assert n.num_gpus == 1
        assert L20_NODE.num_gpus == 4

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            make_node("L20", 0)

    def test_total_memory(self):
        assert L20_NODE.total_memory_bytes == pytest.approx(4 * 48e9)
