"""Unit tests for shared engine scaffolding (admission, eviction, packing)."""

import pytest

from repro.baselines import PPSeparateEngine
from repro.hardware import make_node
from repro.models import LLAMA2_13B, QWEN25_32B
from repro.runtime import EngineConfig, RequestState
from repro.workload import Request, generate_requests


def make_engine(model=QWEN25_32B, gpus=4, **cfg_kwargs):
    node = make_node("L20", gpus)
    return PPSeparateEngine(node, model, config=EngineConfig(**cfg_kwargs))


def states(lengths, offset=0):
    return [
        RequestState(Request(request_id=offset + i, prompt_len=p, output_len=8))
        for i, p in enumerate(lengths)
    ]


class TestPackPrefillBatch:
    def test_respects_token_budget(self):
        eng = make_engine(max_prefill_tokens=500, max_prefill_seqs=64)
        eng.waiting.extend(states([200, 200, 200, 200]))
        batch = eng.pack_prefill_batch()
        # 200+200 fits, third would exceed 500.
        assert len(batch) == 2

    def test_respects_seq_cap(self):
        eng = make_engine(max_prefill_tokens=100_000, max_prefill_seqs=3)
        eng.waiting.extend(states([10] * 8))
        assert len(eng.pack_prefill_batch()) == 3

    def test_single_oversized_prompt_still_packs(self):
        # The first prompt always packs even if beyond the token budget.
        eng = make_engine(max_prefill_tokens=100)
        eng.waiting.extend(states([900]))
        assert len(eng.pack_prefill_batch()) == 1

    def test_allocates_kv(self):
        eng = make_engine()
        eng.waiting.extend(states([100, 50]))
        batch = eng.pack_prefill_batch()
        for s in batch:
            assert eng.block_manager.contains(s.request_id)
            assert eng.block_manager.tokens_of(s.request_id) == s.prefill_len

    def test_stops_at_memory_watermark(self):
        eng = make_engine(model=LLAMA2_13B, watermark_frac=0.0)
        cap = eng.block_manager.capacity_tokens
        big = states([1000] * (cap // 1000 + 2))
        eng.waiting.extend(big)
        batch = []
        while True:
            b = eng.pack_prefill_batch()
            if not b:
                break
            batch.extend(b)
        assert eng.waiting  # some requests could not be admitted
        assert eng.block_manager.free_blocks * eng.block_manager.block_size < 1000 + 16


class TestReserveDecodeTokens:
    def test_appends_one_token_each(self):
        eng = make_engine()
        batch = states([64, 64])
        for s in batch:
            eng.admit(s)
            s.complete_prefill()
        survivors, evicted = eng.reserve_decode_tokens(batch)
        assert survivors == batch and not evicted
        for s in batch:
            assert eng.block_manager.tokens_of(s.request_id) == 65

    def test_evicts_newest_on_overflow(self):
        eng = make_engine(model=LLAMA2_13B)
        bm = eng.block_manager
        # Fill memory almost completely with three requests.
        # Block-aligned so the decode append needs a fresh block per request.
        third = ((bm.capacity_tokens // 3 - 48) // bm.block_size) * bm.block_size
        batch = states([third, third, third])
        for s in batch:
            eng.admit(s)
            s.complete_prefill()
        # Force an overflow by shrinking free blocks: allocate a filler.
        filler = RequestState(
            Request(request_id=99, prompt_len=bm.free_blocks * bm.block_size, output_len=2)
        )
        eng.admit(filler)
        survivors, evicted = eng.reserve_decode_tokens(list(batch))
        assert evicted, "overflow must evict someone"
        # The newest batch member was the victim, now back on waiting.
        assert evicted[0] is batch[-1]
        assert eng.waiting[0] is batch[-1]
        assert eng.recomputations == len(evicted)
        assert batch[-1].restarts == 1

    def test_empty_batch(self):
        eng = make_engine()
        assert eng.reserve_decode_tokens([]) == ([], [])


class TestRunValidation:
    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            make_engine().run([])

    def test_result_metadata(self):
        eng = make_engine()
        res = eng.run(generate_requests(20, seed=1))
        assert res.node == "4xL20"
        assert res.model == "32B"
        assert res.num_devices == 4
        assert res.system == "PP+SB"

    def test_kv_log_recorded(self):
        eng = make_engine()
        res = eng.run(generate_requests(30, seed=1))
        assert res.kv_log
        assert all(s.phase in ("prefill", "decode", "hybrid") for s in res.kv_log)
