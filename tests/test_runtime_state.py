"""Unit tests for per-request runtime state transitions."""

import pytest

from repro.runtime import RequestState
from repro.workload import Request


def make_state(prompt=100, output=10):
    return RequestState(Request(request_id=1, prompt_len=prompt, output_len=output))


class TestWholePrefill:
    def test_complete_prefill_emits_first_token(self):
        s = make_state(prompt=100, output=10)
        s.complete_prefill()
        assert s.kv_len == 100
        assert s.generated == 1
        assert s.prompt_complete
        assert not s.done

    def test_single_token_output_finishes_at_prefill(self):
        s = make_state(output=1)
        s.complete_prefill()
        assert s.done

    def test_decode_steps_to_completion(self):
        s = make_state(prompt=100, output=3)
        s.complete_prefill()
        s.complete_decode_step()
        s.complete_decode_step()
        assert s.done
        assert s.generated == 3
        assert s.kv_len == 102
        assert s.remaining_output == 0


class TestChunkedPrefill:
    def test_chunks_accumulate(self):
        s = make_state(prompt=100, output=5)
        s.advance_chunk(60)
        assert s.kv_len == 60 and not s.prompt_complete and s.generated == 0
        s.advance_chunk(40)
        assert s.prompt_complete
        assert s.generated == 1  # final chunk emits the first token
        assert s.kv_len == 100

    def test_chunk_overrun_rejected(self):
        s = make_state(prompt=100)
        with pytest.raises(ValueError):
            s.advance_chunk(101)

    def test_chunk_after_complete_rejected(self):
        s = make_state(prompt=10)
        s.advance_chunk(10)
        with pytest.raises(ValueError):
            s.advance_chunk(1)


class TestEviction:
    def test_evict_resets_kv_keeps_generated(self):
        s = make_state(prompt=100, output=10)
        s.complete_prefill()
        s.complete_decode_step()
        s.complete_decode_step()
        assert s.generated == 3
        s.evict()
        assert s.kv_len == 0
        assert s.generated == 3  # generated text survives (recompute semantics)
        assert not s.prompt_complete
        assert s.restarts == 1
        # Re-prefill includes the generated tokens as prompt.
        assert s.prefill_len == 103

    def test_resume_after_evict(self):
        s = make_state(prompt=100, output=5)
        s.complete_prefill()
        s.complete_decode_step()  # generated=2
        s.evict()
        s.complete_prefill()  # re-prefill 102 tokens, generated -> 3
        assert s.kv_len == 102
        assert s.generated == 3
        s.complete_decode_step()
        s.complete_decode_step()
        assert s.done
        assert s.kv_len == 104
