"""Unit tests for Chrome trace export."""

import io
import json

from repro.sim import TraceRecorder, to_chrome_trace, write_chrome_trace


def sample_trace():
    tr = TraceRecorder(2)
    tr[0].record(0.0, 1.0, tag="prefill")
    tr[0].record(1.5, 2.0, tag="decode")
    tr[1].record(0.5, 1.2, tag="decode")
    return tr


class TestChromeTrace:
    def test_event_structure(self):
        doc = to_chrome_trace(sample_trace())
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 3
        meta = [e for e in events if e["ph"] == "M"]
        # 1 process_name + 2 thread_name records.
        assert len(meta) == 3

    def test_timing_scaled_to_us(self):
        doc = to_chrome_trace(sample_trace())
        first = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert first["ts"] == 0.0
        assert first["dur"] == 1.0 * 1e6

    def test_tags_become_names(self):
        doc = to_chrome_trace(sample_trace())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert names == {"prefill", "decode"}

    def test_gpu_rows(self):
        doc = to_chrome_trace(sample_trace())
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert tids == {0, 1}

    def test_write_to_file_object(self):
        buf = io.StringIO()
        write_chrome_trace(sample_trace(), buf)
        doc = json.loads(buf.getvalue())
        assert "traceEvents" in doc

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(sample_trace(), str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"

    def test_roundtrip_from_real_run(self):
        from repro.baselines import PPSeparateEngine
        from repro.hardware import make_node
        from repro.models import LLAMA2_13B
        from repro.workload import generate_requests

        engine = PPSeparateEngine(make_node("L20", 2), LLAMA2_13B)
        res = engine.run(generate_requests(20, seed=4))
        doc = to_chrome_trace(res.trace)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) > 10
        assert all(s["dur"] > 0 for s in slices)
