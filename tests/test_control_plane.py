"""Control-plane invariants: snapshots, capacity scores, routers, autoscaler."""

import math

import pytest

from invariants import check_cluster_invariants

from repro.cluster import (
    Autoscaler,
    ClusterEngine,
    ControlPlane,
    DeadlineAwareRouter,
    JoinShortestQueueRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    StaticRouter,
    make_router,
    parse_fleet,
    replica_capacity_score,
)
from repro.cluster.routing import ROUTER_NAMES, ROUTERS
from repro.core import TDPipeEngine
from repro.experiments.common import default_scale, run_cluster
from repro.hardware import make_node
from repro.models import LLAMA2_13B
from repro.predictor import OraclePredictor
from repro.runtime.state import RequestState
from repro.workload import (
    BATCH,
    INTERACTIVE,
    generate_requests,
    parse_slo_mix,
    with_poisson_arrivals,
    with_slo_mix,
)

SCALE = default_scale(factor=0.02, seed=0)


def build(node_name="L20", num_gpus=2, sim=None):
    return TDPipeEngine(
        make_node(node_name, num_gpus), LLAMA2_13B, OraclePredictor(), sim=sim
    )


def loaded_replica(n_requests, node_name="L20"):
    engine = build(node_name)
    backlog = [RequestState(r) for r in generate_requests(n_requests, seed=1)]
    engine.states = {s.request_id: s for s in backlog}
    engine.waiting.extend(backlog)
    return engine


# --------------------------------------------------------------------- #
# Capacity scores and snapshots.
# --------------------------------------------------------------------- #
class TestCapacity:
    def test_a100_outscores_l20(self):
        l20, a100 = build("L20"), build("A100")
        assert replica_capacity_score(a100) > 1.5 * replica_capacity_score(l20)

    def test_scoreless_object_is_neutral(self):
        assert replica_capacity_score(object()) == 1.0

    def test_parse_fleet(self):
        assert parse_fleet("l20:2,a100:2") == ["l20", "l20", "a100", "a100"]
        assert parse_fleet("l20") == ["l20"]
        assert parse_fleet(["L20", "A100"]) == ["L20", "A100"]
        with pytest.raises(ValueError):
            parse_fleet("")
        with pytest.raises(ValueError):
            parse_fleet("l20:0")

    def test_snapshot_captures_load(self):
        engine = loaded_replica(5)
        snap = ReplicaSnapshot.capture(
            engine, capacity=2.0, index=3, with_queued_tokens=True
        )
        assert snap.index == 3
        assert snap.queue_depth == 5 and snap.in_system == 5
        assert snap.queued_tokens == sum(s.prefill_len for s in engine.waiting)
        assert snap.load == pytest.approx(2.5)
        assert snap.est_wait_s == pytest.approx(snap.queued_tokens / 2.0)
        # Count-only captures skip the O(queue) backlog sum.
        assert ReplicaSnapshot.capture(engine).queued_tokens == 0


# --------------------------------------------------------------------- #
# Router behaviour on the normalized signals.
# --------------------------------------------------------------------- #
class TestRouters:
    @pytest.mark.parametrize("name", (*ROUTER_NAMES, "static"))
    def test_choose_in_range_and_pure(self, name):
        """Chosen index is valid and `choose` never mutates replica state."""
        if name == "static":
            req = generate_requests(1, seed=4)[0]
            router = StaticRouter({req.request_id: 1})
        else:
            router = make_router(name)
            req = generate_requests(1, seed=4)[0]
        replicas = [loaded_replica(n) for n in (4, 0, 2)]
        router.reset(replicas)
        before = [
            (len(r.waiting), r.in_system, r.block_manager.free_blocks, r.sim.pending)
            for r in replicas
        ]
        for _ in range(5):
            idx = router.choose(req, replicas)
            assert 0 <= idx < len(replicas)
            router.on_routed(req, idx)
        after = [
            (len(r.waiting), r.in_system, r.block_manager.free_blocks, r.sim.pending)
            for r in replicas
        ]
        assert before == after

    def test_near_ties_rotate(self):
        """Float-noise score differences must not disable the rotation."""

        class JitterRouter(RoundRobinRouter):
            def score(self, request, snapshot):
                # One part in 1e12 apart — far inside the tie tolerance.
                return 1.0 + snapshot.index * 1e-12

        replicas = [build() for _ in range(3)]
        router = JitterRouter()
        router.reset(replicas)
        picks = []
        for _ in range(6):
            idx = router.choose(None, replicas)
            router.on_routed(None, idx)
            picks.append(idx)
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_jsq_normalized_prefers_faster_node_at_equal_count(self):
        # Same in-system count, but the A100 replica has ~2.5x the capacity.
        replicas = [loaded_replica(3, "L20"), loaded_replica(3, "A100")]
        router = JoinShortestQueueRouter()
        router.reset(replicas)
        assert router.choose(generate_requests(1, seed=2)[0], replicas) == 1

    def test_jsq_raw_ignores_capacity(self):
        replicas = [loaded_replica(2, "L20"), loaded_replica(3, "A100")]
        router = make_router("jsq-raw")
        assert router.name == "jsq-raw"
        router.reset(replicas)
        assert router.choose(generate_requests(1, seed=2)[0], replicas) == 0

    def test_deadline_interactive_chases_min_wait(self):
        # Replica 0's backlog far exceeds the interactive slack; replica 1's
        # does not (or is strictly smaller) -> tight deadline picks 1.
        replicas = [loaded_replica(400), loaded_replica(2)]
        router = DeadlineAwareRouter()
        router.reset(replicas)
        slack = router.headroom * INTERACTIVE.ttft_deadline_s
        assert router._snapshot(replicas[0], 0).est_wait_s > slack
        req = generate_requests(1, seed=2)[0]
        req.slo = INTERACTIVE
        assert router.choose(req, replicas) == 1

    def test_deadline_batch_spreads_over_feasible(self):
        # Both replicas' backlogs fit inside the batch slack -> ties rotate.
        replicas = [loaded_replica(3), loaded_replica(1)]
        router = DeadlineAwareRouter()
        router.reset(replicas)
        reqs = generate_requests(4, seed=2)
        picks = []
        for r in reqs:
            r.slo = BATCH
            idx = router.choose(r, replicas)
            router.on_routed(r, idx)
            picks.append(idx)
        assert picks == [0, 1, 0, 1]

    def test_static_strict_raises_on_unmapped(self):
        reqs = generate_requests(2, seed=0)
        router = StaticRouter({reqs[0].request_id: 0})
        replicas = [build(), build()]
        assert router.choose(reqs[0], replicas) == 0
        with pytest.raises(ValueError, match="no static assignment"):
            router.choose(reqs[1], replicas)

    def test_static_fallback_when_not_strict(self):
        reqs = generate_requests(2, seed=0)
        router = StaticRouter({}, strict=False)
        replicas = [build(), build()]
        assert router.choose(reqs[1], replicas) == reqs[1].request_id % 2


# --------------------------------------------------------------------- #
# SLO workload plumbing.
# --------------------------------------------------------------------- #
class TestSLOWorkload:
    def test_parse_slo_mix_valid(self):
        mix = parse_slo_mix("interactive:0.7,batch:0.3")
        assert mix[INTERACTIVE] == pytest.approx(0.7)
        assert mix[BATCH] == pytest.approx(0.3)
        assert parse_slo_mix("interactive")[INTERACTIVE] == pytest.approx(1.0)
        with pytest.raises(KeyError):
            parse_slo_mix("platinum:1.0")

    def test_parse_slo_mix_rejects_unnormalized(self):
        # Weights that don't sum to ~1 used to be silently renormalized.
        with pytest.raises(ValueError, match="sum to 1"):
            parse_slo_mix("interactive:1.4,batch:0.6")
        with pytest.raises(ValueError, match="sum to 1"):
            parse_slo_mix("interactive,batch")

    def test_parse_slo_mix_rejects_negative_and_malformed(self):
        with pytest.raises(ValueError, match="non-negative"):
            parse_slo_mix({"interactive": 1.5, "batch": -0.5})
        with pytest.raises(ValueError, match="malformed"):
            parse_slo_mix("interactive:abc")
        with pytest.raises(ValueError, match="duplicate"):
            parse_slo_mix("interactive:0.5,interactive:0.5")
        with pytest.raises(ValueError, match="empty"):
            parse_slo_mix("")

    def test_with_slo_mix_deterministic_and_pure(self):
        reqs = generate_requests(50, seed=3)
        a = with_slo_mix(reqs, "interactive:0.5,batch:0.5", seed=3)
        b = with_slo_mix(reqs, "interactive:0.5,batch:0.5", seed=3)
        assert [r.slo.name for r in a] == [r.slo.name for r in b]
        assert all(r.slo is None for r in reqs)  # input untouched
        assert {r.slo for r in a} == {INTERACTIVE, BATCH}

    def test_arrival_stamping_preserves_slo(self):
        reqs = with_slo_mix(generate_requests(10, seed=0), "batch:1", seed=0)
        stamped = with_poisson_arrivals(reqs, 5.0, seed=0)
        assert all(r.slo is BATCH for r in stamped)


# --------------------------------------------------------------------- #
# Autoscaler + control plane.
# --------------------------------------------------------------------- #
def run_autoscaled(rate=14.0, **kwargs):
    autoscaler = Autoscaler(min_replicas=1, **kwargs)
    reqs = with_poisson_arrivals(generate_requests(120, seed=11), rate, seed=11)
    cluster = ClusterEngine(
        [lambda sim: build(sim=sim) for _ in range(3)],
        router="jsq",
        autoscaler=autoscaler,
    )
    return cluster, reqs, cluster.run(reqs)


class TestAutoscaler:
    def test_validation(self):
        with pytest.raises(ValueError):
            Autoscaler(min_replicas=0)
        with pytest.raises(ValueError):
            Autoscaler(min_replicas=2, max_replicas=1)
        with pytest.raises(ValueError):
            Autoscaler(up_threshold_s=0.1, down_threshold_s=0.2)

    def test_hysteresis_patience(self):
        a = Autoscaler(up_patience=2, down_patience=3)
        hot = [ReplicaSnapshot(0, 9, 9, 10_000, 0.5, None, capacity=100.0)]
        cold = [ReplicaSnapshot(0, 0, 0, 0, 0.0, None, capacity=100.0)]
        assert a.decide(hot) == 0  # first over-threshold tick: not yet
        assert a.decide(hot) == 1  # patience reached
        assert a.decide(cold) == 0
        assert a.decide(cold) == 0
        assert a.decide(cold) == -1

    def test_scales_up_and_drains(self):
        cluster, reqs, result = run_autoscaled()
        check_cluster_invariants(cluster, result, reqs)
        sizes = [n for _, n in result.fleet_timeline]
        assert max(sizes) > 1, "burst never triggered a scale-up"
        assert sizes[0] == 1
        events = cluster.control.events
        assert any(kind == "activate" for _, kind, _ in events)
        assert any(kind == "deactivate" for _, kind, _ in events)
        times = [t for t, _ in result.fleet_timeline]
        assert times == sorted(times)

    def test_never_drains_resident_requests(self):
        """Deactivation only happens on empty replicas (hard invariant)."""
        cluster, reqs, result = run_autoscaled()
        # The control plane asserts the invariant itself at deactivation
        # time; a successful run with observed deactivations is the proof.
        assert any(k == "deactivate" for _, k, _ in cluster.control.events)
        plane = cluster.control
        with pytest.raises(AssertionError, match="resident"):
            busy = next(i for i, r in enumerate(plane.replicas) if r.finished)
            plane.replicas[busy].finished.pop()  # fake one resident request
            plane._activated_at[busy] = 0.0
            plane._deactivate(busy, 1.0)

    def test_active_time_accounting(self):
        cluster, reqs, result = run_autoscaled()
        assert len(result.replica_active_time) == 3
        for t in result.replica_active_time:
            assert 0.0 <= t <= result.makespan + 1e-9
        # The fleet never goes below min_replicas=1, so total active time
        # covers the makespan; autoscaling saved replica-seconds vs fixed.
        assert result.replica_seconds >= result.makespan - 1e-9
        assert result.replica_seconds < 3 * result.makespan
        assert 1.0 <= result.mean_active_replicas <= 3.0

    def test_inactive_replicas_receive_no_requests(self):
        cluster, reqs, result = run_autoscaled()
        activated = {i for _, kind, i in cluster.control.events if kind == "activate"}
        activated.add(0)
        for rid, idx in cluster.assignments.items():
            assert idx in activated or idx == 0

    def test_static_assignment_overrides_autoscaler_admission(self):
        """Static maps hold global indices — never re-mapped to the routable
        subset, even when the autoscaler starts with one active replica."""
        reqs = generate_requests(12, seed=6)
        assignment = {r.request_id: i % 3 for i, r in enumerate(reqs)}
        cluster = ClusterEngine(
            [lambda sim: build(sim=sim) for _ in range(3)],
            router=StaticRouter(assignment),
            autoscaler=Autoscaler(min_replicas=1),
        )
        result = cluster.run(reqs)
        assert cluster.assignments == assignment
        check_cluster_invariants(cluster, result, reqs)

    def test_fixed_fleet_has_trivial_timeline(self):
        reqs = generate_requests(30, seed=2)
        cluster = ClusterEngine([lambda sim: build(sim=sim) for _ in range(2)])
        result = cluster.run(reqs)
        assert result.fleet_timeline == [(0.0, 2)]
        assert result.replica_active_time == [result.makespan] * 2
        assert result.mean_active_replicas == pytest.approx(2.0)


class TestControlPlaneUnit:
    def test_routable_excludes_draining(self):
        from repro.sim import Simulator

        replicas = [build() for _ in range(3)]
        plane = ControlPlane(replicas, router=make_router("round-robin"))
        plane.begin(Simulator(), total_requests=0)
        assert plane.routable_indices() == [0, 1, 2]
        plane.draining[1] = True
        assert plane.routable_indices() == [0, 2]
        plane.active[1] = False
        plane.active[2] = False
        assert plane.routable_indices() == [0]

    def test_capacity_scores_follow_hardware(self):
        replicas = [build("L20"), build("A100")]
        plane = ControlPlane(replicas, router=make_router("jsq"))
        assert plane.capacity_scores[1] > plane.capacity_scores[0]


# --------------------------------------------------------------------- #
# Heterogeneous fleets end-to-end.
# --------------------------------------------------------------------- #
class TestHeterogeneousFleet:
    def test_run_cluster_fleet_spec(self):
        result = run_cluster(
            "TD-Pipe",
            model="13B",
            router="jsq",
            rate_rps=8.0,
            scale=SCALE,
            fleet="l20:1,a100:1",
            slo_mix="interactive:0.6,batch:0.4",
            predictor=OraclePredictor(),
        )
        assert result.num_replicas == 2
        assert result.extras["fleet_nodes"] == ["4xL20", "4xA100"]
        assert result.capacity_scores[1] > result.capacity_scores[0]
        assert result.completed_requests == SCALE.eval_requests
        assert set(result.slo_attainment) <= {"interactive", "batch"}
        for stats in result.slo_attainment.values():
            assert 0.0 <= stats.attainment <= 1.0
            assert stats.attainment <= min(
                stats.ttft_attainment, stats.tpot_attainment
            ) + 1e-12

    @pytest.mark.parametrize("router", ROUTERS)
    def test_invariants_on_mixed_fleet(self, router):
        reqs = with_poisson_arrivals(generate_requests(40, seed=5), 6.0, seed=5)
        reqs = with_slo_mix(reqs, "interactive:0.5,batch:0.5", seed=5)
        nodes = ["L20", "A100"]
        cluster = ClusterEngine(
            [lambda sim, n=n: build(n, sim=sim) for n in nodes], router=router
        )
        result = cluster.run(reqs)
        check_cluster_invariants(cluster, result, reqs)

    def test_normalized_jsq_beats_raw_on_mixed_fleet(self):
        """The headline: capacity normalization pays off on mixed hardware."""
        kwargs = dict(
            model="13B",
            rate_rps=14.0,
            scale=default_scale(factor=0.04, seed=0),
            fleet="l20:2,a100:2",
            predictor=OraclePredictor(),
        )
        raw = run_cluster("TD-Pipe", router="jsq-raw", **kwargs)
        norm = run_cluster("TD-Pipe", router="jsq", **kwargs)
        assert norm.latency.ttft_p99 < raw.latency.ttft_p99


def test_slo_classes_sane():
    assert INTERACTIVE.ttft_deadline_s < BATCH.ttft_deadline_s
    assert INTERACTIVE.met(1.0, 0.1)
    assert not INTERACTIVE.met(100.0, 0.1)
    assert math.isfinite(BATCH.tpot_deadline_s)
