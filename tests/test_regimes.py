"""Workload regime DSL: spec validation, compilation, seeding, round-trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ScenarioSpec, WorkloadSpec, content_hash
from repro.workload.regimes import (
    RegimeSpec,
    SegmentSpec,
    SessionSpec,
    compile_regime,
    get_regime,
    preset_dict,
    regime_names,
)

# --------------------------------------------------------------------- #
# Strategies: always-valid segments of every kind.
# --------------------------------------------------------------------- #

_rate = st.floats(0.2, 10.0, allow_nan=False, allow_infinity=False)
_duration = st.floats(5.0, 90.0, allow_nan=False, allow_infinity=False)


def _segment(name: str) -> st.SearchStrategy[SegmentSpec]:
    constant = st.builds(
        lambda d, r: SegmentSpec(name=name, duration_s=d, rate_rps=r),
        _duration,
        _rate,
    )
    ramp = st.builds(
        lambda d, a, b: SegmentSpec(
            name=name, duration_s=d, kind="ramp", start_rps=a, end_rps=b
        ),
        _duration,
        _rate,
        _rate,
    )
    flash = st.builds(
        lambda d, r, peak: SegmentSpec(
            name=name,
            duration_s=d,
            kind="flash",
            rate_rps=r,
            peak_rps=r + peak,
        ),
        _duration,
        _rate,
        st.floats(0.5, 8.0),
    )
    return st.one_of(constant, ramp, flash)


@st.composite
def regimes(draw) -> RegimeSpec:
    n = draw(st.integers(1, 4))
    names = [f"seg{i}" for i in range(n)]
    return RegimeSpec(
        segments=tuple(draw(_segment(name)) for name in names)
    )


# --------------------------------------------------------------------- #
# Spec validation.
# --------------------------------------------------------------------- #


class TestSegmentSpec:
    def test_constant_requires_rate(self):
        with pytest.raises(ValueError, match="rate_rps"):
            SegmentSpec(name="a", duration_s=10.0)

    def test_stray_rate_fields_rejected(self):
        with pytest.raises(ValueError, match="does not take"):
            SegmentSpec(name="a", duration_s=10.0, rate_rps=1.0, peak_rps=5.0)
        with pytest.raises(ValueError, match="does not take"):
            SegmentSpec(
                name="a", duration_s=10.0, kind="ramp",
                start_rps=1.0, end_rps=2.0, rate_rps=1.0,
            )

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SegmentSpec(name="a", duration_s=10.0, kind="sawtooth")

    def test_flash_peak_above_baseline(self):
        with pytest.raises(ValueError, match="peak_rps"):
            SegmentSpec(
                name="a", duration_s=10.0, kind="flash",
                rate_rps=5.0, peak_rps=5.0,
            )

    def test_ramp_rate_endpoints(self):
        seg = SegmentSpec(
            name="a", duration_s=10.0, kind="ramp", start_rps=1.0, end_rps=3.0
        )
        assert seg.rate_at(0.0) == pytest.approx(1.0)
        assert seg.rate_at(10.0) == pytest.approx(3.0)
        assert seg.peak_rate == pytest.approx(3.0)

    def test_session_validation(self):
        with pytest.raises(ValueError, match="followup_prob"):
            SessionSpec(followup_prob=1.0, max_turns=3)
        with pytest.raises(ValueError, match="max_turns"):
            SessionSpec(followup_prob=0.5, max_turns=1)
        assert SessionSpec(followup_prob=0.5, max_turns=3).expected_turns == (
            pytest.approx(1.75)
        )


class TestRegimeSpec:
    def test_duplicate_names_rejected(self):
        seg = SegmentSpec(name="a", duration_s=10.0, rate_rps=1.0)
        with pytest.raises(ValueError, match="unique"):
            RegimeSpec(segments=(seg, seg))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            RegimeSpec(segments=())

    def test_windows_partition_the_timeline(self):
        regime = get_regime("diurnal")
        windows = regime.windows()
        assert windows[0][1] == 0.0
        for (_, _, end), (_, start, _) in zip(windows, windows[1:]):
            assert end == start
        assert windows[-1][2] == pytest.approx(regime.total_duration_s)

    @settings(max_examples=40, deadline=None)
    @given(regime=regimes())
    def test_json_round_trip(self, regime):
        assert RegimeSpec.from_json(regime.to_json()) == regime
        # canonical dict round-trip too (what WorkloadSpec normalization does)
        assert RegimeSpec.from_dict(regime.to_dict()).to_dict() == regime.to_dict()


class TestWorkloadStrictness:
    """Arrival processes reject knobs they do not consume (bugfix)."""

    BAD_COMBOS = [
        dict(arrival="offline", rate_rps=4.0),
        dict(arrival="offline", burst_size=8),
        dict(arrival="poisson", rate_rps=4.0, burst_size=8),
        dict(arrival="uniform", rate_rps=4.0, burst_interval_s=1.0),
        dict(arrival="burst", burst_size=8, burst_interval_s=1.0, rate_rps=4.0),
        dict(arrival="poisson", rate_rps=4.0, regime=preset_dict("diurnal")),
    ]

    @pytest.mark.parametrize("kwargs", BAD_COMBOS)
    def test_stray_params_rejected(self, kwargs):
        with pytest.raises(ValueError, match="does not take"):
            WorkloadSpec(scale=0.05, **kwargs)

    def test_regime_requires_block(self):
        with pytest.raises(ValueError, match="regime"):
            WorkloadSpec(scale=0.05, arrival="regime")

    def test_regime_rejects_num_requests(self):
        with pytest.raises(ValueError, match="num_requests"):
            WorkloadSpec(
                scale=0.05, arrival="regime",
                regime=preset_dict("diurnal"), num_requests=100,
            )

    def test_valid_combos_still_pass(self):
        WorkloadSpec(scale=0.05, arrival="offline")
        WorkloadSpec(scale=0.05, arrival="poisson", rate_rps=4.0)
        WorkloadSpec(
            scale=0.05, arrival="burst", burst_size=8, burst_interval_s=1.0
        )
        WorkloadSpec(scale=0.05, arrival="regime", regime=preset_dict("diurnal"))

    def test_content_hash_stable_through_round_trip(self):
        spec = ScenarioSpec(
            mode="cluster",
            workload=WorkloadSpec(
                scale=0.05, arrival="regime", regime=preset_dict("flash-crowd")
            ),
        )
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert content_hash(clone) == content_hash(spec)

    def test_regime_spec_accessor(self):
        spec = WorkloadSpec(
            scale=0.05, arrival="regime", regime=preset_dict("diurnal")
        )
        assert spec.regime_spec().name == "diurnal"
        with pytest.raises(ValueError, match="regime"):
            WorkloadSpec(scale=0.05, arrival="offline").regime_spec()


# --------------------------------------------------------------------- #
# Compilation properties.
# --------------------------------------------------------------------- #


class TestCompileProperties:
    @settings(max_examples=40, deadline=None)
    @given(regime=regimes(), seed=st.integers(0, 1000))
    def test_arrivals_non_decreasing(self, regime, seed):
        compiled = compile_regime(regime, seed=seed)
        times = [e.time for e in compiled.entries]
        assert times == sorted(times)

    @settings(max_examples=40, deadline=None)
    @given(regime=regimes(), seed=st.integers(0, 1000))
    def test_opening_turns_inside_their_window(self, regime, seed):
        compiled = compile_regime(regime, seed=seed)
        windows = {name: (s, e) for name, s, e in regime.windows()}
        for entry in compiled.entries:
            if entry.turn == 1:
                start, end = windows[entry.segment]
                assert start <= entry.time < end

    @settings(max_examples=20, deadline=None)
    @given(regime=regimes(), seed=st.integers(0, 1000))
    def test_bit_identical_recompile(self, regime, seed):
        a = compile_regime(regime, seed=seed)
        b = compile_regime(regime, seed=seed)
        assert a.entries == b.entries
        assert [s.base_arrivals for s in a.segments] == [
            s.base_arrivals for s in b.segments
        ]

    def test_seeds_differ(self):
        regime = get_regime("flash-crowd")
        a = compile_regime(regime, seed=0)
        b = compile_regime(regime, seed=1)
        assert [e.time for e in a.entries] != [e.time for e in b.entries]

    def test_realized_tracks_expected(self):
        # One long constant segment: LLN keeps realized within ~10%.
        regime = RegimeSpec(
            segments=(SegmentSpec(name="s", duration_s=500.0, rate_rps=4.0),)
        )
        compiled = compile_regime(regime, seed=0)
        assert compiled.num_requests == pytest.approx(2000, rel=0.1)

    def test_slo_mix_stamped_per_segment(self):
        regime = RegimeSpec(
            segments=(
                SegmentSpec(
                    name="int", duration_s=60.0, rate_rps=3.0,
                    slo_mix={"interactive": 1.0},
                ),
                SegmentSpec(
                    name="bat", duration_s=60.0, rate_rps=3.0,
                    slo_mix={"batch": 1.0},
                ),
            )
        )
        compiled = compile_regime(regime, seed=0)
        for entry in compiled.entries:
            expected = "interactive" if entry.segment == "int" else "batch"
            assert entry.slo is not None and entry.slo.name == expected

    def test_sessions_are_coherent(self):
        regime = RegimeSpec(
            segments=(
                SegmentSpec(
                    name="chat", duration_s=120.0, rate_rps=3.0,
                    session=SessionSpec(
                        followup_prob=0.6, max_turns=4, mean_think_time_s=5.0
                    ),
                ),
            )
        )
        compiled = compile_regime(regime, seed=0)
        assert compiled.num_sessions > 0
        by_session = {}
        for entry in compiled.entries:
            if entry.session_id is not None:
                by_session.setdefault(entry.session_id, []).append(entry)
        # ids are compact positive ints ordered by opening time
        assert sorted(by_session) == list(range(1, len(by_session) + 1))
        for turns in by_session.values():
            turns.sort(key=lambda e: e.turn)
            assert [e.turn for e in turns] == list(range(1, len(turns) + 1))
            times = [e.time for e in turns]
            assert times == sorted(times)
            assert len({e.segment for e in turns}) == 1


class TestSegmentSeeding:
    """Per-segment streams are keyed by name: edits never reshuffle neighbours."""

    def _offsets(self, compiled, name):
        seg = next(s for s in compiled.segments if s.name == name)
        return [
            e.time - seg.start_s
            for e in compiled.entries
            if e.segment == name and e.turn == 1
        ]

    def test_inserting_a_segment_preserves_neighbours(self):
        a = SegmentSpec(name="a", duration_s=60.0, rate_rps=2.0)
        c = SegmentSpec(name="c", duration_s=60.0, rate_rps=3.0)
        b = SegmentSpec(name="b", duration_s=45.0, kind="ramp",
                        start_rps=2.0, end_rps=3.0)
        before = compile_regime(RegimeSpec(segments=(a, c)), seed=7)
        after = compile_regime(RegimeSpec(segments=(a, b, c)), seed=7)
        # Same segment-local arrival offsets on both sides of the insertion
        # (approx: "c" starts at a different absolute time, so subtracting
        # the window start reintroduces float ulps).
        assert self._offsets(after, "a") == pytest.approx(
            self._offsets(before, "a"), abs=1e-9
        )
        assert self._offsets(after, "c") == pytest.approx(
            self._offsets(before, "c"), abs=1e-9
        )

    def test_renaming_a_segment_redraws_it(self):
        a = SegmentSpec(name="a", duration_s=60.0, rate_rps=2.0)
        a2 = SegmentSpec(name="a2", duration_s=60.0, rate_rps=2.0)
        x = compile_regime(RegimeSpec(segments=(a,)), seed=7)
        y = compile_regime(RegimeSpec(segments=(a2,)), seed=7)
        assert [e.time for e in x.entries] != [e.time for e in y.entries]


# --------------------------------------------------------------------- #
# Presets.
# --------------------------------------------------------------------- #


class TestPresets:
    def test_registry(self):
        assert set(regime_names()) >= {"diurnal", "ramp-spike", "flash-crowd"}

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown regime"):
            get_regime("tsunami")

    def test_duration_scale(self):
        full = get_regime("diurnal")
        half = get_regime("diurnal", duration_scale=0.5)
        assert half.total_duration_s == pytest.approx(
            full.total_duration_s / 2
        )
        # shapes (names, kinds, rates) are preserved
        assert [s.name for s in half.segments] == [s.name for s in full.segments]
        assert [s.kind for s in half.segments] == [s.kind for s in full.segments]

    def test_presets_compile(self):
        for name in regime_names():
            compiled = compile_regime(get_regime(name), seed=0)
            assert compiled.num_requests > 0
