"""End-to-end regime workloads: per-segment metrics, replay, and the
diurnal-vs-flash autoscaling divergence the experiment exists to show."""

import pytest

from repro import api
from repro.experiments import cluster_regimes
from repro.experiments.common import default_scale
from repro.metrics import SegmentStats
from repro.workload.regimes import get_regime

#: CI-smoke sizes: ~100 s timelines, tiny requests, two regimes.
SCALE = 0.02
DURATION_SCALE = 0.3
REGIMES = ("diurnal", "flash-crowd")


@pytest.fixture(scope="module")
def rows():
    return cluster_regimes.run_regimes(
        scale=default_scale(factor=SCALE),
        regimes=REGIMES,
        duration_scale=DURATION_SCALE,
        replicas=4,
    )


class TestSegmentsBlock:
    def test_every_segment_sliced(self, rows):
        for row in rows:
            regime = get_regime(row["regime"], duration_scale=DURATION_SCALE)
            assert set(row["segments"]) == {s.name for s in regime.segments}

    def test_slices_are_consistent(self, rows):
        for row in rows:
            result = row["result"]
            assert sum(s.arrivals for s in row["segments"].values()) == (
                result.completed_requests
            )
            for stats in row["segments"].values():
                assert isinstance(stats, SegmentStats)
                assert stats.end_s > stats.start_s
                assert 1.0 <= stats.mean_fleet_size <= row["replicas"]
                for att in stats.attainment.values():
                    assert 0.0 <= att <= 1.0

    def test_record_round_trip(self, rows):
        for row in rows:
            result = row["result"]
            record = result.to_record()
            assert "segments" in record
            clone = type(result).from_record(record)
            assert clone.segments == result.segments


class TestAutoscalingDivergence:
    """Same mean load, different shapes => different fleet trajectories."""

    def test_fleet_timelines_differ(self, rows):
        timelines = {
            row["regime"]: row["result"].fleet_timeline for row in rows
        }
        assert timelines["diurnal"] != timelines["flash-crowd"]

    def test_flash_forces_a_faster_scale_up(self, rows):
        # The flash crowd reaches 2 active replicas far sooner than the
        # diurnal ramp does: the autoscaler gets seconds, not minutes.
        def first_scale_up(row):
            for t, n in row["result"].fleet_timeline:
                if n >= 2:
                    return t
            return float("inf")

        by_name = {row["regime"]: row for row in rows}
        assert first_scale_up(by_name["flash-crowd"]) < first_scale_up(
            by_name["diurnal"]
        )

    def test_flash_segment_is_the_hot_one(self, rows):
        segs = next(
            row["segments"] for row in rows if row["regime"] == "flash-crowd"
        )
        assert segs["flash"].realized_rate_rps > segs["calm"].realized_rate_rps
        assert segs["flash"].mean_fleet_size > segs["calm"].mean_fleet_size


class TestStoreIntegration:
    def test_record_then_strict_replay_and_jobs_parity(self, tmp_path):
        store = api.ArtifactStore(tmp_path / "store")
        sweep = cluster_regimes.regimes_spec(
            regimes=REGIMES,
            duration_scale=DURATION_SCALE,
            scale_factor=SCALE,
        )
        serial = api.run_sweep(sweep, store=store)
        assert len(store) == len(REGIMES)

        # Unchanged code replays every stored record with zero drift.
        for report in api.replay_all(store, strict=True):
            assert report.ok, report.summary()

        # The process-pool executor produces byte-identical artifacts.
        parallel = api.run_sweep(sweep, jobs=2)
        canon = api.store.canonical_json
        for a, b in zip(serial, parallel):
            ra, rb = a.to_record(), b.to_record()
            ra.pop("wall_time_s"), rb.pop("wall_time_s")  # provenance only
            assert canon(ra) == canon(rb)

    def test_formatter_mentions_each_segment(self, rows):
        text = cluster_regimes.format_regimes(rows)
        for row in rows:
            assert row["regime"] in text
            for name in row["segments"]:
                assert name in text
