"""Unit tests for terminal visualisation helpers."""

import numpy as np
import pytest

from repro.viz import bar_chart, histogram, sparkline, table


class TestSparkline:
    def test_basic(self):
        s = sparkline([0.0, 0.5, 1.0])
        assert len(s) == 3
        assert s[0] == " " and s[-1] == "█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "███"

    def test_width_resampling(self):
        s = sparkline(np.linspace(0, 1, 100), width=10)
        assert len(s) == 10

    def test_explicit_bounds(self):
        s = sparkline([0.5], lo=0.0, hi=1.0)
        assert s == "▄"

    def test_clipping_out_of_bounds(self):
        s = sparkline([2.0], lo=0.0, hi=1.0)
        assert s == "█"


class TestBarChart:
    def test_alignment_and_scaling(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=4)
        lines = out.splitlines()
        assert lines[0].startswith("a  |##")
        assert lines[1].startswith("bb |####")

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_unit_suffix(self):
        out = bar_chart(["x"], [3.0], width=2, unit=" tok/s")
        assert "tok/s" in out


class TestTable:
    def test_render(self):
        out = table(["name", "v"], [["alpha", 1], ["b", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "alpha" in lines[2]
        # Columns align.
        assert lines[2].index("|") == lines[3].index("|")

    def test_empty_rows(self):
        out = table(["a", "b"], [])
        lines = out.splitlines()
        assert "a" in lines[0] and set(lines[1]) <= {"-", "+"}


class TestHistogram:
    def test_counts_sum(self):
        vals = np.random.default_rng(0).normal(size=200)
        out = histogram(vals, bins=5)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in out.splitlines()]
        assert sum(counts) == 200

    def test_empty(self):
        assert histogram([]) == "(empty)"
