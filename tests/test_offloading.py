"""Tests for the offloading estimate (paper Section 2.2.2 claim)."""

import pytest

from repro.baselines.offloading import estimate_offloading_throughput
from repro.hardware import A100, L20
from repro.models import LLAMA2_13B, LLAMA2_70B, QWEN25_32B


class TestOffloadingEstimate:
    def test_contention_shrinks_per_gpu_rate(self):
        e1 = estimate_offloading_throughput(LLAMA2_13B, L20, num_gpus=1)
        e4 = estimate_offloading_throughput(LLAMA2_13B, L20, num_gpus=4)
        assert e4.per_gpu_decode_rate < e1.per_gpu_decode_rate

    def test_aggregate_scales_sublinearly(self):
        e1 = estimate_offloading_throughput(LLAMA2_13B, L20, num_gpus=1)
        e4 = estimate_offloading_throughput(LLAMA2_13B, L20, num_gpus=4)
        # 4 GPUs deliver far less than 4x one GPU: the shared-channel problem.
        assert e4.aggregate_decode_rate < 3.0 * e1.aggregate_decode_rate

    def test_oversized_model_host_bound(self):
        e = estimate_offloading_throughput(LLAMA2_70B, L20, num_gpus=4)
        assert e.gpu_resident_kv_tokens == 0
        assert e.hbm_hit_fraction == 0.0
        assert e.per_gpu_decode_rate > 0

    def test_resident_kv_accounted(self):
        e = estimate_offloading_throughput(LLAMA2_13B, A100, num_gpus=1)
        assert e.gpu_resident_kv_tokens > 0
        assert 0.0 < e.hbm_hit_fraction < 1.0

    def test_invalid_gpus(self):
        with pytest.raises(ValueError):
            estimate_offloading_throughput(LLAMA2_13B, L20, num_gpus=0)

    def test_paper_claim_parallelism_beats_offloading(self):
        """Section 2.2.2: offloading is infeasible for high throughput on a
        multi-GPU node — TD-Pipe's measured rate dwarfs the (optimistic)
        offloading estimate."""
        from repro.core import TDPipeEngine
        from repro.hardware import make_node
        from repro.predictor import OraclePredictor
        from repro.workload import generate_requests

        est = estimate_offloading_throughput(QWEN25_32B, L20, num_gpus=4)
        node = make_node("L20", 4)
        res = TDPipeEngine(node, QWEN25_32B, OraclePredictor()).run(
            generate_requests(600, seed=12)
        )
        assert res.output_throughput > 3.0 * est.aggregate_decode_rate
