"""Integration tests for the TD-Pipe engine (the paper's system)."""

import pytest

from repro.core import TDPipeEngine
from repro.core.policies import FinishRatioPolicy, OccupancyRatioPolicy
from repro.hardware import make_node
from repro.models import LLAMA2_13B, QWEN25_32B
from repro.predictor import ConstantPredictor, OraclePredictor
from repro.runtime import EngineConfig
from repro.sim import SimulationError
from repro.workload import generate_requests


def run_tdpipe(n_requests=150, gpus=4, model=QWEN25_32B, seed=11, **kwargs):
    node = make_node("L20", gpus)
    engine = TDPipeEngine(node, model, kwargs.pop("predictor", OraclePredictor()), **kwargs)
    result = engine.run(generate_requests(n_requests, seed=seed))
    return engine, result


class TestEndToEnd:
    def test_all_requests_complete(self):
        engine, result = run_tdpipe()
        assert result.completed_requests == 150
        assert result.makespan > 0
        assert result.throughput > 0

    def test_token_accounting(self):
        engine, result = run_tdpipe(n_requests=60)
        reqs = generate_requests(60, seed=11)
        assert result.total_prompt_tokens == sum(r.prompt_len for r in reqs)
        assert result.total_output_tokens == sum(r.output_len for r in reqs)

    def test_deterministic(self):
        _, r1 = run_tdpipe(n_requests=80)
        _, r2 = run_tdpipe(n_requests=80)
        assert r1.makespan == r2.makespan
        assert r1.throughput == r2.throughput

    def test_kv_cache_fully_freed(self):
        engine, _ = run_tdpipe()
        assert engine.block_manager.num_requests == 0
        assert engine.block_manager.free_blocks == engine.block_manager.num_blocks

    def test_phases_alternate(self):
        engine, result = run_tdpipe(n_requests=200)
        phases = [p.phase for p in result.phase_spans]
        assert phases[0] == "prefill"
        for a, b in zip(phases, phases[1:]):
            assert a != b, "phases must alternate (temporal disaggregation)"

    def test_phase_spans_cover_run(self):
        engine, result = run_tdpipe(n_requests=100)
        spans = result.phase_spans
        assert spans[0].start == 0.0
        for a, b in zip(spans, spans[1:]):
            assert b.start == pytest.approx(a.end)
        assert spans[-1].end == pytest.approx(result.makespan, rel=0.01)

    def test_single_gpu_degenerates_gracefully(self):
        engine, result = run_tdpipe(n_requests=60, gpus=1, model=LLAMA2_13B)
        assert result.completed_requests == 60
        assert engine.num_stages == 1

    def test_no_timeline_overlaps(self):
        # Timeline.record raises on overlap, so a completed run proves the
        # scheduler never double-books a GPU; spot-check busy ordering too.
        engine, result = run_tdpipe(n_requests=100)
        for tl in result.trace.timelines:
            ivs = tl.intervals
            for a, b in zip(ivs, ivs[1:]):
                assert b.start >= a.end - 1e-12

    def test_high_utilization(self):
        _, result = run_tdpipe(n_requests=300)
        assert result.mean_utilization > 0.7

    def test_empty_workload_rejected(self):
        node = make_node("L20", 4)
        engine = TDPipeEngine(node, QWEN25_32B, OraclePredictor())
        with pytest.raises(ValueError):
            engine.run([])


class TestMemoryPressure:
    def test_many_requests_force_phase_switches(self):
        _, result = run_tdpipe(n_requests=900, model=LLAMA2_13B)
        # 13B on L20 has a small KV capacity: multiple phases required.
        assert result.phase_switches >= 3
        assert result.completed_requests == 900

    def test_kv_usage_bounded(self):
        engine, result = run_tdpipe(n_requests=600, model=LLAMA2_13B)
        assert all(0.0 <= s.usage_ratio <= 1.0 for s in result.kv_log)

    def test_recompute_requests_still_finish(self):
        # A pessimistic predictor overfills; evicted requests must recover.
        cfg = EngineConfig()
        _, result = run_tdpipe(
            n_requests=500,
            model=LLAMA2_13B,
            predictor=ConstantPredictor(1.0),  # wildly optimistic -> overfill
            config=cfg,
        )
        assert result.completed_requests == 500


class TestPolicies:
    def test_ratio_policies_complete(self):
        _, r1 = run_tdpipe(
            n_requests=300, model=LLAMA2_13B, prefill_policy=OccupancyRatioPolicy(0.5)
        )
        _, r2 = run_tdpipe(
            n_requests=300, model=LLAMA2_13B, decode_policy=FinishRatioPolicy(0.5)
        )
        assert r1.completed_requests == 300
        assert r2.completed_requests == 300

    def test_work_stealing_off_completes(self):
        _, result = run_tdpipe(n_requests=300, model=LLAMA2_13B, work_stealing=False)
        assert result.completed_requests == 300

    def test_invalid_ratios(self):
        with pytest.raises(ValueError):
            OccupancyRatioPolicy(0.0)
        with pytest.raises(ValueError):
            FinishRatioPolicy(1.5)

    def test_oversized_request_raises(self):
        node = make_node("L20", 4)
        cfg = EngineConfig(min_capacity_tokens=2048)
        engine = TDPipeEngine(node, QWEN25_32B, OraclePredictor(), config=cfg)
        huge = generate_requests(1, seed=0)
        huge[0].prompt_len = engine.block_manager.capacity_tokens + 10
        with pytest.raises(SimulationError):
            engine.run(huge)
