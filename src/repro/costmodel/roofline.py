"""Roofline execution-time model for transformer inference batches.

This module replaces CUDA execution with an analytic model built from the
published hardware constants (Table 1) and architectural constants (Table 2):

* **Prefill** is compute-bound: time = FLOPs / (peak FLOPS x efficiency).
* **Decode** is bandwidth-bound: every step must stream the layer weights and
  the whole KV cache of the batch from HBM, so
  time = bytes / (peak bandwidth x efficiency); the compute term is also
  evaluated and the per-layer time is the max of the two (classic roofline).
* **Tensor parallelism** divides FLOPs/bytes by the TP degree and adds two
  all-reduces of the activation per layer (paper Section 2.2.3 / Figure 6).
* **Hybrid (chunked-prefill) batches** combine a decode batch with one or more
  prompt chunks; each chunk re-reads the KV cache of its already-processed
  prefix — the "repeated KV cache loading overhead" of Section 2.3.

A fixed per-layer kernel overhead makes tiny decode batches inefficient, which
produces the saturating Achieved/Peak curve that TD-Pipe's spatial intensity
(Approach 3) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..hardware.gpu import GPUSpec
from ..hardware.interconnect import InterconnectSpec, allreduce_time
from ..models.partition import StageShard
from ..models.spec import ModelSpec

__all__ = ["PrefillChunk", "StageCostModel", "FullModelCostModel"]

#: Memo caches reset (rather than evict) past this size; engines re-query the
#: same argument tuples millions of times per run (intensity checks, policy
#: lookahead, repeated batch shapes), so hit rates stay high even with the
#: occasional wholesale reset.
_COST_CACHE_MAX = 1 << 16


@dataclass(frozen=True)
class PrefillChunk:
    """A slice of one prompt processed inside a hybrid batch.

    ``prefix_len`` tokens of the prompt already have KV cache; the chunk
    appends ``chunk_len`` new tokens that attend over ``prefix_len + chunk_len``
    positions.
    """

    chunk_len: int
    prefix_len: int = 0

    def __post_init__(self) -> None:
        if self.chunk_len < 0 or self.prefix_len < 0:
            raise ValueError("chunk_len and prefix_len must be non-negative")

    @property
    def context_len(self) -> int:
        return self.prefix_len + self.chunk_len


@dataclass
class StageCostModel:
    """Execution-time model for one pipeline stage on one GPU (or TP group).

    Parameters
    ----------
    shard:
        The model slice this stage executes (layers + optional embedding/head).
    gpu:
        Device executing the shard.
    interconnect:
        Fabric used for TP all-reduces (ignored when ``shard.tp_degree == 1``).
    """

    shard: StageShard
    gpu: GPUSpec
    interconnect: InterconnectSpec | None = None
    #: Per-batch CPU-side launch overhead at this stage (input prep, sampling).
    step_overhead_s: float = 300e-6
    _model: ModelSpec = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.shard.tp_degree > 1 and self.interconnect is None:
            raise ValueError("tensor parallelism requires an interconnect spec")
        self._model = self.shard.model
        m = self._model
        # Hoisted per-call constants.  Each is the exact expression the hot
        # methods used to evaluate inline (same operand order), so results
        # stay bit-identical — only the repeated property walks disappear.
        self._weight_bytes_per_layer = m.params_per_layer * m.dtype_bytes / self.tp
        self._linear_flops_per_token = m.linear_flops_per_token_per_layer()
        self._kv_bytes_per_token_per_layer = m.kv_bytes_per_token_per_layer
        # Memo caches for the two hot phase costs, keyed on the exact
        # argument tuples (pure functions of their arguments).
        self._prefill_cache: dict[tuple[int, ...], float] = {}
        self._decode_cache: dict[tuple[int, float], float] = {}
        # Precomputed numpy lookup tables (see costmodel/vectorized.py),
        # installed at engine start.  Deliberately *separate* attributes from
        # the memo dicts: the `_COST_CACHE_MAX` wholesale cache reset must
        # never discard the grids, only the per-argument memo entries.
        self._decode_grid = None
        self._prefill_grid = None

    def install_grids(self, decode_grid=None, prefill_grid=None) -> None:
        """Attach precomputed cost surfaces (``vectorized.DecodeGrid`` /
        ``PrefillGrid``).  Grids are consulted on memo miss before the scalar
        path; entries are bit-identical to scalar results, so installation
        never changes any metric.  Passing None leaves that grid unchanged."""
        if decode_grid is not None:
            self._decode_grid = decode_grid
        if prefill_grid is not None:
            self._prefill_grid = prefill_grid

    # ------------------------------------------------------------------ #
    # Building blocks.
    # ------------------------------------------------------------------ #
    @property
    def n_layers(self) -> int:
        return self.shard.n_layers

    @property
    def tp(self) -> int:
        return self.shard.tp_degree

    def _allreduce_per_layer(self, tokens: float) -> float:
        """Two activation all-reduces per transformer layer under TP."""
        if self.tp <= 1:
            return 0.0
        assert self.interconnect is not None
        nbytes = tokens * self._model.hidden_size * self._model.dtype_bytes
        return 2.0 * allreduce_time(nbytes, self.tp, self.interconnect)

    def _dense_layer_time(self, flops: float, tokens: float, read_bytes: float) -> float:
        """Roofline time of one layer's dense work over ``tokens`` rows.

        Bandwidth-bound layers (small token counts) are governed purely by the
        bytes streamed; compute-bound layers additionally pay the small-GEMM
        tile-quantisation penalty (``gemm_halfsat_tokens``), which is what
        separates 512-token chunked-prefill steps from 2048-token prefill
        batches.  Applying the penalty only in the compute-bound regime avoids
        double-counting: tiny batches are already charged the full byte cost.
        """
        mem = (self._weight_bytes_per_layer + read_bytes) / self.gpu.effective_mem_bandwidth
        comp = flops / self.tp / self.gpu.effective_flops
        if comp >= mem and tokens > 0:
            sat = tokens / (tokens + self.gpu.gemm_halfsat_tokens)
            return comp / max(sat, 1e-9)
        return max(mem, comp)

    def _head_time(self, tokens: float) -> float:
        """Embedding + LM-head time for stages that own them (compute-bound)."""
        m = self._model
        flops = 0.0
        if self.shard.has_lm_head:
            flops += m.lm_head_flops(tokens) / self.tp
        if flops == 0.0:
            return 0.0
        return flops / self.gpu.effective_flops

    # ------------------------------------------------------------------ #
    # Phase-specific costs.
    # ------------------------------------------------------------------ #
    def prefill_time(self, seq_lens: Sequence[int]) -> float:
        """Time for this stage to process a prefill batch of whole prompts.

        Memoized on the exact sequence-length tuple: schedulers re-evaluate
        the same candidate batches many times per run (policy lookahead,
        bubble estimation), and the cost is a pure function of the lengths.
        """
        if not len(seq_lens):
            return 0.0
        key = tuple(seq_lens)
        cached = self._prefill_cache.get(key)
        if cached is not None:
            return cached
        grid = self._prefill_grid
        if grid is not None:
            hit = grid.lookup(key)
            if hit is not None:
                if len(self._prefill_cache) >= _COST_CACHE_MAX:
                    self._prefill_cache.clear()
                self._prefill_cache[key] = hit
                return hit
        m = self._model
        tokens = float(sum(seq_lens))
        flops_per_layer = self._linear_flops_per_token * tokens
        flops_per_layer += sum(m.prefill_attn_flops_per_layer(s) for s in seq_lens)
        per_layer = self._dense_layer_time(flops_per_layer, tokens, read_bytes=0.0)
        per_layer += self.gpu.kernel_overhead_s + self._allreduce_per_layer(tokens)
        # Sampling happens for one token per sequence on the last stage.
        total = (
            self.n_layers * per_layer + self._head_time(len(seq_lens)) + self.step_overhead_s
        )
        if len(self._prefill_cache) >= _COST_CACHE_MAX:
            self._prefill_cache.clear()
        self._prefill_cache[key] = total
        return total

    def decode_time(self, batch_size: int, kv_tokens: float) -> float:
        """Time for one decode step of ``batch_size`` requests at this stage.

        ``kv_tokens`` is the total context length summed over the batch (the
        number of KV-cache token entries that must be streamed from HBM).
        """
        if batch_size <= 0:
            return 0.0
        key = (batch_size, kv_tokens)
        cached = self._decode_cache.get(key)
        if cached is not None:
            return cached
        grid = self._decode_grid
        if grid is not None:
            hit = grid.lookup(batch_size, kv_tokens)
            if hit is not None:
                if len(self._decode_cache) >= _COST_CACHE_MAX:
                    self._decode_cache.clear()
                self._decode_cache[key] = hit
                return hit
        m = self._model
        # Bandwidth term: weights of this stage's layers + KV of the batch.
        kv_bytes = kv_tokens * self._kv_bytes_per_token_per_layer / self.tp
        mem_per_layer = (
            self._weight_bytes_per_layer + kv_bytes
        ) / self.gpu.effective_mem_bandwidth
        # Compute term: one token per request through the projections, plus
        # attention over the context.
        flops_per_layer = (
            self._linear_flops_per_token * batch_size
            + m.attn_score_flops_per_layer(kv_tokens, 1.0)
        )
        comp_per_layer = flops_per_layer / self.tp / self.gpu.effective_flops_decode
        per_layer = max(mem_per_layer, comp_per_layer)
        per_layer += self.gpu.kernel_overhead_s + self._allreduce_per_layer(batch_size)
        total = (
            self.n_layers * per_layer + self._head_time(batch_size) + self.step_overhead_s
        )
        if len(self._decode_cache) >= _COST_CACHE_MAX:
            self._decode_cache.clear()
        self._decode_cache[key] = total
        return total

    def hybrid_time(
        self,
        decode_batch_size: int,
        decode_kv_tokens: float,
        prefill_chunks: Iterable[PrefillChunk] = (),
    ) -> float:
        """Time of one hybrid (chunked-prefill) step at this stage.

        The decode part contributes its bandwidth demand; every prompt chunk
        contributes compute for its new tokens **and** a re-read of its
        prefix KV cache (the chunked-prefill overhead the paper highlights).
        """
        chunks = list(prefill_chunks)
        m = self._model
        chunk_tokens = float(sum(c.chunk_len for c in chunks))
        total_tokens = decode_batch_size + chunk_tokens
        if total_tokens <= 0:
            return 0.0

        kv_read_tokens = decode_kv_tokens + sum(c.context_len for c in chunks)
        kv_bytes = kv_read_tokens * self._kv_bytes_per_token_per_layer / self.tp

        flops_per_layer = self._linear_flops_per_token * total_tokens
        flops_per_layer += m.attn_score_flops_per_layer(decode_kv_tokens, 1.0)
        for c in chunks:
            # New tokens attend over prefix + (causal) themselves.
            flops_per_layer += m.attn_score_flops_per_layer(c.prefix_len, c.chunk_len)
            flops_per_layer += 0.5 * m.attn_score_flops_per_layer(c.chunk_len, c.chunk_len)

        per_layer = self._dense_layer_time(flops_per_layer, total_tokens, kv_bytes)
        per_layer += self.gpu.kernel_overhead_s + self._allreduce_per_layer(total_tokens)
        sampled = decode_batch_size + sum(1 for c in chunks if c.chunk_len > 0)
        return self.n_layers * per_layer + self._head_time(sampled) + self.step_overhead_s

    # ------------------------------------------------------------------ #
    # Introspection used by experiments (Figure 6 breakdown).
    # ------------------------------------------------------------------ #
    def prefill_breakdown(self, seq_lens: Sequence[int]) -> tuple[float, float]:
        """(computation_time, communication_time) of a prefill batch."""
        total = self.prefill_time(seq_lens)
        comm = self.n_layers * self._allreduce_per_layer(float(sum(seq_lens)))
        return total - comm, comm

    def activation_bytes(self, tokens: int) -> float:
        """Size of the activation tensor handed to the next pipeline stage."""
        return tokens * self._model.hidden_size * self._model.dtype_bytes


@dataclass
class FullModelCostModel:
    """Whole-model iteration cost under pure tensor parallelism (PP = 1).

    Convenience wrapper: a single stage containing every layer, the embedding
    and the LM head.
    """

    model: ModelSpec
    gpu: GPUSpec
    interconnect: InterconnectSpec | None = None
    tp_degree: int = 1
    step_overhead_s: float = 1e-3

    def __post_init__(self) -> None:
        shard = StageShard(
            model=self.model,
            stage_index=0,
            n_stages=1,
            layer_start=0,
            n_layers=self.model.n_layers,
            tp_degree=self.tp_degree,
        )
        self._stage = StageCostModel(
            shard=shard,
            gpu=self.gpu,
            interconnect=self.interconnect,
            step_overhead_s=self.step_overhead_s,
        )

    @property
    def stage(self) -> StageCostModel:
        return self._stage

    def prefill_time(self, seq_lens: Sequence[int]) -> float:
        return self._stage.prefill_time(seq_lens)

    def decode_time(self, batch_size: int, kv_tokens: float) -> float:
        return self._stage.decode_time(batch_size, kv_tokens)

    def hybrid_time(
        self,
        decode_batch_size: int,
        decode_kv_tokens: float,
        prefill_chunks: Iterable[PrefillChunk] = (),
    ) -> float:
        return self._stage.hybrid_time(decode_batch_size, decode_kv_tokens, prefill_chunks)

    def prefill_breakdown(self, seq_lens: Sequence[int]) -> tuple[float, float]:
        return self._stage.prefill_breakdown(seq_lens)
