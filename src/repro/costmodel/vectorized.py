"""Precomputed numpy surfaces for the roofline cost model.

The scheduler re-queries :class:`~repro.costmodel.roofline.StageCostModel`
``decode_time``/``prefill_time`` millions of times per run over a small,
structured argument space (the intensity comparison of paper Section 3.5
alone evaluates the decode surface on every scheduling decision).  This
module evaluates those surfaces **elementwise with numpy over whole
batch-size x kv-token (and prompt-length) grids at once**, so the per-call
Python arithmetic is paid once per grid instead of once per query.

Bit-identity contract
---------------------
Every function here replays the *exact* scalar expression sequence of the
corresponding ``StageCostModel`` method — same operands, same order, same
association — as IEEE-754 double ops, only elementwise over float64 arrays.
CPython floats and numpy float64 share the same arithmetic, so each grid
entry equals the scalar result **to the bit** (pinned by a hypothesis
property test).  That lets grids and tables substitute for scalar calls
inside runs whose results are content-addressed by the artifact store.

Two lookup structures are installed into stage cost models at engine start
(see ``install_default_grids``):

* :class:`DecodeGrid` — ``decode_time`` over batch sizes 1..B and an
  arithmetic kv-token progression;
* :class:`PrefillGrid` — ``prefill_time`` over single-prompt batches
  ``(L,)`` for L = 1..N (the shape capacity scoring and what-if probes hit).

Off-grid shapes fall back to the scalar path and its memo dict, so the
grids are a pure fast path: they change *where* a number is computed, never
the number.  ``decode_rate_curve`` additionally vectorizes the whole
achieved-rate curve the intensity policy consumes (see
:class:`repro.core.intensity.DecodeRateProfile`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .roofline import StageCostModel

__all__ = [
    "decode_time_surface",
    "prefill_time_surface",
    "decode_rate_curve",
    "DecodeGrid",
    "PrefillGrid",
    "build_decode_grid",
    "build_prefill_grid",
    "install_default_grids",
]


# --------------------------------------------------------------------- #
# Elementwise surfaces (exact scalar operand order).
# --------------------------------------------------------------------- #
def _allreduce_per_layer_array(stage: "StageCostModel", tokens: np.ndarray):
    """Vectorized ``StageCostModel._allreduce_per_layer`` (same operand
    order: ``2.0 * (latency + ((tokens * hidden) * dtype_bytes) / bw)``)."""
    if stage.tp <= 1:
        return 0.0
    m = stage._model
    spec = stage.interconnect
    nbytes = tokens * m.hidden_size * m.dtype_bytes
    return 2.0 * (spec.allreduce_latency_s + nbytes / spec.allreduce_bandwidth)


def _head_time_array(stage: "StageCostModel", tokens: np.ndarray):
    """Vectorized ``StageCostModel._head_time`` (tokens >= 1 assumed)."""
    m = stage._model
    if not stage.shard.has_lm_head:
        return 0.0
    flops = 0.0 + (2.0 * m.vocab_size * m.hidden_size * tokens) / stage.tp
    return flops / stage.gpu.effective_flops


def decode_time_surface(
    stage: "StageCostModel",
    batch_sizes: np.ndarray,
    kv_tokens: np.ndarray,
) -> np.ndarray:
    """``decode_time`` evaluated elementwise over broadcastable arrays.

    ``batch_sizes`` entries must be >= 1 (the scalar method's ``<= 0`` early
    return is not modelled); each output element is bit-identical to
    ``stage.decode_time(int(b), float(kv))``.
    """
    b = np.asarray(batch_sizes, dtype=np.float64)
    kv = np.asarray(kv_tokens, dtype=np.float64)
    m = stage._model
    gpu = stage.gpu

    kv_bytes = kv * stage._kv_bytes_per_token_per_layer / stage.tp
    mem_per_layer = (
        stage._weight_bytes_per_layer + kv_bytes
    ) / gpu.effective_mem_bandwidth
    # attn_score_flops_per_layer(kv, 1.0) == ((4.0 * hidden) * 1.0) * kv.
    flops_per_layer = (
        stage._linear_flops_per_token * b + 4.0 * m.hidden_size * 1.0 * kv
    )
    comp_per_layer = flops_per_layer / stage.tp / gpu.effective_flops_decode
    per_layer = np.maximum(mem_per_layer, comp_per_layer)
    per_layer = per_layer + (
        gpu.kernel_overhead_s + _allreduce_per_layer_array(stage, b)
    )
    return (
        stage.n_layers * per_layer
        + _head_time_array(stage, b)
        + stage.step_overhead_s
    )


def prefill_time_surface(
    stage: "StageCostModel", prompt_lens: np.ndarray
) -> np.ndarray:
    """``prefill_time((L,))`` for single-prompt batches, elementwise over L.

    Each element is bit-identical to ``stage.prefill_time((int(L),))`` for
    L >= 1.
    """
    lens = np.asarray(prompt_lens, dtype=np.float64)
    m = stage._model
    gpu = stage.gpu

    tokens = lens  # float(sum(seq_lens)) of a single-prompt batch
    # sum(prefill_attn_flops_per_layer(L) for one prompt) ==
    # 0 + 0.5 * (((4.0 * hidden) * L) * L).
    attn = 0 + 0.5 * (4.0 * m.hidden_size * lens * lens)
    flops_per_layer = stage._linear_flops_per_token * tokens + attn

    # _dense_layer_time(flops, tokens, read_bytes=0.0):
    mem = (stage._weight_bytes_per_layer + 0.0) / gpu.effective_mem_bandwidth
    comp = flops_per_layer / stage.tp / gpu.effective_flops
    sat = tokens / (tokens + gpu.gemm_halfsat_tokens)
    per_layer = np.where(
        (comp >= mem) & (tokens > 0),
        comp / np.maximum(sat, 1e-9),
        np.maximum(mem, comp),
    )
    per_layer = per_layer + (
        gpu.kernel_overhead_s + _allreduce_per_layer_array(stage, tokens)
    )
    return (
        stage.n_layers * per_layer
        + stage._head_time(1)
        + stage.step_overhead_s
    )


def decode_rate_curve(
    stage: "StageCostModel",
    batch_sizes: np.ndarray,
    mean_context: float,
) -> tuple[np.ndarray, np.ndarray]:
    """(decode step times, per-request rates) over ``batch_sizes`` at once.

    Bit-identical to ``DecodeRateProfile.rate``'s scalar chain: the kv
    operand is ``b * (mean_context + 1.0)`` and the rate is ``b / t``, both
    evaluated in the scalar order.  One call replaces two cost-model calls
    per scheduling decision with table lookups (plus the whole curve for
    every other batch size, for free).
    """
    b = np.asarray(batch_sizes, dtype=np.float64)
    times = decode_time_surface(stage, b, b * (mean_context + 1.0))
    return times, b / times


# --------------------------------------------------------------------- #
# Lookup tables installed into StageCostModel.
# --------------------------------------------------------------------- #
class DecodeGrid:
    """Precomputed ``decode_time`` surface over (batch size, kv tokens).

    Rows are batch sizes ``1..max_batch``; columns an arithmetic kv-token
    progression ``kv_start + j * kv_step``.  ``lookup`` answers only exact
    grid points (anything else returns None and falls back to the scalar
    path), so substituting a grid hit for a scalar call never changes a
    result.  The table is kept as nested Python lists: float list indexing
    is faster than numpy scalar extraction on this hot path.
    """

    __slots__ = ("max_batch", "kv_start", "kv_step", "n_kv", "rows", "hits", "misses")

    def __init__(
        self,
        stage: "StageCostModel",
        max_batch: int,
        kv_start: int,
        kv_step: int,
        n_kv: int,
    ) -> None:
        if max_batch < 1 or n_kv < 1 or kv_step < 1:
            raise ValueError("grid axes must be non-empty with positive step")
        self.max_batch = max_batch
        self.kv_start = kv_start
        self.kv_step = kv_step
        self.n_kv = n_kv
        b = np.arange(1, max_batch + 1, dtype=np.float64)[:, None]
        kv = (kv_start + kv_step * np.arange(n_kv, dtype=np.float64))[None, :]
        surface = decode_time_surface(stage, b, np.broadcast_to(kv, (max_batch, n_kv)))
        self.rows: list[list[float]] = surface.tolist()
        self.hits = 0
        self.misses = 0

    @property
    def size(self) -> int:
        return self.max_batch * self.n_kv

    def lookup(self, batch_size: int, kv_tokens: float) -> float | None:
        """Grid value at an exact (batch, kv) point, else None."""
        if batch_size < 1 or batch_size > self.max_batch:
            self.misses += 1
            return None
        offset = kv_tokens - self.kv_start
        # The range check rejects NaN/inf before int() could choke on them.
        if 0 <= offset < self.n_kv * self.kv_step:
            j = int(offset) // self.kv_step
            if self.kv_start + j * self.kv_step == kv_tokens:
                self.hits += 1
                return self.rows[batch_size - 1][j]
        self.misses += 1
        return None


class PrefillGrid:
    """Precomputed ``prefill_time`` over single-prompt batches ``(L,)``.

    Covers L = 1..max_len; multi-prompt batches and longer prompts return
    None and fall back to the scalar path.
    """

    __slots__ = ("max_len", "times", "hits", "misses")

    def __init__(self, stage: "StageCostModel", max_len: int) -> None:
        if max_len < 1:
            raise ValueError("max_len must be >= 1")
        self.max_len = max_len
        lens = np.arange(1, max_len + 1, dtype=np.float64)
        self.times: list[float] = prefill_time_surface(stage, lens).tolist()
        self.hits = 0
        self.misses = 0

    @property
    def size(self) -> int:
        return self.max_len

    def lookup(self, seq_lens: Sequence[int]) -> float | None:
        """Grid value for a single-prompt batch, else None."""
        if len(seq_lens) == 1:
            length = seq_lens[0]
            if 1 <= length <= self.max_len and length == int(length):
                self.hits += 1
                return self.times[int(length) - 1]
        self.misses += 1
        return None


# --------------------------------------------------------------------- #
# Engine-start installation (with a cross-engine build cache).
# --------------------------------------------------------------------- #
#: Sweeps construct hundreds of identical engines; grids are pure functions
#: of the (hashable, frozen) stage description, so build once per shape.
_GRID_CACHE: dict[tuple, DecodeGrid | PrefillGrid] = {}
_GRID_CACHE_MAX = 256


def _stage_key(stage: "StageCostModel") -> tuple:
    return (stage.shard, stage.gpu, stage.interconnect, stage.step_overhead_s)


def _cached(key: tuple, build):
    grid = _GRID_CACHE.get(key)
    if grid is None:
        if len(_GRID_CACHE) >= _GRID_CACHE_MAX:
            _GRID_CACHE.clear()
        grid = _GRID_CACHE[key] = build()
    return grid


def build_decode_grid(
    stage: "StageCostModel",
    max_batch: int = 256,
    kv_step: int = 16,
    n_kv: int = 256,
) -> DecodeGrid:
    """Decode surface over b in 1..max_batch, kv in {kv_step..n_kv*kv_step}.

    The default kv progression is block-aligned (16-token KV blocks), the
    alignment engine decode batches actually produce most often.
    """
    key = ("decode", _stage_key(stage), max_batch, kv_step, n_kv)
    return _cached(
        key, lambda: DecodeGrid(stage, max_batch, kv_step, kv_step, n_kv)
    )


def build_prefill_grid(stage: "StageCostModel", max_len: int = 2048) -> PrefillGrid:
    key = ("prefill", _stage_key(stage), max_len)
    return _cached(key, lambda: PrefillGrid(stage, max_len))


def install_default_grids(
    stage_models: Sequence["StageCostModel"],
    max_batch: int = 256,
    max_prompt_len: int = 2048,
) -> None:
    """Precompute and install decode/prefill grids on every stage model.

    Called once at engine start; identical stages across a sweep share the
    cached build.  Installs are idempotent and never change results (grids
    are bit-identical to the scalar path; off-grid shapes fall through).
    """
    for stage in stage_models:
        stage.install_grids(
            decode_grid=build_decode_grid(stage, max_batch=max(1, max_batch)),
            prefill_grid=build_prefill_grid(stage, max_len=max(1, max_prompt_len)),
        )
