"""Analytic roofline cost model replacing CUDA execution."""

from .roofline import FullModelCostModel, PrefillChunk, StageCostModel

__all__ = ["StageCostModel", "FullModelCostModel", "PrefillChunk"]
