"""Analytic roofline cost model replacing CUDA execution."""

from .roofline import FullModelCostModel, PrefillChunk, StageCostModel
from .vectorized import (
    DecodeGrid,
    PrefillGrid,
    build_decode_grid,
    build_prefill_grid,
    decode_rate_curve,
    decode_time_surface,
    install_default_grids,
    prefill_time_surface,
)

__all__ = [
    "StageCostModel",
    "FullModelCostModel",
    "PrefillChunk",
    "DecodeGrid",
    "PrefillGrid",
    "build_decode_grid",
    "build_prefill_grid",
    "decode_rate_curve",
    "decode_time_surface",
    "install_default_grids",
    "prefill_time_surface",
]
