"""Figure 13: ablation of the prefill-to-decode switch (Approach 1).

The AI-based greedy prefill is replaced by a hand-tuned "KV cache occupancy
ratio" heuristic (switch once X% of the KV blocks are occupied) at ratios
20..95%, on 4xL20+32B and 4xA100+70B.  Expected shape: TD-Pipe's adaptive
policy matches or beats the best hand-tuned ratio on both configs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.policies import OccupancyRatioPolicy
from .common import ExperimentScale, default_scale, eval_requests, run_system

__all__ = ["PrefillSwitchAblation", "run", "format_results", "DEFAULT_RATIOS", "DEFAULT_CONFIGS"]

DEFAULT_RATIOS: tuple[float, ...] = (0.20, 0.35, 0.50, 0.65, 0.80, 0.95)
DEFAULT_CONFIGS: tuple[tuple[str, str], ...] = (("L20", "32B"), ("A100", "70B"))


@dataclass
class PrefillSwitchAblation:
    node: str
    model: str
    ratio_throughputs: dict[float, float]
    tdpipe_throughput: float

    @property
    def best_ratio(self) -> float:
        return max(self.ratio_throughputs, key=lambda r: self.ratio_throughputs[r])

    @property
    def tdpipe_wins(self) -> bool:
        return self.tdpipe_throughput >= max(self.ratio_throughputs.values())


def run(
    scale: ExperimentScale | None = None,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    configs: tuple[tuple[str, str], ...] = DEFAULT_CONFIGS,
    num_gpus: int = 4,
) -> list[PrefillSwitchAblation]:
    scale = scale or default_scale()
    out = []
    for gpu_name, model_name in configs:
        ratio_tp: dict[float, float] = {}
        for r in ratios:
            res = run_system(
                "TD-Pipe",
                gpu_name,
                model_name,
                requests=eval_requests(scale),
                scale=scale,
                num_gpus=num_gpus,
                prefill_policy=OccupancyRatioPolicy(ratio=r),
            )
            ratio_tp[r] = res.throughput
        td = run_system(
            "TD-Pipe",
            gpu_name,
            model_name,
            requests=eval_requests(scale),
            scale=scale,
            num_gpus=num_gpus,
        )
        out.append(
            PrefillSwitchAblation(
                node=gpu_name,
                model=model_name,
                ratio_throughputs=ratio_tp,
                tdpipe_throughput=td.throughput,
            )
        )
    return out


def format_results(abls: list[PrefillSwitchAblation]) -> str:
    lines = []
    for a in abls:
        lines.append(f"-- 4x{a.node} + {a.model}: prefill->decode switch ablation --")
        for r, t in sorted(a.ratio_throughputs.items()):
            lines.append(f"  occupancy {r * 100:4.0f}% : {t:9.1f} tok/s")
        flag = "best" if a.tdpipe_wins else f"vs best ratio {a.best_ratio:.0%}"
        lines.append(f"  TD-Pipe (greedy) : {a.tdpipe_throughput:9.1f} tok/s  [{flag}]")
    return "\n".join(lines)
