"""Figure 13: ablation of the prefill-to-decode switch (Approach 1).

The AI-based greedy prefill is replaced by a hand-tuned "KV cache occupancy
ratio" heuristic (switch once X% of the KV blocks are occupied) at ratios
20..95%, on 4xL20+32B and 4xA100+70B.  Expected shape: TD-Pipe's adaptive
policy matches or beats the best hand-tuned ratio on both configs.

The ablation is a registered spec grid (``fig13-prefill-switch``): one
single-engine TD-Pipe scenario with ``engine.prefill_policy`` as the sweep
axis — each occupancy ratio plus ``None`` for the adaptive default —
instantiated per node/model combination, so every point is a replayable
record in the artifact store.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import api
from ..api import (
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
    register_scenario,
    run_sweep,
)
from .common import ExperimentScale, default_scale

__all__ = [
    "PrefillSwitchAblation",
    "prefill_switch_spec",
    "run",
    "format_results",
    "DEFAULT_RATIOS",
    "DEFAULT_CONFIGS",
]

DEFAULT_RATIOS: tuple[float, ...] = (0.20, 0.35, 0.50, 0.65, 0.80, 0.95)
DEFAULT_CONFIGS: tuple[tuple[str, str], ...] = (("L20", "32B"), ("A100", "70B"))


@dataclass
class PrefillSwitchAblation:
    node: str
    model: str
    ratio_throughputs: dict[float, float]
    tdpipe_throughput: float

    @property
    def best_ratio(self) -> float:
        return max(self.ratio_throughputs, key=lambda r: self.ratio_throughputs[r])

    @property
    def tdpipe_wins(self) -> bool:
        return self.tdpipe_throughput >= max(self.ratio_throughputs.values())


@register_scenario("fig13-prefill-switch")
def prefill_switch_spec(
    node: str = "L20",
    model: str = "32B",
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    num_gpus: int = 4,
    scale_factor: float = 0.1,
    seed: int = 0,
) -> SweepSpec:
    """Occupancy-ratio grid (plus the adaptive default) for one config."""
    axis = tuple({"name": "occupancy", "ratio": r} for r in ratios) + (None,)
    return SweepSpec(
        name="fig13-prefill-switch",
        base=ScenarioSpec(
            mode="engine",
            workload=WorkloadSpec(scale=scale_factor, seed=seed),
            fleet=FleetSpec(node=node, num_gpus=num_gpus, replicas=1),
            engine=EngineSpec(system="TD-Pipe", model=model),
        ),
        axes=(SweepAxis("engine.prefill_policy", axis),),
    )


def run(
    scale: ExperimentScale | None = None,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    configs: tuple[tuple[str, str], ...] = DEFAULT_CONFIGS,
    num_gpus: int = 4,
    store: api.ArtifactStore | None = None,
    jobs: int | None = None,
    backend: str | None = None,
    reuse: bool = False,
) -> list[PrefillSwitchAblation]:
    """Run the registered ``fig13-prefill-switch`` grid per config.

    ``jobs`` executes each config's grid on a process pool (identical
    results and records to the serial default).
    """
    scale = scale or default_scale()
    out = []
    for gpu_name, model_name in configs:
        sweep = prefill_switch_spec(
            node=gpu_name,
            model=model_name,
            ratios=ratios,
            num_gpus=num_gpus,
            scale_factor=scale.factor,
            seed=scale.seed,
        )
        ratio_tp: dict[float, float] = {}
        tdpipe_tp = 0.0
        for artifact in run_sweep(sweep, store=store, jobs=jobs, backend=backend, reuse=reuse):
            policy = artifact.spec.engine.prefill_policy
            if policy is None:
                tdpipe_tp = artifact.result.throughput
            else:
                ratio_tp[policy["ratio"]] = artifact.result.throughput
        out.append(
            PrefillSwitchAblation(
                node=gpu_name,
                model=model_name,
                ratio_throughputs=ratio_tp,
                tdpipe_throughput=tdpipe_tp,
            )
        )
    return out


def format_results(abls: list[PrefillSwitchAblation]) -> str:
    lines = []
    for a in abls:
        lines.append(f"-- 4x{a.node} + {a.model}: prefill->decode switch ablation --")
        for r, t in sorted(a.ratio_throughputs.items()):
            lines.append(f"  occupancy {r * 100:4.0f}% : {t:9.1f} tok/s")
        flag = "best" if a.tdpipe_wins else f"vs best ratio {a.best_ratio:.0%}"
        lines.append(f"  TD-Pipe (greedy) : {a.tdpipe_throughput:9.1f} tok/s  [{flag}]")
    return "\n".join(lines)
