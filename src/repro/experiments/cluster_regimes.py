"""Reactive autoscaling across traffic regimes: diurnal vs spike vs flash.

The stationary-arrival experiments ask "how big a fleet does rate R need";
this one asks the production question: *how does the same reactive
autoscaler cope with differently-shaped traffic at the same average load?*
A diurnal cycle gives the hysteresis policy minutes of warning; a flash
crowd gives it seconds.  The per-segment metric slices make the difference
legible — attainment and fleet size during the ``flash`` window, not
averaged away over the makespan.

Runs the registered ``cluster-regimes`` spec grid: one cluster scenario per
regime preset, identical fleet/engine/control, only ``workload.regime``
swept.
"""

from __future__ import annotations

from ..api import (
    ControlSpec,
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
    register_scenario,
    run_sweep,
)
from ..workload.regimes import preset_dict, regime_names
from .common import ExperimentScale, default_scale

__all__ = [
    "DEFAULT_REGIMES",
    "regimes_spec",
    "run_regimes",
    "format_regimes",
]

#: Presets compared by default — a slow cycle, a fast ramp, a flash crowd.
DEFAULT_REGIMES = ("diurnal", "ramp-spike", "flash-crowd")


@register_scenario("cluster-regimes")
def regimes_spec(
    system: str = "TD-Pipe",
    node: str = "L20",
    model: str = "13B",
    replicas: int = 4,
    router: str = "jsq",
    regimes: tuple[str, ...] = DEFAULT_REGIMES,
    duration_scale: float = 1.0,
    scale_factor: float = 0.1,
    seed: int = 0,
) -> SweepSpec:
    """The regime-comparison sweep as a declarative spec grid.

    ``replicas`` is the provisioned headroom; the autoscaler starts from
    one active replica and must chase each regime's shape.
    ``duration_scale`` shrinks every preset uniformly (CI smoke runs the
    same shapes at a fraction of the length).
    """
    unknown = sorted(set(regimes) - set(regime_names()))
    if unknown:
        raise ValueError(
            f"unknown regime preset(s) {unknown}; options: {regime_names()}"
        )
    return SweepSpec(
        name="cluster-regimes",
        base=ScenarioSpec(
            mode="cluster",
            workload=WorkloadSpec(
                scale=scale_factor,
                seed=seed,
                arrival="regime",
                regime=preset_dict(regimes[0], duration_scale),
            ),
            fleet=FleetSpec(node=node, replicas=replicas),
            engine=EngineSpec(system=system, model=model),
            control=ControlSpec(router=router, autoscaler={"min_replicas": 1}),
        ),
        axes=(
            SweepAxis(
                "workload.regime",
                tuple(preset_dict(name, duration_scale) for name in regimes),
            ),
        ),
    )


def run_regimes(
    scale: ExperimentScale | None = None,
    system: str = "TD-Pipe",
    node: str = "L20",
    model: str = "13B",
    replicas: int = 4,
    router: str = "jsq",
    regimes: tuple[str, ...] = DEFAULT_REGIMES,
    duration_scale: float = 1.0,
    store=None,
    jobs: int | None = None,
    backend: str | None = None,
    reuse: bool = False,
) -> list[dict]:
    """One row per regime preset: whole-run metrics + per-segment slices."""
    scale = scale or default_scale()
    sweep = regimes_spec(
        system=system,
        node=node,
        model=model,
        replicas=replicas,
        router=router,
        regimes=regimes,
        duration_scale=duration_scale,
        scale_factor=scale.factor,
        seed=scale.seed,
    )
    rows = []
    for name, artifact in zip(
        regimes, run_sweep(sweep, store=store, jobs=jobs, backend=backend, reuse=reuse)
    ):
        result = artifact.result
        rows.append(
            {
                "regime": name,
                "system": system,
                "router": router,
                "replicas": replicas,
                "completed": result.completed_requests,
                "goodput": result.goodput,
                "ttft_p99": (
                    result.latency.ttft_p99
                    if result.latency is not None and result.latency.count
                    else float("nan")
                ),
                "mean_active_replicas": result.mean_active_replicas,
                "replica_seconds": result.replica_seconds,
                "fleet_changes": len(result.fleet_timeline),
                "slo_attainment": {
                    n: s.attainment for n, s in result.slo_attainment.items()
                },
                "segments": result.segments,
                "result": result,
            }
        )
    return rows


def format_regimes(rows: list[dict]) -> str:
    """Per-regime summary table, each followed by its segment slices."""
    if not rows:
        return "no results"
    lines = [
        f"Traffic regimes vs reactive autoscaling "
        f"({rows[0]['replicas']} provisioned {rows[0]['system']} replicas, "
        f"router={rows[0]['router']})",
        f"{'regime':<12} {'TTFT p99':>9} {'goodput':>8} {'avg fleet':>9} "
        f"{'repl-sec':>9} {'changes':>8} {'SLO int':>8}",
    ]
    for row in rows:
        att = row["slo_attainment"]
        lines.append(
            f"{row['regime']:<12} {row['ttft_p99']:>8.2f}s {row['goodput']:>8.2f} "
            f"{row['mean_active_replicas']:>9.2f} {row['replica_seconds']:>9.1f} "
            f"{row['fleet_changes']:>8d} "
            f"{att.get('interactive', float('nan')) * 100:>7.1f}%"
        )
    for row in rows:
        lines.append("")
        lines.append(f"{row['regime']} segments:")
        for stats in row["segments"].values():
            lines.append("  " + stats.summary())
    return "\n".join(lines)
