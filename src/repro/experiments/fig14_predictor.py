"""Figure 14 + Section 4.4.1: output-length predictor quality.

Per-request bin accuracy (paper: 0.5214 / 0.5805 / 0.5234 for the 13B / 32B /
70B predictors — well above the 5-class chance level) and the accumulated
relative error of total-length prediction versus group size (paper: ~3-6% at
256 requests), plus the predictor's runtime overhead as a fraction of total
processing time (paper: < 0.16%).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..predictor import LengthPredictor, accumulated_error_curve
from .common import ExperimentScale, default_scale, get_dataset, get_predictor

__all__ = ["PredictorEvaluation", "run", "format_results"]

DEFAULT_GROUPS: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass
class PredictorEvaluation:
    bin_accuracy: float
    chance_level: float
    group_sizes: list[int]
    accumulated_errors: list[float]
    prediction_time_per_request_s: float
    predictor: LengthPredictor

    def error_at(self, group_size: int) -> float:
        return self.accumulated_errors[self.group_sizes.index(group_size)]


def run(
    scale: ExperimentScale | None = None,
    group_sizes: tuple[int, ...] = DEFAULT_GROUPS,
) -> PredictorEvaluation:
    scale = scale or default_scale()
    predictor = get_predictor(scale)
    test = get_dataset(scale).test
    acc = predictor.bin_accuracy(test)
    curve = accumulated_error_curve(predictor, test, group_sizes=group_sizes, seed=scale.seed)
    # Measure inference overhead (vectorised path, amortised per request).
    t0 = time.perf_counter()
    predictor.predict_lengths(test)
    per_req = (time.perf_counter() - t0) / max(len(test), 1)
    return PredictorEvaluation(
        bin_accuracy=acc,
        chance_level=1.0 / predictor.bins.n_bins,
        group_sizes=curve.group_sizes,
        accumulated_errors=curve.errors,
        prediction_time_per_request_s=per_req,
        predictor=predictor,
    )


def format_results(ev: PredictorEvaluation) -> str:
    lines = [
        f"bin accuracy: {ev.bin_accuracy:.4f} (chance {ev.chance_level:.2f}; "
        f"paper: 0.52-0.58)",
        f"prediction overhead: {ev.prediction_time_per_request_s * 1e6:.1f} us/request",
        "accumulated error vs group size:",
    ]
    for g, e in zip(ev.group_sizes, ev.accumulated_errors):
        lines.append(f"  n={g:4d}: {e * 100:6.2f}%")
    return "\n".join(lines)
