"""Figure 1: pipeline schedules and their bubbles, rendered as Gantt rows.

The paper's Figure 1 sketches why separate and hybrid batching bubble in
pipeline parallelism.  This experiment runs PP+SB, PP+HB and TD-Pipe on the
same short workload window and renders the actual simulated schedules,
with bubble ratios per system.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..viz.gantt import gantt
from .common import ExperimentScale, default_scale, eval_requests, run_system

__all__ = ["ScheduleView", "run", "format_results"]


@dataclass
class ScheduleView:
    system: str
    rendering: str
    bubble_ratio: float
    throughput: float


def run(
    scale: ExperimentScale | None = None,
    gpu_name: str = "L20",
    model_name: str = "32B",
    num_gpus: int = 4,
    window_frac: tuple[float, float] = (0.2, 0.5),
    width: int = 80,
    systems: tuple[str, ...] = ("PP+SB", "PP+HB", "TD-Pipe"),
) -> list[ScheduleView]:
    """Render a mid-run window (avoiding warm-up and tail) per system."""
    scale = scale or default_scale()
    views = []
    for system in systems:
        res = run_system(
            system, gpu_name, model_name, requests=eval_requests(scale), scale=scale,
            num_gpus=num_gpus,
        )
        t0 = res.makespan * window_frac[0]
        t1 = res.makespan * window_frac[1]
        views.append(
            ScheduleView(
                system=system,
                rendering=gantt(res.trace, t0=t0, t1=t1, width=width),
                bubble_ratio=1.0 - res.trace.mean_utilization(t0, t1),
                throughput=res.throughput,
            )
        )
    return views


def format_results(views: list[ScheduleView]) -> str:
    out = []
    for v in views:
        out.append(
            f"-- {v.system}: bubbles {v.bubble_ratio * 100:.1f}% in window, "
            f"{v.throughput:.0f} tok/s overall --"
        )
        out.append(v.rendering)
    return "\n".join(out)
