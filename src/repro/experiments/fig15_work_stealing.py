"""Figure 15: ablation of inter-batch work stealing (Approach 2).

TD-Pipe with ("wi") and without ("wo") dynamic work stealing during the decode
phase.  The load-balanced split at the prefill-to-decode switch is kept in
both modes — only the dynamic rebalancing is removed.  Paper result: 1.14x
(L20+32B) and 1.07x (A100+70B) throughput gain with stealing.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import ExperimentScale, default_scale, eval_requests, run_system

__all__ = ["WorkStealingAblation", "run", "format_results", "DEFAULT_CONFIGS"]

DEFAULT_CONFIGS: tuple[tuple[str, str], ...] = (("L20", "32B"), ("A100", "70B"))


@dataclass
class WorkStealingAblation:
    node: str
    model: str
    with_stealing: float
    without_stealing: float

    @property
    def gain(self) -> float:
        if self.without_stealing == 0:
            return float("nan")
        return self.with_stealing / self.without_stealing


def run(
    scale: ExperimentScale | None = None,
    configs: tuple[tuple[str, str], ...] = DEFAULT_CONFIGS,
    num_gpus: int = 4,
) -> list[WorkStealingAblation]:
    scale = scale or default_scale()
    out = []
    for gpu_name, model_name in configs:
        wi = run_system(
            "TD-Pipe",
            gpu_name,
            model_name,
            requests=eval_requests(scale),
            scale=scale,
            num_gpus=num_gpus,
            work_stealing=True,
        )
        wo = run_system(
            "TD-Pipe",
            gpu_name,
            model_name,
            requests=eval_requests(scale),
            scale=scale,
            num_gpus=num_gpus,
            work_stealing=False,
        )
        out.append(
            WorkStealingAblation(
                node=gpu_name,
                model=model_name,
                with_stealing=wi.throughput,
                without_stealing=wo.throughput,
            )
        )
    return out


def format_results(abls: list[WorkStealingAblation]) -> str:
    lines = []
    for a in abls:
        lines.append(
            f"4x{a.node} + {a.model}: wo={a.without_stealing:9.1f}  "
            f"wi={a.with_stealing:9.1f} tok/s  gain={a.gain:.2f}x"
        )
    return "\n".join(lines)
