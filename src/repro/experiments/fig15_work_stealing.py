"""Figure 15: ablation of inter-batch work stealing (Approach 2).

TD-Pipe with ("wi") and without ("wo") dynamic work stealing during the decode
phase.  The load-balanced split at the prefill-to-decode switch is kept in
both modes — only the dynamic rebalancing is removed.  Paper result: 1.14x
(L20+32B) and 1.07x (A100+70B) throughput gain with stealing.

The ablation is a registered spec grid (``fig15-work-stealing``): one
single-engine TD-Pipe scenario with ``engine.work_stealing`` as the sweep
axis, instantiated once per node/model combination.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import (
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
    register_scenario,
    run_sweep,
)
from .common import ExperimentScale, default_scale

__all__ = [
    "WorkStealingAblation",
    "work_stealing_spec",
    "run",
    "format_results",
    "DEFAULT_CONFIGS",
]

DEFAULT_CONFIGS: tuple[tuple[str, str], ...] = (("L20", "32B"), ("A100", "70B"))


@dataclass
class WorkStealingAblation:
    node: str
    model: str
    with_stealing: float
    without_stealing: float

    @property
    def gain(self) -> float:
        if self.without_stealing == 0:
            return float("nan")
        return self.with_stealing / self.without_stealing


@register_scenario("fig15-work-stealing")
def work_stealing_spec(
    node: str = "L20",
    model: str = "32B",
    num_gpus: int = 4,
    scale_factor: float = 0.1,
    seed: int = 0,
) -> SweepSpec:
    """Work-stealing on/off grid for one node/model combination."""
    return SweepSpec(
        name="fig15-work-stealing",
        base=ScenarioSpec(
            mode="engine",
            workload=WorkloadSpec(scale=scale_factor, seed=seed),
            fleet=FleetSpec(node=node, num_gpus=num_gpus, replicas=1),
            engine=EngineSpec(system="TD-Pipe", model=model),
        ),
        axes=(SweepAxis("engine.work_stealing", (True, False)),),
    )


def run(
    scale: ExperimentScale | None = None,
    configs: tuple[tuple[str, str], ...] = DEFAULT_CONFIGS,
    num_gpus: int = 4,
    store=None,
    jobs: int | None = None,
    backend: str | None = None,
    reuse: bool = False,
) -> list[WorkStealingAblation]:
    scale = scale or default_scale()
    out = []
    for gpu_name, model_name in configs:
        sweep = work_stealing_spec(
            node=gpu_name,
            model=model_name,
            num_gpus=num_gpus,
            scale_factor=scale.factor,
            seed=scale.seed,
        )
        by_mode = {
            a.spec.engine.work_stealing: a.result.throughput
            for a in run_sweep(sweep, store=store, jobs=jobs, backend=backend, reuse=reuse)
        }
        out.append(
            WorkStealingAblation(
                node=gpu_name,
                model=model_name,
                with_stealing=by_mode[True],
                without_stealing=by_mode[False],
            )
        )
    return out


def format_results(abls: list[WorkStealingAblation]) -> str:
    lines = []
    for a in abls:
        lines.append(
            f"4x{a.node} + {a.model}: wo={a.without_stealing:9.1f}  "
            f"wi={a.with_stealing:9.1f} tok/s  gain={a.gain:.2f}x"
        )
    return "\n".join(lines)
