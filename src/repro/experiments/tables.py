"""Tables 1 and 2: hardware and model configurations.

These regenerate the paper's setup tables from the presets, doubling as a
consistency check that the substrate carries the published constants.
"""

from __future__ import annotations

from ..hardware.gpu import A100, L20, GPUSpec
from ..models.spec import LLAMA2_13B, LLAMA2_70B, QWEN25_32B, ModelSpec

__all__ = ["table1_rows", "table2_rows", "format_table1", "format_table2"]


def table1_rows(gpus: tuple[GPUSpec, ...] = (L20, A100)) -> list[dict]:
    """Paper Table 1: GPU configurations."""
    return [
        {
            "Device": g.name,
            "FP16 Tensor Core (TFLOPS)": g.fp16_tflops,
            "Bandwidth (GB/s)": g.mem_bandwidth_gbps,
            "Memory (GB)": g.memory_gb,
            "AllReduce (GB/s)": g.allreduce_bw_gbps,
        }
        for g in gpus
    ]


def table2_rows(
    models: tuple[ModelSpec, ...] = (LLAMA2_13B, QWEN25_32B, LLAMA2_70B),
) -> list[dict]:
    """Paper Table 2: model specifications (weights derived, not hard-coded)."""
    return [
        {
            "Name": m.name,
            "Parameters (GB)": round(m.weight_bytes / 1e9),
            "Layers": m.n_layers,
            "Heads": m.n_heads,
            "Hidden Size": m.hidden_size,
            "KV cache (MB/token)": round(m.kv_bytes_per_token / 1e6, 2),
            "GQA": m.n_kv_heads < m.n_heads,
        }
        for m in models
    ]


def _format(rows: list[dict]) -> str:
    if not rows:
        return ""
    cols = list(rows[0])
    widths = [max(len(str(c)), *(len(str(r[c])) for r in rows)) for c in cols]
    line = " | ".join(str(c).ljust(w) for c, w in zip(cols, widths))
    sep = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(str(r[c]).ljust(w) for c, w in zip(cols, widths)) for r in rows
    )
    return f"{line}\n{sep}\n{body}"


def format_table1() -> str:
    return _format(table1_rows())


def format_table2() -> str:
    return _format(table2_rows())
