"""Experiment harness: one module per paper table/figure (see DESIGN.md §4)."""

from . import (
    fig01_schedules,
    fig02_utilization,
    fig06_tp_breakdown,
    fig11_overall,
    fig12_kv_usage,
    fig13_prefill_switch,
    fig14_predictor,
    fig15_work_stealing,
    fig16_decode_switch,
    sweeps,
    tables,
)
from .common import (
    PAPER_COMBOS,
    SYSTEMS,
    ExperimentScale,
    default_scale,
    eval_requests,
    get_dataset,
    get_predictor,
    run_system,
)

__all__ = [
    "run_system",
    "ExperimentScale",
    "default_scale",
    "eval_requests",
    "get_dataset",
    "get_predictor",
    "SYSTEMS",
    "PAPER_COMBOS",
    "tables",
    "fig01_schedules",
    "fig02_utilization",
    "fig06_tp_breakdown",
    "fig11_overall",
    "fig12_kv_usage",
    "fig13_prefill_switch",
    "fig14_predictor",
    "fig15_work_stealing",
    "fig16_decode_switch",
    "sweeps",
]
