"""Figure 16: ablation of the decode-to-prefill switch (Approach 3).

The spatial-temporal intensity comparison is replaced by a "request finish
ratio" heuristic (switch once X% of the decode phase's requests completed) at
ratios 80..5%, on 4xL20+32B and 4xA100+70B.  Expected shape: hand-tuned
ratios perform respectably (memory is plentiful on these configs) but the
intensity comparison consistently achieves the highest throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.policies import FinishRatioPolicy
from .common import ExperimentScale, default_scale, eval_requests, run_system

__all__ = ["DecodeSwitchAblation", "run", "format_results", "DEFAULT_RATIOS", "DEFAULT_CONFIGS"]

DEFAULT_RATIOS: tuple[float, ...] = (0.80, 0.65, 0.50, 0.35, 0.20, 0.05)
DEFAULT_CONFIGS: tuple[tuple[str, str], ...] = (("L20", "32B"), ("A100", "70B"))


@dataclass
class DecodeSwitchAblation:
    node: str
    model: str
    ratio_throughputs: dict[float, float]
    tdpipe_throughput: float

    @property
    def best_ratio(self) -> float:
        return max(self.ratio_throughputs, key=lambda r: self.ratio_throughputs[r])

    @property
    def tdpipe_wins(self) -> bool:
        return self.tdpipe_throughput >= max(self.ratio_throughputs.values())


def run(
    scale: ExperimentScale | None = None,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    configs: tuple[tuple[str, str], ...] = DEFAULT_CONFIGS,
    num_gpus: int = 4,
) -> list[DecodeSwitchAblation]:
    scale = scale or default_scale()
    out = []
    for gpu_name, model_name in configs:
        ratio_tp: dict[float, float] = {}
        for r in ratios:
            res = run_system(
                "TD-Pipe",
                gpu_name,
                model_name,
                requests=eval_requests(scale),
                scale=scale,
                num_gpus=num_gpus,
                decode_policy=FinishRatioPolicy(ratio=r),
            )
            ratio_tp[r] = res.throughput
        td = run_system(
            "TD-Pipe",
            gpu_name,
            model_name,
            requests=eval_requests(scale),
            scale=scale,
            num_gpus=num_gpus,
        )
        out.append(
            DecodeSwitchAblation(
                node=gpu_name,
                model=model_name,
                ratio_throughputs=ratio_tp,
                tdpipe_throughput=td.throughput,
            )
        )
    return out


def format_results(abls: list[DecodeSwitchAblation]) -> str:
    lines = []
    for a in abls:
        lines.append(f"-- 4x{a.node} + {a.model}: decode->prefill switch ablation --")
        for r, t in sorted(a.ratio_throughputs.items(), reverse=True):
            lines.append(f"  finish ratio {r * 100:4.0f}% : {t:9.1f} tok/s")
        flag = "best" if a.tdpipe_wins else f"vs best ratio {a.best_ratio:.0%}"
        lines.append(f"  TD-Pipe (SI/TI)   : {a.tdpipe_throughput:9.1f} tok/s  [{flag}]")
    return "\n".join(lines)
