"""Figure 16: ablation of the decode-to-prefill switch (Approach 3).

The spatial-temporal intensity comparison is replaced by a "request finish
ratio" heuristic (switch once X% of the decode phase's requests completed) at
ratios 80..5%, on 4xL20+32B and 4xA100+70B.  Expected shape: hand-tuned
ratios perform respectably (memory is plentiful on these configs) but the
intensity comparison consistently achieves the highest throughput.

The ablation is a registered spec grid (``fig16-decode-switch``): one
single-engine TD-Pipe scenario with ``engine.decode_policy`` as the sweep
axis — each finish ratio plus ``None`` for the intensity default —
instantiated per node/model combination, so every point is a replayable
record in the artifact store.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import api
from ..api import (
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
    register_scenario,
    run_sweep,
)
from .common import ExperimentScale, default_scale

__all__ = [
    "DecodeSwitchAblation",
    "decode_switch_spec",
    "run",
    "format_results",
    "DEFAULT_RATIOS",
    "DEFAULT_CONFIGS",
]

DEFAULT_RATIOS: tuple[float, ...] = (0.80, 0.65, 0.50, 0.35, 0.20, 0.05)
DEFAULT_CONFIGS: tuple[tuple[str, str], ...] = (("L20", "32B"), ("A100", "70B"))


@dataclass
class DecodeSwitchAblation:
    node: str
    model: str
    ratio_throughputs: dict[float, float]
    tdpipe_throughput: float

    @property
    def best_ratio(self) -> float:
        return max(self.ratio_throughputs, key=lambda r: self.ratio_throughputs[r])

    @property
    def tdpipe_wins(self) -> bool:
        return self.tdpipe_throughput >= max(self.ratio_throughputs.values())


@register_scenario("fig16-decode-switch")
def decode_switch_spec(
    node: str = "L20",
    model: str = "32B",
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    num_gpus: int = 4,
    scale_factor: float = 0.1,
    seed: int = 0,
) -> SweepSpec:
    """Finish-ratio grid (plus the intensity default) for one config."""
    axis = tuple({"name": "finish-ratio", "ratio": r} for r in ratios) + (None,)
    return SweepSpec(
        name="fig16-decode-switch",
        base=ScenarioSpec(
            mode="engine",
            workload=WorkloadSpec(scale=scale_factor, seed=seed),
            fleet=FleetSpec(node=node, num_gpus=num_gpus, replicas=1),
            engine=EngineSpec(system="TD-Pipe", model=model),
        ),
        axes=(SweepAxis("engine.decode_policy", axis),),
    )


def run(
    scale: ExperimentScale | None = None,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    configs: tuple[tuple[str, str], ...] = DEFAULT_CONFIGS,
    num_gpus: int = 4,
    store: api.ArtifactStore | None = None,
    jobs: int | None = None,
    backend: str | None = None,
    reuse: bool = False,
) -> list[DecodeSwitchAblation]:
    """Run the registered ``fig16-decode-switch`` grid per config.

    ``jobs`` executes each config's grid on a process pool (identical
    results and records to the serial default).
    """
    scale = scale or default_scale()
    out = []
    for gpu_name, model_name in configs:
        sweep = decode_switch_spec(
            node=gpu_name,
            model=model_name,
            ratios=ratios,
            num_gpus=num_gpus,
            scale_factor=scale.factor,
            seed=scale.seed,
        )
        ratio_tp: dict[float, float] = {}
        tdpipe_tp = 0.0
        for artifact in run_sweep(sweep, store=store, jobs=jobs, backend=backend, reuse=reuse):
            policy = artifact.spec.engine.decode_policy
            if policy is None:
                tdpipe_tp = artifact.result.throughput
            else:
                ratio_tp[policy["ratio"]] = artifact.result.throughput
        out.append(
            DecodeSwitchAblation(
                node=gpu_name,
                model=model_name,
                ratio_throughputs=ratio_tp,
                tdpipe_throughput=tdpipe_tp,
            )
        )
    return out


def format_results(abls: list[DecodeSwitchAblation]) -> str:
    lines = []
    for a in abls:
        lines.append(f"-- 4x{a.node} + {a.model}: decode->prefill switch ablation --")
        for r, t in sorted(a.ratio_throughputs.items(), reverse=True):
            lines.append(f"  finish ratio {r * 100:4.0f}% : {t:9.1f} tok/s")
        flag = "best" if a.tdpipe_wins else f"vs best ratio {a.best_ratio:.0%}"
        lines.append(f"  TD-Pipe (SI/TI)   : {a.tdpipe_throughput:9.1f} tok/s  [{flag}]")
    return "\n".join(lines)
