"""Cluster scaling sweep: replicas × routing policy × arrival rate.

The single-node experiments reproduce the paper; this sweep asks the
question the paper's production deployment would face next: given N TD-Pipe
replicas behind a router, which routing policy holds the p99 TTFT down as
the arrival rate climbs?  Temporal disaggregation couples routing to phase
state (see :class:`repro.cluster.routing.PhaseAwareRouter`), so the policies
separate most clearly at high load on the memory-tight L20/32B combination.

Arrival rates are specified *per replica* so both fleet sizes are driven at
the same load factor; the table reports the cluster-wide rate.
"""

from __future__ import annotations

from ..api import (
    ControlSpec,
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
    register_scenario,
    run_sweep,
)
from ..cluster import Autoscaler
from ..cluster.routing import ROUTERS
from .common import ExperimentScale, default_scale, run_cluster

__all__ = [
    "REPLICA_COUNTS",
    "RATES_PER_REPLICA",
    "HETERO_FLEET",
    "HETERO_ROUTERS",
    "DEFAULT_SLO_MIX",
    "run",
    "run_single",
    "format_results",
    "heterogeneous_spec",
    "run_heterogeneous",
    "format_heterogeneous",
    "autoscaling_spec",
    "run_autoscaling",
    "format_autoscaling",
]

REPLICA_COUNTS = (2, 4)

#: Requests per second per replica: light load, near saturation, overload.
RATES_PER_REPLICA = (0.5, 2.0, 3.0)

#: The mixed fleet the heterogeneous sweep runs on (paper's two testbeds).
HETERO_FLEET = "l20:2,a100:2"

#: Raw-count JSQ is the baseline capacity normalization must beat.
HETERO_ROUTERS = ("round-robin", "jsq-raw", "jsq", "deadline")

DEFAULT_SLO_MIX = "interactive:0.7,batch:0.3"


def _row(result, system: str, router: str, rate_rps, slo_mix) -> dict:
    """Flatten one ClusterResult into the historic sweep-row shape."""
    lat = result.latency
    return {
        "system": system,
        "replicas": result.num_replicas,
        "router": router,
        "rate_rps": rate_rps,
        "slo_mix": slo_mix,
        "ttft_p50": lat.ttft_p50,
        "ttft_p99": lat.ttft_p99,
        "tpot_p99": lat.tpot_p99,
        "goodput": result.goodput,
        "throughput": result.throughput,
        "util_imbalance": result.utilization_imbalance,
        "slo_attainment": {
            name: stats.attainment for name, stats in result.slo_attainment.items()
        },
        "mean_active_replicas": result.mean_active_replicas,
        "replica_seconds": result.replica_seconds,
        "result": result,
    }


def run_single(
    scale: ExperimentScale | None = None,
    system: str = "TD-Pipe",
    node: str = "L20",
    model: str = "32B",
    replicas: int = 4,
    router: str = "phase-aware",
    rate_rps: float | None = 8.0,
    fleet: str | None = None,
    slo_mix: str | None = None,
    autoscaler: Autoscaler | bool | None = None,
) -> dict:
    """One cluster configuration -> one result row."""
    scale = scale or default_scale()
    result = run_cluster(
        system,
        node,
        model,
        replicas=replicas,
        router=router,
        rate_rps=rate_rps,
        scale=scale,
        fleet=fleet,
        slo_mix=slo_mix,
        autoscaler=autoscaler,
    )
    return _row(result, system, router, rate_rps, slo_mix)


def run(
    scale: ExperimentScale | None = None,
    system: str = "TD-Pipe",
    node: str = "L20",
    model: str = "32B",
    replica_counts: tuple[int, ...] = REPLICA_COUNTS,
    routers: tuple[str, ...] = ROUTERS,
    rates_per_replica: tuple[float, ...] = RATES_PER_REPLICA,
) -> list[dict]:
    """The full replicas × router × rate sweep (one list of rows)."""
    scale = scale or default_scale()
    rows = []
    for replicas in replica_counts:
        for rate in rates_per_replica:
            for router in routers:
                rows.append(
                    run_single(
                        scale=scale,
                        system=system,
                        node=node,
                        model=model,
                        replicas=replicas,
                        router=router,
                        rate_rps=rate * replicas,
                    )
                )
    return rows


@register_scenario("cluster-hetero")
def heterogeneous_spec(
    system: str = "TD-Pipe",
    model: str = "13B",
    fleet: str = HETERO_FLEET,
    routers: tuple[str, ...] = HETERO_ROUTERS,
    rate_rps: float = 14.0,
    slo_mix: str = DEFAULT_SLO_MIX,
    scale_factor: float = 0.1,
    seed: int = 0,
) -> SweepSpec:
    """The heterogeneous-fleet router sweep as a declarative spec grid."""
    return SweepSpec(
        name="cluster-hetero",
        base=ScenarioSpec(
            mode="cluster",
            workload=WorkloadSpec(
                scale=scale_factor,
                seed=seed,
                arrival="poisson",
                rate_rps=rate_rps,
                slo_mix=slo_mix,
            ),
            fleet=FleetSpec(fleet=fleet),
            engine=EngineSpec(system=system, model=model),
        ),
        axes=(SweepAxis("control.router", tuple(routers)),),
    )


@register_scenario("cluster-autoscale")
def autoscaling_spec(
    system: str = "TD-Pipe",
    node: str = "L20",
    model: str = "13B",
    replicas: int = 4,
    router: str = "jsq",
    rate_rps: float = 10.0,
    slo_mix: str = DEFAULT_SLO_MIX,
    scale_factor: float = 0.1,
    seed: int = 0,
) -> SweepSpec:
    """Fixed vs autoscaled fleet as a declarative spec grid."""
    return SweepSpec(
        name="cluster-autoscale",
        base=ScenarioSpec(
            mode="cluster",
            workload=WorkloadSpec(
                scale=scale_factor,
                seed=seed,
                arrival="poisson",
                rate_rps=rate_rps,
                slo_mix=slo_mix,
            ),
            fleet=FleetSpec(node=node, replicas=replicas),
            engine=EngineSpec(system=system, model=model),
            control=ControlSpec(router=router),
        ),
        axes=(SweepAxis("control.autoscaler", (None, {"min_replicas": 1})),),
    )


def run_heterogeneous(
    scale: ExperimentScale | None = None,
    system: str = "TD-Pipe",
    model: str = "13B",
    fleet: str = HETERO_FLEET,
    routers: tuple[str, ...] = HETERO_ROUTERS,
    rate_rps: float = 14.0,
    slo_mix: str = DEFAULT_SLO_MIX,
    store=None,
    jobs: int | None = None,
    backend: str | None = None,
    reuse: bool = False,
) -> list[dict]:
    """Mixed L20/A100 fleet: does capacity normalization earn its keep?

    Same workload, same fleet, router swept.  Raw-count JSQ treats an L20
    and an A100 queue of equal length as equally loaded and over-commits the
    slow nodes; the normalized policies divide load by the roofline
    throughput score.  Rows carry per-SLO-class attainment so the deadline
    router's class separation is visible too.

    Runs the registered ``cluster-hetero`` spec grid.
    """
    scale = scale or default_scale()
    sweep = heterogeneous_spec(
        system=system,
        model=model,
        fleet=fleet,
        routers=routers,
        rate_rps=rate_rps,
        slo_mix=slo_mix,
        scale_factor=scale.factor,
        seed=scale.seed,
    )
    return [
        _row(a.result, system, a.spec.control.router, rate_rps, slo_mix)
        for a in run_sweep(sweep, store=store, jobs=jobs, backend=backend, reuse=reuse)
    ]


def format_heterogeneous(rows: list[dict]) -> str:
    """One line per router; best p99 TTFT starred."""
    if not rows:
        return "no results"
    fleet = rows[0]["result"].extras.get("fleet_nodes", [])
    lines = [
        f"Heterogeneous fleet ({'+'.join(fleet)}), "
        f"{rows[0]['rate_rps']:.1f} req/s, SLO mix {rows[0]['slo_mix']}",
        f"{'router':<12} {'TTFT p50':>9} {'TTFT p99':>9} {'goodput':>8} "
        f"{'imbal':>6} {'SLO int':>8} {'SLO bat':>8}",
    ]
    best = min(r["ttft_p99"] for r in rows)
    for row in rows:
        star = "*" if row["ttft_p99"] == best else " "
        att = row["slo_attainment"]
        lines.append(
            f"{row['router']:<12} {row['ttft_p50']:>8.2f}s {row['ttft_p99']:>7.2f}s{star} "
            f"{row['goodput']:>8.2f} {row['util_imbalance'] * 100:>5.1f}% "
            f"{att.get('interactive', float('nan')) * 100:>7.1f}% "
            f"{att.get('batch', float('nan')) * 100:>7.1f}%"
        )
    return "\n".join(lines)


def run_autoscaling(
    scale: ExperimentScale | None = None,
    system: str = "TD-Pipe",
    node: str = "L20",
    model: str = "13B",
    replicas: int = 4,
    router: str = "jsq",
    rate_rps: float = 10.0,
    slo_mix: str = DEFAULT_SLO_MIX,
    store=None,
    jobs: int | None = None,
    backend: str | None = None,
    reuse: bool = False,
) -> list[dict]:
    """Fixed fleet vs autoscaled fleet on the same workload.

    The autoscaled run provisions the same ``replicas`` as headroom but
    starts from one active replica, growing on queue pressure and draining
    when it subsides — trading some tail latency for replica-seconds (the
    fleet's cost denominator).

    Runs the registered ``cluster-autoscale`` spec grid.
    """
    scale = scale or default_scale()
    sweep = autoscaling_spec(
        system=system,
        node=node,
        model=model,
        replicas=replicas,
        router=router,
        rate_rps=rate_rps,
        slo_mix=slo_mix,
        scale_factor=scale.factor,
        seed=scale.seed,
    )
    rows = []
    for artifact in run_sweep(sweep, store=store, jobs=jobs, backend=backend, reuse=reuse):
        row = _row(artifact.result, system, router, rate_rps, slo_mix)
        row["autoscaled"] = artifact.spec.control.wants_autoscaler
        rows.append(row)
    return rows


def format_autoscaling(rows: list[dict]) -> str:
    """Fixed-vs-autoscaled comparison table plus the fleet-size timeline."""
    if not rows:
        return "no results"
    lines = [
        f"Autoscaling: {rows[0]['replicas']} provisioned replicas, "
        f"{rows[0]['rate_rps']:.1f} req/s",
        f"{'mode':<10} {'TTFT p99':>9} {'goodput':>8} {'avg fleet':>9} "
        f"{'repl-sec':>9} {'SLO int':>8}",
    ]
    for row in rows:
        mode = "autoscale" if row.get("autoscaled") else "fixed"
        att = row["slo_attainment"]
        lines.append(
            f"{mode:<10} {row['ttft_p99']:>8.2f}s {row['goodput']:>8.2f} "
            f"{row['mean_active_replicas']:>9.2f} {row['replica_seconds']:>9.1f} "
            f"{att.get('interactive', float('nan')) * 100:>7.1f}%"
        )
        if row.get("autoscaled"):
            timeline = row["result"].fleet_timeline
            steps = ", ".join(f"{t:.1f}s->{n}" for t, n in timeline[:12])
            more = "" if len(timeline) <= 12 else f", ... ({len(timeline)} changes)"
            lines.append(f"  fleet timeline: {steps}{more}")
    return "\n".join(lines)


def format_results(rows: list[dict]) -> str:
    """Aligned table, grouped by (replicas, rate); best p99 TTFT starred."""
    lines = [
        "Cluster scaling: replicas x router x arrival rate "
        f"({rows[0]['system']} replicas)" if rows else "no results",
        f"{'repl':>4} {'rate':>6} {'router':<12} {'TTFT p50':>9} {'TTFT p99':>9} "
        f"{'TPOT p99':>9} {'goodput':>8} {'tok/s':>8} {'imbal':>6}",
    ]
    groups: dict[tuple[int, float], list[dict]] = {}
    for row in rows:
        groups.setdefault((row["replicas"], row["rate_rps"]), []).append(row)
    for (replicas, rate), group in groups.items():
        best = min(r["ttft_p99"] for r in group)
        for row in group:
            star = "*" if row["ttft_p99"] == best else " "
            lines.append(
                f"{replicas:>4} {rate:>6.1f} {row['router']:<12} "
                f"{row['ttft_p50']:>8.2f}s {row['ttft_p99']:>7.2f}s{star} "
                f"{row['tpot_p99'] * 1e3:>7.1f}ms {row['goodput']:>8.2f} "
                f"{row['throughput']:>8.1f} {row['util_imbalance'] * 100:>5.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
