"""Cluster scaling sweep: replicas × routing policy × arrival rate.

The single-node experiments reproduce the paper; this sweep asks the
question the paper's production deployment would face next: given N TD-Pipe
replicas behind a router, which routing policy holds the p99 TTFT down as
the arrival rate climbs?  Temporal disaggregation couples routing to phase
state (see :class:`repro.cluster.routing.PhaseAwareRouter`), so the policies
separate most clearly at high load on the memory-tight L20/32B combination.

Arrival rates are specified *per replica* so both fleet sizes are driven at
the same load factor; the table reports the cluster-wide rate.
"""

from __future__ import annotations

from ..cluster.routing import ROUTERS
from .common import ExperimentScale, default_scale, run_cluster

__all__ = [
    "REPLICA_COUNTS",
    "RATES_PER_REPLICA",
    "run",
    "run_single",
    "format_results",
]

REPLICA_COUNTS = (2, 4)

#: Requests per second per replica: light load, near saturation, overload.
RATES_PER_REPLICA = (0.5, 2.0, 3.0)


def run_single(
    scale: ExperimentScale | None = None,
    system: str = "TD-Pipe",
    node: str = "L20",
    model: str = "32B",
    replicas: int = 4,
    router: str = "phase-aware",
    rate_rps: float | None = 8.0,
) -> dict:
    """One cluster configuration -> one result row."""
    scale = scale or default_scale()
    result = run_cluster(
        system,
        node,
        model,
        replicas=replicas,
        router=router,
        rate_rps=rate_rps,
        scale=scale,
    )
    lat = result.latency
    return {
        "system": system,
        "replicas": replicas,
        "router": router,
        "rate_rps": rate_rps,
        "ttft_p50": lat.ttft_p50,
        "ttft_p99": lat.ttft_p99,
        "tpot_p99": lat.tpot_p99,
        "goodput": result.goodput,
        "throughput": result.throughput,
        "util_imbalance": result.utilization_imbalance,
        "result": result,
    }


def run(
    scale: ExperimentScale | None = None,
    system: str = "TD-Pipe",
    node: str = "L20",
    model: str = "32B",
    replica_counts: tuple[int, ...] = REPLICA_COUNTS,
    routers: tuple[str, ...] = ROUTERS,
    rates_per_replica: tuple[float, ...] = RATES_PER_REPLICA,
) -> list[dict]:
    """The full replicas × router × rate sweep (one list of rows)."""
    scale = scale or default_scale()
    rows = []
    for replicas in replica_counts:
        for rate in rates_per_replica:
            for router in routers:
                rows.append(
                    run_single(
                        scale=scale,
                        system=system,
                        node=node,
                        model=model,
                        replicas=replicas,
                        router=router,
                        rate_rps=rate * replicas,
                    )
                )
    return rows


def format_results(rows: list[dict]) -> str:
    """Aligned table, grouped by (replicas, rate); best p99 TTFT starred."""
    lines = [
        "Cluster scaling: replicas x router x arrival rate "
        f"({rows[0]['system']} replicas)" if rows else "no results",
        f"{'repl':>4} {'rate':>6} {'router':<12} {'TTFT p50':>9} {'TTFT p99':>9} "
        f"{'TPOT p99':>9} {'goodput':>8} {'tok/s':>8} {'imbal':>6}",
    ]
    groups: dict[tuple[int, float], list[dict]] = {}
    for row in rows:
        groups.setdefault((row["replicas"], row["rate_rps"]), []).append(row)
    for (replicas, rate), group in groups.items():
        best = min(r["ttft_p99"] for r in group)
        for row in group:
            star = "*" if row["ttft_p99"] == best else " "
            lines.append(
                f"{replicas:>4} {rate:>6.1f} {row['router']:<12} "
                f"{row['ttft_p50']:>8.2f}s {row['ttft_p99']:>7.2f}s{star} "
                f"{row['tpot_p99'] * 1e3:>7.1f}ms {row['goodput']:>8.2f} "
                f"{row['throughput']:>8.1f} {row['util_imbalance'] * 100:>5.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
