"""Shared experiment runner: build any system, run any workload, one call.

Every figure/table module in this package funnels through :func:`run_system`,
so all experiments share identical substrates, workloads and predictor
training.  ``scale`` shrinks the paper's 5,000-request runs proportionally for
fast benchmark execution (the paper's full scale is ``scale=1.0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from typing import Sequence

from ..baselines import PPHybridEngine, PPSeparateEngine, TPHybridEngine, TPSeparateEngine
from ..cluster import Autoscaler, parse_fleet
from ..cluster.routing import Router
from ..core import TDPipeEngine
from ..core.policies import DecodeSwitchPolicy, PrefillSwitchPolicy
from ..hardware.node import NodeSpec, make_node
from ..kvcache.capacity import OutOfMemoryError  # noqa: F401  (re-export: callers catch it from here)
from ..metrics.cluster import ClusterResult
from ..metrics.results import RunResult
from ..models.spec import ModelSpec
from ..predictor import LengthPredictor, OutputLengthPredictor, train_length_predictor
from ..runtime.base_engine import InferenceEngine
from ..runtime.config import EngineConfig
from ..sim.engine import Simulator
from ..workload import DatasetSplits, Request, build_dataset, sample_eval_requests

__all__ = [
    "SYSTEMS",
    "PAPER_COMBOS",
    "ExperimentScale",
    "default_scale",
    "get_dataset",
    "get_predictor",
    "eval_requests",
    "build_engine",
    "run_system",
    "run_cluster",
    "OOM",
]

#: System name -> constructor signature used by :func:`run_system`.
SYSTEMS = ("TP+SB", "TP+HB", "PP+SB", "PP+HB", "TD-Pipe")

#: The paper's four node-model combinations (Figure 11).
PAPER_COMBOS: tuple[tuple[str, str], ...] = (
    ("L20", "13B"),
    ("L20", "32B"),
    ("A100", "32B"),
    ("A100", "70B"),
)

#: Sentinel throughput for OOM configurations in result tables.
OOM = None


@dataclass(frozen=True)
class ExperimentScale:
    """Workload sizing for one experiment execution.

    The paper trains the predictor on a 86,612-pair corpus and evaluates on
    5,000 sampled requests.  ``factor`` scales both down for quick runs.
    """

    factor: float = 0.1
    seed: int = 0

    @property
    def corpus_size(self) -> int:
        return max(int(20_000 * self.factor), 600)

    @property
    def eval_requests(self) -> int:
        return max(int(5_000 * self.factor), 100)


def default_scale(factor: float = 0.1, seed: int = 0) -> ExperimentScale:
    return ExperimentScale(factor=factor, seed=seed)


@lru_cache(maxsize=4)
def _dataset_cached(corpus_size: int, seed: int) -> DatasetSplits:
    return build_dataset(total=corpus_size, seed=seed)


def get_dataset(scale: ExperimentScale) -> DatasetSplits:
    """The 60/20/20 corpus for this scale (cached across experiments)."""
    return _dataset_cached(scale.corpus_size, scale.seed)


@lru_cache(maxsize=4)
def _predictor_cached(corpus_size: int, seed: int) -> LengthPredictor:
    splits = _dataset_cached(corpus_size, seed)
    return train_length_predictor(splits.train, splits.val, seed=seed)


def get_predictor(scale: ExperimentScale) -> LengthPredictor:
    """The trained output-length predictor for this scale (cached)."""
    return _predictor_cached(scale.corpus_size, scale.seed)


def eval_requests(scale: ExperimentScale) -> list[Request]:
    """The evaluation request sample (fresh copies each call)."""
    return sample_eval_requests(get_dataset(scale), n=scale.eval_requests, seed=scale.seed)


def build_engine(
    system: str,
    node: NodeSpec,
    model: ModelSpec,
    predictor: OutputLengthPredictor | None = None,
    config: EngineConfig | None = None,
    prefill_policy: PrefillSwitchPolicy | None = None,
    decode_policy: DecodeSwitchPolicy | None = None,
    work_stealing: bool = True,
    sim: Simulator | None = None,
) -> InferenceEngine:
    """Construct one engine by system name (``sim`` shares a cluster clock)."""
    if system == "TP+SB":
        return TPSeparateEngine(node, model, config=config, sim=sim)
    if system == "TP+HB":
        return TPHybridEngine(node, model, config=config, sim=sim)
    if system == "PP+SB":
        return PPSeparateEngine(node, model, config=config, sim=sim)
    if system == "PP+HB":
        return PPHybridEngine(node, model, config=config, sim=sim)
    if system == "TD-Pipe":
        if predictor is None:
            raise ValueError("TD-Pipe requires a length predictor")
        return TDPipeEngine(
            node,
            model,
            predictor=predictor,
            config=config,
            prefill_policy=prefill_policy,
            decode_policy=decode_policy,
            work_stealing=work_stealing,
            sim=sim,
        )
    raise ValueError(f"unknown system {system!r}; options: {SYSTEMS}")


def _config_overrides(config: EngineConfig | None) -> dict:
    """Non-default EngineConfig fields, for embedding a config in a spec."""
    if config is None:
        return {}
    from dataclasses import fields

    defaults = EngineConfig()
    return {
        f.name: getattr(config, f.name)
        for f in fields(EngineConfig)
        if getattr(config, f.name) != getattr(defaults, f.name)
    }


def _model_key(model: ModelSpec | str) -> tuple[str, ModelSpec | None]:
    """(preset key for the spec, opaque override when not a preset)."""
    from ..models.spec import MODEL_PRESETS

    if isinstance(model, str):
        return model, None
    for key, preset in MODEL_PRESETS.items():
        if preset == model:
            return key, None
    return "13B", model  # custom ModelSpec: pass as a live override


def _predictor_kind(
    predictor: OutputLengthPredictor | None,
) -> tuple[str | None, float | None, OutputLengthPredictor | None]:
    """(spec predictor kind, constant, opaque override) for a live object."""
    from ..predictor import ConstantPredictor, OraclePredictor

    if predictor is None:
        return None, None, None
    if type(predictor) is OraclePredictor:
        return "oracle", None, None
    if type(predictor) is ConstantPredictor:
        return "constant", float(predictor.length), None
    return None, None, predictor


def run_system(
    system: str,
    node: NodeSpec | str,
    model: ModelSpec | str,
    requests: list[Request] | None = None,
    scale: ExperimentScale | None = None,
    num_gpus: int | None = None,
    config: EngineConfig | None = None,
    predictor: OutputLengthPredictor | None = None,
    prefill_policy: PrefillSwitchPolicy | None = None,
    decode_policy: DecodeSwitchPolicy | None = None,
    work_stealing: bool = True,
    store=None,
) -> RunResult:
    """Run one system on one configuration.

    Back-compat shim: builds a :class:`repro.api.ScenarioSpec` and delegates
    to :func:`repro.api.run` (live objects — a request list, a trained
    predictor, policy instances — ride along as runner overrides).  Raises
    :class:`OutOfMemoryError` for layouts that cannot hold the model (the
    paper's "OOM" bars in Figure 11).  ``store`` files the artifact in an
    :class:`repro.api.ArtifactStore`; that requires a fully-declarative call
    (no live-object overrides), since opaque artifacts are not replayable.
    """
    from .. import api

    scale = scale or default_scale()
    nodes_override = None
    if isinstance(node, str):
        fleet = api.FleetSpec(node=node, num_gpus=num_gpus or 4, replicas=1)
    else:
        if num_gpus is not None and node.num_gpus != num_gpus:
            node = node.with_num_gpus(num_gpus)
        # Best-effort provenance: a live NodeSpec may carry a non-preset GPU
        # or a tweaked interconnect, so it also rides along as an override.
        try:
            fleet = api.FleetSpec(
                node=node.gpu.name, num_gpus=node.num_gpus, replicas=1
            )
        except ValueError:
            fleet = api.FleetSpec(num_gpus=node.num_gpus, replicas=1)
        nodes_override = [node]
    model_key, model_override = _model_key(model)
    kind, constant, predictor_override = _predictor_kind(predictor)
    spec = api.ScenarioSpec(
        mode="engine",
        workload=api.WorkloadSpec(scale=scale.factor, seed=scale.seed),
        fleet=fleet,
        engine=api.EngineSpec(
            system=system,
            model=model_key,
            config=_config_overrides(config),
            predictor=kind,
            predictor_constant=constant,
            work_stealing=work_stealing,
        ),
    )
    artifact = api.run(
        spec,
        store=store,
        requests=requests,
        predictor=predictor_override,
        prefill_policy=prefill_policy,
        decode_policy=decode_policy,
        model=model_override,
        nodes=nodes_override,
    )
    return artifact.result


def run_cluster(
    system: str | Sequence[str],
    node: NodeSpec | str = "L20",
    model: ModelSpec | str = "13B",
    replicas: int = 4,
    router: str | Router = "round-robin",
    requests: list[Request] | None = None,
    rate_rps: float | None = None,
    scale: ExperimentScale | None = None,
    num_gpus: int | None = None,
    config: EngineConfig | None = None,
    predictor: OutputLengthPredictor | None = None,
    work_stealing: bool = True,
    fleet: str | Sequence[NodeSpec | str] | None = None,
    slo_mix: str | dict | None = None,
    autoscaler: Autoscaler | bool | None = None,
    store=None,
) -> ClusterResult:
    """Run a replicated cluster of ``system`` engines behind ``router``.

    ``system`` may be one name (homogeneous fleet) or a sequence of
    ``replicas`` names (mixed fleet).  ``fleet`` overrides ``node`` and
    ``replicas`` with one node per replica — either a spec string like
    ``"l20:2,a100:2"`` or a sequence of node names / :class:`NodeSpec`s —
    making heterogeneous hardware first-class.  ``rate_rps`` stamps Poisson
    arrivals (cluster-wide rate) onto the workload; without it the
    workload's own arrival times are used (the paper's offline setting if
    they are all 0).  ``slo_mix`` (e.g. ``"interactive:0.7,batch:0.3"``)
    assigns SLO classes to the workload so per-class attainment is reported.
    ``autoscaler`` attaches a fleet-sizing policy (``True`` for defaults).
    Every replica shares one simulator clock, so results are deterministic
    for a fixed seed/config.

    Back-compat shim: builds a :class:`repro.api.ScenarioSpec` (mode
    ``cluster``) and delegates to :func:`repro.api.run`; live objects ride
    along as runner overrides.

    >>> run_cluster("TD-Pipe", fleet="l20:2,a100:2", router="jsq",
    ...             rate_rps=12.0, slo_mix="interactive:0.7,batch:0.3",
    ...             autoscaler=True)                    # doctest: +SKIP
    """
    from dataclasses import fields as dc_fields

    from .. import api

    scale = scale or default_scale()
    nodes_override = None
    if fleet is not None:
        names = parse_fleet(fleet) if isinstance(fleet, str) else list(fleet)
        if all(isinstance(n, str) for n in names):
            fleet_spec = api.FleetSpec(fleet=",".join(names), num_gpus=num_gpus or 4)
        else:
            nodes_override = [
                n if isinstance(n, NodeSpec) else make_node(n, num_gpus or 4)
                for n in names
            ]
            fleet_spec = api.FleetSpec(
                num_gpus=num_gpus or 4, replicas=len(nodes_override)
            )
    else:
        if isinstance(node, str):
            fleet_spec = api.FleetSpec(
                node=node, num_gpus=num_gpus or 4, replicas=replicas
            )
        else:
            if num_gpus is not None and node.num_gpus != num_gpus:
                node = node.with_num_gpus(num_gpus)
            try:
                fleet_spec = api.FleetSpec(
                    node=node.gpu.name, num_gpus=node.num_gpus, replicas=replicas
                )
            except ValueError:
                fleet_spec = api.FleetSpec(num_gpus=node.num_gpus, replicas=replicas)
            nodes_override = [node] * replicas

    if isinstance(system, str):
        system_name, systems_override = system, None
    else:
        systems_override = tuple(system)
        system_name = systems_override[0] if systems_override else "TD-Pipe"

    model_key, model_override = _model_key(model)
    kind, constant, predictor_override = _predictor_kind(predictor)

    if autoscaler is True:
        autoscale, autoscaler_dict, autoscaler_override = True, None, None
    elif autoscaler is False or autoscaler is None:
        autoscale, autoscaler_dict, autoscaler_override = False, None, None
    else:
        # A live Autoscaler is a plain dataclass of thresholds — embed its
        # non-default fields so the spec stays fully declarative.
        defaults = Autoscaler()
        autoscaler_dict = {
            f.name: getattr(autoscaler, f.name)
            for f in dc_fields(Autoscaler)
            if not f.name.startswith("_")
            and getattr(autoscaler, f.name) != getattr(defaults, f.name)
        } or {"min_replicas": defaults.min_replicas}
        autoscale, autoscaler_override = False, None

    router_override = None if isinstance(router, str) else router
    spec = api.ScenarioSpec(
        mode="cluster",
        workload=api.WorkloadSpec(
            scale=scale.factor,
            seed=scale.seed,
            arrival="poisson" if rate_rps is not None else "offline",
            rate_rps=rate_rps,
            slo_mix=slo_mix,
        ),
        fleet=fleet_spec,
        engine=api.EngineSpec(
            system=system_name,
            systems=systems_override,
            model=model_key,
            config=_config_overrides(config),
            predictor=kind,
            predictor_constant=constant,
            work_stealing=work_stealing,
        ),
        control=api.ControlSpec(
            router=router if isinstance(router, str) else "round-robin",
            autoscale=autoscale,
            autoscaler=autoscaler_dict,
        ),
    )
    artifact = api.run(
        spec,
        store=store,
        requests=requests,
        predictor=predictor_override,
        router=router_override,
        autoscaler=autoscaler_override,
        model=model_override,
        nodes=nodes_override,
    )
    return artifact.result
