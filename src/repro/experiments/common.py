"""Shared experiment runner: build any system, run any workload, one call.

Every figure/table module in this package funnels through :func:`run_system`,
so all experiments share identical substrates, workloads and predictor
training.  ``scale`` shrinks the paper's 5,000-request runs proportionally for
fast benchmark execution (the paper's full scale is ``scale=1.0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from typing import Sequence

from ..baselines import PPHybridEngine, PPSeparateEngine, TPHybridEngine, TPSeparateEngine
from ..cluster import Autoscaler, ClusterEngine, parse_fleet
from ..cluster.routing import Router, make_router
from ..core import TDPipeEngine
from ..core.policies import DecodeSwitchPolicy, PrefillSwitchPolicy
from ..hardware.node import NodeSpec, make_node
from ..kvcache.capacity import OutOfMemoryError  # noqa: F401  (re-export: callers catch it from here)
from ..metrics.cluster import ClusterResult
from ..metrics.results import RunResult
from ..models.spec import ModelSpec, get_model
from ..predictor import LengthPredictor, OutputLengthPredictor, train_length_predictor
from ..runtime.base_engine import InferenceEngine
from ..runtime.config import EngineConfig
from ..sim.engine import Simulator
from ..workload import DatasetSplits, Request, build_dataset, sample_eval_requests
from ..workload.arrivals import with_poisson_arrivals
from ..workload.slo import with_slo_mix

__all__ = [
    "SYSTEMS",
    "PAPER_COMBOS",
    "ExperimentScale",
    "default_scale",
    "get_dataset",
    "get_predictor",
    "eval_requests",
    "build_engine",
    "run_system",
    "run_cluster",
    "OOM",
]

#: System name -> constructor signature used by :func:`run_system`.
SYSTEMS = ("TP+SB", "TP+HB", "PP+SB", "PP+HB", "TD-Pipe")

#: The paper's four node-model combinations (Figure 11).
PAPER_COMBOS: tuple[tuple[str, str], ...] = (
    ("L20", "13B"),
    ("L20", "32B"),
    ("A100", "32B"),
    ("A100", "70B"),
)

#: Sentinel throughput for OOM configurations in result tables.
OOM = None


@dataclass(frozen=True)
class ExperimentScale:
    """Workload sizing for one experiment execution.

    The paper trains the predictor on a 86,612-pair corpus and evaluates on
    5,000 sampled requests.  ``factor`` scales both down for quick runs.
    """

    factor: float = 0.1
    seed: int = 0

    @property
    def corpus_size(self) -> int:
        return max(int(20_000 * self.factor), 600)

    @property
    def eval_requests(self) -> int:
        return max(int(5_000 * self.factor), 100)


def default_scale(factor: float = 0.1, seed: int = 0) -> ExperimentScale:
    return ExperimentScale(factor=factor, seed=seed)


@lru_cache(maxsize=4)
def _dataset_cached(corpus_size: int, seed: int) -> DatasetSplits:
    return build_dataset(total=corpus_size, seed=seed)


def get_dataset(scale: ExperimentScale) -> DatasetSplits:
    """The 60/20/20 corpus for this scale (cached across experiments)."""
    return _dataset_cached(scale.corpus_size, scale.seed)


@lru_cache(maxsize=4)
def _predictor_cached(corpus_size: int, seed: int) -> LengthPredictor:
    splits = _dataset_cached(corpus_size, seed)
    return train_length_predictor(splits.train, splits.val, seed=seed)


def get_predictor(scale: ExperimentScale) -> LengthPredictor:
    """The trained output-length predictor for this scale (cached)."""
    return _predictor_cached(scale.corpus_size, scale.seed)


def eval_requests(scale: ExperimentScale) -> list[Request]:
    """The evaluation request sample (fresh copies each call)."""
    return sample_eval_requests(get_dataset(scale), n=scale.eval_requests, seed=scale.seed)


def build_engine(
    system: str,
    node: NodeSpec,
    model: ModelSpec,
    predictor: OutputLengthPredictor | None = None,
    config: EngineConfig | None = None,
    prefill_policy: PrefillSwitchPolicy | None = None,
    decode_policy: DecodeSwitchPolicy | None = None,
    work_stealing: bool = True,
    sim: Simulator | None = None,
) -> InferenceEngine:
    """Construct one engine by system name (``sim`` shares a cluster clock)."""
    if system == "TP+SB":
        return TPSeparateEngine(node, model, config=config, sim=sim)
    if system == "TP+HB":
        return TPHybridEngine(node, model, config=config, sim=sim)
    if system == "PP+SB":
        return PPSeparateEngine(node, model, config=config, sim=sim)
    if system == "PP+HB":
        return PPHybridEngine(node, model, config=config, sim=sim)
    if system == "TD-Pipe":
        if predictor is None:
            raise ValueError("TD-Pipe requires a length predictor")
        return TDPipeEngine(
            node,
            model,
            predictor=predictor,
            config=config,
            prefill_policy=prefill_policy,
            decode_policy=decode_policy,
            work_stealing=work_stealing,
            sim=sim,
        )
    raise ValueError(f"unknown system {system!r}; options: {SYSTEMS}")


def run_system(
    system: str,
    node: NodeSpec | str,
    model: ModelSpec | str,
    requests: list[Request] | None = None,
    scale: ExperimentScale | None = None,
    num_gpus: int | None = None,
    config: EngineConfig | None = None,
    predictor: OutputLengthPredictor | None = None,
    prefill_policy: PrefillSwitchPolicy | None = None,
    decode_policy: DecodeSwitchPolicy | None = None,
    work_stealing: bool = True,
) -> RunResult:
    """Run one system on one configuration.

    Raises :class:`OutOfMemoryError` for layouts that cannot hold the model
    (the paper's "OOM" bars in Figure 11).
    """
    scale = scale or default_scale()
    if isinstance(node, str):
        node = make_node(node, num_gpus or 4)
    elif num_gpus is not None and node.num_gpus != num_gpus:
        node = node.with_num_gpus(num_gpus)
    if isinstance(model, str):
        model = get_model(model)
    if requests is None:
        requests = eval_requests(scale)
    if system == "TD-Pipe" and predictor is None:
        predictor = get_predictor(scale)
    engine = build_engine(
        system,
        node,
        model,
        predictor=predictor,
        config=config,
        prefill_policy=prefill_policy,
        decode_policy=decode_policy,
        work_stealing=work_stealing,
    )
    return engine.run(requests)


def run_cluster(
    system: str | Sequence[str],
    node: NodeSpec | str = "L20",
    model: ModelSpec | str = "13B",
    replicas: int = 4,
    router: str | Router = "round-robin",
    requests: list[Request] | None = None,
    rate_rps: float | None = None,
    scale: ExperimentScale | None = None,
    num_gpus: int | None = None,
    config: EngineConfig | None = None,
    predictor: OutputLengthPredictor | None = None,
    work_stealing: bool = True,
    fleet: str | Sequence[NodeSpec | str] | None = None,
    slo_mix: str | dict | None = None,
    autoscaler: Autoscaler | bool | None = None,
) -> ClusterResult:
    """Run a replicated cluster of ``system`` engines behind ``router``.

    ``system`` may be one name (homogeneous fleet) or a sequence of
    ``replicas`` names (mixed fleet).  ``fleet`` overrides ``node`` and
    ``replicas`` with one node per replica — either a spec string like
    ``"l20:2,a100:2"`` or a sequence of node names / :class:`NodeSpec`s —
    making heterogeneous hardware first-class.  ``rate_rps`` stamps Poisson
    arrivals (cluster-wide rate) onto the workload; without it the
    workload's own arrival times are used (the paper's offline setting if
    they are all 0).  ``slo_mix`` (e.g. ``"interactive:0.7,batch:0.3"``)
    assigns SLO classes to the workload so per-class attainment is reported.
    ``autoscaler`` attaches a fleet-sizing policy (``True`` for defaults).
    Every replica shares one simulator clock, so results are deterministic
    for a fixed seed/config.

    >>> run_cluster("TD-Pipe", fleet="l20:2,a100:2", router="jsq",
    ...             rate_rps=12.0, slo_mix="interactive:0.7,batch:0.3",
    ...             autoscaler=True)                    # doctest: +SKIP
    """
    scale = scale or default_scale()
    if isinstance(model, str):
        model = get_model(model)
    if fleet is not None:
        nodes = [
            n if isinstance(n, NodeSpec) else make_node(n, num_gpus or 4)
            for n in (parse_fleet(fleet) if isinstance(fleet, str) else fleet)
        ]
        replicas = len(nodes)
    else:
        if isinstance(node, str):
            node = make_node(node, num_gpus or 4)
        elif num_gpus is not None and node.num_gpus != num_gpus:
            node = node.with_num_gpus(num_gpus)
        nodes = [node] * replicas
    if isinstance(system, str):
        systems = [system] * replicas
    else:
        systems = list(system)
        if len(systems) != replicas:
            raise ValueError(
                f"got {len(systems)} system names for {replicas} replicas"
            )
    if predictor is None and ("TD-Pipe" in systems or router == "phase-aware"):
        predictor = get_predictor(scale)
    if requests is None:
        requests = eval_requests(scale)
    if rate_rps is not None:
        requests = with_poisson_arrivals(requests, rate_rps, seed=scale.seed)
    if slo_mix is not None:
        requests = with_slo_mix(requests, slo_mix, seed=scale.seed)
    if autoscaler is True:
        autoscaler = Autoscaler()
    elif autoscaler is False:
        autoscaler = None

    factories = [
        lambda sim, name=name, nd=nd: build_engine(
            name,
            nd,
            model,
            predictor=predictor,
            config=config,
            work_stealing=work_stealing,
            sim=sim,
        )
        for name, nd in zip(systems, nodes)
    ]
    if isinstance(router, str):
        router = make_router(router, predictor=predictor)
    cluster = ClusterEngine(factories, router=router, autoscaler=autoscaler)
    return cluster.run(requests)
