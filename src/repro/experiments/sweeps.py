"""Sensitivity sweeps over simulation and scheduler parameters.

Beyond the paper's own ablations, these sweeps quantify how the headline
comparison depends on (a) calibrated simulation constants (all-reduce
efficiency, driver overhead) and (b) scheduler knobs the paper fixes
(chunked-prefill budget, decode batch cap).  They back the robustness
discussion in EXPERIMENTS.md: TD-Pipe's advantage should not hinge on any
single calibration choice.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..hardware.node import NodeSpec, make_node
from ..models.spec import get_model
from ..runtime.config import EngineConfig
from .common import ExperimentScale, default_scale, eval_requests, run_system

__all__ = [
    "SweepPoint",
    "chunk_budget_sweep",
    "driver_overhead_sweep",
    "allreduce_efficiency_sweep",
    "max_num_seqs_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    parameter: str
    value: float
    system: str
    throughput: float


def _requests(scale: ExperimentScale):
    return eval_requests(scale)


def chunk_budget_sweep(
    budgets: Sequence[int] = (256, 512, 1024, 2048),
    gpu_name: str = "A100",
    model_name: str = "70B",
    scale: ExperimentScale | None = None,
) -> list[SweepPoint]:
    """PP+HB throughput vs chunked-prefill token budget.

    The paper criticises chunked prefill for depending on the prefill-to-
    decode ratio; the budget is the knob that trades the two off.
    """
    scale = scale or default_scale()
    out = []
    for b in budgets:
        cfg = EngineConfig(chunk_budget_tokens=b)
        res = run_system(
            "PP+HB", gpu_name, model_name, requests=_requests(scale), scale=scale, config=cfg
        )
        out.append(SweepPoint("chunk_budget_tokens", b, "PP+HB", res.throughput))
    return out


def driver_overhead_sweep(
    per_seq_overheads: Sequence[float] = (0.0, 5e-5, 1.5e-4, 3e-4),
    gpu_name: str = "A100",
    model_name: str = "70B",
    scale: ExperimentScale | None = None,
) -> list[SweepPoint]:
    """Baseline (TP+SB) and TD-Pipe throughput vs driver cost.

    TD-Pipe's hierarchy-controller hides driver work, so only the baselines
    move; this sweep bounds how much of TD-Pipe's win is driver-related.
    """
    scale = scale or default_scale()
    out = []
    for ov in per_seq_overheads:
        cfg = EngineConfig(driver_per_seq_overhead_s=ov)
        for system in ("TP+SB", "TD-Pipe"):
            res = run_system(
                system, gpu_name, model_name, requests=_requests(scale), scale=scale, config=cfg
            )
            out.append(SweepPoint("driver_per_seq_overhead_s", ov, system, res.throughput))
    return out


def allreduce_efficiency_sweep(
    efficiencies: Sequence[float] = (0.4, 0.6, 0.85, 1.0),
    gpu_name: str = "A100",
    model_name: str = "70B",
    scale: ExperimentScale | None = None,
) -> list[SweepPoint]:
    """TP+SB vs TD-Pipe sensitivity to the achieved all-reduce bandwidth.

    TD-Pipe barely communicates, so its line should be flat while TP's
    rises with fabric efficiency — the paper's core architectural argument.
    """
    scale = scale or default_scale()
    base = make_node(gpu_name, 4)
    out = []
    for eff in efficiencies:
        node = NodeSpec(
            name=base.name,
            gpu=base.gpu,
            num_gpus=base.num_gpus,
            interconnect=replace(base.interconnect, allreduce_efficiency=eff),
        )
        for system in ("TP+SB", "TD-Pipe"):
            res = run_system(
                system, node, get_model(model_name), requests=_requests(scale), scale=scale
            )
            out.append(SweepPoint("allreduce_efficiency", eff, system, res.throughput))
    return out


def max_num_seqs_sweep(
    caps: Sequence[int] = (128, 256, 512),
    gpu_name: str = "L20",
    model_name: str = "32B",
    scale: ExperimentScale | None = None,
) -> list[SweepPoint]:
    """Decode batch cap sweep for TD-Pipe (intensity vs memory trade-off)."""
    scale = scale or default_scale()
    out = []
    for cap in caps:
        cfg = EngineConfig(max_num_seqs=cap)
        res = run_system(
            "TD-Pipe", gpu_name, model_name, requests=_requests(scale), scale=scale, config=cfg
        )
        out.append(SweepPoint("max_num_seqs", cap, "TD-Pipe", res.throughput))
    return out
