"""Sensitivity sweeps over simulation and scheduler parameters.

Beyond the paper's own ablations, these sweeps quantify how the headline
comparison depends on (a) calibrated simulation constants (all-reduce
efficiency, driver overhead) and (b) scheduler knobs the paper fixes
(chunked-prefill budget, decode batch cap).  They back the robustness
discussion in EXPERIMENTS.md: TD-Pipe's advantage should not hinge on any
single calibration choice.

Each sweep is a declarative :class:`repro.api.SweepSpec` — one base
:class:`~repro.api.ScenarioSpec` plus override axes — registered in the
scenario registry (``sweep-chunk-budget``, ``sweep-driver-overhead``,
``sweep-allreduce-efficiency``, ``sweep-max-num-seqs``) so any grid can be
serialized, replayed or run from the CLI.  The functions below expand and
execute the registered grids and keep the historic :class:`SweepPoint`
return shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..api import (
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
    register_scenario,
    run_sweep,
)
from .common import ExperimentScale, default_scale

__all__ = [
    "SweepPoint",
    "chunk_budget_sweep",
    "driver_overhead_sweep",
    "allreduce_efficiency_sweep",
    "max_num_seqs_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    parameter: str
    value: float
    system: str
    throughput: float


def _base(
    system: str, gpu_name: str, model_name: str, scale: ExperimentScale
) -> ScenarioSpec:
    return ScenarioSpec(
        mode="engine",
        workload=WorkloadSpec(scale=scale.factor, seed=scale.seed),
        fleet=FleetSpec(node=gpu_name, num_gpus=4, replicas=1),
        engine=EngineSpec(system=system, model=model_name),
    )


@register_scenario("sweep-chunk-budget")
def chunk_budget_spec(
    budgets: Sequence[int] = (256, 512, 1024, 2048),
    gpu_name: str = "A100",
    model_name: str = "70B",
    scale_factor: float = 0.1,
    seed: int = 0,
) -> SweepSpec:
    """PP+HB throughput vs chunked-prefill token budget (spec grid)."""
    return SweepSpec(
        name="sweep-chunk-budget",
        base=_base("PP+HB", gpu_name, model_name, ExperimentScale(scale_factor, seed)),
        axes=(SweepAxis("engine.config.chunk_budget_tokens", tuple(budgets)),),
    )


@register_scenario("sweep-driver-overhead")
def driver_overhead_spec(
    per_seq_overheads: Sequence[float] = (0.0, 5e-5, 1.5e-4, 3e-4),
    gpu_name: str = "A100",
    model_name: str = "70B",
    scale_factor: float = 0.1,
    seed: int = 0,
) -> SweepSpec:
    """Driver cost × {TP+SB, TD-Pipe} grid."""
    return SweepSpec(
        name="sweep-driver-overhead",
        base=_base("TP+SB", gpu_name, model_name, ExperimentScale(scale_factor, seed)),
        axes=(
            SweepAxis("engine.config.driver_per_seq_overhead_s", tuple(per_seq_overheads)),
            SweepAxis("engine.system", ("TP+SB", "TD-Pipe")),
        ),
    )


@register_scenario("sweep-allreduce-efficiency")
def allreduce_efficiency_spec(
    efficiencies: Sequence[float] = (0.4, 0.6, 0.85, 1.0),
    gpu_name: str = "A100",
    model_name: str = "70B",
    scale_factor: float = 0.1,
    seed: int = 0,
) -> SweepSpec:
    """Fabric efficiency × {TP+SB, TD-Pipe} grid."""
    return SweepSpec(
        name="sweep-allreduce-efficiency",
        base=_base("TP+SB", gpu_name, model_name, ExperimentScale(scale_factor, seed)),
        axes=(
            SweepAxis("fleet.allreduce_efficiency", tuple(efficiencies)),
            SweepAxis("engine.system", ("TP+SB", "TD-Pipe")),
        ),
    )


@register_scenario("sweep-max-num-seqs")
def max_num_seqs_spec(
    caps: Sequence[int] = (128, 256, 512),
    gpu_name: str = "L20",
    model_name: str = "32B",
    scale_factor: float = 0.1,
    seed: int = 0,
) -> SweepSpec:
    """TD-Pipe decode batch cap grid."""
    return SweepSpec(
        name="sweep-max-num-seqs",
        base=_base("TD-Pipe", gpu_name, model_name, ExperimentScale(scale_factor, seed)),
        axes=(SweepAxis("engine.config.max_num_seqs", tuple(caps)),),
    )


def _points(
    sweep: SweepSpec, parameter: str, jobs: int | None = None
) -> list[SweepPoint]:
    """Execute a grid and flatten artifacts into the historic row shape."""
    return [
        SweepPoint(
            parameter=parameter,
            value=artifact.overrides[
                next(p for p in artifact.overrides if p.endswith(parameter))
            ],
            system=artifact.spec.engine.system,
            throughput=artifact.result.throughput,
        )
        for artifact in run_sweep(sweep, jobs=jobs)
    ]


def chunk_budget_sweep(
    budgets: Sequence[int] = (256, 512, 1024, 2048),
    gpu_name: str = "A100",
    model_name: str = "70B",
    scale: ExperimentScale | None = None,
    jobs: int | None = None,
) -> list[SweepPoint]:
    """PP+HB throughput vs chunked-prefill token budget.

    The paper criticises chunked prefill for depending on the prefill-to-
    decode ratio; the budget is the knob that trades the two off.
    """
    scale = scale or default_scale()
    sweep = chunk_budget_spec(budgets, gpu_name, model_name, scale.factor, scale.seed)
    return _points(sweep, "chunk_budget_tokens", jobs=jobs)


def driver_overhead_sweep(
    per_seq_overheads: Sequence[float] = (0.0, 5e-5, 1.5e-4, 3e-4),
    gpu_name: str = "A100",
    model_name: str = "70B",
    scale: ExperimentScale | None = None,
    jobs: int | None = None,
) -> list[SweepPoint]:
    """Baseline (TP+SB) and TD-Pipe throughput vs driver cost.

    TD-Pipe's hierarchy-controller hides driver work, so only the baselines
    move; this sweep bounds how much of TD-Pipe's win is driver-related.
    """
    scale = scale or default_scale()
    sweep = driver_overhead_spec(
        per_seq_overheads, gpu_name, model_name, scale.factor, scale.seed
    )
    return _points(sweep, "driver_per_seq_overhead_s", jobs=jobs)


def allreduce_efficiency_sweep(
    efficiencies: Sequence[float] = (0.4, 0.6, 0.85, 1.0),
    gpu_name: str = "A100",
    model_name: str = "70B",
    scale: ExperimentScale | None = None,
    jobs: int | None = None,
) -> list[SweepPoint]:
    """TP+SB vs TD-Pipe sensitivity to the achieved all-reduce bandwidth.

    TD-Pipe barely communicates, so its line should be flat while TP's
    rises with fabric efficiency — the paper's core architectural argument.
    """
    scale = scale or default_scale()
    sweep = allreduce_efficiency_spec(
        efficiencies, gpu_name, model_name, scale.factor, scale.seed
    )
    return _points(sweep, "allreduce_efficiency", jobs=jobs)


def max_num_seqs_sweep(
    caps: Sequence[int] = (128, 256, 512),
    gpu_name: str = "L20",
    model_name: str = "32B",
    scale: ExperimentScale | None = None,
    jobs: int | None = None,
) -> list[SweepPoint]:
    """Decode batch cap sweep for TD-Pipe (intensity vs memory trade-off)."""
    scale = scale or default_scale()
    sweep = max_num_seqs_spec(caps, gpu_name, model_name, scale.factor, scale.seed)
    return _points(sweep, "max_num_seqs", jobs=jobs)
