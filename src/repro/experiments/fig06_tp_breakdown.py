"""Figure 6: execution-time breakdown of tensor-parallel prefill.

The paper's strong-scaling case study: Llama-30B with the layer count reduced
proportionally so the model fits on 1/2/4 devices (reducing layers does not
change per-layer characteristics), 2048 prompts, TP.  Reported per device
count: normalised total time and the computation/communication split.
Expected shape: communication grows to ~47% (L20) / ~54% (A100) of the total
at 4 GPUs, and overall speedup from 1 to 4 devices is well below linear
(paper: 1.84x on L20, 1.64x on A100).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..costmodel.roofline import StageCostModel
from ..hardware.node import A100_NODE, L20_NODE, NodeSpec
from ..models.partition import StageShard
from ..models.spec import LLAMA_30B, ModelSpec

__all__ = ["BreakdownPoint", "run", "format_results"]

#: The paper uses 2048 prompts; per-token fractions are length-independent, so
#: a representative prompt mix suffices.
DEFAULT_PROMPTS: tuple[int, ...] = (256,) * 64


@dataclass(frozen=True)
class BreakdownPoint:
    node: str
    num_gpus: int
    computation_s: float
    communication_s: float
    #: Total time normalised to the 1-GPU run (per-layer basis, like Figure 6).
    normalized_total: float

    @property
    def total_s(self) -> float:
        return self.computation_s + self.communication_s

    @property
    def comm_fraction(self) -> float:
        return self.communication_s / self.total_s if self.total_s else 0.0


def _tp_prefill_breakdown(
    node: NodeSpec, model: ModelSpec, tp: int, prompts: tuple[int, ...]
) -> tuple[float, float]:
    """(compute, comm) time of one TP prefill pass, per layer."""
    shard = StageShard(
        model=model,
        stage_index=0,
        n_stages=1,
        layer_start=0,
        n_layers=model.n_layers,
        tp_degree=tp,
    )
    cm = StageCostModel(
        shard=shard,
        gpu=node.gpu,
        interconnect=node.interconnect if tp > 1 else None,
        step_overhead_s=0.0,
    )
    comp, comm = cm.prefill_breakdown(list(prompts))
    return comp / model.n_layers, comm / model.n_layers


def run(
    nodes: tuple[NodeSpec, ...] = (L20_NODE, A100_NODE),
    device_counts: tuple[int, ...] = (1, 2, 4),
    prompts: tuple[int, ...] = DEFAULT_PROMPTS,
) -> list[BreakdownPoint]:
    """Regenerate Figure 6 (per-layer normalised, like the paper)."""
    points: list[BreakdownPoint] = []
    for node in nodes:
        base_total: float | None = None
        for n in device_counts:
            # The paper shrinks the layer count to fit fewer devices; per-layer
            # characteristics are unchanged, so we normalise per layer.
            model = replace(LLAMA_30B, n_layers=max(15 * n, 15))
            comp, comm = _tp_prefill_breakdown(node, model, n, prompts)
            if base_total is None:
                base_total = comp + comm
            points.append(
                BreakdownPoint(
                    node=node.gpu.name,
                    num_gpus=n,
                    computation_s=comp,
                    communication_s=comm,
                    normalized_total=(comp + comm) / base_total,
                )
            )
    return points


def format_results(points: list[BreakdownPoint]) -> str:
    lines = [
        f"{'node':6s} {'#GPUs':>5s} {'norm.time':>9s} {'comp%':>7s} {'comm%':>7s}"
    ]
    for p in points:
        lines.append(
            f"{p.node:6s} {p.num_gpus:5d} {p.normalized_total:9.3f} "
            f"{(1 - p.comm_fraction) * 100:6.1f}% {p.comm_fraction * 100:6.1f}%"
        )
    return "\n".join(lines)
