"""Figure 11: overall throughput of all five systems.

Four node-model combinations (L20+13B, L20+32B, A100+32B, A100+70B), device
counts 1/2/4, five systems.  Expected shape (paper Section 4.2):

* TD-Pipe is the best system in (almost) all 4-device cases — up to 1.91x
  over TP+SB and 2.73x over PP+SB;
* TP+SB and TP+HB are close to each other; PP+HB beats PP+SB;
* 32B-on-L20 and 70B-on-A100 are OOM at 1 device;
* TD-Pipe scales super-linearly where added memory capacity lifts decode
  intensity (paper: L20+32B grows 2.97x from 2 to 4 GPUs).

The grid is a registered spec sweep (``fig11-overall``): one single-engine
scenario with device count and system as the axes, instantiated per
node/model combination.  :func:`run` executes the grids through
:func:`repro.api.run` — OOM cells excepted — so every surviving cell can be
filed in an :class:`~repro.api.ArtifactStore` as a replayable record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..api import (
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
    register_scenario,
)
from .common import PAPER_COMBOS, SYSTEMS, ExperimentScale, default_scale

__all__ = ["Fig11Cell", "Fig11Result", "overall_spec", "run", "format_results"]

DEFAULT_DEVICE_COUNTS: tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class Fig11Cell:
    node: str
    model: str
    num_gpus: int
    system: str
    throughput: float | None  # None -> OOM
    utilization: float | None = None

    @property
    def oom(self) -> bool:
        return self.throughput is None


@dataclass
class Fig11Result:
    cells: list[Fig11Cell] = field(default_factory=list)
    #: One replayable artifact per non-OOM cell, in cell order.
    artifacts: list[api.RunArtifact] = field(default_factory=list)

    def throughput(self, node: str, model: str, num_gpus: int, system: str) -> float | None:
        for c in self.cells:
            if (c.node, c.model, c.num_gpus, c.system) == (node, model, num_gpus, system):
                return c.throughput
        raise KeyError((node, model, num_gpus, system))

    def speedup(
        self, node: str, model: str, num_gpus: int, system: str, over: str
    ) -> float | None:
        a = self.throughput(node, model, num_gpus, system)
        b = self.throughput(node, model, num_gpus, over)
        if a is None or b is None or b == 0:
            return None
        return a / b

    def best_system(self, node: str, model: str, num_gpus: int) -> str:
        live = [
            c
            for c in self.cells
            if (c.node, c.model, c.num_gpus) == (node, model, num_gpus) and not c.oom
        ]
        if not live:
            return "OOM"
        return max(live, key=lambda c: c.throughput or 0.0).system


@register_scenario("fig11-overall")
def overall_spec(
    node: str = "L20",
    model: str = "13B",
    device_counts: tuple[int, ...] = DEFAULT_DEVICE_COUNTS,
    systems: tuple[str, ...] = SYSTEMS,
    scale_factor: float = 0.1,
    seed: int = 0,
) -> SweepSpec:
    """Device-count x system grid for one node/model combination."""
    return SweepSpec(
        name="fig11-overall",
        base=ScenarioSpec(
            mode="engine",
            workload=WorkloadSpec(scale=scale_factor, seed=seed),
            fleet=FleetSpec(node=node, num_gpus=device_counts[0], replicas=1),
            engine=EngineSpec(system=systems[0], model=model),
        ),
        axes=(
            SweepAxis("fleet.num_gpus", tuple(device_counts)),
            SweepAxis("engine.system", tuple(systems)),
        ),
    )


def run(
    scale: ExperimentScale | None = None,
    combos: tuple[tuple[str, str], ...] = PAPER_COMBOS,
    device_counts: tuple[int, ...] = DEFAULT_DEVICE_COUNTS,
    systems: tuple[str, ...] = SYSTEMS,
    store: api.ArtifactStore | None = None,
    jobs: int | None = None,
    backend: str | None = None,
    reuse: bool = False,
) -> Fig11Result:
    """Regenerate Figure 11 at the given workload scale.

    Runs the registered ``fig11-overall`` grid per combo.  Layouts that
    cannot hold the model become OOM cells (the paper's grey bars) rather
    than aborting the grid; everything else lands in ``store`` when given.
    ``jobs`` fans each combo's grid out on a process pool (OOM cells
    included — workers report them as misses, not failures).  ``reuse``
    serves already-recorded cells from ``store`` instead of re-running them.
    """
    scale = scale or default_scale()
    result = Fig11Result()
    for gpu_name, model_name in combos:
        sweep = overall_spec(
            node=gpu_name,
            model=model_name,
            device_counts=device_counts,
            systems=systems,
            scale_factor=scale.factor,
            seed=scale.seed,
        )
        points = sweep.expand()
        artifacts = api.run_many(
            [point.spec for point in points],
            jobs=jobs,
            backend=backend,
            oom_to_none=True,
            store=store,
            reuse=reuse,
            overrides=[point.overrides for point in points],
        )
        for point, artifact in zip(points, artifacts):
            num_gpus = point.spec.fleet.num_gpus
            system = point.spec.engine.system
            if artifact is None:
                result.cells.append(
                    Fig11Cell(gpu_name, model_name, num_gpus, system, None)
                )
                continue
            r = artifact.result
            result.cells.append(
                Fig11Cell(
                    gpu_name, model_name, num_gpus, system,
                    r.throughput, r.mean_utilization,
                )
            )
            result.artifacts.append(artifact)
    return result


def format_results(result: Fig11Result) -> str:
    lines = []
    combos = sorted({(c.node, c.model) for c in result.cells})
    counts = sorted({c.num_gpus for c in result.cells})
    systems = [s for s in SYSTEMS if any(c.system == s for c in result.cells)]
    for node, model in combos:
        lines.append(f"-- {node} + {model} (throughput tokens/s) --")
        header = f"{'#GPUs':>6s} " + " ".join(f"{s:>9s}" for s in systems)
        lines.append(header)
        for n in counts:
            row = [f"{n:6d}"]
            for s in systems:
                t = result.throughput(node, model, n, s)
                row.append(f"{'OOM':>9s}" if t is None else f"{t:9.0f}")
            lines.append(" ".join(row))
    return "\n".join(lines)
