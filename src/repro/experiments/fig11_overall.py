"""Figure 11: overall throughput of all five systems.

Four node-model combinations (L20+13B, L20+32B, A100+32B, A100+70B), device
counts 1/2/4, five systems.  Expected shape (paper Section 4.2):

* TD-Pipe is the best system in (almost) all 4-device cases — up to 1.91x
  over TP+SB and 2.73x over PP+SB;
* TP+SB and TP+HB are close to each other; PP+HB beats PP+SB;
* 32B-on-L20 and 70B-on-A100 are OOM at 1 device;
* TD-Pipe scales super-linearly where added memory capacity lifts decode
  intensity (paper: L20+32B grows 2.97x from 2 to 4 GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kvcache.capacity import OutOfMemoryError
from ..metrics.results import RunResult
from .common import PAPER_COMBOS, SYSTEMS, ExperimentScale, default_scale, eval_requests, run_system

__all__ = ["Fig11Cell", "Fig11Result", "run", "format_results"]


@dataclass(frozen=True)
class Fig11Cell:
    node: str
    model: str
    num_gpus: int
    system: str
    throughput: float | None  # None -> OOM
    utilization: float | None = None

    @property
    def oom(self) -> bool:
        return self.throughput is None


@dataclass
class Fig11Result:
    cells: list[Fig11Cell] = field(default_factory=list)

    def throughput(self, node: str, model: str, num_gpus: int, system: str) -> float | None:
        for c in self.cells:
            if (c.node, c.model, c.num_gpus, c.system) == (node, model, num_gpus, system):
                return c.throughput
        raise KeyError((node, model, num_gpus, system))

    def speedup(
        self, node: str, model: str, num_gpus: int, system: str, over: str
    ) -> float | None:
        a = self.throughput(node, model, num_gpus, system)
        b = self.throughput(node, model, num_gpus, over)
        if a is None or b is None or b == 0:
            return None
        return a / b

    def best_system(self, node: str, model: str, num_gpus: int) -> str:
        live = [
            c
            for c in self.cells
            if (c.node, c.model, c.num_gpus) == (node, model, num_gpus) and not c.oom
        ]
        if not live:
            return "OOM"
        return max(live, key=lambda c: c.throughput or 0.0).system


def run(
    scale: ExperimentScale | None = None,
    combos: tuple[tuple[str, str], ...] = PAPER_COMBOS,
    device_counts: tuple[int, ...] = (1, 2, 4),
    systems: tuple[str, ...] = SYSTEMS,
) -> Fig11Result:
    """Regenerate Figure 11 at the given workload scale."""
    scale = scale or default_scale()
    requests = eval_requests(scale)
    result = Fig11Result()
    for gpu_name, model_name in combos:
        for n in device_counts:
            for system in systems:
                try:
                    r: RunResult = run_system(
                        system,
                        gpu_name,
                        model_name,
                        requests=[_clone(x) for x in requests],
                        scale=scale,
                        num_gpus=n,
                    )
                    cell = Fig11Cell(
                        gpu_name, model_name, n, system, r.throughput, r.mean_utilization
                    )
                except OutOfMemoryError:
                    cell = Fig11Cell(gpu_name, model_name, n, system, None)
                result.cells.append(cell)
    return result


def _clone(request):
    """Fresh Request copy so engine runs never share mutable state."""
    from ..workload.request import Request

    return Request(
        request_id=request.request_id,
        prompt_len=request.prompt_len,
        output_len=request.output_len,
        features=request.features,
        intent=request.intent,
    )


def format_results(result: Fig11Result) -> str:
    lines = []
    combos = sorted({(c.node, c.model) for c in result.cells})
    counts = sorted({c.num_gpus for c in result.cells})
    systems = [s for s in SYSTEMS if any(c.system == s for c in result.cells)]
    for node, model in combos:
        lines.append(f"-- {node} + {model} (throughput tokens/s) --")
        header = f"{'#GPUs':>6s} " + " ".join(f"{s:>9s}" for s in systems)
        lines.append(header)
        for n in counts:
            row = [f"{n:6d}"]
            for s in systems:
                t = result.throughput(node, model, n, s)
                row.append(f"{'OOM':>9s}" if t is None else f"{t:9.0f}")
            lines.append(" ".join(row))
    return "\n".join(lines)
