"""Figure 2: GPU utilisation over time — vLLM chunked-prefill PP vs TD-Pipe.

The paper's motivating figure: the chunked-prefill pipeline (PP+HB) suffers
oscillating, often low utilisation, while TD-Pipe stays near-saturated.  We
regenerate the two utilisation-versus-time series and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import ExperimentScale, default_scale, eval_requests, run_system

__all__ = ["UtilizationSeries", "run", "format_results"]


@dataclass
class UtilizationSeries:
    system: str
    times: np.ndarray
    utilization: np.ndarray
    mean: float
    throughput: float


def run(
    scale: ExperimentScale | None = None,
    gpu_name: str = "A100",
    model_name: str = "70B",
    num_gpus: int = 4,
    window_s: float = 2.0,
    systems: tuple[str, ...] = ("PP+HB", "TD-Pipe"),
) -> list[UtilizationSeries]:
    """Regenerate the two Figure 2 panels."""
    scale = scale or default_scale()
    out = []
    for system in systems:
        res = run_system(
            system, gpu_name, model_name, requests=eval_requests(scale), scale=scale, num_gpus=num_gpus
        )
        t, u = res.trace.utilization_series(window_s)
        out.append(
            UtilizationSeries(
                system=system,
                times=t,
                utilization=u,
                mean=res.mean_utilization,
                throughput=res.throughput,
            )
        )
    return out


def format_results(series: list[UtilizationSeries], width: int = 60) -> str:
    """ASCII rendition: one sparkline row per system plus summary stats."""
    blocks = " ▁▂▃▄▅▆▇█"
    lines = []
    for s in series:
        # Resample to `width` buckets for display.
        idx = np.linspace(0, len(s.utilization) - 1, num=min(width, len(s.utilization)))
        u = s.utilization[idx.astype(int)]
        spark = "".join(blocks[int(round(x * (len(blocks) - 1)))] for x in np.clip(u, 0, 1))
        lines.append(
            f"{s.system:8s} mean util {s.mean * 100:5.1f}%  "
            f"throughput {s.throughput:8.1f} tok/s\n  |{spark}|"
        )
    return "\n".join(lines)
