"""Figure 12: KV-cache memory usage fluctuation during a TD-Pipe run.

The paper shows 4xA100 + 70B: usage climbs during each prefill phase until the
memory approaches saturation, then the decode phase grows to (near) full
occupancy and declines as requests complete — a sawtooth alternation whose
peaks approach 1.0, evidencing that the AI-based greedy prefill packs memory
aggressively but safely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.results import RunResult
from .common import ExperimentScale, default_scale, eval_requests, run_system

__all__ = ["KVUsageResult", "run", "format_results"]


@dataclass
class KVUsageResult:
    steps: np.ndarray
    usage: np.ndarray
    phases: list[str]
    peak_usage: float
    phase_switches: int
    result: RunResult

    def phase_peaks(self) -> list[float]:
        """Peak usage within each decode phase (should approach 1.0)."""
        peaks: list[float] = []
        current: float | None = None
        for u, ph in zip(self.usage, self.phases):
            if ph == "decode":
                current = u if current is None else max(current, u)
            elif current is not None:
                peaks.append(current)
                current = None
        if current is not None:
            peaks.append(current)
        return peaks


def run(
    scale: ExperimentScale | None = None,
    gpu_name: str = "A100",
    model_name: str = "70B",
    num_gpus: int = 4,
) -> KVUsageResult:
    scale = scale or default_scale()
    res = run_system(
        "TD-Pipe", gpu_name, model_name, requests=eval_requests(scale), scale=scale, num_gpus=num_gpus
    )
    steps, usage, phases = res.kv_usage_arrays()
    return KVUsageResult(
        steps=steps,
        usage=usage,
        phases=phases,
        peak_usage=float(usage.max()) if usage.size else 0.0,
        phase_switches=res.phase_switches,
        result=res,
    )


def format_results(r: KVUsageResult, width: int = 72) -> str:
    blocks = " ▁▂▃▄▅▆▇█"
    idx = np.linspace(0, len(r.usage) - 1, num=min(width, len(r.usage))).astype(int)
    spark = "".join(
        blocks[int(round(x * (len(blocks) - 1)))] for x in np.clip(r.usage[idx], 0, 1)
    )
    peaks = r.phase_peaks()
    return (
        f"KV usage over {len(r.usage)} scheduler steps "
        f"(peak {r.peak_usage * 100:.1f}%, {r.phase_switches} phase switches)\n"
        f"  |{spark}|\n"
        f"  decode-phase peaks: {', '.join(f'{p * 100:.0f}%' for p in peaks[:12])}"
    )
