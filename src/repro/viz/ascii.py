"""Terminal visualisation helpers: sparklines, bar charts, aligned tables.

The experiment CLI and examples render results directly in the terminal;
these helpers keep that rendering consistent and tested.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["sparkline", "bar_chart", "table", "histogram"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int | None = None, lo: float | None = None,
              hi: float | None = None) -> str:
    """One-line block-character plot of a series.

    >>> sparkline([0, 0.5, 1.0])
    ' ▄█'
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if width is not None and arr.size > width:
        idx = np.linspace(0, arr.size - 1, num=width).astype(int)
        arr = arr[idx]
    lo = float(np.nanmin(arr)) if lo is None else lo
    hi = float(np.nanmax(arr)) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _BLOCKS[-1] * arr.size
    scaled = np.clip((arr - lo) / span, 0.0, 1.0)
    return "".join(_BLOCKS[int(round(x * (len(_BLOCKS) - 1)))] for x in scaled)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart with aligned labels and values.

    >>> print(bar_chart(["a", "bb"], [1.0, 2.0], width=4))
    a  |##   1.0
    bb |#### 2.0
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return ""
    vmax = max(max(values), 1e-12)
    lab_w = max(len(str(x)) for x in labels)
    lines = []
    for lab, val in zip(labels, values):
        n = int(round(val / vmax * width))
        lines.append(f"{str(lab):{lab_w}s} |{'#' * n:{width}s} {val:g}{unit}")
    return "\n".join(lines)


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Markdown-ish aligned table."""
    rows = [list(map(str, r)) for r in rows]
    cols = [str(h) for h in headers]
    widths = [
        max(len(cols[i]), *(len(r[i]) for r in rows)) if rows else len(cols[i])
        for i in range(len(cols))
    ]
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [fmt(cols), "-+-".join("-" * w for w in widths)]
    out.extend(fmt(r) for r in rows)
    return "\n".join(out)


def histogram(values: Sequence[float], bins: int = 10, width: int = 40) -> str:
    """ASCII histogram of a sample (used for workload inspection)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return "(empty)"
    counts, edges = np.histogram(arr, bins=bins)
    cmax = max(counts.max(), 1)
    lines = []
    for c, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * int(round(c / cmax * width))
        lines.append(f"[{lo:8.1f}, {hi:8.1f}) {bar} {c}")
    return "\n".join(lines)
