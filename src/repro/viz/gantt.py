"""ASCII Gantt rendering of pipeline schedules (paper Figure 1 style).

Renders each GPU's busy intervals as a row of characters — ``P`` for prefill,
``d`` for decode, ``h`` for hybrid, ``.`` for idle (bubbles) — so the bubble
structure of a schedule is visible directly in the terminal or in test
output.
"""

from __future__ import annotations

from ..sim.trace import TraceRecorder

__all__ = ["gantt", "PHASE_CHARS"]

PHASE_CHARS = {"prefill": "P", "decode": "d", "hybrid": "h", "": "#"}


def gantt(
    trace: TraceRecorder,
    t0: float = 0.0,
    t1: float | None = None,
    width: int = 80,
    idle_char: str = ".",
) -> str:
    """Render the window [t0, t1) of a trace as one row per GPU.

    Each output cell covers ``(t1 - t0) / width`` seconds and shows the task
    kind that occupied the majority of that cell (idle if nothing ran).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    end = trace.makespan if t1 is None else t1
    if end <= t0:
        return ""
    cell = (end - t0) / width
    rows = []
    for tl in trace.timelines:
        # Accumulate busy time per (cell, task kind) across all intervals —
        # individual intervals are typically much shorter than one cell.
        per_kind: list[dict[str, float]] = [dict() for _ in range(width)]
        for iv in tl.intervals:
            if iv.end <= t0 or iv.start >= end:
                continue
            ch = PHASE_CHARS.get(iv.tag, "#")
            lo = max(int((iv.start - t0) / cell), 0)
            hi = min(int((iv.end - t0) / cell) + 1, width)
            for k in range(lo, hi):
                cs, ce = t0 + k * cell, t0 + (k + 1) * cell
                overlap = max(0.0, min(iv.end, ce) - max(iv.start, cs))
                if overlap > 0:
                    per_kind[k][ch] = per_kind[k].get(ch, 0.0) + overlap
        cells = []
        for k in range(width):
            busy = sum(per_kind[k].values())
            if busy < 0.5 * cell:
                cells.append(idle_char)
            else:
                cells.append(max(per_kind[k], key=per_kind[k].__getitem__))
        rows.append(f"GPU{tl.gpu_index} |{''.join(cells)}|")
    legend = "  ".join(f"{c}={k or 'task'}" for k, c in PHASE_CHARS.items() if k)
    return "\n".join(rows) + f"\n      ({legend}, {idle_char}=idle/bubble)"
