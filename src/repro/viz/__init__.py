"""Terminal visualisation helpers for experiment output."""

from .ascii import bar_chart, histogram, sparkline, table
from .gantt import gantt

__all__ = ["sparkline", "bar_chart", "table", "histogram", "gantt"]
