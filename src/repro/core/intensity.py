"""Approach 3 — spatial-temporal intensity comparison (Section 3.5, Figure 10).

*Spatial intensity* measures how efficiently the decode phase currently uses
the hardware: ``SI = Achieved(b) / Peak`` where ``Achieved(b)`` is the
per-request service rate at the current batch size and ``Peak`` the rate at a
saturating batch size (both derived from the same profiled/modelled decode
step time, exactly as the paper profiles real kernels offline).

*Temporal intensity* measures how efficiently a switch to prefill would use
time: ``TI = 1 - bubble / total``, where the bubble is the pipeline-refill
mismatch between the longest pending prefill batch and the current decode
step, and ``total`` is the whole next prefill cycle.

TD-Pipe switches from decode to prefill as soon as ``SI < TI``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..costmodel.roofline import StageCostModel

__all__ = ["DecodeRateProfile", "spatial_intensity", "temporal_intensity"]


@dataclass
class DecodeRateProfile:
    """Achieved/Peak decode rates from a stage cost model.

    The paper profiles the reciprocal of per-request execution time on real
    kernels; we evaluate the same quantity on the roofline model.  Rates are
    context-dependent, so the profile is parameterised by the mean context
    length of the running requests.
    """

    stage_model: StageCostModel
    #: Batch size treated as "sufficiently large" to reach peak rate.
    peak_batch_size: int = 256

    def rate(self, batch_size: int, mean_context: float) -> float:
        """Requests served per second at this batch size (one stage step)."""
        if batch_size <= 0:
            return 0.0
        t = self.stage_model.decode_time(batch_size, batch_size * (mean_context + 1.0))
        return batch_size / t

    def peak(self, mean_context: float) -> float:
        return self.rate(self.peak_batch_size, mean_context)


def spatial_intensity(
    profile: DecodeRateProfile, batch_size: int, mean_context: float
) -> float:
    """``Achieved / Peak`` at the current per-pipeline-batch size."""
    peak = profile.peak(mean_context)
    if peak <= 0:
        return 0.0
    return min(profile.rate(batch_size, mean_context) / peak, 1.0)


def temporal_intensity(
    pending_prefill_stage_times: list[float],
    current_decode_stage_time: float,
) -> float:
    """``1 - bubble / total`` for a hypothetical switch to prefill now.

    ``pending_prefill_stage_times`` are per-stage execution times of the
    prefill batches the next phase would launch (empty -> returns ``-inf`` so
    the engine never switches with nothing to prefill).  The bubble is the
    mismatch between the longest pending prefill and the decode step draining
    behind it as the pipeline changes phase (paper: "the difference between
    the longest prefill and the current decode").
    """
    if not pending_prefill_stage_times:
        return float("-inf")
    longest = max(pending_prefill_stage_times)
    bubble = max(longest - current_decode_stage_time, 0.0)
    total = sum(pending_prefill_stage_times) + bubble
    if total <= 0:
        return float("-inf")
    return 1.0 - bubble / total
