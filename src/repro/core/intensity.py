"""Approach 3 — spatial-temporal intensity comparison (Section 3.5, Figure 10).

*Spatial intensity* measures how efficiently the decode phase currently uses
the hardware: ``SI = Achieved(b) / Peak`` where ``Achieved(b)`` is the
per-request service rate at the current batch size and ``Peak`` the rate at a
saturating batch size (both derived from the same profiled/modelled decode
step time, exactly as the paper profiles real kernels offline).

*Temporal intensity* measures how efficiently a switch to prefill would use
time: ``TI = 1 - bubble / total``, where the bubble is the pipeline-refill
mismatch between the longest pending prefill batch and the current decode
step, and ``total`` is the whole next prefill cycle.

TD-Pipe switches from decode to prefill as soon as ``SI < TI``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..costmodel.roofline import StageCostModel
from ..costmodel.vectorized import decode_rate_curve

__all__ = ["DecodeRateProfile", "spatial_intensity", "temporal_intensity"]


@dataclass
class DecodeRateProfile:
    """Achieved/Peak decode rates from a stage cost model.

    The paper profiles the reciprocal of per-request execution time on real
    kernels; we evaluate the same quantity on the roofline model.  Rates are
    context-dependent, so the profile is parameterised by the mean context
    length of the running requests.

    The whole achieved-rate curve for a given mean context is computed in one
    vectorized pass (:func:`repro.costmodel.vectorized.decode_rate_curve`,
    bit-identical to the scalar chain) and cached, so the achieved/peak/step
    queries of one scheduling decision — which all share the same mean
    context — answer from a single precomputed table instead of separate
    cost-model calls.  Batch sizes beyond the table fall back to the scalar
    path, which produces the same bits.
    """

    stage_model: StageCostModel
    #: Batch size treated as "sufficiently large" to reach peak rate.
    peak_batch_size: int = 256
    #: Single-slot curve cache: (mean_context, size) of the cached table.
    #: One slot suffices — every query within one decision shares the mean
    #: context, and successive decisions never repeat it (contexts grow).
    _curve_key: tuple | None = field(default=None, repr=False, compare=False)
    _curve_times: list = field(default_factory=list, repr=False, compare=False)
    _curve_rates: list = field(default_factory=list, repr=False, compare=False)

    def _curve(self, mean_context: float, min_size: int) -> tuple[list, list]:
        size = max(self.peak_batch_size, min_size, 1)
        key = (mean_context, size)
        if self._curve_key != key:
            times, rates = decode_rate_curve(
                self.stage_model,
                np.arange(1, size + 1, dtype=np.float64),
                mean_context,
            )
            self._curve_times = times.tolist()
            self._curve_rates = rates.tolist()
            self._curve_key = key
        return self._curve_times, self._curve_rates

    def rate(self, batch_size: int, mean_context: float) -> float:
        """Requests served per second at this batch size (one stage step)."""
        if batch_size <= 0:
            return 0.0
        _, rates = self._curve(mean_context, batch_size)
        if batch_size <= len(rates):
            return rates[batch_size - 1]
        t = self.stage_model.decode_time(batch_size, batch_size * (mean_context + 1.0))
        return batch_size / t

    def step_time(self, batch_size: int, mean_context: float) -> float:
        """Decode step time underlying :meth:`rate` (same expression chain),
        served from the cached curve so policies need no extra model call."""
        if batch_size <= 0:
            return 0.0
        times, _ = self._curve(mean_context, batch_size)
        if batch_size <= len(times):
            return times[batch_size - 1]
        return self.stage_model.decode_time(batch_size, batch_size * (mean_context + 1.0))

    def peak(self, mean_context: float) -> float:
        return self.rate(self.peak_batch_size, mean_context)


def spatial_intensity(
    profile: DecodeRateProfile, batch_size: int, mean_context: float
) -> float:
    """``Achieved / Peak`` at the current per-pipeline-batch size."""
    peak = profile.peak(mean_context)
    if peak <= 0:
        return 0.0
    return min(profile.rate(batch_size, mean_context) / peak, 1.0)


def temporal_intensity(
    pending_prefill_stage_times: list[float],
    current_decode_stage_time: float,
) -> float:
    """``1 - bubble / total`` for a hypothetical switch to prefill now.

    ``pending_prefill_stage_times`` are per-stage execution times of the
    prefill batches the next phase would launch (empty -> returns ``-inf`` so
    the engine never switches with nothing to prefill).  The bubble is the
    mismatch between the longest pending prefill and the decode step draining
    behind it as the pipeline changes phase (paper: "the difference between
    the longest prefill and the current decode").
    """
    if not pending_prefill_stage_times:
        return float("-inf")
    longest = max(pending_prefill_stage_times)
    bubble = max(longest - current_decode_stage_time, 0.0)
    total = sum(pending_prefill_stage_times) + bubble
    if total <= 0:
        return float("-inf")
    return 1.0 - bubble / total
