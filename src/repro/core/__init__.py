"""TD-Pipe core: the paper's primary contribution."""

from .greedy_prefill import (
    AdmissionPlan,
    GreedyPrefillPlanner,
    default_future_points,
    plan_prefill_admission,
)
from .intensity import DecodeRateProfile, spatial_intensity, temporal_intensity
from .policies import (
    DecodeSwitchPolicy,
    FinishRatioPolicy,
    GreedyPrefillPolicy,
    IntensityPolicy,
    OccupancyRatioPolicy,
    PrefillSwitchPolicy,
)
from .tdpipe import TDPipeEngine
from .work_stealing import WorkStealingBalancer

__all__ = [
    "TDPipeEngine",
    "GreedyPrefillPlanner",
    "AdmissionPlan",
    "plan_prefill_admission",
    "default_future_points",
    "WorkStealingBalancer",
    "DecodeRateProfile",
    "spatial_intensity",
    "temporal_intensity",
    "GreedyPrefillPolicy",
    "OccupancyRatioPolicy",
    "IntensityPolicy",
    "FinishRatioPolicy",
    "PrefillSwitchPolicy",
    "DecodeSwitchPolicy",
]
