"""Approach 2 — inter-batch work stealing (paper Section 3.4, Figure 9).

During the decode phase requests finish at random, so the G circulating
batches drift apart in size and the pipeline develops bubbles (a stage idles
while waiting for a smaller batch).  The balancer keeps a sliding window of
the last G submitted batch sizes; on every batch return it computes the
window average (minus the requests that just finished), *withholds* the
excess of over-average batches, and tops under-average batches up from the
withheld pool.  Batch size is deliberately the sole balance metric — the
paper argues linear layers dominate and large batches smooth out
sequence-length variance.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence, TypeVar

__all__ = ["WorkStealingBalancer"]

T = TypeVar("T")


@dataclass
class WorkStealingBalancer:
    """Sliding-window decode load balancer over generic request items."""

    window_size: int
    #: Hard cap on any single batch (vLLM ``max_num_seqs``).
    max_batch_size: int = 256
    #: When False the balancer is inert (the paper's "wo" ablation): initial
    #: equal division still happens, but no dynamic stealing.
    enabled: bool = True
    _window: deque[int] = field(default_factory=deque, repr=False)
    _withheld: list = field(default_factory=list, repr=False)
    steals: int = field(default=0, repr=False)
    supplements: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")

    # ------------------------------------------------------------------ #
    @property
    def withheld_count(self) -> int:
        return len(self._withheld)

    def drain_withheld(self) -> list:
        """Remove and return all withheld items (used when a phase ends)."""
        out, self._withheld = self._withheld, []
        return out

    def init_batches(self, items: Sequence[T], n_batches: int) -> list[list[T]]:
        """Divide requests into ``n_batches`` equal batches (phase start).

        Items beyond ``n_batches * max_batch_size`` are withheld and fed back
        by the stealing mechanism as running requests finish.
        """
        if n_batches < 1:
            raise ValueError("n_batches must be >= 1")
        items = list(items)
        capacity = n_batches * self.max_batch_size
        overflow = items[capacity:]
        items = items[:capacity]
        batches: list[list[T]] = [[] for _ in range(n_batches)]
        for i, item in enumerate(items):
            batches[i % n_batches].append(item)
        self._withheld = overflow
        self._window = deque((len(b) for b in batches), maxlen=self.window_size)
        return batches

    def on_batch_return(self, batch: list[T], n_finished: int) -> list[T]:
        """Rebalance one returning batch; returns the batch to resubmit.

        ``batch`` holds the surviving requests (finished ones already removed);
        ``n_finished`` is how many completed in this step.
        """
        if not self.enabled:
            # Ablation mode: withheld items (phase-start overflow) still trickle
            # in, but no average-based stealing happens.
            while self._withheld and len(batch) < self.max_batch_size:
                batch.append(self._withheld.pop())
            return batch
        if not self._window:
            self._window.append(len(batch))
        avg = max(1, -(-(sum(self._window) - n_finished) // len(self._window)))
        avg = min(avg, self.max_batch_size)
        if len(batch) > avg:
            excess = len(batch) - avg
            self._withheld.extend(batch[-excess:])
            del batch[-excess:]
            self.steals += excess
        elif len(batch) < avg and self._withheld:
            need = min(avg - len(batch), len(self._withheld))
            for _ in range(need):
                batch.append(self._withheld.pop())
            self.supplements += need
        self._window.append(len(batch))
        return batch
