"""Phase-switch policies for the temporally-disaggregated scheduler.

TD-Pipe proper uses :class:`GreedyPrefillPolicy` (Approach 1) for the
prefill->decode switch and :class:`IntensityPolicy` (Approach 3) for the
decode->prefill switch.  The ratio-based policies implement the hand-tuned
heuristics the paper's ablations (Figures 13 and 16) compare against.

Policies receive the engine itself; the engine attributes they may read are
part of the :class:`repro.core.tdpipe.TDPipeEngine` public surface
(``waiting``, ``running``, ``block_manager``, ``predicted_len``,
``stage_models``, ``config``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence

from ..runtime.state import RequestState
from .greedy_prefill import GreedyPrefillPlanner, default_future_points, plan_prefill_admission
from .intensity import DecodeRateProfile, spatial_intensity, temporal_intensity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tdpipe import TDPipeEngine

__all__ = [
    "PrefillSwitchPolicy",
    "DecodeSwitchPolicy",
    "GreedyPrefillPolicy",
    "OccupancyRatioPolicy",
    "IntensityPolicy",
    "FinishRatioPolicy",
]


class PrefillSwitchPolicy(Protocol):
    """Decides when the prefill phase should stop launching and hand over."""

    def reset_phase(self, engine: "TDPipeEngine") -> None: ...

    def on_batch_launched(self, engine: "TDPipeEngine", batch: Sequence[RequestState]) -> None: ...

    def should_switch(self, engine: "TDPipeEngine") -> bool: ...


class DecodeSwitchPolicy(Protocol):
    """Decides when the decode phase should hand back to prefill."""

    def reset_phase(self, engine: "TDPipeEngine") -> None: ...

    def should_switch(self, engine: "TDPipeEngine") -> bool: ...


# ---------------------------------------------------------------------- #
# Prefill -> decode.
# ---------------------------------------------------------------------- #
@dataclass
class GreedyPrefillPolicy:
    """Approach 1: AI-based greedy prefill (Algorithm 1)."""

    future_points: tuple[int, ...] = field(default_factory=default_future_points)
    _planner: GreedyPrefillPlanner | None = field(default=None, repr=False)

    def reset_phase(self, engine: "TDPipeEngine") -> None:
        self._planner = GreedyPrefillPlanner(
            kv_capacity_tokens=engine.block_manager.capacity_tokens,
            future_points=self.future_points,
        )
        carry = [
            (float(s.kv_len), engine.predicted_remaining(s)) for s in engine.running.values()
        ]
        self._planner.reset(carry)

    def on_batch_launched(self, engine: "TDPipeEngine", batch: Sequence[RequestState]) -> None:
        assert self._planner is not None, "reset_phase not called"
        for s in batch:
            self._planner.update(s.prefill_len, engine.predicted_len(s))

    def should_switch(self, engine: "TDPipeEngine") -> bool:
        assert self._planner is not None, "reset_phase not called"
        return self._planner.should_switch()


@dataclass
class OccupancyRatioPolicy:
    """Figure 13 baseline: switch once KV occupancy reaches a fixed ratio."""

    ratio: float

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {self.ratio}")

    def reset_phase(self, engine: "TDPipeEngine") -> None:  # noqa: ARG002
        return None

    def on_batch_launched(self, engine: "TDPipeEngine", batch: Sequence[RequestState]) -> None:
        return None

    def should_switch(self, engine: "TDPipeEngine") -> bool:
        return engine.block_manager.usage_ratio >= self.ratio


# ---------------------------------------------------------------------- #
# Decode -> prefill.
# ---------------------------------------------------------------------- #
@dataclass
class IntensityPolicy:
    """Approach 3: switch when spatial intensity < temporal intensity.

    The temporal side sizes the *next* prefill phase with a what-if replay of
    Algorithm 1 over the waiting queue; the check is throttled to once per
    pipeline round (``check_interval`` batch returns) because its inputs only
    drift a little per step.
    """

    peak_batch_size: int = 256
    check_interval: int | None = None  # default: number of stages
    _calls: int = field(default=0, repr=False)
    _profile: DecodeRateProfile | None = field(default=None, repr=False)
    last_si: float = field(default=float("nan"), repr=False)
    last_ti: float = field(default=float("nan"), repr=False)

    def reset_phase(self, engine: "TDPipeEngine") -> None:
        self._calls = 0
        self._profile = DecodeRateProfile(
            stage_model=engine.stage_models[0],
            peak_batch_size=min(self.peak_batch_size, engine.config.max_num_seqs),
        )

    def should_switch(self, engine: "TDPipeEngine") -> bool:
        assert self._profile is not None, "reset_phase not called"
        interval = self.check_interval or engine.num_stages
        self._calls += 1
        if (self._calls - 1) % interval:
            return False
        running = list(engine.running.values())
        if not running or not engine.waiting:
            return False
        n_batches = min(engine.num_stages, len(running))
        batch_size = max(len(running) // n_batches, 1)
        mean_ctx = sum(s.kv_len for s in running) / len(running)
        # "Peak" is the rate at a saturating batch — but never larger than the
        # batch the KV capacity could actually hold right after a full prefill
        # phase.  Without this cap, memory-tight configurations would report
        # SI < 1 permanently and the policy would thrash between phases.
        reachable = int(
            engine.block_manager.capacity_tokens / (engine.num_stages * (mean_ctx + 1.0))
        )
        self._profile.peak_batch_size = max(
            1, min(self.peak_batch_size, engine.config.max_num_seqs, reachable)
        )
        si = spatial_intensity(self._profile, batch_size, mean_ctx)

        ti = self._temporal(engine, batch_size, mean_ctx)
        self.last_si, self.last_ti = si, ti
        return si < ti

    def _temporal(self, engine: "TDPipeEngine", batch_size: int, mean_ctx: float) -> float:
        waiting = list(engine.waiting)
        plan = plan_prefill_admission(
            prefill_lens=[s.prefill_len for s in waiting],
            predicted_lens=[engine.predicted_len(s) for s in waiting],
            kv_capacity_tokens=engine.block_manager.capacity_tokens,
            carry_over=[
                (float(s.kv_len), engine.predicted_remaining(s))
                for s in engine.running.values()
            ],
        )
        if not plan.any_admissible:
            return float("-inf")
        stage = engine.stage_models[0]
        budget = engine.config.max_prefill_tokens
        times: list[float] = []
        batch: list[int] = []
        tokens = 0
        for s in waiting[: plan.n_requests]:
            if batch and tokens + s.prefill_len > budget:
                times.append(stage.prefill_time(batch))
                batch, tokens = [], 0
            batch.append(s.prefill_len)
            tokens += s.prefill_len
        if batch:
            times.append(stage.prefill_time(batch))
        assert self._profile is not None
        decode_t = self._profile.step_time(batch_size, mean_ctx)
        return temporal_intensity(times, decode_t)


@dataclass
class FinishRatioPolicy:
    """Figure 16 baseline: switch once a fixed fraction of the decode phase's
    initial requests have completed."""

    ratio: float
    _initial: int = field(default=0, repr=False)
    _finished_at_start: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {self.ratio}")

    def reset_phase(self, engine: "TDPipeEngine") -> None:
        self._initial = len(engine.running)
        self._finished_at_start = len(engine.finished)

    def should_switch(self, engine: "TDPipeEngine") -> bool:
        if self._initial == 0 or not engine.waiting:
            return False
        done = len(engine.finished) - self._finished_at_start
        return done / self._initial >= self.ratio
