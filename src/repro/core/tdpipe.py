"""TD-Pipe: the temporally-disaggregated pipeline-parallel engine (Section 3).

The engine runs a two-phase state machine:

* **Prefill phase** — whole-prompt batches are launched back to back into the
  pipeline (no inter-batch dependencies, so stages stay saturated).  The
  prefill-switch policy (Approach 1, AI-based greedy prefill by default)
  decides after each launch whether predicted future memory use demands a
  switch; in-flight prefills then drain and the decode phase begins.
* **Decode phase** — all resident requests are split into one batch per
  pipeline stage; batches circulate through the pipeline, each traversal
  being one decode step.  The work-stealing balancer (Approach 2) keeps the
  circulating batch sizes even as requests finish; the decode-switch policy
  (Approach 3, spatial-temporal intensity comparison by default) decides when
  to drain and return to prefill.

Requests mid-generation keep their KV cache across prefill phases (temporal,
not spatial, disaggregation) and rejoin the next decode phase.
"""

from __future__ import annotations

from ..hardware.node import NodeSpec
from ..models.spec import ModelSpec
from ..predictor.length_predictor import OutputLengthPredictor
from ..runtime.base_engine import InferenceEngine
from ..runtime.config import EngineConfig
from ..runtime.state import RequestState
from ..runtime.tasks import PREFILL, BatchTask
from ..metrics.results import PhaseSpan
from ..sim.engine import SimulationError, Simulator
from .policies import (
    DecodeSwitchPolicy,
    GreedyPrefillPolicy,
    IntensityPolicy,
    PrefillSwitchPolicy,
)
from .work_stealing import WorkStealingBalancer

__all__ = ["TDPipeEngine"]


class TDPipeEngine(InferenceEngine):
    """The paper's system: temporally-disaggregated pipeline parallelism."""

    system_name = "TD-Pipe"

    def __init__(
        self,
        node: NodeSpec,
        model: ModelSpec,
        predictor: OutputLengthPredictor,
        config: EngineConfig | None = None,
        prefill_policy: PrefillSwitchPolicy | None = None,
        decode_policy: DecodeSwitchPolicy | None = None,
        work_stealing: bool = True,
        sim: Simulator | None = None,
    ) -> None:
        # Hierarchy-controller: asynchronous P2P transfers (Section 3.2).
        super().__init__(
            node, model, parallel="pp", config=config, async_transfer=True, sim=sim
        )
        self.predictor = predictor
        self.prefill_policy = prefill_policy or GreedyPrefillPolicy()
        self.decode_policy = decode_policy or IntensityPolicy()
        self.balancer = WorkStealingBalancer(
            window_size=self.num_stages,
            max_batch_size=self.config.max_num_seqs,
            enabled=work_stealing,
        )
        #: Requests with KV resident and generation unfinished.
        self.running: dict[int, RequestState] = {}
        self.phase: str | None = None
        self._phase_started_at = 0.0
        self._prefill_inflight = 0
        self._prefill_stopped = False
        self._decode_active = 0
        self._switch_requested = False
        self._idle = False
        self._predictions: dict[int, float] = {}
        #: Queue depth kept at stage 0 during prefill (pipeline depth + 1
        #: keeps every stage fed while bounding memory commitment).
        self.prefill_queue_depth = self.num_stages + 1

    # ------------------------------------------------------------------ #
    # Prediction helpers (used by the policies).
    # ------------------------------------------------------------------ #
    def predicted_len(self, state: RequestState) -> float:
        """Predicted output length of a request (cached, one model call each)."""
        rid = state.request_id
        if rid not in self._predictions:
            self._predictions[rid] = float(self.predictor.predict_length(state.request))
        return self._predictions[rid]

    def predicted_remaining(self, state: RequestState) -> float:
        """Predicted output tokens still to come for a mid-generation request."""
        return max(self.predicted_len(state) - state.generated, 0.0)

    # ------------------------------------------------------------------ #
    # Phase bookkeeping.
    # ------------------------------------------------------------------ #
    def _close_phase(self, end: float) -> None:
        # Zero-duration spans are idle artifacts (e.g. a replica bootstrapped
        # empty enters prefill at t=0 and immediately idles): drop them so
        # phase metrics only ever describe executed work.
        if self.phase is not None and end > self._phase_started_at:
            self.phase_spans.append(PhaseSpan(self.phase, self._phase_started_at, end))
        self.phase = None
        self._notify_load()  # phase is a routing signal (phase-aware router)

    def _phase_start(self, phase: str) -> None:
        now = self.sim.now
        self._close_phase(now)
        self.phase = phase
        self._phase_started_at = now
        self._notify_load()

    def _finalize_phases(self) -> None:
        self._close_phase(self.trace.makespan)

    def _on_run_end(self) -> None:
        # On a shared (cluster) clock `sim.pending` counts other replicas'
        # events too, so the in-loop finalize check may never fire; close the
        # last span here instead.
        self._finalize_phases()

    # ------------------------------------------------------------------ #
    # Bootstrap / dispatch.
    # ------------------------------------------------------------------ #
    def _bootstrap(self) -> None:
        self._enter_prefill()

    def _on_arrival(self, state: RequestState) -> None:
        """Online arrival: restart the phase machine if it had gone idle."""
        if self._idle:
            self._idle = False
            self._enter_prefill()

    def _on_task_complete(self, task: BatchTask, end_time: float) -> None:
        self._clear_inflight(task)
        if task.kind == PREFILL:
            self._complete_prefill(task)
        else:
            self._complete_decode(task)
        if not self.sim.pending and len(self.finished) == len(self.states):
            self._finalize_phases()

    # ------------------------------------------------------------------ #
    # Prefill phase.
    # ------------------------------------------------------------------ #
    def _enter_prefill(self) -> None:
        self._idle = False
        self._phase_start("prefill")
        self.prefill_policy.reset_phase(self)
        self._prefill_stopped = False
        self._prefill_pump()

    def _prefill_pump(self) -> None:
        while not self._prefill_stopped and self._prefill_inflight < self.prefill_queue_depth:
            if not self.waiting or self.prefill_policy.should_switch(self):
                # No work, or the carried-over requests already exceed the
                # predicted memory budget: nothing can be launched this phase.
                self._prefill_stopped = True
                break
            batch = self.pack_prefill_batch()
            if not batch:
                # Memory (watermark) refuses even one prompt: decode must free KV.
                self._prefill_stopped = True
                break
            self._prefill_inflight += 1
            self.submit(self.make_prefill_task(batch))
            self.prefill_policy.on_batch_launched(self, batch)
            if self.prefill_policy.should_switch(self):
                self._prefill_stopped = True
        if self._prefill_stopped and self._prefill_inflight == 0:
            self._enter_decode()

    def _complete_prefill(self, task: BatchTask) -> None:
        for rid in task.request_ids:
            s = self.states[rid]
            s.complete_prefill()
            self.stamp_first_token(s)
            if s.done:
                self.finish_request(s)
            else:
                self.running[rid] = s
        self.log_kv("prefill")
        self._prefill_inflight -= 1
        if not self._prefill_stopped:
            self._prefill_pump()
        if self._prefill_stopped and self._prefill_inflight == 0:
            self._enter_decode()

    # ------------------------------------------------------------------ #
    # Decode phase.
    # ------------------------------------------------------------------ #
    def _enter_decode(self) -> None:
        if not self.running:
            if self.waiting:
                if self.block_manager.num_requests == 0 and not self.can_admit(self.waiting[0]):
                    raise SimulationError(
                        "TD-Pipe: nothing admitted but requests remain waiting — "
                        "a single request exceeds KV capacity"
                    )
                # Requests arrived after the prefill pump stopped (online
                # mode): go straight back to prefill.
                self._enter_prefill()
                return
            # Locally complete; future arrivals (if any) will wake us up.
            # Close the open phase so idle time is never attributed to it.
            self._idle = True
            self._finalize_phases()
            return
        self._phase_start("decode")
        self.decode_policy.reset_phase(self)
        self._switch_requested = False
        batches = self.balancer.init_batches(list(self.running.values()), self.num_stages)
        batches = [b for b in batches if b]
        self._decode_active = len(batches)
        for b in batches:
            self._submit_decode(b)

    def _submit_decode(self, batch: list[RequestState]) -> None:
        survivors, evicted = self.reserve_decode_tokens(batch)
        for s in evicted:
            # Evicted for re-computation: back to waiting, out of running.
            self.running.pop(s.request_id, None)
        if not survivors:
            self._decode_active -= 1
            self._maybe_end_decode()
            return
        self.submit(self.make_decode_task(survivors))

    def _complete_decode(self, task: BatchTask) -> None:
        survivors: list[RequestState] = []
        n_finished = 0
        for rid in task.request_ids:
            s = self.states[rid]
            s.complete_decode_step()
            if s.done:
                self.finish_request(s)
                self.running.pop(rid, None)
                n_finished += 1
            else:
                survivors.append(s)
        self.log_kv("decode")
        if not self._switch_requested and self.waiting and self.decode_policy.should_switch(self):
            self._switch_requested = True
        if self._switch_requested:
            # Survivors stay resident and rejoin the next decode phase.
            self._decode_active -= 1
            self._maybe_end_decode()
            return
        batch = self.balancer.on_batch_return(survivors, n_finished)
        if not batch:
            self._decode_active -= 1
            self._maybe_end_decode()
            return
        self._submit_decode(batch)

    def _maybe_end_decode(self) -> None:
        if self._decode_active > 0:
            return
        # Withheld requests are still in `running`; clear the pool so the next
        # phase re-partitions everything.
        self.balancer.drain_withheld()
        if self.waiting:
            self._enter_prefill()
        elif self.running:
            # Drained for a switch but prefill has nothing to do (can happen
            # if eviction re-queued requests that then got re-admitted).
            self._enter_decode()
        else:
            self._idle = True
            self._finalize_phases()
