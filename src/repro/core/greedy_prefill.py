"""Approach 1 — AI-based greedy prefill (paper Section 3.3, Algorithm 1).

The planner decides *when to stop prefilling*: it maintains a map of predicted
KV-cache usage at a grid of future decode steps (``futurePoints`` = 32, 64, …,
1024).  Launching a prefill of input length ``L`` whose predicted output
length is ``P`` adds ``L + p`` tokens of usage at every future point ``p <= P``
(the request is predicted to be alive and to have grown by ``p`` tokens; once
it finishes — ``p > P`` — its KV is freed and it contributes nothing).  The
engine switches to decode as soon as the predicted usage at any future point
exceeds the KV capacity.

:func:`plan_prefill_admission` is the vectorised "what-if" version used by the
spatial-temporal intensity comparison (Approach 3) to size the *next* prefill
phase without mutating any state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["default_future_points", "GreedyPrefillPlanner", "AdmissionPlan", "plan_prefill_admission"]


def default_future_points(stride: int = 32, horizon: int = 1024) -> tuple[int, ...]:
    """The paper's decision grid: the 32nd, 64th, ..., 1024th decode steps."""
    if stride < 1 or horizon < stride:
        raise ValueError("need 1 <= stride <= horizon")
    return tuple(range(stride, horizon + 1, stride))


@dataclass
class GreedyPrefillPlanner:
    """Incremental Algorithm 1 state for the *current* prefill phase."""

    kv_capacity_tokens: int
    future_points: tuple[int, ...] = field(default_factory=default_future_points)
    _usage: np.ndarray = field(init=False, repr=False)
    _points: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.kv_capacity_tokens <= 0:
            raise ValueError("kv_capacity_tokens must be positive")
        if not self.future_points:
            raise ValueError("need at least one future point")
        self._points = np.asarray(self.future_points, dtype=float)
        self._usage = np.zeros_like(self._points)

    # ------------------------------------------------------------------ #
    def reset(self, carry_over: Iterable[tuple[float, float]] = ()) -> None:
        """Start a new prefill phase.

        ``carry_over`` holds ``(context_len, predicted_remaining_output)`` for
        requests still mid-generation from the previous decode phase: they keep
        their KV and keep growing, so they pre-load the usage map.
        """
        self._usage = np.zeros_like(self._points)
        for ctx, remaining in carry_over:
            alive = self._points <= max(remaining, 0.0)
            self._usage[alive] += ctx + self._points[alive]

    def update(self, input_len: float, predicted_len: float) -> None:
        """Algorithm 1 ``UpdateUsage``: account a newly launched prefill."""
        alive = self._points <= max(predicted_len, 0.0)
        self._usage[alive] += input_len + self._points[alive]
        # A request predicted to finish before the first future point still
        # occupies its prompt KV until then; charge it at the first point.
        if not alive.any():
            self._usage[0] += input_len + predicted_len

    def predicted_peak(self) -> float:
        """Largest predicted usage over the future-point grid (tokens)."""
        return float(self._usage.max())

    def should_switch(self) -> bool:
        """Algorithm 1 ``CheckSwitch``: True -> switch to decode now."""
        return self.predicted_peak() > self.kv_capacity_tokens

    def usage_map(self) -> dict[int, float]:
        """Snapshot of the predicted usage per future point (for inspection)."""
        return {int(p): float(u) for p, u in zip(self._points, self._usage)}


@dataclass(frozen=True)
class AdmissionPlan:
    """Result of a what-if admission plan for the next prefill phase."""

    n_requests: int
    admitted_tokens: int
    predicted_peak: float

    @property
    def any_admissible(self) -> bool:
        return self.n_requests > 0


def plan_prefill_admission(
    prefill_lens: Sequence[float],
    predicted_lens: Sequence[float],
    kv_capacity_tokens: float,
    carry_over: Iterable[tuple[float, float]] = (),
    future_points: tuple[int, ...] | None = None,
) -> AdmissionPlan:
    """Vectorised Algorithm 1: how many waiting requests *would* be admitted.

    Replays ``UpdateUsage``/``CheckSwitch`` over the waiting queue in order and
    returns the request count admitted before the predicted peak first exceeds
    capacity (inclusive of the batch that crosses the line, matching the
    launch-then-check order of ``SchedulePrefill``).
    """
    points = np.asarray(future_points or default_future_points(), dtype=float)
    L = np.asarray(prefill_lens, dtype=float)
    P = np.asarray(predicted_lens, dtype=float)
    if L.shape != P.shape:
        raise ValueError("prefill_lens and predicted_lens must align")
    base = np.zeros_like(points)
    for ctx, remaining in carry_over:
        alive = points <= max(remaining, 0.0)
        base[alive] += ctx + points[alive]
    base_peak = float(base.max()) if base.size else 0.0
    if L.size == 0 or base_peak > kv_capacity_tokens:
        # Nothing to admit, or the carried-over requests alone are predicted
        # to exceed capacity: the next prefill phase would launch nothing, so
        # report zero admissible (prevents switch thrashing when memory is
        # saturated by mid-generation requests).
        return AdmissionPlan(0, 0, base_peak)

    # contribution[i, p] = (L_i + p) if P_i >= p else 0 ; cumulative over i.
    alive = P[:, None] >= points[None, :]
    contrib = (L[:, None] + points[None, :]) * alive
    # Requests predicted to finish before the first future point still occupy
    # their prompt KV until then (mirrors GreedyPrefillPlanner.update).
    short = ~alive.any(axis=1)
    contrib[short, 0] += L[short] + P[short]
    cum = base[None, :] + np.cumsum(contrib, axis=0)
    peaks = cum.max(axis=1)  # predicted peak after admitting first i+1 requests
    over = peaks > kv_capacity_tokens
    if not over.any():
        n = int(L.size)
    else:
        # Admit up to and including the first crossing request (launch, then check).
        n = int(np.argmax(over)) + 1
    return AdmissionPlan(
        n_requests=n,
        admitted_tokens=int(L[:n].sum()),
        predicted_peak=float(peaks[n - 1]),
    )
