"""Command-line entry point: regenerate any paper table or figure.

Examples
--------
::

    tdpipe-bench table1
    tdpipe-bench fig11 --scale 0.2
    tdpipe-bench fig11 --full          # the paper's 5,000-request scale
    tdpipe-bench all --scale 0.1
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import (
    fig01_schedules,
    default_scale,
    fig02_utilization,
    fig06_tp_breakdown,
    fig11_overall,
    fig12_kv_usage,
    fig13_prefill_switch,
    fig14_predictor,
    fig15_work_stealing,
    fig16_decode_switch,
    tables,
)

__all__ = ["main"]

_SCALED = {
    "fig01": (fig01_schedules.run, fig01_schedules.format_results),
    "fig02": (fig02_utilization.run, fig02_utilization.format_results),
    "fig11": (fig11_overall.run, fig11_overall.format_results),
    "fig12": (fig12_kv_usage.run, fig12_kv_usage.format_results),
    "fig13": (fig13_prefill_switch.run, fig13_prefill_switch.format_results),
    "fig14": (fig14_predictor.run, fig14_predictor.format_results),
    "fig15": (fig15_work_stealing.run, fig15_work_stealing.format_results),
    "fig16": (fig16_decode_switch.run, fig16_decode_switch.format_results),
}

_STATIC = {
    "table1": tables.format_table1,
    "table2": tables.format_table2,
    "fig06": lambda: fig06_tp_breakdown.format_results(fig06_tp_breakdown.run()),
}

EXPERIMENTS = sorted([*_SCALED, *_STATIC, "all"])


def _run_one(name: str, scale) -> str:
    if name in _STATIC:
        return _STATIC[name]()
    runner, formatter = _SCALED[name]
    return formatter(runner(scale=scale))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tdpipe-bench",
        description="Regenerate TD-Pipe paper tables and figures on the simulator.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS, help="which artifact to regenerate")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale relative to the paper's 5,000 requests (default 0.1)",
    )
    parser.add_argument(
        "--full", action="store_true", help="run at the paper's full scale (scale=1.0)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload/predictor seed")
    args = parser.parse_args(argv)

    scale = default_scale(factor=1.0 if args.full else args.scale, seed=args.seed)
    names = sorted([*_SCALED, *_STATIC]) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        output = _run_one(name, scale)
        dt = time.time() - t0
        print(f"=== {name} (elapsed {dt:.1f}s) ===")
        print(output)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
