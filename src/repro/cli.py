"""Command-line entry point: regenerate any paper table or figure, run any
declarative scenario spec, or record/replay/diff runs in the artifact store.

Examples
--------
::

    tdpipe-bench table1
    tdpipe-bench fig11 --scale 0.2
    tdpipe-bench fig11 --full          # the paper's 5,000-request scale
    tdpipe-bench all --scale 0.1
    tdpipe-bench cluster --scale 0.05             # full routing sweep
    tdpipe-bench cluster --replicas 4 --router phase-aware --rate 8
    tdpipe-bench cluster --fleet l20:2,a100:2 --router jsq --rate 14 \\
        --slo-mix interactive:0.7,batch:0.3 --autoscale
    tdpipe-bench run --spec examples/scenarios/hetero.json --bench-json out.json
    tdpipe-bench run --spec cluster-hetero --set workload.scale=0.02
    tdpipe-bench workload preview diurnal           # per-segment rates
    tdpipe-bench workload preview examples/scenarios/regime_diurnal.json
    tdpipe-bench cluster-regimes --scale 0.05       # autoscaler vs regimes
    tdpipe-bench record cluster-hetero --store tdpipe-store
    tdpipe-bench record cluster-hetero --store tdpipe-store --reuse --jobs 2
    tdpipe-bench replay --store tdpipe-store --strict   # the regression gate
    tdpipe-bench replay --store tdpipe-store --update   # accept drift in place
    tdpipe-bench diff a1b2c3 d4e5f6 --store tdpipe-store
    tdpipe-bench store gc --store tdpipe-store
    tdpipe-bench store gc --store tdpipe-store --dry-run  # print, don't prune
    tdpipe-bench store fsck --store tdpipe-store        # rebuild index.json
    tdpipe-bench run --spec sweep.json --backend fabric --jobs 2
    tdpipe-bench fabric submit --spec sweep.json --spool /shared/spool --wait
    tdpipe-bench fabric worker --spool /shared/spool    # on each host
    tdpipe-bench fabric status --spool /shared/spool
    tdpipe-bench fabric drain --spool /shared/spool
    tdpipe-bench fabric requeue <task-id> --spool /shared/spool
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import shutil
import sys
import tempfile
import time

from . import api
from .cluster.routing import ROUTER_NAMES
from .experiments import (
    SYSTEMS,
    cluster_regimes,
    cluster_scaling,
    fig01_schedules,
    default_scale,
    fig02_utilization,
    fig06_tp_breakdown,
    fig11_overall,
    fig12_kv_usage,
    fig13_prefill_switch,
    fig14_predictor,
    fig15_work_stealing,
    fig16_decode_switch,
    tables,
)

__all__ = ["main"]

_SCALED = {
    "cluster": (cluster_scaling.run, cluster_scaling.format_results),
    "cluster-hetero": (
        cluster_scaling.run_heterogeneous,
        cluster_scaling.format_heterogeneous,
    ),
    "cluster-autoscale": (
        cluster_scaling.run_autoscaling,
        cluster_scaling.format_autoscaling,
    ),
    "cluster-regimes": (
        cluster_regimes.run_regimes,
        cluster_regimes.format_regimes,
    ),
    "fig01": (fig01_schedules.run, fig01_schedules.format_results),
    "fig02": (fig02_utilization.run, fig02_utilization.format_results),
    "fig11": (fig11_overall.run, fig11_overall.format_results),
    "fig12": (fig12_kv_usage.run, fig12_kv_usage.format_results),
    "fig13": (fig13_prefill_switch.run, fig13_prefill_switch.format_results),
    "fig14": (fig14_predictor.run, fig14_predictor.format_results),
    "fig15": (fig15_work_stealing.run, fig15_work_stealing.format_results),
    "fig16": (fig16_decode_switch.run, fig16_decode_switch.format_results),
}

_STATIC = {
    "table1": tables.format_table1,
    "table2": tables.format_table2,
    "fig06": lambda: fig06_tp_breakdown.format_results(fig06_tp_breakdown.run()),
}

#: Experiments whose runners execute registered spec grids and can file
#: every point in an :class:`repro.api.ArtifactStore` (``store=`` kwarg).
_STORE_CAPABLE = {
    "cluster-hetero", "cluster-autoscale", "cluster-regimes",
    "fig11", "fig13", "fig15", "fig16",
}

#: Experiments allowed to emit a self-describing ``--bench-json`` record:
#: the spec-driven entry points plus every registry-backed experiment.
_BENCH_CAPABLE = {"cluster", "run", "record", "perf", *_STORE_CAPABLE}

EXPERIMENTS = sorted(
    [*_SCALED, *_STATIC, "all", "run", "record", "replay", "diff", "perf",
     "store", "workload", "fabric"]
)

#: Experiments that can fan grid execution out over a process pool.
_JOBS_CAPABLE = {"run", "record", "replay", "perf", "all", *_STORE_CAPABLE}

#: Experiments whose grid execution can pick a backend (serial/pool/fabric).
_BACKEND_CAPABLE = {"run", "record", "all", *_STORE_CAPABLE}


def _run_one(name: str, scale, store=None, jobs=None, backend=None, reuse=False) -> str:
    if name in _STATIC:
        return _STATIC[name]()
    runner, formatter = _SCALED[name]
    kwargs = {}
    if store is not None and name in _STORE_CAPABLE:
        kwargs["store"] = store
    if jobs is not None and name in _STORE_CAPABLE:
        kwargs["jobs"] = jobs
    if backend is not None and name in _STORE_CAPABLE:
        kwargs["backend"] = backend
    if reuse and name in _STORE_CAPABLE:
        kwargs["reuse"] = True
    return formatter(runner(scale=scale, **kwargs))


def _load_spec_arg(spec_arg: str):
    """Resolve ``--spec``: a JSON file path or a registered scenario name."""
    if os.path.exists(spec_arg):
        with open(spec_arg) as fh:
            return api.load_spec(json.load(fh))
    if spec_arg.endswith(".json"):
        raise SystemExit(f"spec file not found: {spec_arg}")
    try:
        return api.get_scenario(spec_arg)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None


def _apply_overrides(spec, sets: list[str]):
    overrides = dict(api.parse_set_override(s) for s in sets)
    if not overrides:
        return spec
    if isinstance(spec, api.SweepSpec):
        return dataclasses.replace(spec, base=spec.base.with_overrides(overrides))
    return spec.with_overrides(overrides)


def _run_spec(args) -> int:
    spec = _apply_overrides(_load_spec_arg(args.spec), args.set or [])
    store = api.as_store(args.store) if args.store else None
    if isinstance(spec, api.SweepSpec):
        print(f"sweep {spec.name or '(unnamed)'}: {spec.num_points} scenarios")
        artifacts = api.run_sweep(
            spec, store=store, jobs=args.jobs, backend=args.backend,
            reuse=args.reuse,
        )
        for artifact in artifacts:
            coords = ", ".join(f"{k}={v}" for k, v in artifact.overrides.items())
            print(f"[{coords}]{'  (reused)' if artifact.reused else ''}")
            print(artifact.result.summary())
        if args.reuse:
            print(api.ReuseReport.from_artifacts(artifacts).summary())
        if args.bench_json:
            record = {
                "schema_version": api.SCHEMA_VERSION,
                "kind": "sweep",
                "spec": spec.to_dict(),
                "runs": [a.to_record(detail=False) for a in artifacts],
            }
            _write_json(args.bench_json, record)
        return 0
    if args.reuse or args.backend:
        artifacts = api.run_many(
            [spec], store=store, backend=args.backend, reuse=args.reuse
        )
        artifact = artifacts[0]
    else:
        artifact = api.run(spec, store=store)
    print(artifact.spec.describe())
    print(artifact.result.summary())
    if hasattr(artifact.result, "slo_attainment"):
        for stats in artifact.result.slo_attainment.values():
            print(f"  SLO {stats.summary()}")
    if args.reuse:
        print(api.ReuseReport.from_artifacts([artifact]).summary())
    if args.bench_json:
        _write_json(args.bench_json, artifact.to_record(detail=False))
    return 0


def _open_store(args) -> api.ArtifactStore:
    return api.ArtifactStore(
        args.store or api.DEFAULT_STORE_PATH,
        compress=getattr(args, "gzip", False),
        lean=getattr(args, "lean", False),
    )


def _run_record(args) -> int:
    """``record <spec|name>``: execute and file content-addressed records."""
    target = args.targets[0] if args.targets else args.spec
    if target is None:
        raise SystemExit("`record` needs a spec file or registry name "
                         "(positional, or --spec)")
    if len(args.targets) > 1:
        raise SystemExit("`record` takes one spec file or registry name")
    spec = _apply_overrides(_load_spec_arg(target), args.set or [])
    store = _open_store(args)
    if isinstance(spec, api.SweepSpec):
        artifacts = api.run_sweep(
            spec, store=store, jobs=args.jobs, backend=args.backend,
            reuse=args.reuse,
        )
    elif args.reuse or args.backend:
        artifacts = api.run_many(
            [spec], store=store, backend=args.backend, reuse=args.reuse
        )
    else:
        artifacts = [api.run(spec, store=store)]
    for artifact in artifacts:
        # A memo hit was never put() this session, so refs come from the
        # artifact's own spec hash rather than store.session_refs.
        ref = api.content_hash(artifact.spec)
        coords = ", ".join(f"{k}={v}" for k, v in artifact.overrides.items())
        suffix = f"  [{coords}]" if coords else ""
        if artifact.reused:
            suffix += "  (reused)"
        print(f"{api.store.short_ref(ref)}  {artifact.spec.describe()}{suffix}")
        print(f"  {artifact.result.summary()}")
    print(f"{len(store.session_refs)} record(s) -> {store.root}")
    if args.reuse:
        print(api.ReuseReport.from_artifacts(artifacts).summary())
    if args.bench_json:
        _write_json(args.bench_json, _store_bench_record(store, target))
    return 0


def _run_replay(args) -> int:
    """``replay [REF ...]``: re-execute stored specs, diff against records."""
    store = _open_store(args)
    try:
        reports = api.replay_all(
            store,
            refs=args.targets or None,
            strict=args.strict,
            jobs=args.jobs,
        )
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    if not reports:
        raise SystemExit(f"store {store.root} holds no records to replay")
    for report in reports:
        print(report.summary())
    drifted = [r for r in reports if not r.ok]
    if args.update and drifted:
        # Accept the drift: re-execute each drifted spec on the current code
        # and overwrite its record in place (same ref — the spec is the
        # address — fresh metrics and seq, original sweep coordinates).
        for report in drifted:
            artifact = api.run(report.spec)
            artifact.overrides = dict(report.recorded.get("overrides", {}))
            store.put(artifact)
        print(f"replayed {len(reports)} record(s): {len(drifted)} drifted, "
              f"re-recorded in place")
        return 0
    print(f"replayed {len(reports)} record(s): "
          f"{'all reproduce' if not drifted else f'{len(drifted)} drifted'}")
    return 1 if drifted else 0


def _run_store_maint(args) -> int:
    """``store gc|fsck``: maintain an artifact store used as a shared cache."""
    if len(args.targets) != 1 or args.targets[0] not in ("gc", "fsck"):
        raise SystemExit("`store` takes exactly one action: gc or fsck")
    store = _open_store(args)
    if args.targets[0] == "gc":
        report = store.gc(dry_run=args.dry_run)
        verb_past = ("would remove", "would drop") if args.dry_run else (
            "removed", "dropped"
        )
        prefix = "gc --dry-run" if args.dry_run else "gc"
        print(f"{prefix} {store.root}: {verb_past[0]} "
              f"{len(report['removed_files'])} orphaned file(s), "
              f"{verb_past[1]} {len(report['dropped_entries'])} "
              f"dead entr{'y' if len(report['dropped_entries']) == 1 else 'ies'}, "
              f"{report['entries']} record(s) kept")
        for name in report["removed_files"]:
            print(f"  {verb_past[0]} {name}")
        for ref in report["dropped_entries"]:
            print(f"  {verb_past[1]} {api.store.short_ref(ref)} "
                  "(record file missing)")
        return 0
    report = store.fsck()
    print(f"fsck {store.root}: index rebuilt from records "
          f"({report['entries']} entr{'y' if report['entries'] == 1 else 'ies'})")
    for name in report["stale_siblings"]:
        print(f"  stale sibling kept out of the index: {name}")
    for name in report["mismatched"]:
        print(f"  MISMATCH {name}: file name is not the content hash "
              "of the embedded spec")
    return 1 if report["mismatched"] else 0


def _run_diff(args) -> int:
    """``diff REF_A REF_B``: structurally compare two stored records."""
    if len(args.targets) != 2:
        raise SystemExit("`diff` needs exactly two refs (hash, prefix, or name)")
    store = _open_store(args)
    try:
        report = api.diff_refs(
            args.targets[0],
            args.targets[1],
            store,
            store_b=args.store_b,
            strict=args.strict,
        )
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    print(report.summary())
    return 1 if args.strict and not report.ok else 0


def _run_perf(args) -> int:
    """``perf``: run the benchmark harness, emit BENCH_perf.json, gate."""
    from .perf import (
        compare_perf,
        format_report,
        load_baseline,
        parse_waivers,
        run_perf_suite,
    )

    from .api import resolve_jobs

    try:
        waivers = parse_waivers(args.waive)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    # The grid leg exists to measure parallel speedup, so unlike the grid
    # commands (serial default), perf defaults to one worker per core.
    jobs = resolve_jobs(args.jobs if args.jobs is not None else -1)
    report = run_perf_suite(quick=args.quick, jobs=jobs, repeat=args.repeat or 1)
    print(format_report(report))
    _write_json(args.bench_json or "BENCH_perf.json", report)

    failed = False
    grid = report["grid"]
    if not grid["records_identical"]:
        print("FAIL: parallel grid records diverged from serial execution")
        failed = True
    if args.min_speedup is not None and grid["speedup"] < args.min_speedup:
        print(
            f"FAIL: parallel grid speedup {grid['speedup']:.2f}x is below "
            f"the required {args.min_speedup:.2f}x "
            f"({jobs} jobs on {report['cpu_count']} cpus)"
        )
        failed = True

    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        if baseline is None:
            print(
                f"perf trajectory: no baseline at {args.baseline} "
                "(first run on this cache?); skipping comparison"
            )
        else:
            try:
                trajectory = compare_perf(baseline, report, waivers=waivers)
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
            print(trajectory.describe())
            if not trajectory.ok:
                failed = True
        if args.update_baseline and not failed:
            import os

            parent = os.path.dirname(args.baseline)
            if parent:
                os.makedirs(parent, exist_ok=True)
            _write_json(args.baseline, report)
    elif args.waive:
        raise SystemExit("--waive requires --baseline")
    return 1 if failed else 0


def _run_workload(args) -> int:
    """``workload preview <regime>``: per-segment expected vs realized rates."""
    from .workload.regimes import RegimeSpec, compile_regime, get_regime, regime_names

    if len(args.targets) != 2 or args.targets[0] != "preview":
        raise SystemExit(
            "usage: tdpipe-bench workload preview <preset|regime.json|spec.json> "
            f"[--seed N]  (presets: {', '.join(regime_names())})"
        )
    target = args.targets[1]
    default_mix = None
    if os.path.exists(target):
        with open(target) as fh:
            data = json.load(fh)
        if isinstance(data, dict) and "segments" in data:
            regime = RegimeSpec.from_dict(data)
        else:
            # A full scenario (or sweep) spec whose workload runs a regime.
            spec = api.load_spec(data)
            if isinstance(spec, api.SweepSpec):
                spec = spec.base
            if spec.workload.arrival != "regime":
                raise SystemExit(
                    f"spec {target} uses arrival="
                    f"{spec.workload.arrival!r}, not a regime workload"
                )
            regime = spec.workload.regime_spec()
            default_mix = spec.workload.slo_mix
    elif target in regime_names():
        regime = get_regime(target)
    else:
        raise SystemExit(
            f"unknown regime {target!r}: not a file and not a preset "
            f"({', '.join(regime_names())})"
        )
    seed = 0 if args.seed is None else args.seed
    compiled = compile_regime(regime, seed=seed, default_slo_mix=default_mix)
    print(
        f"regime {regime.name or target}: {len(regime.segments)} segments, "
        f"{regime.total_duration_s:g}s total, seed {seed}"
    )
    print(
        f"{'segment':<14} {'kind':<8} {'window':>17} {'expected':>9} "
        f"{'rate':>7} {'realized':>9} {'rate':>7} {'sessions':>8}"
    )
    for seg in compiled.segments:
        print(
            f"{seg.name:<14} {seg.kind:<8} "
            f"[{seg.start_s:7.1f},{seg.end_s:7.1f}) "
            f"{seg.expected_base_arrivals:>9.1f} {seg.expected_rate_rps:>6.2f}/s "
            f"{seg.base_arrivals:>9d} {seg.realized_rate_rps:>6.2f}/s "
            f"{seg.sessions:>8d}"
        )
    followups = compiled.num_requests - sum(s.base_arrivals for s in compiled.segments)
    print(
        f"total: {compiled.num_requests} requests "
        f"({followups} session follow-up turns, "
        f"{compiled.num_sessions} multi-turn sessions); "
        f"expected {regime.expected_arrivals:.1f}"
    )
    return 0


def _run_fabric_cmd(args) -> int:
    """``fabric submit|worker|status|drain|requeue``: the multi-host fabric.

    One shared ``--spool`` directory is the whole deployment story: `submit`
    spools a spec batch (and with ``--wait`` shepherds it to completion),
    `worker` runs the claim-execute-ack daemon loop on any host that sees
    the spool, `status` snapshots per-state task counts, `drain` tells
    every worker to exit after its current task, and `requeue <task-id>`
    restores a quarantined task for another attempt (after fixing whatever
    poisoned it).
    """
    from .fabric import FabricCoordinator, FabricSpool, FabricWorker

    verbs = ("submit", "worker", "status", "drain", "requeue")
    usage = (
        "usage: tdpipe-bench fabric submit|worker|status|drain --spool DIR"
        " | fabric requeue TASK_ID --spool DIR"
    )
    if not args.targets or args.targets[0] not in verbs:
        raise SystemExit(usage)
    verb = args.targets[0]
    if len(args.targets) != (2 if verb == "requeue" else 1):
        raise SystemExit(usage)
    if args.spool is None:
        raise SystemExit("`fabric` needs --spool DIR (the shared spool directory)")
    spool = FabricSpool(args.spool)
    if verb == "requeue":
        task_id = args.targets[1]
        try:
            spool.restore_quarantined(task_id)
        except KeyError:
            quarantined = spool.quarantined_ids()
            listing = ", ".join(quarantined) if quarantined else "none"
            raise SystemExit(
                f"task {task_id!r} is not quarantined in {spool.root} "
                f"(quarantined: {listing})"
            ) from None
        print(f"task {task_id} requeued: claimable again in {spool.root}")
        return 0
    if verb == "status":
        snap = spool.status(lease_timeout_s=args.lease_timeout or 30.0)
        print(f"spool {spool.root}: {snap['tasks']} task(s)"
              f"{'  [drain requested]' if snap['drain'] else ''}")
        for state in ("pending", "running", "stale", "done", "oom", "error",
                      "quarantined"):
            if snap[state]:
                print(f"  {state:<12} {snap[state]}")
        for worker, held in sorted(snap["workers"].items()):
            print(f"  worker {worker}: {held} lease(s)")
        return 1 if snap["quarantined"] or snap["error"] else 0
    if verb == "drain":
        spool.request_drain()
        print(f"drain requested: workers on {spool.root} exit after "
              "their current task")
        return 0
    # submit and worker share the store default: a store inside the spool,
    # so every host that can see the spool sees the records too.
    store = api.as_store(args.store or os.path.join(str(spool.root), "store"))
    if verb == "worker":
        worker = FabricWorker(spool, store, worker_id=args.worker_id)
        print(f"fabric worker {worker.worker_id}: spool {spool.root}, "
              f"store {store.root}")
        stats = worker.run(max_tasks=args.max_tasks, idle_exit_s=args.idle_exit)
        print(f"worker {worker.worker_id} exiting: {stats['claimed']} claimed, "
              f"{stats['executed']} executed, {stats['reused']} reused, "
              f"{stats['failed']} failed")
        return 0
    if args.spec is None:
        raise SystemExit("`fabric submit` needs --spec PATH_OR_NAME")
    spec = _apply_overrides(_load_spec_arg(args.spec), args.set or [])
    if isinstance(spec, api.SweepSpec):
        points = spec.expand()
        specs = [point.spec for point in points]
        overrides = [point.overrides for point in points]
    else:
        specs, overrides = [spec], None
    coordinator = FabricCoordinator(
        spool,
        store,
        lease_timeout_s=args.lease_timeout or 30.0,
        max_attempts=args.max_attempts or 3,
    )
    task_ids = coordinator.submit(specs, reuse=args.reuse, overrides=overrides)
    print(f"submitted {len(task_ids)} task(s) to {spool.root} "
          f"(batch {task_ids[0].rsplit('-', 1)[0]}, store {store.root})")
    if not args.wait:
        print("start workers with: tdpipe-bench fabric worker "
              f"--spool {spool.root}")
        return 0
    coordinator.wait(task_ids)
    artifacts = coordinator.collect(task_ids, oom_to_none=True)
    for artifact in artifacts:
        if artifact is None:
            print("(oom)")
            continue
        coords = ", ".join(f"{k}={v}" for k, v in artifact.overrides.items())
        if coords:
            print(f"[{coords}]{'  (reused)' if artifact.reused else ''}")
        print(artifact.result.summary())
    if args.reuse:
        print(api.ReuseReport.from_artifacts(
            [a for a in artifacts if a is not None]
        ).summary())
    if coordinator.requeues:
        print(f"{len(coordinator.requeues)} requeue(s) during the batch")
    return 0


def _store_bench_record(store: api.ArtifactStore, experiment: str) -> dict:
    """Bench-JSON successor record: the session's store records, sans detail."""
    return {
        "schema_version": api.SCHEMA_VERSION,
        "kind": "store",
        "experiment": experiment,
        "store": str(store.root),
        "records": [
            {k: v for k, v in store.get_record(ref).items() if k != "detail"}
            for ref in store.session_refs
        ],
    }


def _write_json(path: str, record: dict) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"benchmark record written to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tdpipe-bench",
        description="Regenerate TD-Pipe paper tables and figures on the simulator.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS, help="which artifact to regenerate")
    parser.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="record: spec file or registry name; replay: ref(s), default all; "
        "diff: two refs (hash, unambiguous prefix, or scenario name); "
        "store: one maintenance action (gc or fsck); "
        "workload: `preview` plus a regime preset or JSON file; "
        "fabric: a verb (submit|worker|status|drain, or `requeue` plus a "
        "task id)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale relative to the paper's 5,000 requests (default "
        "0.1; spec-driven commands take --set workload.scale=... instead)",
    )
    parser.add_argument(
        "--full", action="store_true", help="run at the paper's full scale (scale=1.0)"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="workload/predictor seed (default 0)"
    )
    cluster_opts = parser.add_argument_group(
        "cluster", "single-configuration mode for the `cluster` experiment"
    )
    cluster_opts.add_argument(
        "--replicas", type=int, default=None, help="replica count (skips the sweep)"
    )
    cluster_opts.add_argument(
        "--router", default=None, choices=ROUTER_NAMES,
        help="routing policy (skips the sweep)",
    )
    cluster_opts.add_argument(
        "--rate", type=float, default=None,
        help="cluster-wide arrival rate in req/s (default 8.0)",
    )
    cluster_opts.add_argument(
        "--system", default=None, choices=SYSTEMS,
        help="replica system (default TD-Pipe)",
    )
    cluster_opts.add_argument(
        "--fleet", default=None, metavar="SPEC",
        help="heterogeneous fleet spec, e.g. l20:2,a100:2 (overrides --replicas)",
    )
    cluster_opts.add_argument(
        "--slo-mix", default=None, metavar="MIX",
        help="SLO class mix, e.g. interactive:0.7,batch:0.3",
    )
    cluster_opts.add_argument(
        "--autoscale", action="store_true",
        help="attach the default autoscaler (start small, grow on pressure)",
    )
    cluster_opts.add_argument(
        "--bench-json", default=None, metavar="PATH",
        help="write a machine-readable benchmark record to PATH "
        "(embeds the resolved scenario spec)",
    )
    spec_opts = parser.add_argument_group(
        "spec", "declarative scenarios for the `run` experiment"
    )
    spec_opts.add_argument(
        "--spec", default=None, metavar="PATH_OR_NAME",
        help="scenario/sweep JSON file, or a registered scenario name",
    )
    spec_opts.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help="dotted-path spec override, e.g. workload.scale=0.02 "
        "(repeatable; applies to a sweep's base spec)",
    )
    parallel_opts = parser.add_argument_group(
        "parallel", "process-pool execution of spec grids"
    )
    parallel_opts.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="execute sweep/replay grid points on N worker processes "
        "(default: serial, except `perf` which defaults to all cores; "
        "results and records are identical either way; -1 = all cores)",
    )
    parallel_opts.add_argument(
        "--backend", default=None, choices=list(api.BACKENDS),
        help="grid execution backend: serial (in-process), pool (process "
        "pool), or fabric (the spooled work queue with --jobs local "
        "workers); records are identical across backends",
    )
    fabric_opts = parser.add_argument_group(
        "fabric", "multi-host work queue for the `fabric` experiment"
    )
    fabric_opts.add_argument(
        "--spool", default=None, metavar="DIR",
        help="fabric: the shared spool directory (tasks/leases/results); "
        "every coordinator and worker of one deployment points here",
    )
    fabric_opts.add_argument(
        "--wait", action="store_true",
        help="fabric submit: block until the batch completes (requeuing "
        "stale leases, retrying errors) and print the results",
    )
    fabric_opts.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="fabric worker: exit after processing N tasks",
    )
    fabric_opts.add_argument(
        "--idle-exit", type=float, default=None, metavar="S",
        help="fabric worker: exit after S seconds with nothing claimable "
        "(default: poll until a drain is requested)",
    )
    fabric_opts.add_argument(
        "--lease-timeout", type=float, default=None, metavar="S",
        help="fabric submit/status: seconds without a heartbeat before a "
        "lease counts as dead and the task is requeued (default 30)",
    )
    fabric_opts.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="fabric submit --wait: quarantine a task after N failed "
        "attempts (default 3)",
    )
    fabric_opts.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="fabric worker: explicit worker id (default: host-pid)",
    )
    perf_opts = parser.add_argument_group(
        "perf", "benchmark harness for the `perf` experiment"
    )
    perf_opts.add_argument(
        "--quick", action="store_true",
        help="perf: CI-smoke benchmark sizes (default: full sizes)",
    )
    perf_opts.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="perf: exit non-zero if the parallel grid speedup is below X",
    )
    perf_opts.add_argument(
        "--repeat", type=int, default=None, metavar="N",
        help="perf: run each microbenchmark N times and report the median "
        "(all samples are recorded in the bench JSON)",
    )
    perf_opts.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="perf: compare this run against the BENCH_perf.json at PATH and "
        "exit non-zero on unexplained regression beyond tolerance",
    )
    perf_opts.add_argument(
        "--update-baseline", action="store_true",
        help="perf: after a passing run, overwrite --baseline with this "
        "run's record (promotes improvements into the trajectory)",
    )
    perf_opts.add_argument(
        "--waive", action="append", default=None, metavar="METRIC[:REASON]",
        help="perf: declare an expected regression for one trajectory metric "
        "(e.g. kernel.events_per_sec:'tracing added'); repeatable",
    )
    store_opts = parser.add_argument_group(
        "store", "artifact store for `record`/`replay`/`diff` (and any "
        "registry-backed experiment via --store)"
    )
    store_opts.add_argument(
        "--gzip", action="store_true",
        help="record: write gzip-compressed records (records/<sha>.json.gz; "
        "reads handle both forms transparently)",
    )
    store_opts.add_argument(
        "--lean", action="store_true",
        help="record: drop the full-fidelity detail payload (records still "
        "replay and diff, but cannot be reconstructed into artifacts)",
    )
    store_opts.add_argument(
        "--store", default=None, metavar="DIR",
        help="artifact store directory "
        f"(default for record/replay/diff: ./{api.DEFAULT_STORE_PATH})",
    )
    store_opts.add_argument(
        "--store-b", default=None, metavar="DIR",
        help="second store for `diff` (compare a ref across two stores)",
    )
    store_opts.add_argument(
        "--strict", action="store_true",
        help="replay/diff: zero tolerance — any metric drift fails",
    )
    store_opts.add_argument(
        "--reuse", action="store_true",
        help="serve grid points already recorded in --store (same spec hash, "
        "same code provenance) from the store instead of re-running them; "
        "only the misses execute (incremental campaigns)",
    )
    store_opts.add_argument(
        "--update", action="store_true",
        help="replay: re-execute drifted records and overwrite them in place "
        "(accept the current code's metrics as the new baseline)",
    )
    store_opts.add_argument(
        "--dry-run", action="store_true",
        help="store gc: print what would be pruned without deleting anything",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None:
        # Reject a bad worker count at parse time, before any sweep starts
        # (resolve_jobs raises the same ValueError inside the API).
        try:
            api.resolve_jobs(args.jobs)
        except ValueError as exc:
            parser.error(str(exc))

    cluster_flags = (
        args.replicas, args.router, args.rate, args.system, args.fleet,
        args.slo_mix, args.autoscale or None,
    )
    if args.experiment != "cluster" and any(v is not None for v in cluster_flags):
        parser.error(
            "--replicas/--router/--rate/--system/--fleet/--slo-mix/"
            "--autoscale only apply to `cluster`"
        )
    if args.experiment not in _BENCH_CAPABLE and args.bench_json is not None:
        parser.error(
            "--bench-json only applies to `cluster`, `run`, `record`, `perf` "
            f"and registry-backed experiments ({', '.join(sorted(_STORE_CAPABLE))})"
        )
    if args.jobs is not None and args.experiment not in _JOBS_CAPABLE:
        parser.error(
            f"--jobs only applies to {', '.join(sorted(_JOBS_CAPABLE))}"
        )
    if args.backend is not None and args.experiment not in _BACKEND_CAPABLE:
        parser.error(
            f"--backend only applies to {', '.join(sorted(_BACKEND_CAPABLE))}"
        )
    fabric_flags = (
        args.spool, args.wait or None, args.max_tasks, args.idle_exit,
        args.lease_timeout, args.max_attempts, args.worker_id,
    )
    if args.experiment != "fabric" and any(v is not None for v in fabric_flags):
        parser.error(
            "--spool/--wait/--max-tasks/--idle-exit/--lease-timeout/"
            "--max-attempts/--worker-id only apply to `fabric`"
        )
    perf_flags = (args.quick or None, args.min_speedup, args.repeat)
    if args.experiment != "perf" and any(v is not None for v in perf_flags):
        parser.error("--quick/--min-speedup/--repeat only apply to `perf`")
    trajectory_flags = (args.baseline, args.update_baseline or None, args.waive)
    if args.experiment not in ("perf", "cluster") and any(
        v is not None for v in trajectory_flags
    ):
        parser.error(
            "--baseline/--update-baseline/--waive only apply to `perf` "
            "and `cluster`"
        )
    if args.update_baseline and args.baseline is None:
        parser.error("--update-baseline requires --baseline")
    if (args.gzip or args.lean) and args.experiment != "record":
        parser.error("--gzip/--lean only apply to `record`")
    if args.experiment not in ("run", "record", "fabric") and (
        args.spec is not None or args.set
    ):
        parser.error("--spec/--set only apply to `run`, `record` and `fabric`")
    if args.targets and args.experiment not in (
        "record", "replay", "diff", "store", "workload", "fabric"
    ):
        parser.error(
            "positional targets only apply to "
            "`record`/`replay`/`diff`/`store`/`workload`/`fabric`"
        )
    reuse_users = {"run", "record", "fabric", *_STORE_CAPABLE}
    if args.reuse and args.experiment not in reuse_users:
        parser.error(f"--reuse only applies to {', '.join(sorted(reuse_users))}")
    if (
        args.reuse
        and args.experiment not in ("record", "fabric")
        and args.store is None
    ):
        # record defaults to a durable store and fabric to a store inside
        # the spool; the others would otherwise memoize against nothing
        # (or a throwaway) and always miss.
        parser.error("--reuse needs --store DIR (the store is the memo cache)")
    if args.update and args.experiment != "replay":
        parser.error("--update only applies to `replay`")
    if args.dry_run and args.experiment != "store":
        parser.error("--dry-run only applies to `store` (gc)")
    store_users = {
        "run", "record", "replay", "diff", "store", "fabric", *_STORE_CAPABLE
    }
    if args.store is not None and args.experiment not in store_users:
        parser.error(f"--store only applies to {', '.join(sorted(store_users))}")
    if args.store_b is not None and args.experiment != "diff":
        parser.error("--store-b only applies to `diff`")
    if args.strict and args.experiment not in ("replay", "diff"):
        parser.error("--strict only applies to `replay` and `diff`")
    if args.experiment == "workload" and (args.scale is not None or args.full):
        # The preview's traffic volume is the regime's own; --seed is the
        # only knob (it picks which realization of the schedule you see).
        parser.error(
            "`workload preview` takes --seed only; durations and rates "
            "live in the regime spec"
        )
    if args.experiment in (
        "run", "record", "replay", "diff", "perf", "store", "fabric"
    ) and (
        args.scale is not None or args.seed is not None or args.full
    ):
        # Silently running a spec at a different scale than requested would
        # file wrong-scale records into a durable store.
        parser.error(
            "--scale/--seed/--full don't apply to `run`/`record`/`replay`/"
            "`diff`; override the spec instead, e.g. --set workload.scale=0.02"
        )
    if args.experiment == "perf":
        return _run_perf(args)
    if args.experiment == "record":
        return _run_record(args)
    if args.experiment == "replay":
        return _run_replay(args)
    if args.experiment == "diff":
        return _run_diff(args)
    if args.experiment == "store":
        return _run_store_maint(args)
    if args.experiment == "workload":
        return _run_workload(args)
    if args.experiment == "fabric":
        return _run_fabric_cmd(args)
    if args.experiment == "run":
        if args.spec is None:
            parser.error("`run` needs --spec PATH_OR_NAME")
        return _run_spec(args)

    scale = default_scale(
        factor=1.0 if args.full else (0.1 if args.scale is None else args.scale),
        seed=0 if args.seed is None else args.seed,
    )
    single_cluster = args.experiment == "cluster" and any(
        v is not None for v in (*cluster_flags, args.bench_json, args.baseline)
    )
    if single_cluster:
        rate = 8.0 if args.rate is None else args.rate
        # Compile the flags into a declarative scenario: the spec is the
        # execution path, and --bench-json embeds it for provenance.
        if args.fleet:
            fleet_spec = api.FleetSpec(fleet=args.fleet)
        else:
            fleet_spec = api.FleetSpec(
                node="L20", replicas=4 if args.replicas is None else args.replicas
            )
        spec = api.ScenarioSpec(
            name="cli-cluster",
            mode="cluster",
            workload=api.WorkloadSpec(
                scale=scale.factor,
                seed=scale.seed,
                arrival="poisson",
                rate_rps=rate,
                slo_mix=args.slo_mix,
            ),
            fleet=fleet_spec,
            engine=api.EngineSpec(
                system=args.system or "TD-Pipe",
                model="13B" if args.fleet else "32B",
            ),
            control=api.ControlSpec(
                router=args.router or "phase-aware",
                autoscale=bool(args.autoscale),
            ),
        )
        t0 = time.time()
        artifact = api.run(spec)
        wall = time.time() - t0
        result = artifact.result
        print(f"arrival rate: {rate:.1f} req/s (Poisson, cluster-wide)")
        if args.fleet:
            nodes = result.extras.get("fleet_nodes", [])
            caps = ", ".join(
                f"{n}={c:.0f}" for n, c in zip(nodes, result.capacity_scores)
            )
            print(f"fleet: {'+'.join(nodes)} (capacity scores {caps} tok/s)")
        print(result.summary())
        for stats in result.slo_attainment.values():
            print(f"  SLO {stats.summary()}")
        if args.autoscale:
            steps = ", ".join(f"{t:.1f}s->{n}" for t, n in result.fleet_timeline[:12])
            more = (
                "" if len(result.fleet_timeline) <= 12
                else f", ... ({len(result.fleet_timeline)} changes)"
            )
            print(f"  fleet timeline: {steps}{more}")
            print(f"  replica-seconds: {result.replica_seconds:.1f}")
        record = {
            "experiment": "cluster",
            "rate_rps": rate,
            "scale": scale.factor,
            "seed": scale.seed,
            **artifact.to_record(detail=False),
            "wall_time_s": wall,
        }
        if args.bench_json:
            _write_json(args.bench_json, record)
        if args.baseline is not None:
            # The cross-PR cluster-trajectory gate: same machinery as `perf
            # --baseline`, but over simulated metrics with tight tolerances
            # (the simulator is deterministic — only deliberate model
            # changes move these numbers).
            from .perf import (
                DEFAULT_CLUSTER_TOLERANCES,
                compare_perf,
                load_baseline,
                parse_waivers,
            )

            try:
                waivers = parse_waivers(args.waive)
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
            baseline = load_baseline(args.baseline, kind="cluster")
            failed = False
            if baseline is None:
                print(
                    f"cluster trajectory: no baseline at {args.baseline} "
                    "(first run on this cache?); skipping comparison"
                )
            else:
                try:
                    trajectory = compare_perf(
                        baseline,
                        record,
                        tolerances=DEFAULT_CLUSTER_TOLERANCES,
                        waivers=waivers,
                    )
                except ValueError as exc:
                    raise SystemExit(str(exc)) from None
                print(trajectory.describe())
                failed = not trajectory.ok
            if args.update_baseline and not failed:
                parent = os.path.dirname(args.baseline)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                _write_json(args.baseline, record)
            if failed:
                return 1
        elif args.waive:
            raise SystemExit("--waive requires --baseline")
        return 0
    store = throwaway = None
    if args.experiment in _STORE_CAPABLE and (args.store or args.bench_json):
        # A registry-backed experiment files every grid point as a replayable
        # record; --bench-json without --store uses a throwaway store just to
        # assemble the session's records (removed once the JSON is written).
        if args.store is None:
            throwaway = tempfile.mkdtemp(prefix="tdpipe-store-")
        store = api.as_store(args.store or throwaway)
    names = sorted([*_SCALED, *_STATIC]) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        output = _run_one(
            name, scale, store=store, jobs=args.jobs, backend=args.backend,
            reuse=args.reuse,
        )
        dt = time.time() - t0
        print(f"=== {name} (elapsed {dt:.1f}s) ===")
        print(output)
        print()
    if store is not None:
        if args.bench_json:
            _write_json(
                args.bench_json, _store_bench_record(store, args.experiment)
            )
        if throwaway is not None:
            shutil.rmtree(throwaway, ignore_errors=True)
        else:
            print(f"{len(store.session_refs)} record(s) -> {store.root}")
            if args.reuse:
                hits = len(store.session_reused_refs)
                executed = len(store.session_refs)
                print(api.ReuseReport(
                    hits=hits, executed=executed, total=hits + executed
                ).summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
