"""Command-line entry point: regenerate any paper table or figure.

Examples
--------
::

    tdpipe-bench table1
    tdpipe-bench fig11 --scale 0.2
    tdpipe-bench fig11 --full          # the paper's 5,000-request scale
    tdpipe-bench all --scale 0.1
    tdpipe-bench cluster --scale 0.05             # full routing sweep
    tdpipe-bench cluster --replicas 4 --router phase-aware --rate 8
    tdpipe-bench cluster --fleet l20:2,a100:2 --router jsq --rate 14 \\
        --slo-mix interactive:0.7,batch:0.3 --autoscale
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .cluster.routing import ROUTER_NAMES
from .experiments import (
    SYSTEMS,
    cluster_scaling,
    fig01_schedules,
    default_scale,
    fig02_utilization,
    fig06_tp_breakdown,
    fig11_overall,
    fig12_kv_usage,
    fig13_prefill_switch,
    fig14_predictor,
    fig15_work_stealing,
    fig16_decode_switch,
    tables,
)

__all__ = ["main"]

_SCALED = {
    "cluster": (cluster_scaling.run, cluster_scaling.format_results),
    "cluster-hetero": (
        cluster_scaling.run_heterogeneous,
        cluster_scaling.format_heterogeneous,
    ),
    "cluster-autoscale": (
        cluster_scaling.run_autoscaling,
        cluster_scaling.format_autoscaling,
    ),
    "fig01": (fig01_schedules.run, fig01_schedules.format_results),
    "fig02": (fig02_utilization.run, fig02_utilization.format_results),
    "fig11": (fig11_overall.run, fig11_overall.format_results),
    "fig12": (fig12_kv_usage.run, fig12_kv_usage.format_results),
    "fig13": (fig13_prefill_switch.run, fig13_prefill_switch.format_results),
    "fig14": (fig14_predictor.run, fig14_predictor.format_results),
    "fig15": (fig15_work_stealing.run, fig15_work_stealing.format_results),
    "fig16": (fig16_decode_switch.run, fig16_decode_switch.format_results),
}

_STATIC = {
    "table1": tables.format_table1,
    "table2": tables.format_table2,
    "fig06": lambda: fig06_tp_breakdown.format_results(fig06_tp_breakdown.run()),
}

EXPERIMENTS = sorted([*_SCALED, *_STATIC, "all"])


def _run_one(name: str, scale) -> str:
    if name in _STATIC:
        return _STATIC[name]()
    runner, formatter = _SCALED[name]
    return formatter(runner(scale=scale))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tdpipe-bench",
        description="Regenerate TD-Pipe paper tables and figures on the simulator.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS, help="which artifact to regenerate")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale relative to the paper's 5,000 requests (default 0.1)",
    )
    parser.add_argument(
        "--full", action="store_true", help="run at the paper's full scale (scale=1.0)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload/predictor seed")
    cluster_opts = parser.add_argument_group(
        "cluster", "single-configuration mode for the `cluster` experiment"
    )
    cluster_opts.add_argument(
        "--replicas", type=int, default=None, help="replica count (skips the sweep)"
    )
    cluster_opts.add_argument(
        "--router", default=None, choices=ROUTER_NAMES,
        help="routing policy (skips the sweep)",
    )
    cluster_opts.add_argument(
        "--rate", type=float, default=None,
        help="cluster-wide arrival rate in req/s (default 8.0)",
    )
    cluster_opts.add_argument(
        "--system", default=None, choices=SYSTEMS,
        help="replica system (default TD-Pipe)",
    )
    cluster_opts.add_argument(
        "--fleet", default=None, metavar="SPEC",
        help="heterogeneous fleet spec, e.g. l20:2,a100:2 (overrides --replicas)",
    )
    cluster_opts.add_argument(
        "--slo-mix", default=None, metavar="MIX",
        help="SLO class mix, e.g. interactive:0.7,batch:0.3",
    )
    cluster_opts.add_argument(
        "--autoscale", action="store_true",
        help="attach the default autoscaler (start small, grow on pressure)",
    )
    cluster_opts.add_argument(
        "--bench-json", default=None, metavar="PATH",
        help="write a machine-readable benchmark record to PATH",
    )
    args = parser.parse_args(argv)

    cluster_flags = (
        args.replicas, args.router, args.rate, args.system, args.fleet,
        args.slo_mix, args.autoscale or None, args.bench_json,
    )
    if args.experiment != "cluster" and any(v is not None for v in cluster_flags):
        parser.error(
            "--replicas/--router/--rate/--system/--fleet/--slo-mix/"
            "--autoscale/--bench-json only apply to `cluster`"
        )

    scale = default_scale(factor=1.0 if args.full else args.scale, seed=args.seed)
    single_cluster = args.experiment == "cluster" and any(
        v is not None for v in cluster_flags
    )
    if single_cluster:
        rate = 8.0 if args.rate is None else args.rate
        t0 = time.time()
        row = cluster_scaling.run_single(
            scale=scale,
            system=args.system or "TD-Pipe",
            model="13B" if args.fleet else "32B",
            replicas=4 if args.replicas is None else args.replicas,
            router=args.router or "phase-aware",
            rate_rps=rate,
            fleet=args.fleet,
            slo_mix=args.slo_mix,
            autoscaler=True if args.autoscale else None,
        )
        wall = time.time() - t0
        result = row["result"]
        print(f"arrival rate: {rate:.1f} req/s (Poisson, cluster-wide)")
        if args.fleet:
            nodes = result.extras.get("fleet_nodes", [])
            caps = ", ".join(
                f"{n}={c:.0f}" for n, c in zip(nodes, result.capacity_scores)
            )
            print(f"fleet: {'+'.join(nodes)} (capacity scores {caps} tok/s)")
        print(result.summary())
        for stats in result.slo_attainment.values():
            print(f"  SLO {stats.summary()}")
        if args.autoscale:
            steps = ", ".join(f"{t:.1f}s->{n}" for t, n in result.fleet_timeline[:12])
            more = (
                "" if len(result.fleet_timeline) <= 12
                else f", ... ({len(result.fleet_timeline)} changes)"
            )
            print(f"  fleet timeline: {steps}{more}")
            print(f"  replica-seconds: {result.replica_seconds:.1f}")
        if args.bench_json:
            record = {
                "experiment": "cluster",
                "system": row["system"],
                "router": row["router"],
                "fleet": result.extras.get("fleet_nodes", []),
                "rate_rps": rate,
                "scale": scale.factor,
                "seed": scale.seed,
                "goodput_rps": result.goodput,
                "throughput_tps": result.throughput,
                "ttft_p99_s": row["ttft_p99"],
                "tpot_p99_s": row["tpot_p99"],
                "slo_attainment": row["slo_attainment"],
                "mean_active_replicas": row["mean_active_replicas"],
                "replica_seconds": row["replica_seconds"],
                "wall_time_s": wall,
            }
            with open(args.bench_json, "w") as fh:
                json.dump(record, fh, indent=2)
                fh.write("\n")
            print(f"benchmark record written to {args.bench_json}")
        return 0
    names = sorted([*_SCALED, *_STATIC]) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        output = _run_one(name, scale)
        dt = time.time() - t0
        print(f"=== {name} (elapsed {dt:.1f}s) ===")
        print(output)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
