"""TD-Pipe reproduction: temporally-disaggregated pipeline parallelism.

Simulation-based reproduction of *TD-Pipe: Temporally-Disaggregated Pipeline
Parallelism Architecture for High-Throughput LLM Inference* (ICPP 2025).

Quickstart::

    from repro import TDPipeEngine, make_node, get_model, generate_requests
    from repro.predictor import OraclePredictor

    node = make_node("A100", 4)
    engine = TDPipeEngine(node, get_model("70B"), OraclePredictor())
    result = engine.run(generate_requests(500, seed=0))
    print(result.summary())

See ``repro.experiments`` for regenerating every paper table and figure, and
DESIGN.md for the system inventory.
"""

from . import api
from .baselines import PPHybridEngine, PPSeparateEngine, TPHybridEngine, TPSeparateEngine
from .cluster import ClusterEngine
from .core import TDPipeEngine
from .hardware import A100, A100_NODE, L20, L20_NODE, GPUSpec, NodeSpec, make_node
from .kvcache import BlockManager, OutOfMemoryError, kv_token_capacity
from .metrics import ClusterResult, RunResult
from .models import LLAMA2_13B, LLAMA2_70B, QWEN25_32B, ModelSpec, get_model
from .predictor import (
    ConstantPredictor,
    LengthPredictor,
    OraclePredictor,
    train_length_predictor,
)
from .runtime import EngineConfig
from .workload import Request, ShareGPTSynthesizer, build_dataset, generate_requests

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # declarative scenario API
    "api",
    # systems
    "TDPipeEngine",
    "TPSeparateEngine",
    "TPHybridEngine",
    "PPSeparateEngine",
    "PPHybridEngine",
    "ClusterEngine",
    "EngineConfig",
    # hardware
    "GPUSpec",
    "NodeSpec",
    "L20",
    "A100",
    "L20_NODE",
    "A100_NODE",
    "make_node",
    # models
    "ModelSpec",
    "LLAMA2_13B",
    "QWEN25_32B",
    "LLAMA2_70B",
    "get_model",
    # memory
    "BlockManager",
    "kv_token_capacity",
    "OutOfMemoryError",
    # workload + prediction
    "Request",
    "ShareGPTSynthesizer",
    "generate_requests",
    "build_dataset",
    "LengthPredictor",
    "OraclePredictor",
    "ConstantPredictor",
    "train_length_predictor",
    # results
    "RunResult",
    "ClusterResult",
]
