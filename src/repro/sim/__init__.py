"""Discrete-event simulation kernel and execution tracing."""

from .chrome_trace import to_chrome_trace, write_chrome_trace
from .engine import Event, SimulationError, Simulator
from .trace import BusyInterval, Timeline, TraceRecorder

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "Timeline",
    "BusyInterval",
    "TraceRecorder",
    "to_chrome_trace",
    "write_chrome_trace",
]
