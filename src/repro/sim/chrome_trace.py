"""Export execution traces to the Chrome trace-event format.

The resulting JSON loads in ``chrome://tracing`` / Perfetto, giving the same
kind of pipeline visualisation the paper's Figure 1 sketches: one row per
GPU, one slice per batch execution, colour-keyed by phase.  Useful for
debugging scheduler changes and for inspecting bubbles directly.
"""

from __future__ import annotations

import json
from typing import IO

from .trace import TraceRecorder

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: Stable colour names (Chrome trace palette) per task kind.
_COLORS = {
    "prefill": "thread_state_running",
    "decode": "thread_state_runnable",
    "hybrid": "thread_state_iowait",
}


def to_chrome_trace(
    trace: TraceRecorder,
    process_name: str = "node",
    time_unit_us: float = 1e6,
) -> dict:
    """Convert a :class:`TraceRecorder` into a Chrome trace-event dict.

    ``time_unit_us`` scales simulated seconds to trace microseconds (the
    default maps 1 simulated second to 1 trace second).
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    for tl in trace.timelines:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tl.gpu_index,
                "args": {"name": f"GPU {tl.gpu_index}"},
            }
        )
        for iv in tl.intervals:
            event = {
                "name": iv.tag or "task",
                "cat": iv.tag or "task",
                "ph": "X",
                "pid": 0,
                "tid": tl.gpu_index,
                "ts": iv.start * time_unit_us,
                "dur": iv.duration * time_unit_us,
            }
            color = _COLORS.get(iv.tag)
            if color:
                event["cname"] = color
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    trace: TraceRecorder,
    fp: IO[str] | str,
    process_name: str = "node",
) -> None:
    """Write the Chrome trace JSON to a path or open file object."""
    doc = to_chrome_trace(trace, process_name=process_name)
    if isinstance(fp, str):
        with open(fp, "w") as fh:
            json.dump(doc, fh)
    else:
        json.dump(doc, fp)
