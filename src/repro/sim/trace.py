"""Execution traces: per-GPU busy intervals and utilisation series.

The paper's Figure 2 plots GPU utilisation over wall-clock time; bubbles are
exactly the idle gaps in these timelines.  Every simulated task records a
``BusyInterval`` on its GPU's :class:`Timeline`.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

__all__ = ["BusyInterval", "Timeline", "TraceRecorder"]


@dataclass(frozen=True)
class BusyInterval:
    """A half-open interval [start, end) during which a GPU executed a task."""

    start: float
    end: float
    tag: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} < start {self.start}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Busy-interval log of one GPU.  Intervals must be appended in order."""

    def __init__(self, gpu_index: int) -> None:
        self.gpu_index = gpu_index
        self._intervals: list[BusyInterval] = []

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        return (
            self.gpu_index == other.gpu_index
            and self._intervals == other._intervals
        )

    def __repr__(self) -> str:
        return f"Timeline(gpu_index={self.gpu_index}, intervals={len(self._intervals)})"

    def to_record(self) -> list[list]:
        """JSON-ready interval list ``[[start, end, tag], ...]``."""
        return [[iv.start, iv.end, iv.tag] for iv in self._intervals]

    @classmethod
    def from_record(cls, gpu_index: int, record: list) -> "Timeline":
        """Inverse of :meth:`to_record`."""
        timeline = cls(gpu_index)
        timeline._intervals = [
            BusyInterval(float(s), float(e), str(tag)) for s, e, tag in record
        ]
        return timeline

    def record(self, start: float, end: float, tag: str = "") -> None:
        """Append a busy interval; overlapping a previous one is a scheduler bug."""
        if self._intervals and start < self._intervals[-1].end - 1e-12:
            raise ValueError(
                f"GPU {self.gpu_index}: interval [{start}, {end}) overlaps previous "
                f"one ending at {self._intervals[-1].end}"
            )
        self._intervals.append(BusyInterval(start, end, tag))

    @property
    def intervals(self) -> list[BusyInterval]:
        return list(self._intervals)

    @property
    def busy_time(self) -> float:
        return sum(iv.duration for iv in self._intervals)

    @property
    def end_time(self) -> float:
        return self._intervals[-1].end if self._intervals else 0.0

    def busy_between(self, t0: float, t1: float) -> float:
        """Busy time inside the window [t0, t1)."""
        if t1 <= t0:
            return 0.0
        starts = [iv.start for iv in self._intervals]
        i = max(bisect_left(starts, t0) - 1, 0)
        busy = 0.0
        for iv in self._intervals[i:]:
            if iv.start >= t1:
                break
            busy += max(0.0, min(iv.end, t1) - max(iv.start, t0))
        return busy

    def utilization(self, t0: float | None = None, t1: float | None = None) -> float:
        """Fraction of [t0, t1) spent busy (defaults to the whole trace)."""
        lo = 0.0 if t0 is None else t0
        hi = self.end_time if t1 is None else t1
        if hi <= lo:
            return 0.0
        return self.busy_between(lo, hi) / (hi - lo)

    def utilization_series(
        self, window: float, t_end: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(window centres, utilisation per window), for Figure 2-style plots."""
        if window <= 0:
            raise ValueError("window must be positive")
        end = self.end_time if t_end is None else t_end
        n = max(int(np.ceil(end / window)), 1)
        centres = (np.arange(n) + 0.5) * window
        util = np.array(
            [self.busy_between(k * window, (k + 1) * window) / window for k in range(n)]
        )
        return centres, util


class TraceRecorder:
    """Bundle of per-GPU timelines plus scalar run statistics."""

    def __init__(self, num_gpus: int) -> None:
        self.timelines = [Timeline(i) for i in range(num_gpus)]

    def __getitem__(self, gpu_index: int) -> Timeline:
        return self.timelines[gpu_index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecorder):
            return NotImplemented
        return self.timelines == other.timelines

    def __repr__(self) -> str:
        return f"TraceRecorder(num_gpus={self.num_gpus})"

    def to_record(self) -> list[list[list]]:
        """JSON-ready nested interval lists, one entry per GPU."""
        return [t.to_record() for t in self.timelines]

    @classmethod
    def from_record(cls, record: list) -> "TraceRecorder":
        """Inverse of :meth:`to_record`."""
        trace = cls(num_gpus=len(record))
        trace.timelines = [
            Timeline.from_record(i, intervals) for i, intervals in enumerate(record)
        ]
        return trace

    @property
    def num_gpus(self) -> int:
        return len(self.timelines)

    @property
    def makespan(self) -> float:
        return max((t.end_time for t in self.timelines), default=0.0)

    def mean_utilization(self, t0: float = 0.0, t1: float | None = None) -> float:
        """Average utilisation over all GPUs for [t0, t1)."""
        hi = self.makespan if t1 is None else t1
        if hi <= t0:
            return 0.0
        return float(np.mean([t.utilization(t0, hi) for t in self.timelines]))

    def bubble_ratio(self, t0: float = 0.0, t1: float | None = None) -> float:
        """1 - mean utilisation: the paper's pipeline-bubble fraction."""
        return 1.0 - self.mean_utilization(t0, t1)

    def utilization_series(
        self, window: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """(window centres, mean utilisation across GPUs per window)."""
        end = self.makespan
        series = [t.utilization_series(window, end)[1] for t in self.timelines]
        centres = self.timelines[0].utilization_series(window, end)[0]
        return centres, np.mean(series, axis=0)
