"""Deterministic discrete-event simulation kernel.

A minimal, allocation-light event loop: callbacks are scheduled at absolute or
relative simulated times and executed in (time, insertion-order) order, so the
simulation is fully deterministic.  All system simulators (TD-Pipe and the
baselines) and the hierarchy-controller runtime are built on this kernel.

Events are stored in **timestamp buckets**: a min-heap of distinct timestamps
plus a dict mapping each timestamp to the list of callbacks scheduled at it
(insertion order == seq order, so plain list order *is* execution order).
The run loop drains one whole bucket per heap pop — engines routinely complete
many events at the same instant (pipeline stage drains, cluster arrival
bursts, the per-stage decode round), and batching the dispatch means those
same-timestamp storms pay one ``heappop`` and one clock update per *group*
instead of per event.  A bucket entry is either a bare callback (the
allocation-free fast path used by the engines, which never cancel) or an
:class:`Event` wrapper when the caller needs a cancellation handle.

Execution order is exactly the (time, seq) order of the previous tuple-heap
kernel: within a bucket, list order is seq order; callbacks scheduled *at the
draining timestamp* open a fresh bucket that is drained immediately after
(their seqs are larger than everything already at that time), and
``schedule_at`` refuses past times, so no event can ever be inserted ahead of
the cursor.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A cancellable scheduled callback (handle returned by ``schedule``)."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_on_cancel")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        #: Set by the owning :class:`Simulator` so cancellation can update its
        #: live-event accounting without scanning the buckets.
        self._on_cancel: Callable[[], None] | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Prevent the callback from running (the bucket entry is left in
        place until the simulator dispatches past or compacts it)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()


class Simulator:
    """Event-driven clock.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, lambda: order.append("b"))
    >>> _ = sim.schedule(1.0, lambda: order.append("a"))
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._now = 0.0
        #: Min-heap of bucket timestamps.  May hold stale entries (bucket
        #: deleted by compaction) or duplicates (a callback re-opened the
        #: timestamp being drained); the run loop skips timestamps with no
        #: bucket, and a timestamp is pushed at most once per live bucket.
        self._times: list[float] = []
        #: time -> callbacks-or-Events at that time, in insertion (seq) order.
        self._buckets: dict[float, list] = {}
        #: Bound method hoisted for the hot schedule path.
        self._bucket_get = self._buckets.get
        self._seq = itertools.count()
        self._events_processed = 0
        # Live/cancelled bookkeeping so `pending` is O(1).  Invariant: the
        # number of not-yet-dispatched entries across all buckets (plus the
        # cursor tail) == self._live + self._cancelled.
        self._live = 0
        self._cancelled = 0
        #: ``[time, bucket, next_index]`` of a partially drained bucket (the
        #: bucket is already popped from ``_times``/``_buckets``).  Left by
        #: ``step`` between calls and by ``run`` when an exception unwinds.
        self._cursor: list | None = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        ev = Event(time, next(self._seq), callback)
        ev._on_cancel = self._note_cancelled
        bucket = self._bucket_get(time)
        if bucket is None:
            self._buckets[time] = [ev]
            heapq.heappush(self._times, time)
        else:
            bucket.append(ev)
        self._live += 1
        return ev

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> None:
        """Fast path of :meth:`schedule` for callbacks that are never
        cancelled: no :class:`Event` is allocated, only the bare list entry.
        This is what the engine hot loops use (hundreds of thousands of
        events per run, none of them cancellable)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        bucket = self._bucket_get(time)
        if bucket is None:
            self._buckets[time] = [callback]
            heapq.heappush(self._times, time)
        else:
            bucket.append(callback)
        self._live += 1

    def schedule_callback_at(self, time: float, callback: Callable[[], None]) -> None:
        """Absolute-time variant of :meth:`schedule_callback`."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        bucket = self._bucket_get(time)
        if bucket is None:
            self._buckets[time] = [callback]
            heapq.heappush(self._times, time)
        else:
            bucket.append(callback)
        self._live += 1

    def _note_cancelled(self) -> None:
        """An undispatched event was cancelled; compact when tombstones
        dominate."""
        self._live -= 1
        self._cancelled += 1
        stored = self._live + self._cancelled
        if self._cancelled > stored // 2 and stored >= 8:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the buckets (list order is execution
        order, so filtering preserves it).  The bucket being drained — if any —
        is already popped from ``_buckets`` and is therefore never touched;
        its tombstones are skipped (and accounted) at dispatch instead.  The
        timestamp heap is rebuilt from the surviving buckets, which also
        sheds stale and duplicate entries."""
        buckets = self._buckets
        removed = 0
        for t in list(buckets):
            bucket = buckets[t]
            kept = [
                cb
                for cb in bucket
                if not (type(cb) is Event and cb.cancelled)
            ]
            if len(kept) != len(bucket):
                removed += len(bucket) - len(kept)
                if kept:
                    buckets[t] = kept
                else:
                    del buckets[t]
        self._cancelled -= removed
        self._times = list(buckets)
        heapq.heapify(self._times)

    def step(self) -> bool:
        """Run the next pending event.  Returns False when none are queued."""
        buckets = self._buckets
        while True:
            cursor = self._cursor
            if cursor is None:
                times = self._times
                while True:
                    if not times:
                        return False
                    t = heapq.heappop(times)
                    bucket = buckets.pop(t, None)
                    if bucket is not None:
                        break
                cursor = [t, bucket, 0]
                self._cursor = cursor
            t, bucket, i = cursor
            while i < len(bucket):
                cb = bucket[i]
                i += 1
                cursor[2] = i
                if type(cb) is Event:
                    cb._on_cancel = None
                    if cb.cancelled:
                        self._cancelled -= 1
                        continue
                    cb = cb.callback
                if t < self._now:
                    raise SimulationError(
                        f"event at {t} before current time {self._now}"
                    )
                self._now = t
                self._live -= 1
                self._events_processed += 1
                cb()
                return True
            self._cursor = None

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue, optionally stopping at time ``until``.

        ``max_events`` guards against runaway schedulers (a scheduling bug in
        a system simulator would otherwise loop forever).

        All events sharing the head timestamp are dispatched in one inner
        loop: one heap pop, one bucket fetch and one clock update per
        timestamp group, with per-event work reduced to an index, a type
        check and the callback itself.
        """
        pop = heapq.heappop
        buckets = self._buckets
        processed = 0
        while True:
            cursor = self._cursor
            if cursor is not None:
                t, bucket, i = cursor
                if until is not None and t > until:
                    if self._now < until:
                        self._now = until
                    return
                self._cursor = None
            else:
                times = self._times
                while True:
                    if not times:
                        return
                    t = times[0]
                    if until is not None and t > until:
                        if self._now < until:
                            self._now = until
                        return
                    pop(times)
                    bucket = buckets.pop(t, None)
                    if bucket is not None:
                        break
                i = 0
            if t < self._now:
                raise SimulationError(
                    f"event at {t} before current time {self._now}"
                )
            self._now = t
            try:
                # Drain the whole timestamp group.  ``len`` is re-evaluated
                # every iteration because a callback may append same-time
                # events... to a *new* bucket (this one is popped), but a
                # prior `step()` cursor bucket can still be mid-growth; the
                # re-check also keeps the loop correct if that ever changes.
                while i < len(bucket):
                    cb = bucket[i]
                    i += 1
                    if type(cb) is Event:
                        cb._on_cancel = None
                        if cb.cancelled:
                            self._cancelled -= 1
                            continue
                        cb = cb.callback
                    self._live -= 1
                    self._events_processed += 1
                    cb()
                    if max_events is not None:
                        processed += 1
                        if processed >= max_events:
                            raise SimulationError(
                                f"exceeded max_events={max_events}; "
                                f"likely a scheduling livelock"
                            )
            except BaseException:
                # Preserve the undispatched tail so `pending` stays exact
                # and a later run()/step() resumes in order.
                self._cursor = [t, bucket, i]
                raise

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1): engines poll
        this on every task completion, so a scan would be quadratic)."""
        return self._live
