"""Deterministic discrete-event simulation kernel.

A minimal, allocation-light event loop: callbacks are scheduled at absolute or
relative simulated times and executed in (time, insertion-order) order, so the
simulation is fully deterministic.  All system simulators (TD-Pipe and the
baselines) and the hierarchy-controller runtime are built on this kernel.

Heap entries are plain ``(time, seq, item)`` tuples — ``seq`` is unique, so
tuple comparison never reaches ``item`` and heap sifts compare bare floats and
ints instead of invoking a dataclass ``__lt__``.  ``item`` is either a bare
callback (the allocation-free fast path used by the engines, which never
cancel) or an :class:`Event` wrapper when the caller needs a cancellation
handle.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A cancellable scheduled callback (handle returned by ``schedule``)."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_on_cancel")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        #: Set by the owning :class:`Simulator` so cancellation can update its
        #: live-event accounting without scanning the heap.
        self._on_cancel: Callable[[], None] | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Prevent the callback from running (the heap entry is left in place
        until the simulator pops or compacts it)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()


class Simulator:
    """Event-driven clock.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, lambda: order.append("b"))
    >>> _ = sim.schedule(1.0, lambda: order.append("a"))
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._now = 0.0
        #: (time, seq, callback-or-Event) tuples; seq is unique so comparisons
        #: terminate at the ints and the payload never needs ordering.
        self._heap: list[tuple[float, int, object]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        # Live/cancelled bookkeeping so `pending` is O(1).  Invariant:
        # len(self._heap) == self._live + self._cancelled.
        self._live = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        ev = Event(time, next(self._seq), callback)
        ev._on_cancel = self._note_cancelled
        heapq.heappush(self._heap, (time, ev.seq, ev))
        self._live += 1
        return ev

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> None:
        """Fast path of :meth:`schedule` for callbacks that are never
        cancelled: no :class:`Event` is allocated, only the bare tuple entry.
        This is what the engine hot loops use (hundreds of thousands of
        events per run, none of them cancellable)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.schedule_callback_at(self._now + delay, callback)

    def schedule_callback_at(self, time: float, callback: Callable[[], None]) -> None:
        """Absolute-time variant of :meth:`schedule_callback`."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        heapq.heappush(self._heap, (time, next(self._seq), callback))
        self._live += 1

    def _note_cancelled(self) -> None:
        """An event in the heap was cancelled; compact when tombstones dominate."""
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > len(self._heap) // 2 and len(self._heap) >= 8:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (ordering is a total order,
        so heapify preserves (time, seq) execution order)."""
        self._heap = [
            entry
            for entry in self._heap
            if not (type(entry[2]) is Event and entry[2].cancelled)
        ]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def step(self) -> bool:
        """Run the next pending event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            time, _seq, item = heapq.heappop(heap)
            callback = item
            if type(item) is Event:
                # Once popped, a late cancel() must not touch the counters.
                item._on_cancel = None
                if item.cancelled:
                    self._cancelled -= 1
                    continue
                callback = item.callback
            self._live -= 1
            if time < self._now:
                raise SimulationError(
                    f"event at {time} before current time {self._now}"
                )
            self._now = time
            self._events_processed += 1
            callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event heap, optionally stopping at time ``until``.

        ``max_events`` guards against runaway schedulers (a scheduling bug in a
        system simulator would otherwise loop forever).
        """
        processed = 0
        while self._heap:
            # Re-read the heap each iteration: a callback may cancel events
            # and trigger _compact(), which rebinds self._heap.
            heap = self._heap
            # Purge cancelled tombstones so the `until` peek sees the next
            # *live* event; otherwise a tombstone at time <= until would let
            # step() run a live event stamped past the horizon.
            while heap:
                head_item = heap[0][2]
                if type(head_item) is Event and head_item.cancelled:
                    heapq.heappop(heap)
                    head_item._on_cancel = None
                    self._cancelled -= 1
                else:
                    break
            if not heap:
                return
            if until is not None and heap[0][0] > until:
                self._now = max(self._now, until)
                return
            if not self.step():
                return
            processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a scheduling livelock"
                )

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1): engines poll
        this on every task completion, so a heap scan would be quadratic)."""
        return self._live
