"""Deterministic discrete-event simulation kernel.

A minimal, allocation-light event loop: callbacks are scheduled at absolute or
relative simulated times and executed in (time, insertion-order) order, so the
simulation is fully deterministic.  All system simulators (TD-Pipe and the
baselines) and the hierarchy-controller runtime are built on this kernel.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is (time, sequence number)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set by the owning :class:`Simulator` so cancellation can update its
    #: live-event accounting without scanning the heap.
    _on_cancel: Callable[[], None] | None = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Prevent the callback from running (the heap entry is left in place
        until the simulator pops or compacts it)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()


class Simulator:
    """Event-driven clock.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, lambda: order.append("b"))
    >>> _ = sim.schedule(1.0, lambda: order.append("a"))
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        # Live/cancelled bookkeeping so `pending` is O(1).  Invariant:
        # len(self._heap) == self._live + self._cancelled.
        self._live = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        ev = Event(time=time, seq=next(self._seq), callback=callback)
        ev._on_cancel = self._note_cancelled
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def _note_cancelled(self) -> None:
        """An event in the heap was cancelled; compact when tombstones dominate."""
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > len(self._heap) // 2 and len(self._heap) >= 8:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (ordering is a total order,
        so heapify preserves (time, seq) execution order)."""
        self._heap = [ev for ev in self._heap if not ev.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def step(self) -> bool:
        """Run the next pending event.  Returns False when the heap is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            # Once popped, a late cancel() must not touch the counters.
            ev._on_cancel = None
            if ev.cancelled:
                self._cancelled -= 1
                continue
            self._live -= 1
            if ev.time < self._now:
                raise SimulationError(
                    f"event at {ev.time} before current time {self._now}"
                )
            self._now = ev.time
            self._events_processed += 1
            ev.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event heap, optionally stopping at time ``until``.

        ``max_events`` guards against runaway schedulers (a scheduling bug in a
        system simulator would otherwise loop forever).
        """
        processed = 0
        while self._heap:
            # Purge cancelled tombstones so the `until` peek sees the next
            # *live* event; otherwise a tombstone at time <= until would let
            # step() run a live event stamped past the horizon.
            while self._heap and self._heap[0].cancelled:
                ev = heapq.heappop(self._heap)
                ev._on_cancel = None
                self._cancelled -= 1
            if not self._heap:
                return
            if until is not None and self._heap[0].time > until:
                self._now = max(self._now, until)
                return
            if not self.step():
                return
            processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a scheduling livelock"
                )

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1): engines poll
        this on every task completion, so a heap scan would be quadratic)."""
        return self._live
