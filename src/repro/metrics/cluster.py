"""Cluster-level aggregate metrics.

A cluster run produces one :class:`~repro.metrics.results.RunResult` per
replica (all measured on the same shared clock); :class:`ClusterResult`
aggregates them into the fleet-level view an operator cares about: goodput,
tail latency over the pooled request population, and how evenly the router
spread load across replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .latency import LatencyStats
from .results import RunResult
from .segments import SegmentStats
from .slo import SLOClassStats

__all__ = ["ClusterResult"]


@dataclass
class ClusterResult:
    """Outcome of simulating a replicated cluster on one workload.

    ``latency`` is computed over the *pooled* finished requests of every
    replica (not an average of per-replica percentiles, which would hide
    imbalance: one overloaded replica dominates the true cluster p99).
    """

    system: str
    router: str
    num_replicas: int
    makespan: float
    completed_requests: int
    total_prompt_tokens: int
    total_output_tokens: int
    replica_results: list[RunResult]
    #: How many requests the router sent to each replica.
    requests_per_replica: list[int]
    latency: LatencyStats | None = None
    #: Per-SLO-class deadline attainment (empty when no request carried one).
    slo_attainment: dict[str, SLOClassStats] = field(default_factory=dict)
    #: (time, active replica count) after every fleet-size change.
    fleet_timeline: list[tuple[float, int]] = field(default_factory=list)
    #: Seconds each replica spent active (== makespan each, without autoscaling).
    replica_active_time: list[float] = field(default_factory=list)
    #: Roofline throughput score per replica (heterogeneous-fleet view).
    capacity_scores: list[float] = field(default_factory=list)
    #: Per-segment metric slices (regime workloads only; timeline order).
    segments: dict[str, SegmentStats] = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        return self.total_prompt_tokens + self.total_output_tokens

    @property
    def throughput(self) -> float:
        """Cluster tokens per second over the shared-clock makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.total_tokens / self.makespan

    @property
    def output_throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.total_output_tokens / self.makespan

    @property
    def goodput(self) -> float:
        """Completed requests per second — the fleet-sizing metric."""
        if self.makespan <= 0:
            return 0.0
        return self.completed_requests / self.makespan

    @property
    def per_replica_utilization(self) -> list[float]:
        """Each replica's mean GPU utilisation over the cluster makespan.

        Measured over the shared makespan (not each replica's own) so an
        early-finishing replica counts as idle for the remainder.
        """
        return [
            r.trace.mean_utilization(0.0, self.makespan) for r in self.replica_results
        ]

    @property
    def mean_utilization(self) -> float:
        util = self.per_replica_utilization
        return float(np.mean(util)) if util else 0.0

    @property
    def utilization_imbalance(self) -> float:
        """Max minus min per-replica utilisation (0 = perfectly balanced)."""
        util = self.per_replica_utilization
        if not util:
            return 0.0
        return max(util) - min(util)

    @property
    def mean_active_replicas(self) -> float:
        """Time-weighted average fleet size over the makespan.

        Equals ``num_replicas`` without autoscaling; under autoscaling it is
        the capacity actually paid for.
        """
        if not self.fleet_timeline or self.makespan <= 0:
            return float(self.num_replicas)
        area = 0.0
        for (t0, n), (t1, _) in zip(self.fleet_timeline, self.fleet_timeline[1:]):
            area += n * (min(t1, self.makespan) - t0)
        last_t, last_n = self.fleet_timeline[-1]
        area += last_n * max(self.makespan - last_t, 0.0)
        return area / self.makespan

    @property
    def replica_seconds(self) -> float:
        """Total active replica-seconds — the fleet's cost denominator."""
        if self.replica_active_time:
            return float(sum(self.replica_active_time))
        return self.makespan * self.num_replicas

    @property
    def request_imbalance(self) -> float:
        """Max/mean ratio of routed request counts (1.0 = perfectly even)."""
        counts = self.requests_per_replica
        if not counts or sum(counts) == 0:
            return 0.0
        return max(counts) / (sum(counts) / len(counts))

    def to_record(self, detail: bool = True) -> dict:
        """JSON-ready metric record (benchmark artifacts, CI smoke, store).

        The flat top-level keys are the *metrics* — what replay/diff compare
        and CI smoke asserts on.  ``detail`` adds the full-fidelity state
        (per-replica records, fleet timeline, per-class SLO stats, latency)
        that :meth:`from_record` needs to reconstruct an equal object.
        """
        record = {
            "system": self.system,
            "router": self.router,
            "num_replicas": self.num_replicas,
            "fleet": list(self.extras.get("fleet_nodes", [])),
            "makespan_s": self.makespan,
            "completed_requests": self.completed_requests,
            "total_prompt_tokens": self.total_prompt_tokens,
            "total_output_tokens": self.total_output_tokens,
            "goodput_rps": self.goodput,
            "throughput_tps": self.throughput,
            "output_throughput_tps": self.output_throughput,
            "mean_utilization": self.mean_utilization,
            "utilization_imbalance": self.utilization_imbalance,
            "requests_per_replica": list(self.requests_per_replica),
            "slo_attainment": {
                name: stats.attainment for name, stats in self.slo_attainment.items()
            },
            "mean_active_replicas": self.mean_active_replicas,
            "replica_seconds": self.replica_seconds,
            "capacity_scores": list(self.capacity_scores),
        }
        if self.latency is not None and self.latency.count:
            record.update(
                ttft_p50_s=self.latency.ttft_p50,
                ttft_p99_s=self.latency.ttft_p99,
                tpot_p99_s=self.latency.tpot_p99,
            )
        if self.segments:
            # Flat per-segment metric block: participates in replay/diff
            # comparison like every other top-level metric.  Only present
            # for regime runs so pre-regime records replay without drift.
            record["segments"] = {
                name: stats.metrics() for name, stats in self.segments.items()
            }
        if detail:
            record["detail"] = {
                "replica_results": [
                    r.to_record(detail=True) for r in self.replica_results
                ],
                "fleet_timeline": [[t, n] for t, n in self.fleet_timeline],
                "replica_active_time": list(self.replica_active_time),
                "slo_stats": {
                    name: stats.to_record()
                    for name, stats in self.slo_attainment.items()
                },
                "latency": (
                    None if self.latency is None else self.latency.to_record()
                ),
                "extras": dict(self.extras),
            }
            if self.segments:
                record["detail"]["segment_stats"] = {
                    name: stats.to_record()
                    for name, stats in self.segments.items()
                }
        return record

    @classmethod
    def from_record(cls, record: dict) -> "ClusterResult":
        """Reconstruct an equal :class:`ClusterResult` from :meth:`to_record`.

        Requires the record's ``detail`` section; artifact-level keys riding
        alongside (``spec``, ``wall_time_s``, ...) are ignored.
        """
        try:
            detail = record["detail"]
        except KeyError:
            raise ValueError(
                "record lacks the 'detail' section; only full records "
                "(to_record(detail=True)) reconstruct to a ClusterResult"
            ) from None
        return cls(
            system=record["system"],
            router=record["router"],
            num_replicas=int(record["num_replicas"]),
            makespan=float(record["makespan_s"]),
            completed_requests=int(record["completed_requests"]),
            total_prompt_tokens=int(record["total_prompt_tokens"]),
            total_output_tokens=int(record["total_output_tokens"]),
            replica_results=[
                RunResult.from_record(r) for r in detail["replica_results"]
            ],
            requests_per_replica=[int(n) for n in record["requests_per_replica"]],
            latency=(
                None
                if detail["latency"] is None
                else LatencyStats.from_record(detail["latency"])
            ),
            slo_attainment={
                name: SLOClassStats.from_record(stats)
                for name, stats in detail["slo_stats"].items()
            },
            fleet_timeline=[
                (float(t), int(n)) for t, n in detail["fleet_timeline"]
            ],
            replica_active_time=[float(t) for t in detail["replica_active_time"]],
            capacity_scores=[float(c) for c in record["capacity_scores"]],
            segments={
                name: SegmentStats.from_record(stats)
                for name, stats in detail.get("segment_stats", {}).items()
            },
            extras=dict(detail["extras"]),
        )

    def summary(self) -> str:
        lat = ""
        if self.latency is not None and self.latency.count:
            lat = (
                f" | TTFT p50 {self.latency.ttft_p50:.2f}s "
                f"p99 {self.latency.ttft_p99:.2f}s | "
                f"TPOT p99 {self.latency.tpot_p99 * 1e3:.1f}ms"
            )
        slo = ""
        if self.slo_attainment:
            parts = ", ".join(
                f"{name} {stats.attainment * 100:.1f}%"
                for name, stats in self.slo_attainment.items()
            )
            slo = f" | SLO {parts}"
        fleet = ""
        if len({n for _, n in self.fleet_timeline}) > 1:
            fleet = f" | fleet avg {self.mean_active_replicas:.2f}/{self.num_replicas}"
        return (
            f"{self.system} x{self.num_replicas} [{self.router:11s}] | "
            f"goodput {self.goodput:6.2f} req/s | "
            f"throughput {self.throughput:9.1f} tok/s | "
            f"util {self.mean_utilization * 100:5.1f}% "
            f"(imbalance {self.utilization_imbalance * 100:4.1f}pp)"
            f"{lat}{slo}{fleet}"
        )
