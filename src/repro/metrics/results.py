"""Run results and throughput metrics.

The paper's headline metric is throughput in tokens/s over a fixed request
set, measured "from the start of the first prefill to the finish of all decode
batches" and counting both prompt and generated tokens (Section 4.1/4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.trace import TraceRecorder
from .latency import LatencyStats

__all__ = ["KVUsageSample", "PhaseSpan", "RunResult"]


@dataclass(frozen=True)
class KVUsageSample:
    """One KV-cache usage observation (paper Figure 12 data point)."""

    step: int
    time: float
    usage_ratio: float
    phase: str  # "prefill" | "decode"


@dataclass(frozen=True)
class PhaseSpan:
    """One temporally-disaggregated phase interval."""

    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RunResult:
    """Outcome of simulating one system on one workload."""

    system: str
    node: str
    model: str
    num_devices: int
    makespan: float
    completed_requests: int
    total_prompt_tokens: int
    total_output_tokens: int
    trace: TraceRecorder
    kv_log: list[KVUsageSample] = field(default_factory=list)
    phase_spans: list[PhaseSpan] = field(default_factory=list)
    phase_switches: int = 0
    recomputations: int = 0
    decode_steps: int = 0
    prefill_batches: int = 0
    latency: LatencyStats | None = None
    extras: dict = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        """Prompt + generated tokens of completed requests."""
        return self.total_prompt_tokens + self.total_output_tokens

    @property
    def throughput(self) -> float:
        """Tokens per second — the paper's Figure 11 metric."""
        if self.makespan <= 0:
            return 0.0
        return self.total_tokens / self.makespan

    @property
    def output_throughput(self) -> float:
        """Generated tokens per second (secondary metric)."""
        if self.makespan <= 0:
            return 0.0
        return self.total_output_tokens / self.makespan

    @property
    def mean_utilization(self) -> float:
        return self.trace.mean_utilization(0.0, self.makespan)

    @property
    def bubble_ratio(self) -> float:
        return 1.0 - self.mean_utilization

    def kv_usage_arrays(self) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """(steps, usage ratios, phases) for Figure 12-style plots."""
        steps = np.array([s.step for s in self.kv_log])
        usage = np.array([s.usage_ratio for s in self.kv_log])
        phases = [s.phase for s in self.kv_log]
        return steps, usage, phases

    def to_record(self) -> dict:
        """Flat, JSON-ready metric record (benchmark artifacts, CI smoke)."""
        record = {
            "system": self.system,
            "node": self.node,
            "model": self.model,
            "num_devices": self.num_devices,
            "makespan_s": self.makespan,
            "completed_requests": self.completed_requests,
            "total_prompt_tokens": self.total_prompt_tokens,
            "total_output_tokens": self.total_output_tokens,
            "throughput_tps": self.throughput,
            "output_throughput_tps": self.output_throughput,
            "mean_utilization": self.mean_utilization,
            "phase_switches": self.phase_switches,
            "recomputations": self.recomputations,
        }
        if self.latency is not None and self.latency.count:
            record.update(
                ttft_p50_s=self.latency.ttft_p50,
                ttft_p99_s=self.latency.ttft_p99,
                tpot_p99_s=self.latency.tpot_p99,
            )
        return record

    def summary(self) -> str:
        return (
            f"{self.system:8s} {self.node:7s} {self.model:4s} x{self.num_devices} | "
            f"throughput {self.throughput:9.1f} tok/s | makespan {self.makespan:8.1f} s | "
            f"util {self.mean_utilization * 100:5.1f}% | "
            f"completed {self.completed_requests} | recompute {self.recomputations}"
        )
