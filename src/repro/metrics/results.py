"""Run results and throughput metrics.

The paper's headline metric is throughput in tokens/s over a fixed request
set, measured "from the start of the first prefill to the finish of all decode
batches" and counting both prompt and generated tokens (Section 4.1/4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.trace import TraceRecorder
from .latency import LatencyStats

__all__ = ["KVUsageSample", "PhaseSpan", "RunResult"]


@dataclass(frozen=True)
class KVUsageSample:
    """One KV-cache usage observation (paper Figure 12 data point)."""

    step: int
    time: float
    usage_ratio: float
    phase: str  # "prefill" | "decode"


@dataclass(frozen=True)
class PhaseSpan:
    """One temporally-disaggregated phase interval."""

    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RunResult:
    """Outcome of simulating one system on one workload."""

    system: str
    node: str
    model: str
    num_devices: int
    makespan: float
    completed_requests: int
    total_prompt_tokens: int
    total_output_tokens: int
    trace: TraceRecorder
    kv_log: list[KVUsageSample] = field(default_factory=list)
    phase_spans: list[PhaseSpan] = field(default_factory=list)
    phase_switches: int = 0
    recomputations: int = 0
    decode_steps: int = 0
    prefill_batches: int = 0
    latency: LatencyStats | None = None
    extras: dict = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        """Prompt + generated tokens of completed requests."""
        return self.total_prompt_tokens + self.total_output_tokens

    @property
    def throughput(self) -> float:
        """Tokens per second — the paper's Figure 11 metric."""
        if self.makespan <= 0:
            return 0.0
        return self.total_tokens / self.makespan

    @property
    def output_throughput(self) -> float:
        """Generated tokens per second (secondary metric)."""
        if self.makespan <= 0:
            return 0.0
        return self.total_output_tokens / self.makespan

    @property
    def mean_utilization(self) -> float:
        return self.trace.mean_utilization(0.0, self.makespan)

    @property
    def bubble_ratio(self) -> float:
        return 1.0 - self.mean_utilization

    def kv_usage_arrays(self) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """(steps, usage ratios, phases) for Figure 12-style plots."""
        steps = np.array([s.step for s in self.kv_log])
        usage = np.array([s.usage_ratio for s in self.kv_log])
        phases = [s.phase for s in self.kv_log]
        return steps, usage, phases

    def to_record(self, detail: bool = True) -> dict:
        """JSON-ready metric record (benchmark artifacts, CI smoke, store).

        The flat top-level keys are the *metrics* — what replay/diff compare
        and CI smoke asserts on.  ``detail`` adds the full-fidelity state
        (trace, KV log, phase spans, latency, extras) that
        :meth:`from_record` needs to reconstruct an equal object.
        """
        record = {
            "system": self.system,
            "node": self.node,
            "model": self.model,
            "num_devices": self.num_devices,
            "makespan_s": self.makespan,
            "completed_requests": self.completed_requests,
            "total_prompt_tokens": self.total_prompt_tokens,
            "total_output_tokens": self.total_output_tokens,
            "throughput_tps": self.throughput,
            "output_throughput_tps": self.output_throughput,
            "mean_utilization": self.mean_utilization,
            "phase_switches": self.phase_switches,
            "recomputations": self.recomputations,
            "decode_steps": self.decode_steps,
            "prefill_batches": self.prefill_batches,
        }
        if self.latency is not None and self.latency.count:
            record.update(
                ttft_p50_s=self.latency.ttft_p50,
                ttft_p99_s=self.latency.ttft_p99,
                tpot_p99_s=self.latency.tpot_p99,
            )
        if detail:
            record["detail"] = {
                "trace": self.trace.to_record(),
                "kv_log": [
                    [s.step, s.time, s.usage_ratio, s.phase] for s in self.kv_log
                ],
                "phase_spans": [
                    [p.phase, p.start, p.end] for p in self.phase_spans
                ],
                "latency": (
                    None if self.latency is None else self.latency.to_record()
                ),
                "extras": dict(self.extras),
            }
        return record

    @classmethod
    def from_record(cls, record: dict) -> "RunResult":
        """Reconstruct an equal :class:`RunResult` from :meth:`to_record`.

        Requires the record's ``detail`` section; artifact-level keys riding
        alongside (``spec``, ``wall_time_s``, ...) are ignored, so a merged
        :class:`~repro.api.runner.RunArtifact` record works directly.
        """
        try:
            detail = record["detail"]
        except KeyError:
            raise ValueError(
                "record lacks the 'detail' section; only full records "
                "(to_record(detail=True)) reconstruct to a RunResult"
            ) from None
        return cls(
            system=record["system"],
            node=record["node"],
            model=record["model"],
            num_devices=int(record["num_devices"]),
            makespan=float(record["makespan_s"]),
            completed_requests=int(record["completed_requests"]),
            total_prompt_tokens=int(record["total_prompt_tokens"]),
            total_output_tokens=int(record["total_output_tokens"]),
            trace=TraceRecorder.from_record(detail["trace"]),
            kv_log=[
                KVUsageSample(int(step), float(t), float(ratio), str(phase))
                for step, t, ratio, phase in detail["kv_log"]
            ],
            phase_spans=[
                PhaseSpan(str(phase), float(s), float(e))
                for phase, s, e in detail["phase_spans"]
            ],
            phase_switches=int(record["phase_switches"]),
            recomputations=int(record["recomputations"]),
            decode_steps=int(record["decode_steps"]),
            prefill_batches=int(record["prefill_batches"]),
            latency=(
                None
                if detail["latency"] is None
                else LatencyStats.from_record(detail["latency"])
            ),
            extras=dict(detail["extras"]),
        )

    def summary(self) -> str:
        return (
            f"{self.system:8s} {self.node:7s} {self.model:4s} x{self.num_devices} | "
            f"throughput {self.throughput:9.1f} tok/s | makespan {self.makespan:8.1f} s | "
            f"util {self.mean_utilization * 100:5.1f}% | "
            f"completed {self.completed_requests} | recompute {self.recomputations}"
        )
