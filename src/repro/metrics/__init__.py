"""Metrics: run results, throughput, utilisation and KV-usage logs."""

from .cluster import ClusterResult
from .latency import LatencyStats, compute_latency_stats
from .report import ComparisonReport
from .results import KVUsageSample, PhaseSpan, RunResult

__all__ = [
    "RunResult",
    "ClusterResult",
    "KVUsageSample",
    "PhaseSpan",
    "ComparisonReport",
    "LatencyStats",
    "compute_latency_stats",
]
