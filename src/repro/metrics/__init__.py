"""Metrics: run results, throughput, utilisation and KV-usage logs."""

from .cluster import ClusterResult
from .latency import LatencyStats, compute_latency_stats
from .report import ComparisonReport
from .results import KVUsageSample, PhaseSpan, RunResult
from .segments import SegmentStats, compute_segment_stats
from .slo import SLOClassStats, compute_slo_attainment

__all__ = [
    "RunResult",
    "ClusterResult",
    "KVUsageSample",
    "PhaseSpan",
    "ComparisonReport",
    "LatencyStats",
    "compute_latency_stats",
    "SLOClassStats",
    "compute_slo_attainment",
    "SegmentStats",
    "compute_segment_stats",
]
