"""Serialization helpers shared by the metric record schemas.

Strict JSON has no spelling for the non-finite floats that legitimately
appear in metric records (``math.inf`` deadlines on unbounded SLO axes, NaN
latency statistics for runs where nothing finished).  ``encode_float`` /
``decode_float`` map them to the sentinel strings ``"inf"``/``"-inf"``/
``"nan"`` so every record survives ``json.dumps(..., allow_nan=False)`` and
reconstructs bit-for-bit.
"""

from __future__ import annotations

import math

__all__ = ["encode_float", "decode_float"]

_ENCODED = {math.inf: "inf", -math.inf: "-inf"}


def encode_float(value: float) -> float | str:
    """JSON-safe float: non-finite values become sentinel strings."""
    value = float(value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return _ENCODED[value]
    return value


def decode_float(value: float | str) -> float:
    """Inverse of :func:`encode_float`."""
    if isinstance(value, str):
        return float(value)  # float("nan"/"inf"/"-inf") does the right thing
    return float(value)
