"""Per-SLO-class attainment metrics.

Attainment is the fraction of a class's finished requests that met each of
its deadlines — the number an operator holds a fleet to ("99% of interactive
requests see first token within 8 s").  Requests without an SLO class are
best-effort and excluded; single-token outputs have no steady-state TPOT and
trivially meet the TPOT deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..runtime.state import RequestState
from ..workload.slo import SLOClass
from .serde import decode_float, encode_float

__all__ = ["SLOClassStats", "compute_slo_attainment"]


@dataclass(frozen=True)
class SLOClassStats:
    """Deadline attainment for one SLO class over one run."""

    slo: SLOClass
    #: Finished requests of this class.
    count: int
    #: Fraction whose TTFT met the class deadline.
    ttft_attainment: float
    #: Fraction whose TPOT met the class deadline.
    tpot_attainment: float
    #: Fraction that met both deadlines (the attainment an SLA pays on).
    attainment: float

    def summary(self) -> str:
        return (
            f"{self.slo.name}: {self.attainment * 100:.1f}% of {self.count} "
            f"(TTFT {self.ttft_attainment * 100:.1f}%, "
            f"TPOT {self.tpot_attainment * 100:.1f}%)"
        )

    def to_record(self) -> dict:
        """JSON-ready field dict (infinite deadlines encoded as strings)."""
        return {
            "slo": {
                "name": self.slo.name,
                "ttft_deadline_s": encode_float(self.slo.ttft_deadline_s),
                "tpot_deadline_s": encode_float(self.slo.tpot_deadline_s),
            },
            "count": self.count,
            "ttft_attainment": self.ttft_attainment,
            "tpot_attainment": self.tpot_attainment,
            "attainment": self.attainment,
        }

    @classmethod
    def from_record(cls, record: dict) -> "SLOClassStats":
        """Inverse of :meth:`to_record`."""
        slo = record["slo"]
        return cls(
            slo=SLOClass(
                name=str(slo["name"]),
                ttft_deadline_s=decode_float(slo["ttft_deadline_s"]),
                tpot_deadline_s=decode_float(slo["tpot_deadline_s"]),
            ),
            count=int(record["count"]),
            ttft_attainment=float(record["ttft_attainment"]),
            tpot_attainment=float(record["tpot_attainment"]),
            attainment=float(record["attainment"]),
        )


def compute_slo_attainment(states: Iterable[RequestState]) -> dict[str, SLOClassStats]:
    """Group finished request states by SLO class and score attainment."""
    met_ttft: dict[SLOClass, int] = {}
    met_tpot: dict[SLOClass, int] = {}
    met_both: dict[SLOClass, int] = {}
    counts: dict[SLOClass, int] = {}
    for s in states:
        slo = s.request.slo
        if slo is None or s.finish_time is None or s.first_token_time is None:
            continue
        arrival = s.request.arrival_time
        ttft = s.first_token_time - arrival
        n_out = s.request.output_len
        tpot = (
            (s.finish_time - s.first_token_time) / (n_out - 1) if n_out > 1 else 0.0
        )
        counts[slo] = counts.get(slo, 0) + 1
        ok_ttft = ttft <= slo.ttft_deadline_s
        ok_tpot = tpot <= slo.tpot_deadline_s
        met_ttft[slo] = met_ttft.get(slo, 0) + ok_ttft
        met_tpot[slo] = met_tpot.get(slo, 0) + ok_tpot
        met_both[slo] = met_both.get(slo, 0) + (ok_ttft and ok_tpot)
    return {
        slo.name: SLOClassStats(
            slo=slo,
            count=n,
            ttft_attainment=met_ttft[slo] / n,
            tpot_attainment=met_tpot[slo] / n,
            attainment=met_both[slo] / n,
        )
        for slo, n in sorted(counts.items(), key=lambda kv: kv[0].name)
    }
