"""Multi-run comparison reports.

Aggregates :class:`~repro.metrics.results.RunResult` objects into comparison
tables and markdown summaries — the building block behind the CLI output and
EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..viz.ascii import table
from .results import RunResult

__all__ = ["ComparisonReport"]


@dataclass
class ComparisonReport:
    """A set of runs over the same workload, compared against a reference."""

    title: str
    reference_system: str = "TD-Pipe"
    runs: list[RunResult] = field(default_factory=list)

    def add(self, result: RunResult) -> None:
        self.runs.append(result)

    def get(self, system: str) -> RunResult:
        for r in self.runs:
            if r.system == system:
                return r
        raise KeyError(system)

    @property
    def reference(self) -> RunResult | None:
        try:
            return self.get(self.reference_system)
        except KeyError:
            return None

    def speedup_of_reference_over(self, system: str) -> float:
        ref = self.reference
        other = self.get(system)
        if ref is None or other.throughput == 0:
            return float("nan")
        return ref.throughput / other.throughput

    def best(self) -> RunResult:
        if not self.runs:
            raise ValueError("empty report")
        return max(self.runs, key=lambda r: r.throughput)

    def validate_same_workload(self) -> None:
        """All runs must have processed identical token totals."""
        totals = {r.total_tokens for r in self.runs}
        if len(totals) > 1:
            raise ValueError(f"runs cover different workloads: totals {sorted(totals)}")

    # ------------------------------------------------------------------ #
    def rows(self) -> list[list[object]]:
        ref = self.reference
        out: list[list[object]] = []
        for r in sorted(self.runs, key=lambda x: -x.throughput):
            rel = "" if ref is None else f"{ref.throughput / r.throughput:.2f}x"
            out.append(
                [
                    r.system,
                    f"{r.throughput:.1f}",
                    f"{r.makespan:.1f}",
                    f"{r.mean_utilization * 100:.1f}%",
                    r.phase_switches,
                    r.recomputations,
                    rel,
                ]
            )
        return out

    def render(self) -> str:
        header = [
            "system",
            "tokens/s",
            "makespan (s)",
            "util",
            "switches",
            "recompute",
            f"{self.reference_system} speedup",
        ]
        return f"== {self.title} ==\n" + table(header, self.rows())

    def to_markdown(self) -> str:
        header = "| system | tokens/s | makespan | util | speedup |"
        sep = "|---|---|---|---|---|"
        ref = self.reference
        lines = [f"### {self.title}", "", header, sep]
        for r in sorted(self.runs, key=lambda x: -x.throughput):
            rel = "-" if ref is None else f"{ref.throughput / r.throughput:.2f}x"
            lines.append(
                f"| {r.system} | {r.throughput:.1f} | {r.makespan:.1f} s | "
                f"{r.mean_utilization * 100:.1f}% | {rel} |"
            )
        return "\n".join(lines)
