"""Per-segment metric slicing for regime workloads.

A regime run answers questions no whole-run aggregate can: *did the
autoscaler survive the lunch spike* is a property of the ``midday`` window,
not of the makespan.  :func:`compute_segment_stats` slices the pooled
finished request states of a cluster run by the regime's segment windows
and scores each window separately — arrivals, completions, realized rate,
TTFT percentiles, per-class SLO attainment, and the mean fleet size the
autoscaler held during the window.

Requests are attributed to segments by **arrival time** (the last window is
extended past the regime's end so session follow-ups that straggle past the
final segment still land somewhere).  Completions count requests that
arrived in the window and finished at all — a request that arrived during
the flash and finished during recovery is the flash's problem, which is
exactly how an operator would read it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..runtime.state import RequestState
from ..workload.regimes import RegimeSpec
from .serde import decode_float, encode_float
from .slo import compute_slo_attainment

__all__ = ["SegmentStats", "compute_segment_stats"]


@dataclass(frozen=True, eq=False)
class SegmentStats:
    """Metrics for one named window of a regime run.

    Equality is NaN-tolerant (like :class:`~repro.metrics.latency
    .LatencyStats`): a window where nothing completed carries NaN TTFT
    percentiles and must still round-trip through records.
    """

    name: str
    start_s: float
    end_s: float
    #: Requests whose arrival fell inside the window.
    arrivals: int
    #: Of those, how many finished (at any time).
    completed: int
    #: The regime's analytic expectation for this window (incl. follow-ups).
    expected_arrivals: float
    #: ``arrivals / duration`` — what the thinning actually produced.
    realized_rate_rps: float
    #: TTFT percentiles over the window's completed requests (NaN if none).
    ttft_p50_s: float
    ttft_p99_s: float
    #: Per-SLO-class both-deadline attainment over the window's completions.
    attainment: dict[str, float]
    #: Time-weighted average active replicas during the window.
    mean_fleet_size: float

    def _key(self) -> tuple:
        return (
            self.name,
            encode_float(self.start_s),
            encode_float(self.end_s),
            self.arrivals,
            self.completed,
            encode_float(self.expected_arrivals),
            encode_float(self.realized_rate_rps),
            encode_float(self.ttft_p50_s),
            encode_float(self.ttft_p99_s),
            tuple(sorted(self.attainment.items())),
            encode_float(self.mean_fleet_size),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SegmentStats):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def metrics(self) -> dict:
        """The flat, diffable metric block (NaN-free: TTFT keys are omitted
        when nothing completed, mirroring the cluster record's policy)."""
        out: dict = {
            "arrivals": self.arrivals,
            "completed": self.completed,
            "expected_arrivals": self.expected_arrivals,
            "realized_rate_rps": self.realized_rate_rps,
            "attainment": dict(sorted(self.attainment.items())),
            "mean_fleet_size": self.mean_fleet_size,
        }
        if self.completed:
            out["ttft_p50_s"] = self.ttft_p50_s
            out["ttft_p99_s"] = self.ttft_p99_s
        return out

    def to_record(self) -> dict:
        """JSON-ready full-fidelity form (inverse: :meth:`from_record`)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "arrivals": self.arrivals,
            "completed": self.completed,
            "expected_arrivals": self.expected_arrivals,
            "realized_rate_rps": self.realized_rate_rps,
            "ttft_p50_s": encode_float(self.ttft_p50_s),
            "ttft_p99_s": encode_float(self.ttft_p99_s),
            "attainment": dict(sorted(self.attainment.items())),
            "mean_fleet_size": self.mean_fleet_size,
        }

    @classmethod
    def from_record(cls, record: dict) -> "SegmentStats":
        return cls(
            name=str(record["name"]),
            start_s=float(record["start_s"]),
            end_s=float(record["end_s"]),
            arrivals=int(record["arrivals"]),
            completed=int(record["completed"]),
            expected_arrivals=float(record["expected_arrivals"]),
            realized_rate_rps=float(record["realized_rate_rps"]),
            ttft_p50_s=decode_float(record["ttft_p50_s"]),
            ttft_p99_s=decode_float(record["ttft_p99_s"]),
            attainment={k: float(v) for k, v in record["attainment"].items()},
            mean_fleet_size=float(record["mean_fleet_size"]),
        )

    def summary(self) -> str:
        ttft = (
            f"TTFT p99 {self.ttft_p99_s:6.2f}s" if self.completed else "TTFT      --"
        )
        slo = (
            " | " + ", ".join(
                f"{k} {v * 100:5.1f}%" for k, v in sorted(self.attainment.items())
            )
            if self.attainment
            else ""
        )
        return (
            f"{self.name:14s} [{self.start_s:7.1f},{self.end_s:7.1f}) "
            f"{self.arrivals:5d} arrived ({self.realized_rate_rps:5.2f} rps, "
            f"expected {self.expected_arrivals:7.1f}) | {ttft} | "
            f"fleet {self.mean_fleet_size:.2f}{slo}"
        )


def _mean_fleet(
    timeline: Sequence[tuple[float, int]],
    t0: float,
    t1: float,
    default: float,
) -> float:
    """Time-weighted mean fleet size over ``[t0, t1]`` from a step timeline."""
    if not timeline or t1 <= t0:
        return float(default)
    area = 0.0
    # Fleet size before the first event defaults to the first recorded size.
    points = list(timeline)
    times = [t for t, _ in points]
    sizes = [n for _, n in points]
    for i in range(len(points) + 1):
        seg_start = times[i - 1] if i > 0 else -math.inf
        seg_end = times[i] if i < len(points) else math.inf
        size = sizes[i - 1] if i > 0 else sizes[0]
        lo, hi = max(seg_start, t0), min(seg_end, t1)
        if hi > lo:
            area += size * (hi - lo)
    return area / (t1 - t0)


def compute_segment_stats(
    states: Iterable[RequestState],
    regime: RegimeSpec,
    fleet_timeline: Sequence[tuple[float, int]] = (),
    num_replicas: int = 1,
) -> dict[str, SegmentStats]:
    """Slice pooled finished states by the regime's segment windows.

    Returns one :class:`SegmentStats` per segment, in timeline order.  The
    fleet-size average is clipped to the window even when the run's makespan
    extends past it (drain time is the *last* segment's story).
    """
    windows = regime.windows()
    by_segment: dict[str, list[RequestState]] = {name: [] for name, _, _ in windows}
    last_name = windows[-1][0]
    for s in states:
        t = s.request.arrival_time
        for name, start, end in windows:
            if start <= t < end:
                by_segment[name].append(s)
                break
        else:
            # Stragglers past the regime's end (session follow-ups).
            by_segment[last_name].append(s)

    out: dict[str, SegmentStats] = {}
    for seg, (name, start, end) in zip(regime.segments, windows):
        members = by_segment[name]
        done = [
            s
            for s in members
            if s.finish_time is not None and s.first_token_time is not None
        ]
        if done:
            ttfts = np.asarray(
                [s.first_token_time - s.request.arrival_time for s in done]
            )
            p50, p99 = (
                float(np.percentile(ttfts, 50)),
                float(np.percentile(ttfts, 99)),
            )
        else:
            p50 = p99 = float("nan")
        out[name] = SegmentStats(
            name=name,
            start_s=start,
            end_s=end,
            arrivals=len(members),
            completed=len(done),
            expected_arrivals=seg.expected_arrivals,
            realized_rate_rps=len(members) / (end - start),
            ttft_p50_s=p50,
            ttft_p99_s=p99,
            attainment={
                cls_name: stats.attainment
                for cls_name, stats in compute_slo_attainment(done).items()
            },
            mean_fleet_size=_mean_fleet(fleet_timeline, start, end, num_replicas),
        )
    return out
