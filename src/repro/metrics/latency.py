"""Per-request latency metrics for online-serving experiments.

TTFT (time to first token) and TPOT (time per output token) are the standard
online-serving metrics (the paper cites them when discussing chunked prefill);
the offline systems here still expose them so the throughput/latency
trade-off of temporal disaggregation can be quantified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..runtime.state import RequestState

__all__ = ["LatencyStats", "compute_latency_stats"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over completed requests (seconds)."""

    count: int
    ttft_mean: float
    ttft_p50: float
    ttft_p99: float
    tpot_mean: float
    tpot_p99: float
    latency_mean: float
    latency_p99: float

    def summary(self) -> str:
        return (
            f"TTFT mean {self.ttft_mean:.2f}s p99 {self.ttft_p99:.2f}s | "
            f"TPOT mean {self.tpot_mean * 1e3:.1f}ms p99 {self.tpot_p99 * 1e3:.1f}ms | "
            f"latency mean {self.latency_mean:.2f}s p99 {self.latency_p99:.2f}s"
        )


def compute_latency_stats(states: Iterable[RequestState]) -> LatencyStats:
    """Aggregate TTFT/TPOT/total latency over finished request states.

    TTFT is measured from the request's arrival to its first generated token;
    TPOT is the mean gap between subsequent tokens (total decode span divided
    by ``output_len - 1``; single-token outputs contribute no TPOT sample).
    """
    ttfts: list[float] = []
    tpots: list[float] = []
    latencies: list[float] = []
    for s in states:
        if s.finish_time is None or s.first_token_time is None:
            continue
        arrival = s.request.arrival_time
        ttfts.append(s.first_token_time - arrival)
        latencies.append(s.finish_time - arrival)
        n_out = s.request.output_len
        if n_out > 1:
            tpots.append((s.finish_time - s.first_token_time) / (n_out - 1))
    if not ttfts:
        nan = float("nan")
        return LatencyStats(0, nan, nan, nan, nan, nan, nan, nan)
    t = np.asarray(ttfts)
    lat = np.asarray(latencies)
    tp = np.asarray(tpots) if tpots else np.asarray([0.0])
    return LatencyStats(
        count=len(ttfts),
        ttft_mean=float(t.mean()),
        ttft_p50=float(np.percentile(t, 50)),
        ttft_p99=float(np.percentile(t, 99)),
        tpot_mean=float(tp.mean()),
        tpot_p99=float(np.percentile(tp, 99)),
        latency_mean=float(lat.mean()),
        latency_p99=float(np.percentile(lat, 99)),
    )
