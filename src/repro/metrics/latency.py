"""Per-request latency metrics for online-serving experiments.

TTFT (time to first token) and TPOT (time per output token) are the standard
online-serving metrics (the paper cites them when discussing chunked prefill);
the offline systems here still expose them so the throughput/latency
trade-off of temporal disaggregation can be quantified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..runtime.state import RequestState
from .serde import decode_float, encode_float

__all__ = ["LatencyStats", "compute_latency_stats"]


_FLOAT_FIELDS = (
    "ttft_mean", "ttft_p50", "ttft_p99",
    "tpot_mean", "tpot_p99", "latency_mean", "latency_p99",
)


@dataclass(frozen=True, eq=False)
class LatencyStats:
    """Summary statistics over completed requests (seconds).

    Equality is NaN-tolerant: a run where nothing finished carries NaN
    percentiles, and two such stats must still compare equal so records
    round-trip (``from_record(to_record(x)) == x``) even for degenerate
    runs — plain dataclass equality would fail on ``NaN != NaN``.
    """

    count: int
    ttft_mean: float
    ttft_p50: float
    ttft_p99: float
    tpot_mean: float
    tpot_p99: float
    latency_mean: float
    latency_p99: float

    def _key(self) -> tuple:
        # encode_float maps NaN to the string "nan", making it compare equal.
        return (self.count, *(encode_float(getattr(self, f)) for f in _FLOAT_FIELDS))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyStats):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def summary(self) -> str:
        return (
            f"TTFT mean {self.ttft_mean:.2f}s p99 {self.ttft_p99:.2f}s | "
            f"TPOT mean {self.tpot_mean * 1e3:.1f}ms p99 {self.tpot_p99 * 1e3:.1f}ms | "
            f"latency mean {self.latency_mean:.2f}s p99 {self.latency_p99:.2f}s"
        )

    def to_record(self) -> dict:
        """JSON-ready field dict (NaN percentiles of empty runs encoded)."""
        record = {"count": self.count}
        for name in _FLOAT_FIELDS:
            record[name] = encode_float(getattr(self, name))
        return record

    @classmethod
    def from_record(cls, record: dict) -> "LatencyStats":
        """Inverse of :meth:`to_record`."""
        return cls(
            count=int(record["count"]),
            **{name: decode_float(record[name]) for name in _FLOAT_FIELDS},
        )


def compute_latency_stats(states: Iterable[RequestState]) -> LatencyStats:
    """Aggregate TTFT/TPOT/total latency over finished request states.

    TTFT is measured from the request's arrival to its first generated token;
    TPOT is the mean gap between subsequent tokens (total decode span divided
    by ``output_len - 1``; single-token outputs contribute no TPOT sample).
    """
    ttfts: list[float] = []
    tpots: list[float] = []
    latencies: list[float] = []
    for s in states:
        if s.finish_time is None or s.first_token_time is None:
            continue
        arrival = s.request.arrival_time
        ttfts.append(s.first_token_time - arrival)
        latencies.append(s.finish_time - arrival)
        n_out = s.request.output_len
        if n_out > 1:
            tpots.append((s.finish_time - s.first_token_time) / (n_out - 1))
    if not ttfts:
        nan = float("nan")
        return LatencyStats(0, nan, nan, nan, nan, nan, nan, nan)
    t = np.asarray(ttfts)
    lat = np.asarray(latencies)
    tp = np.asarray(tpots) if tpots else np.asarray([0.0])
    return LatencyStats(
        count=len(ttfts),
        ttft_mean=float(t.mean()),
        ttft_p50=float(np.percentile(t, 50)),
        ttft_p99=float(np.percentile(t, 99)),
        tpot_mean=float(tp.mean()),
        tpot_p99=float(np.percentile(tp, 99)),
        latency_mean=float(lat.mean()),
        latency_p99=float(np.percentile(lat, 99)),
    )
