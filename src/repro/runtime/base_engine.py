"""Centralized engine base class (control plane of the hierarchy-controller).

Concrete systems — TD-Pipe and the four baselines — subclass
:class:`InferenceEngine` and implement only their scheduling policy
(`_bootstrap` + `_on_task_complete`).  Everything else is shared: request
state, KV-cache admission with watermark, recomputation-on-overflow, stage
cost evaluation, tracing and final metrics, so all systems are compared on
identical substrates.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Callable, Iterable, Sequence

from ..costmodel.roofline import PrefillChunk, StageCostModel
from ..costmodel.vectorized import install_default_grids
from ..hardware.node import NodeSpec
from ..kvcache.block_manager import BlockManager
from ..kvcache.capacity import kv_token_capacity
from ..metrics.latency import compute_latency_stats
from ..metrics.results import KVUsageSample, PhaseSpan, RunResult
from ..models.partition import pipeline_shards
from ..models.spec import ModelSpec
from ..sim.engine import SimulationError, Simulator
from ..sim.trace import TraceRecorder
from ..workload.request import Request
from .config import EngineConfig
from .pipeline import PipelineRuntime
from .state import RequestState
from .tasks import DECODE, HYBRID, PREFILL, BatchTask

__all__ = ["InferenceEngine"]


class InferenceEngine(abc.ABC):
    """Shared scaffolding for one inference system on one node.

    Parameters
    ----------
    node:
        Hardware description (GPU type, count, interconnect).
    model:
        Transformer being served.
    parallel:
        ``"pp"`` — one pipeline stage per GPU; ``"tp"`` — all GPUs form one
        tensor-parallel group (a single logical stage).
    async_transfer:
        Whether inter-stage sends overlap with compute (hierarchy-controller
        behaviour) or block the sender (naive SPMD pipeline).
    sim:
        Event clock to run on.  By default each engine owns a private
        :class:`Simulator`; a cluster passes one shared clock to all replicas
        so their events interleave deterministically on a single heap.
    """

    system_name: str = "base"

    def __init__(
        self,
        node: NodeSpec,
        model: ModelSpec,
        parallel: str = "pp",
        config: EngineConfig | None = None,
        async_transfer: bool = False,
        sim: Simulator | None = None,
    ) -> None:
        if parallel not in ("pp", "tp"):
            raise ValueError(f"parallel must be 'pp' or 'tp', got {parallel!r}")
        self.node = node
        self.model = model
        self.parallel = parallel
        self.config = config or EngineConfig()
        self.async_transfer = async_transfer

        g = node.num_gpus
        pp = g if parallel == "pp" else 1
        tp = g if parallel == "tp" else 1
        self.pp_degree, self.tp_degree = pp, tp
        capacity = kv_token_capacity(
            model, node.gpu, pp, tp, min_tokens=self.config.min_capacity_tokens
        )
        self.block_manager = BlockManager(capacity, self.config.block_size)

        self.stage_models: list[StageCostModel] = [
            StageCostModel(shard=s, gpu=node.gpu, interconnect=node.interconnect)
            for s in pipeline_shards(model, pp, tp)
        ]
        # Precompute the vectorized cost surfaces over the shapes this config
        # can reach (bit-identical to the scalar path; shared across engines
        # with identical stages via the module-level build cache).
        install_default_grids(
            self.stage_models,
            max_batch=self.config.max_num_seqs,
            max_prompt_len=self.config.max_prefill_tokens,
        )
        if parallel == "pp":
            gpu_groups = [(i,) for i in range(g)]
        else:
            gpu_groups = [tuple(range(g))]

        self.sim = sim if sim is not None else Simulator()
        self.trace = TraceRecorder(g)
        self.runtime = PipelineRuntime(
            sim=self.sim,
            trace=self.trace,
            gpu_groups=gpu_groups,
            interconnect=node.interconnect,
            on_complete=self._on_task_complete,
            async_transfer=async_transfer,
        )

        # Request bookkeeping.
        self.states: dict[int, RequestState] = {}
        self.waiting: deque[RequestState] = deque()
        self.finished: list[RequestState] = []
        self.inflight: dict[int, BatchTask] = {}

        # Control-plane load observer (see set_load_observer); None when the
        # engine runs standalone, so notifications cost one attribute read.
        self._load_observer: Callable[[], None] | None = None

        # Single-threaded synchronous driver (baselines only).
        self._driver_free_at = 0.0

        # Metrics.
        self.kv_log: list[KVUsageSample] = []
        self.phase_spans: list[PhaseSpan] = []
        self.recomputations = 0
        self.decode_steps = 0
        self.prefill_batches = 0
        self._kv_step = 0

    # ------------------------------------------------------------------ #
    # Cost evaluation.
    # ------------------------------------------------------------------ #
    @property
    def num_stages(self) -> int:
        return self.runtime.num_stages

    def _activation_bytes(self, tokens: int) -> float:
        if self.num_stages == 1:
            return 0.0
        return tokens * self.model.hidden_size * self.model.dtype_bytes

    def make_prefill_task(self, batch: Sequence[RequestState], **meta: object) -> BatchTask:
        seq_lens = [s.prefill_len for s in batch]
        times = tuple(sm.prefill_time(seq_lens) for sm in self.stage_models)
        return BatchTask(
            kind=PREFILL,
            request_ids=tuple(s.request_id for s in batch),
            stage_times=times,
            activation_bytes=self._activation_bytes(sum(seq_lens)),
            meta=dict(meta),
        )

    def make_decode_task(self, batch: Sequence[RequestState], **meta: object) -> BatchTask:
        bs = len(batch)
        kv_tokens = float(sum(s.kv_len for s in batch) + bs)
        times = tuple(sm.decode_time(bs, kv_tokens) for sm in self.stage_models)
        return BatchTask(
            kind=DECODE,
            request_ids=tuple(s.request_id for s in batch),
            stage_times=times,
            activation_bytes=self._activation_bytes(bs),
            meta=dict(meta),
        )

    def make_hybrid_task(
        self,
        decode_batch: Sequence[RequestState],
        chunks: Sequence[tuple[RequestState, PrefillChunk]],
        **meta: object,
    ) -> BatchTask:
        bs = len(decode_batch)
        kv_tokens = float(sum(s.kv_len for s in decode_batch) + bs)
        chunk_objs = [c for _, c in chunks]
        times = tuple(sm.hybrid_time(bs, kv_tokens, chunk_objs) for sm in self.stage_models)
        tokens = bs + sum(c.chunk_len for c in chunk_objs)
        task = BatchTask(
            kind=HYBRID,
            request_ids=tuple(s.request_id for s in decode_batch),
            stage_times=times,
            activation_bytes=self._activation_bytes(tokens),
            meta=dict(meta),
        )
        task.meta["chunks"] = [(s.request_id, c.chunk_len) for s, c in chunks]
        return task

    def submit(self, task: BatchTask) -> None:
        for rid in task.request_ids:
            self.inflight[rid] = task
        for rid, _ in task.meta.get("chunks", []):
            self.inflight[rid] = task
        if task.kind == PREFILL:
            self.prefill_batches += 1
        else:
            self.decode_steps += 1
        self.runtime.submit(task)

    def _clear_inflight(self, task: BatchTask) -> None:
        for rid in task.request_ids:
            self.inflight.pop(rid, None)
        for rid, _ in task.meta.get("chunks", []):
            self.inflight.pop(rid, None)

    # ------------------------------------------------------------------ #
    # Memory management.
    # ------------------------------------------------------------------ #
    @property
    def watermark_blocks(self) -> int:
        return int(self.block_manager.num_blocks * self.config.watermark_frac)

    def can_admit(self, state: RequestState) -> bool:
        """Whether a fresh prefill of this request fits above the watermark."""
        needed = self.block_manager.blocks_needed(state.prefill_len)
        return needed + self.watermark_blocks <= self.block_manager.free_blocks

    def set_load_observer(self, observer: Callable[[], None] | None) -> None:
        """Register a zero-arg callable fired on routing-signal changes.

        The control plane's incremental routers rebuild per-replica state
        lazily instead of sweeping the fleet per request; this hook is their
        invalidation source.  The contract is conservative: the engine calls
        the observer whenever a signal a router might read — waiting-queue
        length, in-system count, KV occupancy, temporal phase — *may* have
        changed.  Spurious notifications are harmless (one redundant
        refresh); missed ones desynchronize routing, so mutation helpers
        notify unconditionally.
        """
        self._load_observer = observer

    def _notify_load(self) -> None:
        obs = self._load_observer
        if obs is not None:
            obs()

    def admit(self, state: RequestState) -> None:
        self.block_manager.allocate(state.request_id, state.prefill_len)
        self._notify_load()

    def reserve_decode_tokens(
        self, batch: list[RequestState]
    ) -> tuple[list[RequestState], list[RequestState]]:
        """Reserve one appended token per batch member, evicting on overflow.

        Implements the paper's re-computation strategy: when blocks run out,
        the most recently admitted requests *in this batch* are evicted (KV
        freed, request re-queued for a future prefill).  Returns
        ``(survivors, evicted)``; survivors keep their original order and the
        evicted are already back on the waiting queue.
        """
        batch = list(batch)
        evicted: list[RequestState] = []
        while batch:
            needed = 0
            for s in batch:
                if self.block_manager.tokens_of(s.request_id) % self.block_manager.block_size == 0:
                    needed += 1
            if needed <= self.block_manager.free_blocks:
                break
            victim = max(
                batch,
                key=lambda s: self.block_manager.admit_seq_of(s.request_id),
            )
            batch.remove(victim)
            self.block_manager.free(victim.request_id)
            victim.evict()
            self.waiting.appendleft(victim)
            evicted.append(victim)
            self.recomputations += 1
        for s in batch:
            self.block_manager.append(s.request_id, 1)
        self._notify_load()
        return batch, evicted

    def driver_delay(self, n_seqs: int) -> float:
        """Delay until the synchronous driver has processed this step's output.

        Models vLLM's single Python driver thread: each finished step queues
        for the driver, which spends a fixed cost plus a per-sequence cost
        before the next step for that stream can be issued.  Concurrent
        streams (pipeline virtual engines) serialise on the same driver.
        """
        cfg = self.config
        overhead = cfg.driver_base_overhead_s + cfg.driver_per_seq_overhead_s * n_seqs
        if overhead <= 0:
            return 0.0
        start = max(self.sim.now, self._driver_free_at)
        self._driver_free_at = start + overhead
        return self._driver_free_at - self.sim.now

    def finish_request(self, state: RequestState) -> None:
        self.block_manager.free(state.request_id)
        state.finish_time = self.sim.now
        self.stamp_first_token(state)
        self.finished.append(state)
        self._notify_load()

    def stamp_first_token(self, state: RequestState) -> None:
        """Record TTFT the first time a request has produced a token."""
        if state.first_token_time is None and state.generated >= 1:
            state.first_token_time = self.sim.now

    # ------------------------------------------------------------------ #
    # Packing helpers shared by schedulers.
    # ------------------------------------------------------------------ #
    def pack_prefill_batch(self) -> list[RequestState]:
        """Pop waiting requests into a prefill batch within budget and memory."""
        cfg = self.config
        batch: list[RequestState] = []
        tokens = 0
        while self.waiting and len(batch) < cfg.max_prefill_seqs:
            nxt = self.waiting[0]
            if batch and tokens + nxt.prefill_len > cfg.max_prefill_tokens:
                break
            if not self.can_admit(nxt):
                break
            self.waiting.popleft()
            self.admit(nxt)
            batch.append(nxt)
            tokens += nxt.prefill_len
        return batch

    # ------------------------------------------------------------------ #
    # Logging.
    # ------------------------------------------------------------------ #
    def log_kv(self, phase: str) -> None:
        self._kv_step += 1
        if self._kv_step % self.config.kv_log_stride:
            return
        self.kv_log.append(
            KVUsageSample(
                step=self._kv_step,
                time=self.sim.now,
                usage_ratio=self.block_manager.usage_ratio,
                phase=phase,
            )
        )

    # ------------------------------------------------------------------ #
    # Run loop.
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _bootstrap(self) -> None:
        """Schedule the initial work (called once, at t=0)."""

    @abc.abstractmethod
    def _on_task_complete(self, task: BatchTask, end_time: float) -> None:
        """React to a batch finishing on the last stage."""

    def _on_arrival(self, state: RequestState) -> None:
        """Hook invoked when a request arrives after t=0 (online serving).

        Subclasses that can go fully idle must override this to wake up.
        """

    def _admit_arrival(self, state: RequestState) -> None:
        self.waiting.append(state)
        self._notify_load()
        self._on_arrival(state)

    def _on_run_end(self) -> None:
        """Hook invoked once after the event loop drains (before metrics)."""

    @property
    def in_system(self) -> int:
        """Requests submitted but not yet finished (queued + resident)."""
        return len(self.states) - len(self.finished)

    def start(self, requests: Iterable[Request], allow_empty: bool = False) -> None:
        """Register the workload and bootstrap the scheduler (no event loop).

        Splitting :meth:`run` into ``start`` / ``finalize`` lets a cluster
        drive many engines on one shared clock: each replica is started
        (possibly empty — requests then arrive via :meth:`enqueue`), the
        shared simulator is run once, and each replica is finalized.
        """
        reqs = list(requests)
        if not reqs and not allow_empty:
            raise ValueError("empty workload")
        self.states = {r.request_id: RequestState(r) for r in reqs}
        # Offline requests (arrival <= 0) are available immediately; online
        # arrivals enter the waiting queue at their stamped times.
        self.waiting = deque(
            s for s in self.states.values() if s.request.arrival_time <= 0
        )
        for s in self.states.values():
            if s.request.arrival_time > 0:
                self.sim.schedule_at(
                    s.request.arrival_time, lambda st=s: self._admit_arrival(st)
                )
        self._notify_load()
        self._bootstrap()

    def enqueue(self, request: Request) -> None:
        """Hand one request to the engine at the current simulated time.

        Used by cluster routers that pick a replica at the request's arrival
        instant; the engine treats it exactly like a stamped online arrival.
        """
        if request.request_id in self.states:
            raise ValueError(f"request {request.request_id} already submitted")
        state = RequestState(request)
        self.states[request.request_id] = state
        self._admit_arrival(state)

    def finalize(self) -> RunResult:
        """Check for deadlock and assemble the :class:`RunResult`."""
        self._on_run_end()
        unfinished = len(self.states) - len(self.finished)
        if unfinished:
            raise SimulationError(
                f"{self.system_name}: deadlock — {unfinished} of {len(self.states)} "
                f"requests unfinished (waiting={len(self.waiting)}, "
                f"inflight={len(self.inflight)})"
            )
        total_prompt = sum(s.request.prompt_len for s in self.finished)
        total_output = sum(s.request.output_len for s in self.finished)
        return RunResult(
            system=self.system_name,
            node=self.node.name,
            model=self.model.short_name,
            num_devices=self.node.num_gpus,
            makespan=self.trace.makespan,
            completed_requests=len(self.finished),
            total_prompt_tokens=total_prompt,
            total_output_tokens=total_output,
            trace=self.trace,
            kv_log=self.kv_log,
            phase_spans=self.phase_spans,
            phase_switches=max(len(self.phase_spans) - 1, 0),
            recomputations=self.recomputations,
            decode_steps=self.decode_steps,
            prefill_batches=self.prefill_batches,
            latency=compute_latency_stats(self.finished),
        )

    def run(self, requests: Iterable[Request]) -> RunResult:
        self.start(requests)
        self.sim.run(max_events=self.config.max_events)
        return self.finalize()
