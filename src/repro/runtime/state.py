"""Per-request runtime state shared by all schedulers."""

from __future__ import annotations

from dataclasses import dataclass

from ..workload.request import Request

__all__ = ["RequestState"]


@dataclass(eq=False)
class RequestState:
    """Mutable execution state of one request.

    Identity semantics (``eq=False``): two states are the same only if they
    are the same object, which makes membership tests O(1)-cheap and avoids
    comparing embedded feature arrays.

    Lifecycle: waiting -> (prefill) -> running -> finished, possibly cycling
    back to waiting on a re-computation eviction.  After generating ``g``
    tokens and being evicted, the request re-prefills ``prompt_len + g``
    tokens (vLLM's recompute-preemption semantics: generated text is kept and
    treated as prompt).

    ``kv_len`` tracks tokens currently resident in the KV cache;
    ``prefix_done`` tracks chunked-prefill progress within the current
    (re)admission.
    """

    request: Request
    generated: int = 0
    kv_len: int = 0
    prefix_done: int = 0
    restarts: int = 0
    finish_time: float | None = None
    #: Simulated time the first output token was produced (for TTFT).
    first_token_time: float | None = None
    #: True once the current (re)admission's prompt is fully cached.  Needed
    #: as an explicit flag because ``prefill_len`` itself moves when the final
    #: chunk bumps ``generated``.
    prompt_complete: bool = False

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def prefill_len(self) -> int:
        """Tokens to prefill on (re)admission: prompt plus kept generations."""
        return self.request.prompt_len + self.generated

    @property
    def remaining_output(self) -> int:
        return self.request.output_len - self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_len

    # ------------------------------------------------------------------ #
    # Transitions.
    # ------------------------------------------------------------------ #
    def complete_prefill(self) -> None:
        """Whole-prompt prefill finished: KV resident, first token emitted."""
        self.kv_len = self.prefill_len
        self.prefix_done = self.kv_len
        self.prompt_complete = True
        self.generated += 1

    def advance_chunk(self, chunk_len: int) -> None:
        """A chunked-prefill step cached ``chunk_len`` more prompt tokens."""
        if self.prompt_complete:
            raise ValueError(f"request {self.request_id}: prompt already complete")
        if self.prefix_done + chunk_len > self.prefill_len:
            raise ValueError(
                f"chunk overruns prompt: {self.prefix_done}+{chunk_len} > {self.prefill_len}"
            )
        self.prefix_done += chunk_len
        self.kv_len += chunk_len
        if self.prefix_done == self.prefill_len:
            # Final chunk plays the prefill's role of emitting the first token.
            self.prompt_complete = True
            self.generated += 1

    def complete_decode_step(self) -> None:
        """One decode iteration: one more token generated and cached."""
        self.kv_len += 1
        self.generated += 1

    def evict(self) -> None:
        """Re-computation preemption: drop KV, go back to waiting."""
        self.kv_len = 0
        self.prefix_done = 0
        self.prompt_complete = False
        self.restarts += 1
