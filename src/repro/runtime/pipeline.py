"""Execution plane: pipeline stage workers on the discrete-event simulator.

This is the distributed runtime of the paper's hierarchy-controller structure
(Section 3.2).  Each :class:`StageWorker` is one GPU (or, for tensor
parallelism, one SPMD group spanning several GPUs) executing tasks serially
from a FIFO queue.  Completed stage outputs travel to the next stage over the
P2P fabric; the final stage reports back to the centralized engine over RPC.

Two transfer modes model the paper's key runtime distinction:

* ``async_transfer=True`` — the hierarchy-controller behaviour: the sender's
  GPU is free as soon as compute ends; the transfer overlaps with the next
  task (decoupled scheduling/execution enables "unblocked transmission").
* ``async_transfer=False`` — the naive SPMD behaviour the paper describes for
  vLLM-style pipeline parallelism, where the device-to-device transfer "has to
  be in a blocking style": the sender stays unavailable until the transfer
  completes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..hardware.interconnect import InterconnectSpec, p2p_time
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from .tasks import BatchTask

__all__ = ["StageWorker", "PipelineRuntime"]


@dataclass
class StageWorker:
    """One pipeline stage executing tasks serially."""

    sim: Simulator
    stage_index: int
    gpu_indices: tuple[int, ...]
    trace: TraceRecorder
    on_finish: Callable[[BatchTask, float], None]
    #: GPU unavailable during outbound transfer when False (blocking send).
    async_transfer: bool = True
    _queue: deque[BatchTask] = field(default_factory=deque, repr=False)
    _busy: bool = field(default=False, repr=False)
    _blocked_until: float = field(default=0.0, repr=False)
    tasks_executed: int = field(default=0, repr=False)

    def submit(self, task: BatchTask) -> None:
        """Enqueue a task at the current simulated time."""
        self._queue.append(task)
        self._try_start()

    def queue_depth(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    # ------------------------------------------------------------------ #
    def _try_start(self) -> None:
        if self._busy or not self._queue:
            return
        now = self.sim.now
        if now < self._blocked_until:
            # Blocking transfer still draining; retry when it finishes.
            self.sim.schedule_callback_at(self._blocked_until, self._try_start)
            return
        task = self._queue.popleft()
        self._busy = True
        start = now
        duration = task.stage_times[self.stage_index]
        self.sim.schedule_callback(duration, lambda: self._finish(task, start))

    def _finish(self, task: BatchTask, start: float) -> None:
        end = self.sim.now
        if end > start:
            for g in self.gpu_indices:
                self.trace[g].record(start, end, tag=task.kind)
        self.tasks_executed += 1
        self._busy = False
        self.on_finish(task, end)
        self._try_start()

    def block_until(self, t: float) -> None:
        """Mark the GPU unavailable until ``t`` (blocking outbound transfer)."""
        self._blocked_until = max(self._blocked_until, t)


class PipelineRuntime:
    """Chain of stage workers plus the engine-facing RPC boundary.

    ``num_stages == 1`` degenerates to a tensor-parallel (or single-GPU)
    executor whose single worker occupies every GPU in ``gpu_groups[0]``.
    """

    def __init__(
        self,
        sim: Simulator,
        trace: TraceRecorder,
        gpu_groups: list[tuple[int, ...]],
        interconnect: InterconnectSpec,
        on_complete: Callable[[BatchTask, float], None],
        async_transfer: bool = True,
        rpc_latency_s: float | None = None,
    ) -> None:
        if not gpu_groups:
            raise ValueError("need at least one stage")
        self.sim = sim
        self.trace = trace
        self.interconnect = interconnect
        self.on_complete = on_complete
        self.async_transfer = async_transfer
        self.rpc_latency_s = (
            interconnect.rpc_latency_s if rpc_latency_s is None else rpc_latency_s
        )
        self.workers: list[StageWorker] = []
        for s, gpus in enumerate(gpu_groups):
            self.workers.append(
                StageWorker(
                    sim=sim,
                    stage_index=s,
                    gpu_indices=tuple(gpus),
                    trace=trace,
                    on_finish=self._make_on_finish(s),
                    async_transfer=async_transfer,
                )
            )

    @property
    def num_stages(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------ #
    def submit(self, task: BatchTask) -> None:
        """Control plane hands a task to stage 0 (one RPC hop away)."""
        if task.num_stages != self.num_stages:
            raise ValueError(
                f"task has {task.num_stages} stage times, runtime has {self.num_stages}"
            )
        task.submit_time = self.sim.now
        self.sim.schedule_callback(
            self.rpc_latency_s, lambda: self.workers[0].submit(task)
        )

    def _make_on_finish(self, stage: int) -> Callable[[BatchTask, float], None]:
        def handler(task: BatchTask, end_time: float) -> None:
            if stage + 1 < self.num_stages:
                transfer = p2p_time(task.activation_bytes, self.interconnect)
                if not self.async_transfer:
                    self.workers[stage].block_until(end_time + transfer)
                next_worker = self.workers[stage + 1]
                self.sim.schedule_callback(transfer, lambda: next_worker.submit(task))
            else:
                # Sampled-token metadata returns to the engine over RPC.
                self.sim.schedule_callback(
                    self.rpc_latency_s, lambda: self.on_complete(task, end_time)
                )

        return handler
