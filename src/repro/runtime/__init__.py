"""Hierarchy-controller runtime: control plane + execution plane (Section 3.2)."""

from .base_engine import InferenceEngine
from .config import EngineConfig
from .pipeline import PipelineRuntime, StageWorker
from .state import RequestState
from .tasks import DECODE, HYBRID, PREFILL, BatchTask

__all__ = [
    "InferenceEngine",
    "EngineConfig",
    "PipelineRuntime",
    "StageWorker",
    "RequestState",
    "BatchTask",
    "PREFILL",
    "DECODE",
    "HYBRID",
]
