"""Engine configuration knobs (vLLM-equivalent scheduler parameters)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EngineConfig"]


@dataclass
class EngineConfig:
    """Scheduler parameters shared by TD-Pipe and the baselines.

    Defaults follow vLLM 0.5.3: 16-token KV blocks, 256 sequences per batch,
    2048-token prefill packing budget, 512-token chunked-prefill budget.
    """

    #: KV-cache block size in tokens.
    block_size: int = 16
    #: Token budget when packing whole prompts into one prefill batch.
    max_prefill_tokens: int = 2048
    #: Maximum prompts per prefill batch.
    max_prefill_seqs: int = 64
    #: Maximum sequences in one decode / hybrid batch (vLLM ``max_num_seqs``).
    max_num_seqs: int = 256
    #: Token budget of one hybrid (chunked-prefill) step.
    chunk_budget_tokens: int = 512
    #: Fraction of blocks kept free when admitting new requests.
    watermark_frac: float = 0.01
    #: Minimum KV capacity (tokens) below which a layout counts as OOM.
    min_capacity_tokens: int = 2048
    #: Synchronous-driver cost per scheduler step (vLLM-style engines): fixed
    #: part — scheduling, output dispatch — plus a per-sequence part —
    #: detokenisation, stop-checking, stream handling.  The baselines pay this
    #: serially on one driver thread between a step finishing and the next
    #: being issued; TD-Pipe's hierarchy-controller overlaps this work with
    #: execution (Section 3.2) and therefore skips it.
    #: Calibrated to vLLM 0.5.3, which was CPU-bound at large batch sizes
    #: (the v0.6 release notes attribute multi-x speedups to removing this
    #: driver overhead): ~8 ms scheduling/dispatch plus ~0.2 ms per sequence
    #: for sampling post-processing, detokenisation and stop checking.
    driver_base_overhead_s: float = 8e-3
    driver_per_seq_overhead_s: float = 1.5e-4
    #: Record a KV-usage sample every N engine events (Figure 12 resolution).
    kv_log_stride: int = 1
    #: Safety valve for the event loop (schedule bugs raise instead of hanging).
    max_events: int = 30_000_000
    #: Extra engine overrides for experiments (free-form).
    extras: dict = field(default_factory=dict)
