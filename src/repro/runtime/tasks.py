"""Batch tasks exchanged between the control plane and the execution plane."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["BatchTask", "PREFILL", "DECODE", "HYBRID"]

PREFILL = "prefill"
DECODE = "decode"
HYBRID = "hybrid"

_task_ids = itertools.count()


@dataclass
class BatchTask:
    """One unit of work launched by the centralized engine.

    The engine precomputes per-stage execution times (batch membership cannot
    change mid-flight, so this is exact) and the activation payload size
    handed between consecutive stages.
    """

    kind: str
    request_ids: tuple[int, ...]
    stage_times: tuple[float, ...]
    activation_bytes: float = 0.0
    batch_id: int = 0
    meta: dict[str, Any] = field(default_factory=dict)
    task_id: int = field(default_factory=lambda: next(_task_ids))
    submit_time: float = float("nan")

    def __post_init__(self) -> None:
        if self.kind not in (PREFILL, DECODE, HYBRID):
            raise ValueError(f"unknown task kind {self.kind!r}")
        if not self.stage_times:
            raise ValueError("stage_times must not be empty")
        if any(t < 0 for t in self.stage_times):
            raise ValueError("stage times must be non-negative")

    @property
    def num_stages(self) -> int:
        return len(self.stage_times)

    @property
    def total_time(self) -> float:
        return sum(self.stage_times)
