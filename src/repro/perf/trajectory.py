"""Cross-run perf-trajectory gate over ``BENCH_perf.json`` records.

A single ``tdpipe-bench perf`` run measures absolute numbers; this module
turns consecutive runs into a *trajectory*: the fresh record is compared
against a baseline record (typically the previous CI run's, restored from
the actions cache) metric by metric, each with its own regression
tolerance.  A metric regresses when::

    current < baseline * (1 - tolerance)

Improvements always pass (and should be promoted into the baseline via
``--update-baseline``).  Regressions can be *waived* explicitly — an
expected slowdown is declared with ``--waive metric[:reason]`` and shows up
in the report as waived rather than silently vanishing.  Metrics missing
from either record are reported as skipped, so the gate survives schema
evolution without false alarms.

The tolerances are deliberately loose: shared CI runners jitter by tens of
percent, and this gate exists to catch order-of-magnitude rot (an
accidentally quadratic loop, a dropped memo cache), not 5% noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "DEFAULT_TOLERANCES",
    "DEFAULT_CLUSTER_TOLERANCES",
    "MetricCheck",
    "TrajectoryReport",
    "compare_perf",
    "load_baseline",
    "parse_waivers",
]

#: Metric dotted-path -> allowed fractional regression vs baseline.
#: Rates only (higher is better); wall-clock sections are covered via their
#: rate forms so one tolerance direction suffices.
DEFAULT_TOLERANCES: dict[str, float] = {
    "kernel.events_per_sec": 0.35,
    "costmodel.decode_cold_calls_per_sec": 0.35,
    "costmodel.decode_warm_calls_per_sec": 0.35,
    "costmodel.prefill_cold_calls_per_sec": 0.35,
    "costmodel.prefill_warm_calls_per_sec": 0.35,
    "vectorized.grid_points_per_sec": 0.40,
    "regime.arrivals_per_sec": 0.40,
    "cluster_scale.routing_decisions_per_sec_128": 0.40,
    # The incremental-vs-sweep ratio: both sides jitter, but a collapse back
    # to O(fleet) routing shows up as an order-of-magnitude drop.
    "cluster_scale.routing_speedup_128": 0.50,
    "cluster_scale.cluster_events_per_sec_128": 0.40,
    "cluster.requests_per_sec_wall": 0.40,
    "grid.serial_points_per_sec": 0.40,
    "grid.parallel_points_per_sec": 0.40,
}

#: Trajectory tolerances for ``BENCH_cluster.json`` (the CI benchmark-smoke
#: record).  Unlike the perf tolerances these guard *simulated* metrics —
#: deterministic given spec + seed, so the tolerances are tight: small ones
#: absorb deliberate model refinements between PRs, and ``completed_requests``
#: is exact (losing requests is a bug, never drift).
DEFAULT_CLUSTER_TOLERANCES: dict[str, float] = {
    "throughput_tps": 0.05,
    "output_throughput_tps": 0.05,
    "goodput_rps": 0.05,
    "completed_requests": 0.0,
    "mean_utilization": 0.10,
    "slo_attainment.interactive": 0.05,
    "slo_attainment.batch": 0.05,
}


def _extract(record: Mapping[str, Any], path: str) -> float | None:
    node: Any = record
    for part in path.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


@dataclass(frozen=True)
class MetricCheck:
    """Outcome of one metric's baseline-vs-current comparison."""

    metric: str
    baseline: float | None
    current: float | None
    tolerance: float
    #: current / baseline (None when either side is missing or baseline <= 0).
    ratio: float | None
    #: Regressed beyond tolerance (before considering waivers).
    regressed: bool
    #: Waiver reason when the regression was explicitly declared, else None.
    waived: str | None = None

    @property
    def skipped(self) -> bool:
        return self.baseline is None or self.current is None

    @property
    def failed(self) -> bool:
        """An unexplained (non-waived) regression beyond tolerance."""
        return self.regressed and self.waived is None

    def describe(self) -> str:
        if self.skipped:
            side = "baseline" if self.baseline is None else "current"
            return f"SKIP  {self.metric}: missing in {side} record"
        assert self.ratio is not None
        status = "ok  "
        if self.regressed:
            status = "WAIVED" if self.waived is not None else "FAIL"
        line = (
            f"{status:<6} {self.metric}: {self.current:,.0f} vs baseline "
            f"{self.baseline:,.0f} ({self.ratio:.2f}x, tolerance -{self.tolerance:.0%})"
        )
        if self.waived is not None:
            line += f" [waived: {self.waived}]"
        return line


@dataclass
class TrajectoryReport:
    """All metric checks of one baseline-vs-fresh comparison."""

    checks: list[MetricCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(c.failed for c in self.checks)

    @property
    def failures(self) -> list[MetricCheck]:
        return [c for c in self.checks if c.failed]

    @property
    def waived(self) -> list[MetricCheck]:
        return [c for c in self.checks if c.regressed and c.waived is not None]

    def describe(self) -> str:
        lines = [c.describe() for c in self.checks]
        n_fail = len(self.failures)
        if n_fail:
            lines.append(
                f"perf trajectory: {n_fail} unexplained regression(s) beyond "
                "tolerance (waive expected slowdowns with --waive metric:reason)"
            )
        else:
            compared = sum(1 for c in self.checks if not c.skipped)
            lines.append(
                f"perf trajectory: ok ({compared} metric(s) within tolerance"
                + (f", {len(self.waived)} waived" if self.waived else "")
                + ")"
            )
        return "\n".join(lines)


def parse_waivers(entries: Iterable[str] | None) -> dict[str, str]:
    """``metric[:reason]`` CLI strings -> {metric: reason}."""
    waivers: dict[str, str] = {}
    for entry in entries or ():
        metric, _, reason = entry.partition(":")
        metric = metric.strip()
        if not metric:
            raise ValueError(f"empty metric in waiver {entry!r}")
        waivers[metric] = reason.strip() or "declared expected"
    return waivers


def compare_perf(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    tolerances: Mapping[str, float] | None = None,
    waivers: Mapping[str, str] | None = None,
) -> TrajectoryReport:
    """Compare a fresh BENCH_perf.json record against a baseline record."""
    tols = dict(DEFAULT_TOLERANCES if tolerances is None else tolerances)
    waivers = dict(waivers or {})
    unknown = set(waivers) - set(tols)
    if unknown:
        raise ValueError(
            f"waiver(s) for unknown metric(s): {sorted(unknown)}; "
            f"known: {sorted(tols)}"
        )
    report = TrajectoryReport()
    for metric, tol in tols.items():
        base = _extract(baseline, metric)
        cur = _extract(current, metric)
        ratio = None
        regressed = False
        if base is not None and cur is not None and base > 0:
            ratio = cur / base
            regressed = cur < base * (1.0 - tol)
        report.checks.append(
            MetricCheck(
                metric=metric,
                baseline=base,
                current=cur,
                tolerance=tol,
                ratio=ratio,
                regressed=regressed,
                waived=waivers.get(metric) if regressed else None,
            )
        )
    return report


def load_baseline(path: str, kind: str = "perf") -> dict[str, Any] | None:
    """Read a baseline bench record of ``kind``; None when absent/unreadable.

    A missing/corrupt baseline is not an error: the first run of a fresh
    cache has nothing to compare against, and the gate simply records the
    new baseline for next time.  ``kind`` selects which bench family the
    record must belong to (``"perf"`` for BENCH_perf.json, ``"cluster"``
    for BENCH_cluster.json) so a mis-pointed path cannot silently compare
    apples to oranges.
    """
    try:
        with open(path) as fh:
            record = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict) or record.get("kind") != kind:
        return None
    return record
