"""Micro + macro perf benchmarks emitting the ``BENCH_perf.json`` record.

Four sections, cheapest to dearest:

* **kernel** — raw event throughput of the discrete-event simulator (a
  self-rescheduling callback storm; no engines, no cost model);
* **costmodel** — roofline ``decode_time``/``prefill_time`` call throughput,
  split into cold (distinct argument tuples) and warm (repeated tuples, the
  memoized path engines actually hit);
* **cluster** — one mid-scale heterogeneous cluster run through the spec
  front door (the single-run macro number);
* **grid** — the fig13 prefill-switch spec grid executed serially and with a
  process pool (``run_many``), reporting points/sec for both, the speedup,
  and whether the two paths produced byte-identical canonical records.

``quick`` shrinks every section to CI-smoke size.  The serial grid leg runs
first on purpose: it warms the dataset/predictor caches that forked workers
then inherit, which is exactly how a warmed production parent behaves.
"""

from __future__ import annotations

import time
from typing import Any

from ..api.store.canonical import canonical_json
from ..sim.engine import Simulator

__all__ = ["run_perf_suite", "format_report"]

#: Schema of the BENCH_perf.json record (bump on incompatible change).
PERF_SCHEMA_VERSION = 1


# --------------------------------------------------------------------- #
# Micro: simulation kernel.
# --------------------------------------------------------------------- #
def bench_kernel(total_events: int) -> dict[str, Any]:
    """Events/sec of the bare kernel under a self-rescheduling storm."""
    sim = Simulator()
    fanout = 32
    budget = [total_events]

    def tick() -> None:
        if budget[0] > 0:
            budget[0] -= 1
            sim.schedule_callback(0.001, tick)

    for i in range(fanout):
        budget[0] -= 1
        sim.schedule_callback(0.001 * (i + 1), tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "events": sim.events_processed,
        "wall_s": wall,
        "events_per_sec": sim.events_processed / wall if wall > 0 else 0.0,
    }


# --------------------------------------------------------------------- #
# Micro: roofline cost model.
# --------------------------------------------------------------------- #
def bench_costmodel(calls: int) -> dict[str, Any]:
    """Cold vs warm call throughput of the memoized phase costs."""
    from ..costmodel.roofline import StageCostModel
    from ..hardware.node import make_node
    from ..models.partition import pipeline_shards
    from ..models.spec import get_model

    node = make_node("L20", 4)
    shard = pipeline_shards(get_model("32B"), pp_degree=4)[0]
    model = StageCostModel(shard=shard, gpu=node.gpu, interconnect=node.interconnect)

    def throughput(fn) -> tuple[float, float]:
        t0 = time.perf_counter()
        for i in range(calls):
            fn(i)
        wall = time.perf_counter() - t0
        return wall, calls / wall if wall > 0 else 0.0

    decode_cold = throughput(lambda i: model.decode_time(1 + i % 256, float(4096 + i)))
    decode_warm = throughput(lambda i: model.decode_time(1 + i % 256, 4096.0))
    prefill_cold = throughput(lambda i: model.prefill_time((64 + i,)))
    prefill_warm = throughput(lambda i: model.prefill_time((512, 64 + i % 8)))
    return {
        "calls": calls,
        "decode_cold_calls_per_sec": decode_cold[1],
        "decode_warm_calls_per_sec": decode_warm[1],
        "prefill_cold_calls_per_sec": prefill_cold[1],
        "prefill_warm_calls_per_sec": prefill_warm[1],
    }


# --------------------------------------------------------------------- #
# Macro: one mid-scale cluster run.
# --------------------------------------------------------------------- #
def bench_cluster(scale_factor: float) -> dict[str, Any]:
    from .. import api

    spec = api.ScenarioSpec(
        name="perf-cluster",
        mode="cluster",
        workload=api.WorkloadSpec(
            scale=scale_factor, seed=0, arrival="poisson", rate_rps=10.0,
            slo_mix="interactive:0.7,batch:0.3",
        ),
        fleet=api.FleetSpec(fleet="l20:2,a100:2"),
        engine=api.EngineSpec(system="TD-Pipe", model="13B"),
        control=api.ControlSpec(router="jsq"),
    )
    artifact = api.run(spec)
    result = artifact.result
    wall = artifact.wall_time_s
    return {
        "scale": scale_factor,
        "wall_s": wall,
        "completed_requests": result.completed_requests,
        "throughput_tps": result.throughput,
        "requests_per_sec_wall": (
            result.completed_requests / wall if wall > 0 else 0.0
        ),
    }


# --------------------------------------------------------------------- #
# Macro: serial vs parallel spec grid.
# --------------------------------------------------------------------- #
def _canonical_record(artifact) -> str:
    """Canonical bytes of a full record, minus per-host wall time."""
    record = artifact.to_record(detail=True)
    record.pop("wall_time_s", None)
    return canonical_json(record)


def bench_grid(scale_factor: float, jobs: int) -> dict[str, Any]:
    from .. import api
    from ..experiments.fig13_prefill_switch import prefill_switch_spec

    sweep = prefill_switch_spec(
        node="L20", model="32B", scale_factor=scale_factor, seed=0
    )
    specs = [point.spec for point in sweep.expand()]

    t0 = time.perf_counter()
    serial = api.run_many(specs, jobs=1)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = api.run_many(specs, jobs=jobs)
    parallel_wall = time.perf_counter() - t0

    identical = all(
        _canonical_record(a) == _canonical_record(b)
        for a, b in zip(serial, parallel)
    )
    points = len(specs)
    return {
        "experiment": "fig13-prefill-switch",
        "scale": scale_factor,
        "points": points,
        "jobs": jobs,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "serial_points_per_sec": points / serial_wall if serial_wall > 0 else 0.0,
        "parallel_points_per_sec": (
            points / parallel_wall if parallel_wall > 0 else 0.0
        ),
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "records_identical": identical,
    }


# --------------------------------------------------------------------- #
# The suite.
# --------------------------------------------------------------------- #
def run_perf_suite(
    quick: bool = False,
    jobs: int = 4,
    *,
    kernel_events: int | None = None,
    costmodel_calls: int | None = None,
    cluster_scale: float | None = None,
    grid_scale: float | None = None,
) -> dict[str, Any]:
    """Run every benchmark section; return the BENCH_perf.json record.

    ``quick`` is the CI-smoke size; the keyword overrides exist so tests can
    shrink sections further.
    """
    import os

    if kernel_events is None:
        kernel_events = 200_000 if quick else 1_000_000
    if costmodel_calls is None:
        costmodel_calls = 50_000 if quick else 200_000
    if cluster_scale is None:
        cluster_scale = 0.05 if quick else 0.2
    if grid_scale is None:
        # Grid points must dwarf the fixed per-point pool overhead
        # (serialization + reconstruction, ~0.15s) or the speedup number
        # measures IPC, not execution.  0.2 => ~1.7s of compute per point.
        grid_scale = 0.2 if quick else 0.4
    return {
        "schema_version": PERF_SCHEMA_VERSION,
        "kind": "perf",
        "quick": quick,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "kernel": bench_kernel(kernel_events),
        "costmodel": bench_costmodel(costmodel_calls),
        "cluster": bench_cluster(cluster_scale),
        "grid": bench_grid(grid_scale, jobs),
    }


def format_report(report: dict[str, Any]) -> str:
    kernel = report["kernel"]
    cost = report["costmodel"]
    cluster = report["cluster"]
    grid = report["grid"]
    lines = [
        f"perf suite ({'quick' if report['quick'] else 'full'}, "
        f"{report['jobs']} jobs, {report['cpu_count']} cpus)",
        f"  kernel    : {kernel['events_per_sec']:>12,.0f} events/s "
        f"({kernel['events']:,} events in {kernel['wall_s']:.2f}s)",
        f"  costmodel : decode {cost['decode_cold_calls_per_sec']:,.0f} cold / "
        f"{cost['decode_warm_calls_per_sec']:,.0f} warm calls/s, "
        f"prefill {cost['prefill_cold_calls_per_sec']:,.0f} cold / "
        f"{cost['prefill_warm_calls_per_sec']:,.0f} warm (memoized) calls/s",
        f"  cluster   : scale {cluster['scale']:g} run in "
        f"{cluster['wall_s']:.2f}s "
        f"({cluster['throughput_tps']:.0f} tok/s simulated, "
        f"{cluster['requests_per_sec_wall']:.1f} req/s of wall time)",
        f"  grid      : {grid['points']} fig13 points — serial "
        f"{grid['serial_wall_s']:.2f}s "
        f"({grid['serial_points_per_sec']:.2f} pts/s), parallel "
        f"{grid['parallel_wall_s']:.2f}s "
        f"({grid['parallel_points_per_sec']:.2f} pts/s), "
        f"speedup {grid['speedup']:.2f}x, records "
        f"{'identical' if grid['records_identical'] else 'DIVERGED'}",
    ]
    return "\n".join(lines)
