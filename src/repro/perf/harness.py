"""Micro + macro perf benchmarks emitting the ``BENCH_perf.json`` record.

Six sections, cheapest to dearest:

* **kernel** — raw event throughput of the discrete-event simulator (a
  self-rescheduling callback storm; no engines, no cost model);
* **costmodel** — roofline ``decode_time``/``prefill_time`` call throughput,
  split into cold (distinct argument tuples) and warm (repeated tuples, the
  memoized path engines actually hit);
* **vectorized** — numpy cost-surface construction (grid points/sec), grid
  lookup throughput, and the vectorized decode-rate-curve throughput;
* **regime** — arrival-schedule compilation throughput (arrivals/sec) of the
  workload-regime engine on a stretched ``diurnal`` preset with sessions;
* **cluster** — one mid-scale heterogeneous cluster run through the spec
  front door (the single-run macro number);
* **grid** — the fig13 prefill-switch spec grid executed serially and with a
  process pool (``run_many``), reporting points/sec for both, the speedup,
  and whether the two paths produced byte-identical canonical records.

``quick`` shrinks every section to CI-smoke size.  The serial grid leg runs
first on purpose: it warms the dataset/predictor caches that forked workers
then inherit, which is exactly how a warmed production parent behaves.

``repeat`` runs the micro sections (kernel, costmodel, vectorized, regime)
N times
and reports medians, with every sample recorded, so the cross-run
trajectory gate (:mod:`repro.perf.trajectory`) diffs stable numbers instead
of single-sample noise.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Callable

from ..api.store.canonical import canonical_json
from ..sim.engine import Simulator

__all__ = ["run_perf_suite", "format_report"]

#: Schema of the BENCH_perf.json record (bump on incompatible change).
PERF_SCHEMA_VERSION = 1


def _median_sample(samples: list[dict[str, Any]], key: str) -> dict[str, Any]:
    """The sample holding the (lower) median of ``key`` — a real measured
    run, so its fields stay internally consistent."""
    ranked = sorted(samples, key=lambda s: s[key])
    return ranked[(len(ranked) - 1) // 2]


def _repeated(bench: Callable[[], dict[str, Any]], repeat: int) -> list[dict[str, Any]]:
    return [bench() for _ in range(max(1, repeat))]


# --------------------------------------------------------------------- #
# Micro: simulation kernel.
# --------------------------------------------------------------------- #
def bench_kernel(total_events: int) -> dict[str, Any]:
    """Events/sec of the bare kernel under a self-rescheduling storm."""
    sim = Simulator()
    fanout = 32
    budget = [total_events]

    def tick() -> None:
        if budget[0] > 0:
            budget[0] -= 1
            sim.schedule_callback(0.001, tick)

    for i in range(fanout):
        budget[0] -= 1
        sim.schedule_callback(0.001 * (i + 1), tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "events": sim.events_processed,
        "wall_s": wall,
        "events_per_sec": sim.events_processed / wall if wall > 0 else 0.0,
    }


# --------------------------------------------------------------------- #
# Micro: roofline cost model.
# --------------------------------------------------------------------- #
def bench_costmodel(calls: int) -> dict[str, Any]:
    """Cold vs warm call throughput of the memoized phase costs."""
    from ..costmodel.roofline import StageCostModel
    from ..hardware.node import make_node
    from ..models.partition import pipeline_shards
    from ..models.spec import get_model

    node = make_node("L20", 4)
    shard = pipeline_shards(get_model("32B"), pp_degree=4)[0]
    model = StageCostModel(shard=shard, gpu=node.gpu, interconnect=node.interconnect)

    def throughput(fn) -> tuple[float, float]:
        t0 = time.perf_counter()
        for i in range(calls):
            fn(i)
        wall = time.perf_counter() - t0
        return wall, calls / wall if wall > 0 else 0.0

    decode_cold = throughput(lambda i: model.decode_time(1 + i % 256, float(4096 + i)))
    decode_warm = throughput(lambda i: model.decode_time(1 + i % 256, 4096.0))
    prefill_cold = throughput(lambda i: model.prefill_time((64 + i,)))
    prefill_warm = throughput(lambda i: model.prefill_time((512, 64 + i % 8)))
    return {
        "calls": calls,
        "decode_cold_calls_per_sec": decode_cold[1],
        "decode_warm_calls_per_sec": decode_warm[1],
        "prefill_cold_calls_per_sec": prefill_cold[1],
        "prefill_warm_calls_per_sec": prefill_warm[1],
    }


# --------------------------------------------------------------------- #
# Micro: vectorized cost surfaces.
# --------------------------------------------------------------------- #
def bench_vectorized(lookups: int) -> dict[str, Any]:
    """Grid construction, grid lookup and rate-curve throughput.

    Grids are built directly (bypassing the module-level build cache) so the
    build number reflects the true cold engine-start cost.
    """
    import numpy as np

    from ..costmodel.roofline import StageCostModel
    from ..costmodel.vectorized import DecodeGrid, PrefillGrid, decode_rate_curve
    from ..hardware.node import make_node
    from ..models.partition import pipeline_shards
    from ..models.spec import get_model

    node = make_node("L20", 4)
    shard = pipeline_shards(get_model("32B"), pp_degree=4)[0]
    model = StageCostModel(shard=shard, gpu=node.gpu, interconnect=node.interconnect)

    t0 = time.perf_counter()
    grid = DecodeGrid(model, max_batch=256, kv_start=16, kv_step=16, n_kv=256)
    pgrid = PrefillGrid(model, max_len=2048)
    build_wall = time.perf_counter() - t0
    points = grid.size + pgrid.size

    lookup = grid.lookup
    t0 = time.perf_counter()
    for i in range(lookups):
        lookup(1 + i % 256, float(16 * (1 + i % 256)))
    lookup_wall = time.perf_counter() - t0

    batch_sizes = np.arange(1, 257, dtype=np.float64)
    curves = max(lookups // 1024, 8)
    t0 = time.perf_counter()
    for i in range(curves):
        decode_rate_curve(model, batch_sizes, 128.0 + i)
    curve_wall = time.perf_counter() - t0
    curve_points = curves * len(batch_sizes)
    return {
        "grid_points": points,
        "build_wall_s": build_wall,
        "grid_points_per_sec": points / build_wall if build_wall > 0 else 0.0,
        "lookup_calls_per_sec": lookups / lookup_wall if lookup_wall > 0 else 0.0,
        "curve_points_per_sec": (
            curve_points / curve_wall if curve_wall > 0 else 0.0
        ),
    }


# --------------------------------------------------------------------- #
# Micro: regime arrival-schedule compilation.
# --------------------------------------------------------------------- #
def bench_regime(target_arrivals: int) -> dict[str, Any]:
    """Arrivals/sec of compiling a regime timeline into a schedule.

    Stretches the ``diurnal`` preset (sessions included, so the Python
    follow-up chain is measured too) until it expects roughly
    ``target_arrivals``, then times :func:`~repro.workload.regimes
    .compile_regime` — the per-run cost every regime workload pays before
    the first simulated event.
    """
    from ..workload.regimes import compile_regime, get_regime

    base = get_regime("diurnal")
    duration_scale = max(target_arrivals / base.expected_arrivals, 0.01)
    regime = get_regime("diurnal", duration_scale=duration_scale)
    t0 = time.perf_counter()
    compiled = compile_regime(regime, seed=0, default_slo_mix=None)
    wall = time.perf_counter() - t0
    return {
        "arrivals": compiled.num_requests,
        "sessions": compiled.num_sessions,
        "wall_s": wall,
        "arrivals_per_sec": compiled.num_requests / wall if wall > 0 else 0.0,
    }


# --------------------------------------------------------------------- #
# Macro: one mid-scale cluster run.
# --------------------------------------------------------------------- #
def bench_cluster(scale_factor: float) -> dict[str, Any]:
    from .. import api

    spec = api.ScenarioSpec(
        name="perf-cluster",
        mode="cluster",
        workload=api.WorkloadSpec(
            scale=scale_factor, seed=0, arrival="poisson", rate_rps=10.0,
            slo_mix="interactive:0.7,batch:0.3",
        ),
        fleet=api.FleetSpec(fleet="l20:2,a100:2"),
        engine=api.EngineSpec(system="TD-Pipe", model="13B"),
        control=api.ControlSpec(router="jsq"),
    )
    artifact = api.run(spec)
    result = artifact.result
    wall = artifact.wall_time_s
    return {
        "scale": scale_factor,
        "wall_s": wall,
        "completed_requests": result.completed_requests,
        "throughput_tps": result.throughput,
        "requests_per_sec_wall": (
            result.completed_requests / wall if wall > 0 else 0.0
        ),
    }


# --------------------------------------------------------------------- #
# Macro: serial vs parallel spec grid.
# --------------------------------------------------------------------- #
def _canonical_record(artifact) -> str:
    """Canonical bytes of a full record, minus per-host wall time."""
    record = artifact.to_record(detail=True)
    record.pop("wall_time_s", None)
    return canonical_json(record)


def bench_grid(scale_factor: float, jobs: int) -> dict[str, Any]:
    from .. import api
    from ..experiments.fig13_prefill_switch import prefill_switch_spec

    sweep = prefill_switch_spec(
        node="L20", model="32B", scale_factor=scale_factor, seed=0
    )
    specs = [point.spec for point in sweep.expand()]

    t0 = time.perf_counter()
    serial = api.run_many(specs, jobs=1)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = api.run_many(specs, jobs=jobs)
    parallel_wall = time.perf_counter() - t0

    identical = all(
        _canonical_record(a) == _canonical_record(b)
        for a, b in zip(serial, parallel)
    )
    points = len(specs)
    return {
        "experiment": "fig13-prefill-switch",
        "scale": scale_factor,
        "points": points,
        "jobs": jobs,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "serial_points_per_sec": points / serial_wall if serial_wall > 0 else 0.0,
        "parallel_points_per_sec": (
            points / parallel_wall if parallel_wall > 0 else 0.0
        ),
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "records_identical": identical,
    }


# --------------------------------------------------------------------- #
# The suite.
# --------------------------------------------------------------------- #
def run_perf_suite(
    quick: bool = False,
    jobs: int = 4,
    repeat: int = 1,
    *,
    kernel_events: int | None = None,
    costmodel_calls: int | None = None,
    regime_arrivals: int | None = None,
    cluster_scale: float | None = None,
    grid_scale: float | None = None,
) -> dict[str, Any]:
    """Run every benchmark section; return the BENCH_perf.json record.

    ``quick`` is the CI-smoke size; the keyword overrides exist so tests can
    shrink sections further.  ``repeat`` re-runs the micro sections N times
    and reports the median (every sample is kept in the record).
    """
    import os

    if kernel_events is None:
        kernel_events = 200_000 if quick else 1_000_000
    if costmodel_calls is None:
        costmodel_calls = 50_000 if quick else 200_000
    if regime_arrivals is None:
        regime_arrivals = 20_000 if quick else 100_000
    if cluster_scale is None:
        cluster_scale = 0.05 if quick else 0.2
    if grid_scale is None:
        # Grid points must dwarf the fixed per-point pool overhead
        # (serialization + reconstruction, ~0.15s) or the speedup number
        # measures IPC, not execution.  0.2 => ~1.7s of compute per point.
        grid_scale = 0.2 if quick else 0.4
    repeat = max(1, repeat)

    kernel_samples = _repeated(lambda: bench_kernel(kernel_events), repeat)
    kernel = dict(_median_sample(kernel_samples, "events_per_sec"))

    cost_samples = _repeated(lambda: bench_costmodel(costmodel_calls), repeat)
    costmodel = {
        "calls": cost_samples[0]["calls"],
        **{
            metric: statistics.median(s[metric] for s in cost_samples)
            for metric in (
                "decode_cold_calls_per_sec",
                "decode_warm_calls_per_sec",
                "prefill_cold_calls_per_sec",
                "prefill_warm_calls_per_sec",
            )
        },
    }

    vector_samples = _repeated(
        lambda: bench_vectorized(costmodel_calls), repeat
    )
    vectorized = dict(_median_sample(vector_samples, "grid_points_per_sec"))

    regime_samples = _repeated(lambda: bench_regime(regime_arrivals), repeat)
    regime = dict(_median_sample(regime_samples, "arrivals_per_sec"))

    if repeat > 1:
        kernel["repeat"] = repeat
        kernel["samples_events_per_sec"] = [
            s["events_per_sec"] for s in kernel_samples
        ]
        costmodel["repeat"] = repeat
        costmodel["samples"] = cost_samples
        vectorized["repeat"] = repeat
        vectorized["samples_grid_points_per_sec"] = [
            s["grid_points_per_sec"] for s in vector_samples
        ]
        regime["repeat"] = repeat
        regime["samples_arrivals_per_sec"] = [
            s["arrivals_per_sec"] for s in regime_samples
        ]

    return {
        "schema_version": PERF_SCHEMA_VERSION,
        "kind": "perf",
        "quick": quick,
        "jobs": jobs,
        "repeat": repeat,
        "cpu_count": os.cpu_count(),
        "kernel": kernel,
        "costmodel": costmodel,
        "vectorized": vectorized,
        "regime": regime,
        "cluster": bench_cluster(cluster_scale),
        "grid": bench_grid(grid_scale, jobs),
    }


def format_report(report: dict[str, Any]) -> str:
    kernel = report["kernel"]
    cost = report["costmodel"]
    vector = report.get("vectorized")
    regime = report.get("regime")
    cluster = report["cluster"]
    grid = report["grid"]
    repeat = report.get("repeat", 1)
    lines = [
        f"perf suite ({'quick' if report['quick'] else 'full'}, "
        f"{report['jobs']} jobs, {report['cpu_count']} cpus"
        + (f", median of {repeat}" if repeat > 1 else "")
        + ")",
        f"  kernel    : {kernel['events_per_sec']:>12,.0f} events/s "
        f"({kernel['events']:,} events in {kernel['wall_s']:.2f}s)",
        f"  costmodel : decode {cost['decode_cold_calls_per_sec']:,.0f} cold / "
        f"{cost['decode_warm_calls_per_sec']:,.0f} warm calls/s, "
        f"prefill {cost['prefill_cold_calls_per_sec']:,.0f} cold / "
        f"{cost['prefill_warm_calls_per_sec']:,.0f} warm (memoized) calls/s",
        *(
            [
                f"  vectorized: {vector['grid_points_per_sec']:,.0f} grid "
                f"points/s built ({vector['grid_points']:,} points in "
                f"{vector['build_wall_s'] * 1e3:.1f}ms), "
                f"{vector['lookup_calls_per_sec']:,.0f} lookups/s, "
                f"{vector['curve_points_per_sec']:,.0f} curve points/s"
            ]
            if vector is not None
            else []
        ),
        *(
            [
                f"  regime    : {regime['arrivals_per_sec']:>12,.0f} arrivals/s "
                f"compiled ({regime['arrivals']:,} arrivals, "
                f"{regime['sessions']:,} sessions in {regime['wall_s']:.2f}s)"
            ]
            if regime is not None
            else []
        ),
        f"  cluster   : scale {cluster['scale']:g} run in "
        f"{cluster['wall_s']:.2f}s "
        f"({cluster['throughput_tps']:.0f} tok/s simulated, "
        f"{cluster['requests_per_sec_wall']:.1f} req/s of wall time)",
        f"  grid      : {grid['points']} fig13 points — serial "
        f"{grid['serial_wall_s']:.2f}s "
        f"({grid['serial_points_per_sec']:.2f} pts/s), parallel "
        f"{grid['parallel_wall_s']:.2f}s "
        f"({grid['parallel_points_per_sec']:.2f} pts/s), "
        f"speedup {grid['speedup']:.2f}x, records "
        f"{'identical' if grid['records_identical'] else 'DIVERGED'}",
    ]
    return "\n".join(lines)
