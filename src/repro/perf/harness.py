"""Micro + macro perf benchmarks emitting the ``BENCH_perf.json`` record.

Seven sections, cheapest to dearest:

* **kernel** — raw event throughput of the discrete-event simulator (a
  self-rescheduling callback storm; no engines, no cost model);
* **costmodel** — roofline ``decode_time``/``prefill_time`` call throughput,
  split into cold (distinct argument tuples) and warm (repeated tuples, the
  memoized path engines actually hit);
* **vectorized** — numpy cost-surface construction (grid points/sec), grid
  lookup throughput, and the vectorized decode-rate-curve throughput;
* **regime** — arrival-schedule compilation throughput (arrivals/sec) of the
  workload-regime engine on a stretched ``diurnal`` preset with sessions;
* **cluster_scale** — control-plane scaling: routing decisions/sec on stub
  fleets of 4/32/128 replicas for both the incremental fast path and the
  ``TDPIPE_ROUTING_SWEEP`` reference sweep (with destination parity and a
  zero-snapshot-allocation assertion), plus end-to-end cluster events/sec at
  the same fleet sizes;
* **cluster** — one mid-scale heterogeneous cluster run through the spec
  front door (the single-run macro number);
* **grid** — the fig13 prefill-switch spec grid executed serially and with a
  process pool (``run_many``), reporting points/sec for both, the speedup,
  and whether the two paths produced byte-identical canonical records.

``quick`` shrinks every section to CI-smoke size.  The serial grid leg runs
first on purpose: it warms the dataset/predictor caches that forked workers
then inherit, which is exactly how a warmed production parent behaves.

``repeat`` runs the micro sections (kernel, costmodel, vectorized, regime)
N times
and reports medians, with every sample recorded, so the cross-run
trajectory gate (:mod:`repro.perf.trajectory`) diffs stable numbers instead
of single-sample noise.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Callable

from ..api.store.canonical import canonical_json
from ..sim.engine import Simulator

__all__ = ["run_perf_suite", "format_report"]

#: Schema of the BENCH_perf.json record (bump on incompatible change).
PERF_SCHEMA_VERSION = 1


def _median_sample(samples: list[dict[str, Any]], key: str) -> dict[str, Any]:
    """The sample holding the (lower) median of ``key`` — a real measured
    run, so its fields stay internally consistent."""
    ranked = sorted(samples, key=lambda s: s[key])
    return ranked[(len(ranked) - 1) // 2]


def _repeated(bench: Callable[[], dict[str, Any]], repeat: int) -> list[dict[str, Any]]:
    return [bench() for _ in range(max(1, repeat))]


# --------------------------------------------------------------------- #
# Micro: simulation kernel.
# --------------------------------------------------------------------- #
def bench_kernel(total_events: int) -> dict[str, Any]:
    """Events/sec of the bare kernel under a self-rescheduling storm."""
    sim = Simulator()
    fanout = 32
    budget = [total_events]

    def tick() -> None:
        if budget[0] > 0:
            budget[0] -= 1
            sim.schedule_callback(0.001, tick)

    for i in range(fanout):
        budget[0] -= 1
        sim.schedule_callback(0.001 * (i + 1), tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "events": sim.events_processed,
        "wall_s": wall,
        "events_per_sec": sim.events_processed / wall if wall > 0 else 0.0,
    }


# --------------------------------------------------------------------- #
# Micro: roofline cost model.
# --------------------------------------------------------------------- #
def bench_costmodel(calls: int) -> dict[str, Any]:
    """Cold vs warm call throughput of the memoized phase costs."""
    from ..costmodel.roofline import StageCostModel
    from ..hardware.node import make_node
    from ..models.partition import pipeline_shards
    from ..models.spec import get_model

    node = make_node("L20", 4)
    shard = pipeline_shards(get_model("32B"), pp_degree=4)[0]
    model = StageCostModel(shard=shard, gpu=node.gpu, interconnect=node.interconnect)

    def throughput(fn) -> tuple[float, float]:
        t0 = time.perf_counter()
        for i in range(calls):
            fn(i)
        wall = time.perf_counter() - t0
        return wall, calls / wall if wall > 0 else 0.0

    decode_cold = throughput(lambda i: model.decode_time(1 + i % 256, float(4096 + i)))
    decode_warm = throughput(lambda i: model.decode_time(1 + i % 256, 4096.0))
    prefill_cold = throughput(lambda i: model.prefill_time((64 + i,)))
    prefill_warm = throughput(lambda i: model.prefill_time((512, 64 + i % 8)))
    return {
        "calls": calls,
        "decode_cold_calls_per_sec": decode_cold[1],
        "decode_warm_calls_per_sec": decode_warm[1],
        "prefill_cold_calls_per_sec": prefill_cold[1],
        "prefill_warm_calls_per_sec": prefill_warm[1],
    }


# --------------------------------------------------------------------- #
# Micro: vectorized cost surfaces.
# --------------------------------------------------------------------- #
def bench_vectorized(lookups: int) -> dict[str, Any]:
    """Grid construction, grid lookup and rate-curve throughput.

    Grids are built directly (bypassing the module-level build cache) so the
    build number reflects the true cold engine-start cost.
    """
    import numpy as np

    from ..costmodel.roofline import StageCostModel
    from ..costmodel.vectorized import DecodeGrid, PrefillGrid, decode_rate_curve
    from ..hardware.node import make_node
    from ..models.partition import pipeline_shards
    from ..models.spec import get_model

    node = make_node("L20", 4)
    shard = pipeline_shards(get_model("32B"), pp_degree=4)[0]
    model = StageCostModel(shard=shard, gpu=node.gpu, interconnect=node.interconnect)

    t0 = time.perf_counter()
    grid = DecodeGrid(model, max_batch=256, kv_start=16, kv_step=16, n_kv=256)
    pgrid = PrefillGrid(model, max_len=2048)
    build_wall = time.perf_counter() - t0
    points = grid.size + pgrid.size

    lookup = grid.lookup
    t0 = time.perf_counter()
    for i in range(lookups):
        lookup(1 + i % 256, float(16 * (1 + i % 256)))
    lookup_wall = time.perf_counter() - t0

    batch_sizes = np.arange(1, 257, dtype=np.float64)
    curves = max(lookups // 1024, 8)
    t0 = time.perf_counter()
    for i in range(curves):
        decode_rate_curve(model, batch_sizes, 128.0 + i)
    curve_wall = time.perf_counter() - t0
    curve_points = curves * len(batch_sizes)
    return {
        "grid_points": points,
        "build_wall_s": build_wall,
        "grid_points_per_sec": points / build_wall if build_wall > 0 else 0.0,
        "lookup_calls_per_sec": lookups / lookup_wall if lookup_wall > 0 else 0.0,
        "curve_points_per_sec": (
            curve_points / curve_wall if curve_wall > 0 else 0.0
        ),
    }


# --------------------------------------------------------------------- #
# Micro: regime arrival-schedule compilation.
# --------------------------------------------------------------------- #
def bench_regime(target_arrivals: int) -> dict[str, Any]:
    """Arrivals/sec of compiling a regime timeline into a schedule.

    Stretches the ``diurnal`` preset (sessions included, so the Python
    follow-up chain is measured too) until it expects roughly
    ``target_arrivals``, then times :func:`~repro.workload.regimes
    .compile_regime` — the per-run cost every regime workload pays before
    the first simulated event.
    """
    from ..workload.regimes import compile_regime, get_regime

    base = get_regime("diurnal")
    duration_scale = max(target_arrivals / base.expected_arrivals, 0.01)
    regime = get_regime("diurnal", duration_scale=duration_scale)
    t0 = time.perf_counter()
    compiled = compile_regime(regime, seed=0, default_slo_mix=None)
    wall = time.perf_counter() - t0
    return {
        "arrivals": compiled.num_requests,
        "sessions": compiled.num_sessions,
        "wall_s": wall,
        "arrivals_per_sec": compiled.num_requests / wall if wall > 0 else 0.0,
    }


# --------------------------------------------------------------------- #
# Control-plane scaling: routing decisions/sec + cluster events/sec vs
# fleet size.
# --------------------------------------------------------------------- #
class _StubBlockManager:
    __slots__ = ("usage_ratio",)

    def __init__(self) -> None:
        self.usage_ratio = 0.0


class _StubReplica:
    """Minimal load-signal surface for routing micro-benchmarks.

    Exposes exactly what routers read (waiting/in_system/kv/phase) plus the
    load-observer hook, so the control plane takes its real incremental path
    while the benchmark mutates load in O(1) per decision.  No
    ``stage_models`` attribute, so the capacity score falls back to 1.0.
    """

    def __init__(self) -> None:
        self.waiting: list[Any] = []
        self.in_system = 0
        self.block_manager = _StubBlockManager()
        self.phase: str | None = None
        self._observer: Callable[[], None] | None = None

    def set_load_observer(self, observer: Callable[[], None] | None) -> None:
        self._observer = observer

    def notify(self) -> None:
        if self._observer is not None:
            self._observer()


def _bench_routing(
    router_name: str, fleet: int, decisions: int, sweep: bool
) -> tuple[float, list[int]]:
    """Decisions/sec of one routing path; returns (rate, destinations).

    Each decision is followed by an O(1) load mutation (the chosen stub gains
    one in-system request; once ~3×fleet are in flight the oldest finishes),
    so the incremental path pays realistic dirty-refresh traffic instead of
    scoring a frozen fleet.
    """
    from collections import deque

    from ..cluster.control.plane import ControlPlane
    from ..cluster.control.routing import make_router
    from ..sim.engine import Simulator
    from ..workload import generate_requests

    stubs = [_StubReplica() for _ in range(fleet)]
    plane = ControlPlane(stubs, router=make_router(router_name), routing_sweep=sweep)
    plane.begin(Simulator(), total_requests=decisions)
    requests = generate_requests(min(decisions, 512), seed=0)
    n_requests = len(requests)
    destinations: list[int] = []
    in_flight: deque[int] = deque()
    t0 = time.perf_counter()
    for k in range(decisions):
        idx = plane.route(requests[k % n_requests])
        destinations.append(idx)
        stub = stubs[idx]
        stub.in_system += 1
        stub.notify()
        in_flight.append(idx)
        if len(in_flight) > 3 * fleet:
            done = stubs[in_flight.popleft()]
            done.in_system -= 1
            done.notify()
    wall = time.perf_counter() - t0
    return (decisions / wall if wall > 0 else 0.0), destinations


def bench_cluster_scale(
    decisions: int,
    fleets: tuple[int, ...] = (4, 32, 128),
    e2e_requests_per_replica: int = 4,
) -> dict[str, Any]:
    """Control-plane cost vs fleet size, incremental path vs reference sweep.

    Two legs per fleet size:

    * **routing micro** — ``jsq`` (the cached-score/lazy-heap path) and
      ``deadline`` (the request-dependent buffer-scan path) on stub
      replicas; the sweep leg runs fewer decisions (it is the slow path
      being measured) and its destinations must equal the incremental leg's
      prefix — the bench re-verifies parity on every run.  The incremental
      ``jsq`` leg must allocate **zero** ``ReplicaSnapshot`` captures; a
      nonzero counter raises, so the allocation-free claim is gated, not
      assumed.
    * **end-to-end** — a homogeneous TD-Pipe cluster driven through
      :class:`~repro.cluster.engine.ClusterEngine` at an arrival rate
      proportional to the fleet, reporting shared-clock events/sec.

    The largest fleet's numbers are flattened into ``*_per_sec_<N>`` keys so
    the trajectory gate can track them with plain dotted paths.
    """
    from ..cluster.control.snapshot import (
        reset_snapshot_capture_count,
        snapshot_capture_count,
    )
    from ..cluster.engine import ClusterEngine
    from ..core.tdpipe import TDPipeEngine
    from ..hardware.node import make_node
    from ..models.spec import get_model
    from ..predictor.length_predictor import OraclePredictor
    from ..workload import generate_requests, with_poisson_arrivals

    routing: dict[str, Any] = {}
    for fleet in fleets:
        sweep_decisions = max(decisions // 8, 200)
        per_fleet: dict[str, Any] = {"decisions": decisions}
        for router_name in ("jsq", "deadline"):
            reset_snapshot_capture_count()
            inc_rate, inc_dests = _bench_routing(
                router_name, fleet, decisions, sweep=False
            )
            captures = snapshot_capture_count()
            if router_name == "jsq" and captures:
                raise RuntimeError(
                    f"incremental jsq routing allocated {captures} replica "
                    f"snapshots at fleet={fleet}; the fast path must be "
                    "allocation-free"
                )
            sweep_rate, sweep_dests = _bench_routing(
                router_name, fleet, sweep_decisions, sweep=True
            )
            if inc_dests[: len(sweep_dests)] != sweep_dests:
                raise RuntimeError(
                    f"routing parity violation: {router_name} incremental and "
                    f"sweep paths diverged at fleet={fleet}"
                )
            per_fleet[router_name] = {
                "decisions_per_sec": inc_rate,
                "sweep_decisions_per_sec": sweep_rate,
                "speedup": inc_rate / sweep_rate if sweep_rate > 0 else 0.0,
                "snapshot_captures": captures,
            }
        routing[str(fleet)] = per_fleet

    e2e: dict[str, Any] = {}
    for fleet in fleets:
        n_requests = e2e_requests_per_replica * fleet
        requests = with_poisson_arrivals(
            generate_requests(n_requests, seed=0), 4.0 * fleet, seed=0
        )
        cluster = ClusterEngine(
            [
                lambda sim: TDPipeEngine(
                    make_node("L20", 2), get_model("13B"), OraclePredictor(), sim=sim
                )
                for _ in range(fleet)
            ],
            router="jsq",
        )
        t0 = time.perf_counter()
        result = cluster.run(requests)
        wall = time.perf_counter() - t0
        events = cluster.sim.events_processed
        e2e[str(fleet)] = {
            "requests": result.completed_requests,
            "events": events,
            "wall_s": wall,
            "events_per_sec": events / wall if wall > 0 else 0.0,
        }

    top = str(max(fleets))
    return {
        "fleets": list(fleets),
        "routing": routing,
        "e2e": e2e,
        f"routing_decisions_per_sec_{top}": routing[top]["jsq"]["decisions_per_sec"],
        f"routing_sweep_decisions_per_sec_{top}": routing[top]["jsq"][
            "sweep_decisions_per_sec"
        ],
        f"routing_speedup_{top}": routing[top]["jsq"]["speedup"],
        f"cluster_events_per_sec_{top}": e2e[top]["events_per_sec"],
    }


# --------------------------------------------------------------------- #
# Macro: one mid-scale cluster run.
# --------------------------------------------------------------------- #
def bench_cluster(scale_factor: float) -> dict[str, Any]:
    from .. import api

    spec = api.ScenarioSpec(
        name="perf-cluster",
        mode="cluster",
        workload=api.WorkloadSpec(
            scale=scale_factor, seed=0, arrival="poisson", rate_rps=10.0,
            slo_mix="interactive:0.7,batch:0.3",
        ),
        fleet=api.FleetSpec(fleet="l20:2,a100:2"),
        engine=api.EngineSpec(system="TD-Pipe", model="13B"),
        control=api.ControlSpec(router="jsq"),
    )
    artifact = api.run(spec)
    result = artifact.result
    wall = artifact.wall_time_s
    return {
        "scale": scale_factor,
        "wall_s": wall,
        "completed_requests": result.completed_requests,
        "throughput_tps": result.throughput,
        "requests_per_sec_wall": (
            result.completed_requests / wall if wall > 0 else 0.0
        ),
    }


# --------------------------------------------------------------------- #
# Macro: serial vs parallel spec grid.
# --------------------------------------------------------------------- #
def _canonical_record(artifact) -> str:
    """Canonical bytes of a full record, minus per-host wall time."""
    record = artifact.to_record(detail=True)
    record.pop("wall_time_s", None)
    return canonical_json(record)


def bench_grid(scale_factor: float, jobs: int) -> dict[str, Any]:
    from .. import api
    from ..experiments.fig13_prefill_switch import prefill_switch_spec

    sweep = prefill_switch_spec(
        node="L20", model="32B", scale_factor=scale_factor, seed=0
    )
    specs = [point.spec for point in sweep.expand()]

    t0 = time.perf_counter()
    serial = api.run_many(specs, jobs=1)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = api.run_many(specs, jobs=jobs)
    parallel_wall = time.perf_counter() - t0

    identical = all(
        _canonical_record(a) == _canonical_record(b)
        for a, b in zip(serial, parallel)
    )
    points = len(specs)
    return {
        "experiment": "fig13-prefill-switch",
        "scale": scale_factor,
        "points": points,
        "jobs": jobs,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "serial_points_per_sec": points / serial_wall if serial_wall > 0 else 0.0,
        "parallel_points_per_sec": (
            points / parallel_wall if parallel_wall > 0 else 0.0
        ),
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "records_identical": identical,
    }


# --------------------------------------------------------------------- #
# The suite.
# --------------------------------------------------------------------- #
def run_perf_suite(
    quick: bool = False,
    jobs: int = 4,
    repeat: int = 1,
    *,
    kernel_events: int | None = None,
    costmodel_calls: int | None = None,
    regime_arrivals: int | None = None,
    cluster_scale: float | None = None,
    grid_scale: float | None = None,
    scale_decisions: int | None = None,
    scale_fleets: tuple[int, ...] | None = None,
    scale_requests_per_replica: int | None = None,
) -> dict[str, Any]:
    """Run every benchmark section; return the BENCH_perf.json record.

    ``quick`` is the CI-smoke size; the keyword overrides exist so tests can
    shrink sections further.  ``repeat`` re-runs the micro sections N times
    and reports the median (every sample is kept in the record).
    """
    import os

    if kernel_events is None:
        kernel_events = 200_000 if quick else 1_000_000
    if costmodel_calls is None:
        costmodel_calls = 50_000 if quick else 200_000
    if regime_arrivals is None:
        regime_arrivals = 20_000 if quick else 100_000
    if cluster_scale is None:
        cluster_scale = 0.05 if quick else 0.2
    if grid_scale is None:
        # Grid points must dwarf the fixed per-point pool overhead
        # (serialization + reconstruction, ~0.15s) or the speedup number
        # measures IPC, not execution.  0.2 => ~1.7s of compute per point.
        grid_scale = 0.2 if quick else 0.4
    if scale_decisions is None:
        scale_decisions = 4_000 if quick else 20_000
    if scale_fleets is None:
        # Same fleet sizes in quick mode: the 128-replica routing micro is
        # cheap, and the trajectory gate needs stable metric keys.
        scale_fleets = (4, 32, 128)
    if scale_requests_per_replica is None:
        scale_requests_per_replica = 2 if quick else 4
    repeat = max(1, repeat)

    kernel_samples = _repeated(lambda: bench_kernel(kernel_events), repeat)
    kernel = dict(_median_sample(kernel_samples, "events_per_sec"))

    cost_samples = _repeated(lambda: bench_costmodel(costmodel_calls), repeat)
    costmodel = {
        "calls": cost_samples[0]["calls"],
        **{
            metric: statistics.median(s[metric] for s in cost_samples)
            for metric in (
                "decode_cold_calls_per_sec",
                "decode_warm_calls_per_sec",
                "prefill_cold_calls_per_sec",
                "prefill_warm_calls_per_sec",
            )
        },
    }

    vector_samples = _repeated(
        lambda: bench_vectorized(costmodel_calls), repeat
    )
    vectorized = dict(_median_sample(vector_samples, "grid_points_per_sec"))

    regime_samples = _repeated(lambda: bench_regime(regime_arrivals), repeat)
    regime = dict(_median_sample(regime_samples, "arrivals_per_sec"))

    if repeat > 1:
        kernel["repeat"] = repeat
        kernel["samples_events_per_sec"] = [
            s["events_per_sec"] for s in kernel_samples
        ]
        costmodel["repeat"] = repeat
        costmodel["samples"] = cost_samples
        vectorized["repeat"] = repeat
        vectorized["samples_grid_points_per_sec"] = [
            s["grid_points_per_sec"] for s in vector_samples
        ]
        regime["repeat"] = repeat
        regime["samples_arrivals_per_sec"] = [
            s["arrivals_per_sec"] for s in regime_samples
        ]

    return {
        "schema_version": PERF_SCHEMA_VERSION,
        "kind": "perf",
        "quick": quick,
        "jobs": jobs,
        "repeat": repeat,
        "cpu_count": os.cpu_count(),
        "kernel": kernel,
        "costmodel": costmodel,
        "vectorized": vectorized,
        "regime": regime,
        "cluster_scale": bench_cluster_scale(
            scale_decisions,
            fleets=scale_fleets,
            e2e_requests_per_replica=scale_requests_per_replica,
        ),
        "cluster": bench_cluster(cluster_scale),
        "grid": bench_grid(grid_scale, jobs),
    }


def format_report(report: dict[str, Any]) -> str:
    kernel = report["kernel"]
    cost = report["costmodel"]
    vector = report.get("vectorized")
    regime = report.get("regime")
    scale = report.get("cluster_scale")
    cluster = report["cluster"]
    grid = report["grid"]
    repeat = report.get("repeat", 1)
    lines = [
        f"perf suite ({'quick' if report['quick'] else 'full'}, "
        f"{report['jobs']} jobs, {report['cpu_count']} cpus"
        + (f", median of {repeat}" if repeat > 1 else "")
        + ")",
        f"  kernel    : {kernel['events_per_sec']:>12,.0f} events/s "
        f"({kernel['events']:,} events in {kernel['wall_s']:.2f}s)",
        f"  costmodel : decode {cost['decode_cold_calls_per_sec']:,.0f} cold / "
        f"{cost['decode_warm_calls_per_sec']:,.0f} warm calls/s, "
        f"prefill {cost['prefill_cold_calls_per_sec']:,.0f} cold / "
        f"{cost['prefill_warm_calls_per_sec']:,.0f} warm (memoized) calls/s",
        *(
            [
                f"  vectorized: {vector['grid_points_per_sec']:,.0f} grid "
                f"points/s built ({vector['grid_points']:,} points in "
                f"{vector['build_wall_s'] * 1e3:.1f}ms), "
                f"{vector['lookup_calls_per_sec']:,.0f} lookups/s, "
                f"{vector['curve_points_per_sec']:,.0f} curve points/s"
            ]
            if vector is not None
            else []
        ),
        *(
            [
                f"  regime    : {regime['arrivals_per_sec']:>12,.0f} arrivals/s "
                f"compiled ({regime['arrivals']:,} arrivals, "
                f"{regime['sessions']:,} sessions in {regime['wall_s']:.2f}s)"
            ]
            if regime is not None
            else []
        ),
        *(
            [
                "  ctrl-plane: routing "
                + ", ".join(
                    f"fleet {f}: {scale['routing'][str(f)]['jsq']['decisions_per_sec']:,.0f}/s "
                    f"({scale['routing'][str(f)]['jsq']['speedup']:.1f}x vs sweep)"
                    for f in scale["fleets"]
                ),
                "  ctrl-plane: e2e     "
                + ", ".join(
                    f"fleet {f}: {scale['e2e'][str(f)]['events_per_sec']:,.0f} ev/s"
                    for f in scale["fleets"]
                ),
            ]
            if scale is not None
            else []
        ),
        f"  cluster   : scale {cluster['scale']:g} run in "
        f"{cluster['wall_s']:.2f}s "
        f"({cluster['throughput_tps']:.0f} tok/s simulated, "
        f"{cluster['requests_per_sec_wall']:.1f} req/s of wall time)",
        f"  grid      : {grid['points']} fig13 points — serial "
        f"{grid['serial_wall_s']:.2f}s "
        f"({grid['serial_points_per_sec']:.2f} pts/s), parallel "
        f"{grid['parallel_wall_s']:.2f}s "
        f"({grid['parallel_points_per_sec']:.2f} pts/s), "
        f"speedup {grid['speedup']:.2f}x, records "
        f"{'identical' if grid['records_identical'] else 'DIVERGED'}",
    ]
    return "\n".join(lines)
