"""Performance benchmark harness (``tdpipe-bench perf``).

Times the hot paths this codebase optimizes and emits ``BENCH_perf.json``,
the perf trajectory CI tracks across PRs via :mod:`repro.perf.trajectory`.
"""

from .harness import format_report, run_perf_suite
from .trajectory import (
    DEFAULT_CLUSTER_TOLERANCES,
    DEFAULT_TOLERANCES,
    MetricCheck,
    TrajectoryReport,
    compare_perf,
    load_baseline,
    parse_waivers,
)

__all__ = [
    "run_perf_suite",
    "format_report",
    "DEFAULT_CLUSTER_TOLERANCES",
    "DEFAULT_TOLERANCES",
    "MetricCheck",
    "TrajectoryReport",
    "compare_perf",
    "load_baseline",
    "parse_waivers",
]
