"""Performance benchmark harness (``tdpipe-bench perf``).

Times the hot paths this codebase optimizes and emits ``BENCH_perf.json``,
the perf trajectory CI tracks across PRs.
"""

from .harness import format_report, run_perf_suite

__all__ = ["run_perf_suite", "format_report"]
