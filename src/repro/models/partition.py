"""Model partitioning across devices for pipeline and tensor parallelism.

Pipeline parallelism splits the model layer-wise into contiguous stages; tensor
parallelism shards every layer (and the KV cache) evenly across ranks.  The
helpers here compute per-device weight footprints, which in turn bound the
KV-cache capacity (see :mod:`repro.kvcache.capacity`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import ModelSpec

__all__ = ["StageShard", "partition_layers", "pipeline_shards", "weight_bytes_per_gpu"]


def partition_layers(n_layers: int, n_stages: int) -> list[int]:
    """Split ``n_layers`` into ``n_stages`` contiguous, balanced chunks.

    Remainder layers go to the earliest stages, matching vLLM's partitioning.

    >>> partition_layers(80, 4)
    [20, 20, 20, 20]
    >>> partition_layers(62, 4)
    [16, 16, 15, 15]
    """
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    if n_layers < n_stages:
        raise ValueError(f"cannot split {n_layers} layers over {n_stages} stages")
    base, rem = divmod(n_layers, n_stages)
    return [base + (1 if s < rem else 0) for s in range(n_stages)]


@dataclass(frozen=True)
class StageShard:
    """The slice of a model owned by one pipeline stage (possibly TP-sharded)."""

    model: ModelSpec
    stage_index: int
    n_stages: int
    layer_start: int
    n_layers: int
    tp_degree: int = 1

    @property
    def is_first(self) -> bool:
        return self.stage_index == 0

    @property
    def is_last(self) -> bool:
        return self.stage_index == self.n_stages - 1

    @property
    def has_embedding(self) -> bool:
        """The input embedding lives on the first stage."""
        return self.is_first

    @property
    def has_lm_head(self) -> bool:
        """The LM head lives on the last stage."""
        return self.is_last

    @property
    def weight_bytes_per_gpu(self) -> float:
        """Weight footprint of this stage on each of its ``tp_degree`` GPUs."""
        m = self.model
        params = self.n_layers * m.params_per_layer
        emb = m.vocab_size * m.hidden_size
        if self.has_embedding:
            params += emb
        if self.has_lm_head and not m.tie_embeddings:
            params += emb
        return params * m.dtype_bytes / self.tp_degree

    @property
    def kv_bytes_per_token_per_gpu(self) -> float:
        """KV-cache bytes one token costs on each GPU of this stage.

        TP shards the KV heads across ranks (GQA models cap the effective
        sharding at ``n_kv_heads``, in which case heads are replicated in
        real systems; vLLM divides evenly, which we mirror).
        """
        m = self.model
        return self.n_layers * m.kv_bytes_per_token_per_layer / self.tp_degree


def pipeline_shards(model: ModelSpec, pp_degree: int, tp_degree: int = 1) -> list[StageShard]:
    """Build the stage shards for a ``pp_degree`` x ``tp_degree`` layout."""
    counts = partition_layers(model.n_layers, pp_degree)
    shards: list[StageShard] = []
    start = 0
    for s, n in enumerate(counts):
        shards.append(
            StageShard(
                model=model,
                stage_index=s,
                n_stages=pp_degree,
                layer_start=start,
                n_layers=n,
                tp_degree=tp_degree,
            )
        )
        start += n
    return shards


def weight_bytes_per_gpu(model: ModelSpec, pp_degree: int, tp_degree: int = 1) -> float:
    """Largest per-GPU weight footprint across all stages of the layout."""
    return max(s.weight_bytes_per_gpu for s in pipeline_shards(model, pp_degree, tp_degree))
