"""Model substrate: transformer specs (Table 2) and device partitioning."""

from .partition import StageShard, partition_layers, pipeline_shards, weight_bytes_per_gpu
from .spec import (
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA_30B,
    MODEL_PRESETS,
    QWEN25_32B,
    ModelSpec,
    get_model,
)

__all__ = [
    "ModelSpec",
    "LLAMA2_13B",
    "QWEN25_32B",
    "LLAMA2_70B",
    "LLAMA_30B",
    "MODEL_PRESETS",
    "get_model",
    "StageShard",
    "partition_layers",
    "pipeline_shards",
    "weight_bytes_per_gpu",
]
