"""Transformer model specifications (paper Table 2).

The cost model needs exact parameter counts, FLOPs-per-token and KV-cache
bytes-per-token, all of which derive from the architectural constants below.
The three presets are the paper's evaluation models; ``LLAMA_30B`` is the model
used in the paper's Figure 6 tensor-parallel breakdown study (its KV cache is
1.52 MB/token, the number quoted in Section 2.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ModelSpec",
    "LLAMA2_13B",
    "QWEN25_32B",
    "LLAMA2_70B",
    "LLAMA_30B",
    "MODEL_PRESETS",
    "get_model",
]


@dataclass(frozen=True)
class ModelSpec:
    """Architectural description of a decoder-only transformer.

    All byte quantities assume ``dtype_bytes`` per element (2 for FP16/BF16).
    Models with ``n_kv_heads < n_heads`` use grouped-query attention (GQA),
    which shrinks the KV cache as the paper notes for the 32B/70B models.
    """

    name: str
    short_name: str
    n_layers: int
    hidden_size: int
    n_heads: int
    n_kv_heads: int
    intermediate_size: int
    vocab_size: int
    dtype_bytes: int = 2
    #: Whether input embedding and LM head share weights (not for these models).
    tie_embeddings: bool = False

    def __post_init__(self) -> None:
        if self.hidden_size % self.n_heads:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by n_heads {self.n_heads}"
            )
        if self.n_heads % self.n_kv_heads:
            raise ValueError(
                f"n_heads {self.n_heads} not divisible by n_kv_heads {self.n_kv_heads}"
            )

    # ------------------------------------------------------------------ #
    # Parameter accounting.
    # ------------------------------------------------------------------ #
    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.n_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K (or V) projection output."""
        return self.n_kv_heads * self.head_dim

    @property
    def attn_params_per_layer(self) -> int:
        """Q, K, V and output projection parameters of one layer."""
        h = self.hidden_size
        return h * h + 2 * h * self.kv_dim + h * h

    @property
    def mlp_params_per_layer(self) -> int:
        """Gate, up and down projections of one SwiGLU MLP."""
        return 3 * self.hidden_size * self.intermediate_size

    @property
    def params_per_layer(self) -> int:
        return self.attn_params_per_layer + self.mlp_params_per_layer

    @property
    def embedding_params(self) -> int:
        """Input embedding (+ untied LM head) parameters."""
        n = self.vocab_size * self.hidden_size
        return n if self.tie_embeddings else 2 * n

    @property
    def total_params(self) -> int:
        return self.n_layers * self.params_per_layer + self.embedding_params

    @property
    def weight_bytes(self) -> int:
        return self.total_params * self.dtype_bytes

    # ------------------------------------------------------------------ #
    # KV-cache accounting.
    # ------------------------------------------------------------------ #
    @property
    def kv_bytes_per_token_per_layer(self) -> int:
        """K and V vectors of one token in one layer."""
        return 2 * self.kv_dim * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """Whole-model KV-cache footprint of one token."""
        return self.n_layers * self.kv_bytes_per_token_per_layer

    # ------------------------------------------------------------------ #
    # FLOPs accounting (multiply-adds counted as 2 FLOPs).
    # ------------------------------------------------------------------ #
    def linear_flops_per_token_per_layer(self) -> float:
        """Dense-projection FLOPs for one token passing one layer."""
        return 2.0 * self.params_per_layer

    def attn_score_flops_per_layer(self, context_len: float, new_tokens: float = 1.0) -> float:
        """QK^T and AV FLOPs when ``new_tokens`` attend over ``context_len`` keys.

        All ``n_heads`` query heads participate regardless of GQA, so the cost
        is ``4 * hidden * new_tokens * context_len`` (2 matmuls, 2 FLOPs each).
        """
        return 4.0 * self.hidden_size * new_tokens * context_len

    def prefill_attn_flops_per_layer(self, seq_len: float) -> float:
        """Causal self-attention FLOPs of one full prompt in one layer."""
        # Causal masking halves the full seq_len x seq_len score matrix.
        return 0.5 * self.attn_score_flops_per_layer(seq_len, seq_len)

    def lm_head_flops(self, tokens: float) -> float:
        """Final-projection FLOPs for ``tokens`` positions."""
        return 2.0 * self.vocab_size * self.hidden_size * tokens


LLAMA2_13B = ModelSpec(
    name="Llama2-13B-chat",
    short_name="13B",
    n_layers=40,
    hidden_size=5120,
    n_heads=40,
    n_kv_heads=40,
    intermediate_size=13824,
    vocab_size=32000,
)

QWEN25_32B = ModelSpec(
    name="Qwen2.5-32B-Instruct",
    short_name="32B",
    n_layers=64,
    hidden_size=5120,
    n_heads=40,
    n_kv_heads=8,
    intermediate_size=27648,
    vocab_size=152064,
)

LLAMA2_70B = ModelSpec(
    name="Llama2-70B-chat",
    short_name="70B",
    n_layers=80,
    hidden_size=8192,
    n_heads=64,
    n_kv_heads=8,
    intermediate_size=28672,
    vocab_size=32000,
)

#: Llama-30B, used by the paper's Figure 6 TP-breakdown case study
#: (1.52 MB KV cache per token, Section 2.2.1).
LLAMA_30B = ModelSpec(
    name="Llama-30B",
    short_name="30B",
    n_layers=60,
    hidden_size=6656,
    n_heads=52,
    n_kv_heads=52,
    intermediate_size=17920,
    vocab_size=32000,
)

MODEL_PRESETS: dict[str, ModelSpec] = {
    "13B": LLAMA2_13B,
    "32B": QWEN25_32B,
    "70B": LLAMA2_70B,
    "30B": LLAMA_30B,
}


def get_model(name: str) -> ModelSpec:
    """Look up a model preset by short name ("13B", "32B", "70B", "30B")."""
    key = name.upper()
    if key in MODEL_PRESETS:
        return MODEL_PRESETS[key]
    for spec in MODEL_PRESETS.values():
        if spec.name.lower() == name.lower():
            return spec
    raise KeyError(f"unknown model {name!r}; presets: {sorted(MODEL_PRESETS)}")
