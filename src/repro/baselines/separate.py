"""Separate-batching baselines: TP+SB and PP+SB (paper Section 4.1).

These model vLLM 0.5.3's default scheduler: continuous batching where a
scheduler step is either a *prefill batch* (whole prompts, scheduled with
priority whenever waiting requests fit in memory) or a *decode step* over the
stream's running requests — never both in one batch.

Under pipeline parallelism vLLM keeps ``pipeline_parallel_size`` scheduler
streams ("virtual engines") in flight, each owning its running set; all
streams share one waiting queue and one KV pool.  Prefill/decode imbalance
and inter-batch imbalance between streams produce the pipeline bubbles of
paper Figure 1.  Under tensor parallelism there is a single stream and every
running request decodes in one big batch (higher intensity, but two
all-reduces per layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.node import NodeSpec
from ..models.spec import ModelSpec
from ..runtime.base_engine import InferenceEngine
from ..runtime.config import EngineConfig
from ..runtime.state import RequestState
from ..runtime.tasks import PREFILL, BatchTask
from ..sim.engine import SimulationError, Simulator

__all__ = ["SeparateBatchingEngine", "TPSeparateEngine", "PPSeparateEngine"]


@dataclass
class _Stream:
    """One in-flight scheduler stream (vLLM virtual engine)."""

    index: int
    running: list[RequestState] = field(default_factory=list)
    idle: bool = True


class SeparateBatchingEngine(InferenceEngine):
    """Shared implementation; parallel mode decides the stream count."""

    system_name = "SB"

    def __init__(
        self,
        node: NodeSpec,
        model: ModelSpec,
        parallel: str,
        config: EngineConfig | None = None,
        sim: Simulator | None = None,
    ) -> None:
        # Baseline pipelines use blocking device-to-device sends (Section 3.2).
        super().__init__(
            node, model, parallel=parallel, config=config, async_transfer=False, sim=sim
        )
        n_streams = self.num_stages
        self.streams = [_Stream(i) for i in range(n_streams)]

    # ------------------------------------------------------------------ #
    def _bootstrap(self) -> None:
        for s in self.streams:
            self._schedule_stream(s)

    def _schedule_stream(self, stream: _Stream) -> None:
        stream.idle = False
        # vLLM default: prefill has priority whenever something fits.
        if (
            self.waiting
            and len(stream.running) < self.config.max_num_seqs
            and self.can_admit(self.waiting[0])
        ):
            batch = self.pack_prefill_batch()
            if batch:
                self.submit(self.make_prefill_task(batch, stream=stream.index))
                return
        if stream.running:
            batch, evicted = self.reserve_decode_tokens(stream.running)
            stream.running = batch
            if evicted and not batch:
                # Whole stream evicted; retry scheduling (prefill may now fit).
                self._schedule_stream(stream)
                return
            if batch:
                self.submit(self.make_decode_task(batch, stream=stream.index))
                return
        stream.idle = True
        self._check_stalled()

    def _kick_idle(self) -> None:
        for s in self.streams:
            if s.idle:
                self._schedule_stream(s)

    def _on_arrival(self, state) -> None:
        """Online arrival: wake any idle scheduler streams."""
        self._kick_idle()

    def _check_stalled(self) -> None:
        """Detect the pathological case where nothing can ever be scheduled."""
        if (
            self.waiting
            and all(s.idle for s in self.streams)
            and not self.inflight
            and self.block_manager.num_requests == 0
        ):
            raise SimulationError(
                f"{self.system_name}: request {self.waiting[0].request_id} "
                "exceeds KV capacity; cannot make progress"
            )

    # ------------------------------------------------------------------ #
    def _on_task_complete(self, task: BatchTask, end_time: float) -> None:
        self._clear_inflight(task)
        stream = self.streams[task.meta["stream"]]
        if task.kind == PREFILL:
            for rid in task.request_ids:
                s = self.states[rid]
                s.complete_prefill()
                self.stamp_first_token(s)
                if s.done:
                    self.finish_request(s)
                else:
                    stream.running.append(s)
        else:
            survivors = []
            for rid in task.request_ids:
                s = self.states[rid]
                s.complete_decode_step()
                if s.done:
                    self.finish_request(s)
                else:
                    survivors.append(s)
            stream.running = survivors
        self.log_kv(task.kind)
        # The next step for this stream waits for the synchronous driver.
        delay = self.driver_delay(len(task.request_ids))
        if delay > 0:
            self.sim.schedule_callback(delay, lambda: self._resume_stream(stream))
        else:
            self._resume_stream(stream)

    def _resume_stream(self, stream: _Stream) -> None:
        self._schedule_stream(stream)
        self._kick_idle()


class TPSeparateEngine(SeparateBatchingEngine):
    """TP+SB: tensor parallelism + separate batching (vLLM default)."""

    system_name = "TP+SB"

    def __init__(
        self,
        node: NodeSpec,
        model: ModelSpec,
        config: EngineConfig | None = None,
        sim: Simulator | None = None,
    ):
        super().__init__(node, model, parallel="tp", config=config, sim=sim)


class PPSeparateEngine(SeparateBatchingEngine):
    """PP+SB: pipeline parallelism + separate batching."""

    system_name = "PP+SB"

    def __init__(
        self,
        node: NodeSpec,
        model: ModelSpec,
        config: EngineConfig | None = None,
        sim: Simulator | None = None,
    ):
        super().__init__(node, model, parallel="pp", config=config, sim=sim)
