"""Hybrid-batching baselines: TP+HB and PP+HB (chunked prefill, Sarathi-style).

Every scheduler step builds one *hybrid* batch per stream within a token
budget (vLLM ``max_num_batched_tokens`` with ``enable_chunked_prefill``):
all running requests contribute one decode token each, and the remaining
budget is filled with chunks of pending prompts.  Chunking smooths per-step
workloads (better inter-batch balance than PP+SB) but, as the paper stresses,
(1) mixes decode into every batch, tightening data dependencies, (2) still
suffers under variable lengths, and (3) re-reads the growing prefix KV cache
on every chunk — all modelled here via
:meth:`repro.costmodel.StageCostModel.hybrid_time`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..costmodel.roofline import PrefillChunk
from ..hardware.node import NodeSpec
from ..models.spec import ModelSpec
from ..runtime.base_engine import InferenceEngine
from ..runtime.config import EngineConfig
from ..runtime.state import RequestState
from ..runtime.tasks import BatchTask
from ..sim.engine import SimulationError, Simulator

__all__ = ["HybridBatchingEngine", "TPHybridEngine", "PPHybridEngine"]


@dataclass
class _Stream:
    """One in-flight scheduler stream with an optional in-progress prompt."""

    index: int
    running: list[RequestState] = field(default_factory=list)
    partial: RequestState | None = None
    idle: bool = True


class HybridBatchingEngine(InferenceEngine):
    """Shared chunked-prefill scheduler; parallel mode decides stream count."""

    system_name = "HB"

    def __init__(
        self,
        node: NodeSpec,
        model: ModelSpec,
        parallel: str,
        config: EngineConfig | None = None,
        sim: Simulator | None = None,
    ) -> None:
        super().__init__(
            node, model, parallel=parallel, config=config, async_transfer=False, sim=sim
        )
        self.streams = [_Stream(i) for i in range(self.num_stages)]

    # ------------------------------------------------------------------ #
    # Chunk admission.
    # ------------------------------------------------------------------ #
    def _admit_chunk(self, state: RequestState, chunk_len: int) -> bool:
        """Reserve KV blocks for ``chunk_len`` more prompt tokens."""
        bm = self.block_manager
        if bm.contains(state.request_id):
            if not bm.can_append(state.request_id, chunk_len):
                return False
            bm.append(state.request_id, chunk_len)
            self._notify_load()
            return True
        needed = bm.blocks_needed(chunk_len)
        if needed + self.watermark_blocks > bm.free_blocks:
            return False
        bm.allocate(state.request_id, chunk_len)
        self._notify_load()
        return True

    def _build_chunks(
        self, stream: _Stream, budget: int
    ) -> list[tuple[RequestState, PrefillChunk]]:
        """Fill the remaining token budget with prompt chunks."""
        chunks: list[tuple[RequestState, PrefillChunk]] = []
        while budget > 0:
            if stream.partial is None:
                if not self.waiting or len(stream.running) >= self.config.max_num_seqs:
                    break
                stream.partial = self.waiting.popleft()
            p = stream.partial
            remaining = p.prefill_len - p.prefix_done
            chunk_len = min(budget, remaining)
            if not self._admit_chunk(p, chunk_len):
                # Memory full: put an untouched prompt back, keep a started one.
                if p.prefix_done == 0 and not self.block_manager.contains(p.request_id):
                    self.waiting.appendleft(p)
                    stream.partial = None
                break
            chunks.append((p, PrefillChunk(chunk_len=chunk_len, prefix_len=p.prefix_done)))
            p.advance_chunk(chunk_len)
            budget -= chunk_len
            if p.prompt_complete:
                stream.partial = None
        return chunks

    # ------------------------------------------------------------------ #
    def _bootstrap(self) -> None:
        for s in self.streams:
            self._schedule_stream(s)

    def _schedule_stream(self, stream: _Stream) -> None:
        stream.idle = False
        decode_batch: list[RequestState] = []
        if stream.running:
            decode_batch, _evicted = self.reserve_decode_tokens(stream.running)
            stream.running = decode_batch
        budget = self.config.chunk_budget_tokens - len(decode_batch)
        chunks = self._build_chunks(stream, max(budget, 0))
        if not decode_batch and not chunks:
            stream.idle = True
            self._check_stalled()
            return
        finished_prefills = [s.request_id for s, _ in chunks if s.prompt_complete]
        task = self.make_hybrid_task(decode_batch, chunks, stream=stream.index)
        task.meta["finished_prefills"] = finished_prefills
        self.submit(task)

    def _kick_idle(self) -> None:
        for s in self.streams:
            if s.idle:
                self._schedule_stream(s)

    def _on_arrival(self, state) -> None:
        """Online arrival: wake any idle scheduler streams."""
        self._kick_idle()

    def _check_stalled(self) -> None:
        if (
            self.waiting
            and all(s.idle for s in self.streams)
            and all(s.partial is None for s in self.streams)
            and not self.inflight
            and self.block_manager.num_requests == 0
        ):
            raise SimulationError(
                f"{self.system_name}: request {self.waiting[0].request_id} "
                "exceeds KV capacity; cannot make progress"
            )

    # ------------------------------------------------------------------ #
    def _on_task_complete(self, task: BatchTask, end_time: float) -> None:
        self._clear_inflight(task)
        stream = self.streams[task.meta["stream"]]
        survivors = []
        for rid in task.request_ids:
            s = self.states[rid]
            s.complete_decode_step()
            if s.done:
                self.finish_request(s)
            else:
                survivors.append(s)
        stream.running = survivors
        for rid in task.meta.get("finished_prefills", ()):
            s = self.states[rid]
            self.stamp_first_token(s)
            if s.done:  # single-token outputs finish at prefill completion
                self.finish_request(s)
            else:
                stream.running.append(s)
        self.log_kv(task.kind)
        n_seqs = len(task.request_ids) + len(task.meta.get("chunks", ()))
        delay = self.driver_delay(n_seqs)
        if delay > 0:
            self.sim.schedule_callback(delay, lambda: self._resume_stream(stream))
        else:
            self._resume_stream(stream)

    def _resume_stream(self, stream: _Stream) -> None:
        self._schedule_stream(stream)
        self._kick_idle()


class TPHybridEngine(HybridBatchingEngine):
    """TP+HB: tensor parallelism + chunked-prefill hybrid batching."""

    system_name = "TP+HB"

    def __init__(
        self,
        node: NodeSpec,
        model: ModelSpec,
        config: EngineConfig | None = None,
        sim: Simulator | None = None,
    ):
        super().__init__(node, model, parallel="tp", config=config, sim=sim)


class PPHybridEngine(HybridBatchingEngine):
    """PP+HB: pipeline parallelism + chunked-prefill hybrid batching."""

    system_name = "PP+HB"

    def __init__(
        self,
        node: NodeSpec,
        model: ModelSpec,
        config: EngineConfig | None = None,
        sim: Simulator | None = None,
    ):
        super().__init__(node, model, parallel="pp", config=config, sim=sim)
