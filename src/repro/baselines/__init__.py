"""Baseline systems the paper compares against (vLLM 0.5.3 equivalents)."""

from .hybrid import HybridBatchingEngine, PPHybridEngine, TPHybridEngine
from .offloading import OffloadingEstimate, estimate_offloading_throughput
from .separate import PPSeparateEngine, SeparateBatchingEngine, TPSeparateEngine

__all__ = [
    "SeparateBatchingEngine",
    "TPSeparateEngine",
    "PPSeparateEngine",
    "HybridBatchingEngine",
    "TPHybridEngine",
    "PPHybridEngine",
    "OffloadingEstimate",
    "estimate_offloading_throughput",
]
