"""Offloading approach estimate (paper Section 2.2.2, Figure 5a).

The paper argues that FlexGen/DeepSpeed-style KV offloading cannot deliver
high throughput on a multi-GPU node because every GPU must stream KV cache
over the *shared* CPU root complex: with N GPUs offloading concurrently, each
sees roughly 1/N of the host-link bandwidth.  This module provides an
analytic throughput estimate of an offloading deployment (N independent
single-GPU instances) under that contention model, used to reproduce the
paper's qualitative claim that parallelism beats offloading on these nodes.

The estimate is deliberately *optimistic* for offloading (perfect
compute/transfer overlap, zero software overhead, the entire GPU-resident KV
budget usable), so the comparison is conservative in TD-Pipe's favour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.gpu import GPUSpec
from ..models.spec import ModelSpec

__all__ = ["OffloadingEstimate", "estimate_offloading_throughput"]

#: Host link (CPU root complex) bandwidth shared by all GPUs, B/s.
DEFAULT_HOST_LINK_BW = 24e9  # PCIe 4.0 x16 practical


@dataclass(frozen=True)
class OffloadingEstimate:
    """Aggregate-node throughput estimate for an offloading deployment."""

    model: str
    gpu: str
    num_gpus: int
    #: Tokens of KV that stay resident in each GPU's HBM.
    gpu_resident_kv_tokens: int
    #: Fraction of decode reads served from HBM (the rest cross the host link).
    hbm_hit_fraction: float
    #: Generated tokens per second per GPU.
    per_gpu_decode_rate: float
    #: Generated tokens per second for the whole node.
    aggregate_decode_rate: float


def estimate_offloading_throughput(
    model: ModelSpec,
    gpu: GPUSpec,
    num_gpus: int = 4,
    mean_context: float = 500.0,
    host_link_bw: float = DEFAULT_HOST_LINK_BW,
    host_kv_tokens: int = 2_000_000,
) -> OffloadingEstimate:
    """Estimate decode throughput of N single-GPU offloading instances.

    Each generated token for one request requires reading that request's
    entire KV cache once (attention) — ``mean_context x kv_bytes_per_token``
    bytes.  Reads hit HBM for the GPU-resident fraction of requests and the
    shared host link (divided by ``num_gpus`` active instances) for the rest.
    Weights are assumed GPU-resident when they fit; otherwise weight
    streaming over the host link dominates and is charged per token.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    kv_per_token_ctx = mean_context * model.kv_bytes_per_token  # bytes/generated token
    weights_fit = model.weight_bytes <= gpu.usable_memory_bytes
    if weights_fit:
        free_hbm = gpu.usable_memory_bytes - model.weight_bytes
        resident_tokens = int(free_hbm / model.kv_bytes_per_token)
    else:
        resident_tokens = 0

    # Request mix served from HBM vs host, by KV-token share.
    total_tokens = resident_tokens + host_kv_tokens
    hbm_fraction = resident_tokens / total_tokens if total_tokens else 0.0

    per_gpu_host_bw = host_link_bw / num_gpus  # root-complex contention
    hbm_rate = gpu.effective_mem_bandwidth / kv_per_token_ctx
    host_rate = per_gpu_host_bw / kv_per_token_ctx

    if not weights_fit:
        # Weights stream over the contended link once per token batch; even
        # with huge batches, KV traffic alone bounds the rate.
        per_gpu_rate = host_rate
    else:
        # Requests are served proportionally from both pools, overlapped.
        per_gpu_rate = hbm_fraction * hbm_rate + (1.0 - hbm_fraction) * host_rate

    return OffloadingEstimate(
        model=model.short_name,
        gpu=gpu.name,
        num_gpus=num_gpus,
        gpu_resident_kv_tokens=resident_tokens,
        hbm_hit_fraction=hbm_fraction,
        per_gpu_decode_rate=per_gpu_rate,
        aggregate_decode_rate=per_gpu_rate * num_gpus,
    )
