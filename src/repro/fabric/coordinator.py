"""Fabric coordinator: submit batches, own the robustness policy, collect.

The coordinator is the hub of the fabric's hub-and-spoke shape: it turns a
spec batch into spooled tasks, watches the spool while any number of
workers (local processes or remote hosts on a shared filesystem) chew
through it, and reconstructs submission-order results from the shared
store.  All failure policy lives here — workers only ever report:

* **lease-expiry requeue** — a lease whose mtime stopped advancing for
  ``lease_timeout_s`` means the worker died mid-task (SIGKILL, lost host).
  The coordinator deletes the stale lease, counts one failed attempt, and
  the task becomes claimable again.  Determinism makes this safe: whoever
  re-executes the task files a byte-identical record under the same
  content hash, so a zombie worker racing the requeue cannot corrupt the
  store — worst case it re-files the same record.
* **bounded retry with exponential backoff** — an ``error`` ack is retried
  after ``backoff_base_s * 2**(failures-1)``; the result file is left in
  place during the backoff window so no worker re-claims the task early.
* **poison-task quarantine** — after ``max_attempts`` failed attempts the
  task file is moved out of circulation and the failure surfaces as
  :class:`~repro.api.parallel.SpecExecutionError` with the spec's batch
  index and name, exactly like the pool backend.

``oom`` acks are terminal, never retried (an OOM layout is a property of
the spec, not of the attempt); whether they surface as ``None`` or raise
:class:`~repro.kvcache.capacity.OutOfMemoryError` is decided at collect
time via ``oom_to_none``, mirroring ``run_many``.

:func:`run_fabric` is the single-call convenience: temp spool, N local
worker processes, submit + wait + collect, drain and clean up.
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from .queue import FabricSpool
from .worker import _worker_entry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.runner import RunArtifact
    from ..api.spec import ScenarioSpec
    from ..api.store import ArtifactStore

__all__ = ["FabricCoordinator", "run_fabric", "spawn_local_workers"]


@dataclass
class _TaskWatch:
    """Coordinator-side robustness state for one in-flight task."""

    failures: int = 0
    #: Monotonic deadline before which a failed task must not be requeued
    #: (the exponential-backoff window); None when not awaiting retry.
    retry_at: float | None = None
    errors: list[str] = field(default_factory=list)


class FabricCoordinator:
    """Submit spec batches to a spool and shepherd them to completion."""

    def __init__(
        self,
        spool: FabricSpool | str,
        store: "ArtifactStore | str",
        *,
        lease_timeout_s: float = 30.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.25,
        poll_interval_s: float = 0.05,
    ) -> None:
        from ..api.store import as_store

        self.spool = spool if isinstance(spool, FabricSpool) else FabricSpool(spool)
        self.store = as_store(store)
        if self.store.lean:
            raise ValueError(
                "the fabric needs a full-detail store: lean records cannot be "
                "reconstructed into RunArtifacts at collect time"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.lease_timeout_s = lease_timeout_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.poll_interval_s = poll_interval_s
        #: Requeue audit trail: one entry per failed attempt the coordinator
        #: acted on — ``{"task_id", "reason", "failures"}``.
        self.requeues: list[dict[str, Any]] = []
        self._watch: dict[str, _TaskWatch] = {}

    # -- submit ----------------------------------------------------------- #
    def submit(
        self,
        specs: Iterable["ScenarioSpec"],
        *,
        reuse: bool = False,
        overrides: Sequence[Mapping[str, Any]] | None = None,
        batch: str | None = None,
        priority: int = 0,
        priorities: Sequence[int] | None = None,
    ) -> list[str]:
        """Resolve and spool one task per spec; return task ids in order.

        ``priority``/``priorities`` set claim tiers (higher first) — an
        urgent batch submitted into a busy spool jumps the pending queue
        without disturbing running tasks.
        """
        resolved = [spec.resolved() for spec in specs]
        task_ids = self.spool.submit(
            [spec.to_dict() for spec in resolved],
            names=[spec.name or spec.describe() for spec in resolved],
            reuse=reuse,
            overrides=overrides,
            batch=batch,
            priority=priority,
            priorities=priorities,
        )
        for task_id in task_ids:
            self._watch[task_id] = _TaskWatch()
        return task_ids

    # -- the robustness loop ---------------------------------------------- #
    def wait(
        self, task_ids: Sequence[str], *, timeout_s: float | None = None
    ) -> None:
        """Block until every task is terminal, requeuing and retrying.

        Raises :class:`~repro.api.parallel.SpecExecutionError` when a task
        exhausts ``max_attempts`` (it is quarantined first), and
        :class:`TimeoutError` when ``timeout_s`` elapses with work pending.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        pending = set(task_ids)
        while pending:
            for task_id in sorted(pending):
                if self._poll_one(task_id):
                    pending.discard(task_id)
            if not pending:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"fabric batch timed out after {timeout_s:g}s with "
                    f"{len(pending)} task(s) unfinished (spool {self.spool.root})"
                )
            time.sleep(self.poll_interval_s)

    def _poll_one(self, task_id: str) -> bool:
        """Advance one task's state machine; True when terminal."""
        watch = self._watch.setdefault(task_id, _TaskWatch())
        if watch.retry_at is not None:
            # Backoff window: the stale lease / error result is deliberately
            # left in place so no worker re-claims the task early.
            if time.monotonic() >= watch.retry_at:
                self.spool.requeue(task_id)
                watch.retry_at = None
            return False
        result = self.spool.read_result(task_id)
        if result is not None:
            status = result.get("status")
            if status in ("done", "oom"):
                return True
            self._attempt_failed(
                task_id, result.get("error", "worker reported an error")
            )
            return False
        age = self.spool.lease_age_s(task_id)
        if age is not None and age > self.lease_timeout_s:
            self._attempt_failed(
                task_id,
                f"lease expired after {age:.1f}s without a heartbeat "
                "(worker died mid-task?)",
            )
        return False

    def _attempt_failed(self, task_id: str, reason: str) -> None:
        from ..api.parallel import SpecExecutionError

        watch = self._watch[task_id]
        watch.failures += 1
        watch.errors.append(reason)
        self.requeues.append(
            {"task_id": task_id, "reason": reason, "failures": watch.failures}
        )
        if watch.failures >= self.max_attempts:
            task = self.spool.load_task(task_id)
            self.spool.quarantine(task_id, reason, watch.failures)
            raise SpecExecutionError(
                task.index,
                task.name,
                f"{reason} (quarantined after {watch.failures} attempt(s))",
            )
        # Exponential backoff before the task becomes claimable again.
        watch.retry_at = (
            time.monotonic() + self.backoff_base_s * 2 ** (watch.failures - 1)
        )

    # -- collect ----------------------------------------------------------- #
    def collect(
        self, task_ids: Sequence[str], *, oom_to_none: bool = False
    ) -> list["RunArtifact | None"]:
        """Reconstruct submission-order artifacts from the shared store."""
        from ..api.runner import RunArtifact
        from ..kvcache.capacity import OutOfMemoryError

        artifacts: list[RunArtifact | None] = []
        for task_id in task_ids:
            result = self.spool.read_result(task_id)
            if result is None or result.get("status") not in ("done", "oom"):
                raise RuntimeError(
                    f"task {task_id} is not terminal; call wait() first"
                )
            if result["status"] == "oom":
                if oom_to_none:
                    artifacts.append(None)
                    continue
                raise OutOfMemoryError(
                    result.get("error", "layout cannot hold the model")
                )
            task = self.spool.load_task(task_id)
            artifact = RunArtifact.from_record(self.store.get_record(result["ref"]))
            # Memo hits keep whatever coordinates their old record carried;
            # restamp so hits and misses both wear this batch's coordinates
            # (run_many does the same after its reuse lookup).
            artifact.overrides = dict(task.overrides)
            artifact.reused = bool(result.get("reused", False))
            artifacts.append(artifact)
        return artifacts


def spawn_local_workers(
    spool: FabricSpool,
    store: "ArtifactStore",
    workers: int,
    *,
    poll_interval_s: float = 0.05,
    heartbeat_interval_s: float = 0.5,
) -> list[mp.Process]:
    """Start N local fabric worker processes against a spool + store."""
    ctx = mp.get_context(
        "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    )
    processes = []
    for i in range(workers):
        proc = ctx.Process(
            target=_worker_entry,
            args=(
                str(spool.root),
                str(store.root),
                store.compress,
                f"local-{i}",
                poll_interval_s,
                heartbeat_interval_s,
            ),
            daemon=True,
        )
        proc.start()
        processes.append(proc)
    return processes


def run_fabric(
    specs: Iterable["ScenarioSpec"],
    *,
    workers: int = 1,
    store: "ArtifactStore | str | None" = None,
    spool: FabricSpool | str | None = None,
    reuse: bool = False,
    oom_to_none: bool = False,
    overrides: Sequence[Mapping[str, Any]] | None = None,
    lease_timeout_s: float = 15.0,
    max_attempts: int = 3,
    backoff_base_s: float = 0.25,
    poll_interval_s: float = 0.05,
    heartbeat_interval_s: float = 0.5,
    timeout_s: float | None = None,
) -> list["RunArtifact | None"]:
    """Run a spec batch on N freshly spawned local fabric workers.

    The single-host convenience wrapper (and the ``run_many``/``run_sweep``
    ``backend="fabric"`` implementation): everything still flows through the
    spool + shared store exactly as a multi-host deployment would, so the
    coordination layer is exercised end to end.  With ``spool=None`` a
    temporary spool is used and removed afterwards; with ``store=None`` the
    records land in a store inside that temp spool (the reconstructed
    artifacts are still returned).
    """
    from ..api.store import ArtifactStore, as_store

    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise ValueError(f"workers must be a positive integer, got {workers!r}")
    tmp_root = None
    if spool is None:
        tmp_root = tempfile.mkdtemp(prefix="tdpipe-spool-")
        spool = tmp_root
    spool = spool if isinstance(spool, FabricSpool) else FabricSpool(spool)
    store_obj = (
        ArtifactStore(spool.root / "store") if store is None else as_store(store)
    )
    coordinator = FabricCoordinator(
        spool,
        store_obj,
        lease_timeout_s=lease_timeout_s,
        max_attempts=max_attempts,
        backoff_base_s=backoff_base_s,
        poll_interval_s=poll_interval_s,
    )
    task_ids = coordinator.submit(specs, reuse=reuse, overrides=overrides)
    processes = spawn_local_workers(
        spool,
        store_obj,
        workers,
        poll_interval_s=poll_interval_s,
        heartbeat_interval_s=heartbeat_interval_s,
    )
    try:
        coordinator.wait(task_ids, timeout_s=timeout_s)
        return coordinator.collect(task_ids, oom_to_none=oom_to_none)
    finally:
        spool.request_drain()
        for proc in processes:
            proc.join(timeout=5.0)
        for proc in processes:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        if tmp_root is not None:
            shutil.rmtree(tmp_root, ignore_errors=True)
