"""Distributed sweep fabric: a fault-tolerant multi-worker queue over the store.

PR 6 made the :class:`~repro.api.store.ArtifactStore` a provenance-gated
memo cache and PR 5 a process pool; this package supplies the missing
multi-host half: a filesystem-spooled work queue
(:class:`~repro.fabric.queue.FabricSpool`) that ships resolved specs out to
independent :class:`~repro.fabric.worker.FabricWorker` processes — on one
machine or across hosts sharing a filesystem — and collects
:class:`~repro.api.runner.RunArtifact` records back through the shared
store, with results bit-identical to serial execution.

The :class:`~repro.fabric.coordinator.FabricCoordinator` owns all failure
policy (lease-expiry requeue when a worker dies mid-task, bounded retry
with exponential backoff, poison-task quarantine);
:func:`~repro.fabric.coordinator.run_fabric` is the one-call local form and
the ``backend="fabric"`` implementation behind ``run_many``/``run_sweep``.

CLI: ``tdpipe-bench fabric submit|worker|status|drain`` (multi-host), or
``tdpipe-bench run --spec ... --backend fabric --jobs N`` (single host).
"""

from .coordinator import FabricCoordinator, run_fabric, spawn_local_workers
from .queue import FabricSpool, FabricTask
from .worker import FabricWorker

__all__ = [
    "FabricSpool",
    "FabricTask",
    "FabricWorker",
    "FabricCoordinator",
    "run_fabric",
    "spawn_local_workers",
]
