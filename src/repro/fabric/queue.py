"""Filesystem-spooled work queue: the fabric's shared coordination medium.

The distributed sweep fabric needs exactly one piece of shared state between
a coordinator and any number of workers, and a directory on a shared
filesystem is enough: every resolved :class:`~repro.api.spec.ScenarioSpec`
is plain canonical JSON, every result is a content-addressed ref into the
shared :class:`~repro.api.store.ArtifactStore`, so the queue only has to
move small task descriptors and acks.  Layout under one spool root::

    <spool>/
      tasks/<task_id>.json       # one resolved-spec task descriptor each
      leases/<task_id>.json      # O_EXCL claim: worker id + heartbeat stamp
      results/<task_id>.json     # terminal ack: done/oom/error (+ store ref)
      quarantine/<task_id>.json  # poison tasks pulled out of circulation
      DRAIN                      # sentinel: workers exit instead of claiming

State machine per task (the *files* are the state — no daemon owns it):

* **pending** — task file exists, no lease, no result.  Claimable.
* **running** — lease file exists and its mtime is fresh.  The lease is
  created with ``O_CREAT | O_EXCL``, which is atomic on POSIX filesystems
  (and on NFSv3+ for exclusive creates), so exactly one worker wins a task.
  The winner refreshes the lease mtime on a heartbeat thread.
* **done / oom / error** — a result file exists (written atomically via
  rename).  ``done`` acks carry the store ref the record was filed under.
* **stale** — lease exists but its mtime stopped advancing: the worker died
  mid-task.  The coordinator deletes the lease after ``lease_timeout_s`` and
  the task becomes claimable again (lease-expiry requeue).
* **quarantined** — failed ``max_attempts`` times; the coordinator moves the
  task file out of ``tasks/`` so no worker can ever claim it again, and
  keeps the last error alongside for the post-mortem.

All writes that other hosts may observe mid-flight go through
write-tmp-then-``os.replace`` so readers only ever see complete JSON.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["FabricSpool", "FabricTask"]

_TASKS = "tasks"
_LEASES = "leases"
_RESULTS = "results"
_QUARANTINE = "quarantine"
_DRAIN = "DRAIN"

#: Terminal result statuses a worker may ack.
RESULT_STATUSES = ("done", "oom", "error")


@dataclass(frozen=True)
class FabricTask:
    """One unit of fabric work: a resolved spec plus batch bookkeeping.

    ``index`` is the task's position in its submission batch — the
    coordinator reconstructs submission-order results from it, and it names
    the failing grid point in :class:`~repro.api.parallel.SpecExecutionError`
    exactly like the pool backend does.
    """

    task_id: str
    index: int
    name: str
    spec: dict[str, Any]
    #: Serve this task from the shared store when a provenance-matched
    #: record exists (the memoizing-store check; see repro.api.parallel).
    reuse: bool = False
    #: Sweep coordinates, stamped on the artifact before it is filed so
    #: fabric-produced records match serial ``run_sweep`` records.
    overrides: dict[str, Any] = field(default_factory=dict)
    #: Claim priority: higher claims first; equal priorities keep
    #: lexicographic (= submission) order.  0 is the default tier.
    priority: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "task_id": self.task_id,
            "index": self.index,
            "name": self.name,
            "spec": self.spec,
            "reuse": self.reuse,
            "overrides": dict(self.overrides),
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FabricTask":
        return cls(
            task_id=str(data["task_id"]),
            index=int(data["index"]),
            name=str(data["name"]),
            spec=dict(data["spec"]),
            reuse=bool(data.get("reuse", False)),
            overrides=dict(data.get("overrides", {})),
            priority=int(data.get("priority", 0)),
        )


def _write_atomic(path: Path, payload: dict[str, Any]) -> None:
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, allow_nan=False)
        fh.write("\n")
    os.replace(tmp, path)


def _read_json(path: Path) -> dict[str, Any] | None:
    """Read a spool JSON file; ``None`` when it vanished under us (a race
    with another host's requeue/cleanup, not an error)."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


class FabricSpool:
    """The on-disk task queue: atomic claims, heartbeats, acks, quarantine."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        # Task files are immutable once spooled (requeue/quarantine move or
        # delete them, never rewrite), so priorities can be cached per spool
        # handle instead of re-reading every task file on every claim scan.
        self._priority_cache: dict[str, int] = {}

    # -- paths ---------------------------------------------------------- #
    @property
    def tasks_dir(self) -> Path:
        return self.root / _TASKS

    @property
    def leases_dir(self) -> Path:
        return self.root / _LEASES

    @property
    def results_dir(self) -> Path:
        return self.root / _RESULTS

    @property
    def quarantine_dir(self) -> Path:
        return self.root / _QUARANTINE

    @property
    def drain_path(self) -> Path:
        return self.root / _DRAIN

    def _task_path(self, task_id: str) -> Path:
        return self.tasks_dir / f"{task_id}.json"

    def _lease_path(self, task_id: str) -> Path:
        return self.leases_dir / f"{task_id}.json"

    def _result_path(self, task_id: str) -> Path:
        return self.results_dir / f"{task_id}.json"

    def ensure_layout(self) -> None:
        for directory in (
            self.tasks_dir, self.leases_dir, self.results_dir, self.quarantine_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # -- submission ------------------------------------------------------ #
    @staticmethod
    def new_batch_id() -> str:
        """A sortable, collision-free batch prefix (time + random tail)."""
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        return f"b{stamp}-{uuid.uuid4().hex[:6]}"

    def submit(
        self,
        spec_dicts: Sequence[Mapping[str, Any]],
        *,
        names: Sequence[str],
        reuse: bool = False,
        overrides: Sequence[Mapping[str, Any]] | None = None,
        batch: str | None = None,
        priority: int = 0,
        priorities: Sequence[int] | None = None,
    ) -> list[str]:
        """Spool one task file per resolved spec; return task ids in order.

        Task ids embed the batch prefix and the zero-padded submission index,
        so lexicographic order within a batch *is* submission order and
        workers scanning ``tasks/`` pick work up in a stable sequence.
        ``priority`` (one tier for the whole batch) or ``priorities`` (one
        per spec) place tasks in higher-first claim tiers — see
        :meth:`claim_order`.
        """
        if overrides is not None and len(overrides) != len(spec_dicts):
            raise ValueError(
                f"got {len(overrides)} override dicts for {len(spec_dicts)} specs"
            )
        if priorities is not None and len(priorities) != len(spec_dicts):
            raise ValueError(
                f"got {len(priorities)} priorities for {len(spec_dicts)} specs"
            )
        self.ensure_layout()
        batch = batch or self.new_batch_id()
        task_ids = []
        for index, spec in enumerate(spec_dicts):
            task = FabricTask(
                task_id=f"{batch}-{index:05d}",
                index=index,
                name=str(names[index]),
                spec=dict(spec),
                reuse=reuse,
                overrides=dict(overrides[index]) if overrides is not None else {},
                priority=int(priorities[index] if priorities is not None else priority),
            )
            _write_atomic(self._task_path(task.task_id), task.to_dict())
            self._priority_cache[task.task_id] = task.priority
            task_ids.append(task.task_id)
        return task_ids

    # -- task access ----------------------------------------------------- #
    def task_ids(self) -> list[str]:
        """Every spooled (non-quarantined) task id, in lexicographic order."""
        if not self.tasks_dir.exists():
            return []
        return sorted(
            path.stem for path in self.tasks_dir.glob("*.json")
            if not path.name.endswith(".tmp")
        )

    def task_priority(self, task_id: str) -> int:
        """The task's claim priority (cached; task files are immutable)."""
        cached = self._priority_cache.get(task_id)
        if cached is not None:
            return cached
        data = _read_json(self._task_path(task_id))
        if data is None:
            return 0  # vanished under us (claimed + completed, or quarantined)
        priority = int(data.get("priority", 0))
        self._priority_cache[task_id] = priority
        return priority

    def claim_order(self) -> list[str]:
        """Spooled task ids in claim order: highest priority first, then
        lexicographic (= submission order) within a tier."""
        return sorted(
            self.task_ids(), key=lambda tid: (-self.task_priority(tid), tid)
        )

    def load_task(self, task_id: str) -> FabricTask:
        data = _read_json(self._task_path(task_id))
        if data is None:
            data = _read_json(self.quarantine_dir / f"{task_id}.json")
        if data is None:
            raise KeyError(f"spool {self.root} has no task {task_id!r}")
        return FabricTask.from_dict(data)

    # -- leases ---------------------------------------------------------- #
    def claim(self, task_id: str, worker_id: str) -> bool:
        """Atomically claim a task; False when another worker holds it.

        The ``O_CREAT | O_EXCL`` open is the whole mutual-exclusion story:
        the filesystem guarantees exactly one creator, so two workers racing
        on the same task file cannot both win.
        """
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "worker": worker_id,
                "pid": os.getpid(),
                "claimed_at": time.time(),
                "heartbeat": time.time(),
            },
            indent=2,
        )
        try:
            fd = os.open(
                self._lease_path(task_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        try:
            os.write(fd, (payload + "\n").encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def heartbeat(self, task_id: str, worker_id: str) -> None:
        """Refresh a held lease's mtime (and stamp the wall-clock time).

        Staleness is judged by the lease file's mtime as the *observer* sees
        it — on a shared filesystem that is the server's clock, which all
        hosts agree on far better than their own wall clocks.
        """
        lease = _read_json(self._lease_path(task_id)) or {}
        lease.update(worker=worker_id, pid=os.getpid(), heartbeat=time.time())
        lease.setdefault("claimed_at", lease["heartbeat"])
        _write_atomic(self._lease_path(task_id), lease)

    def release(self, task_id: str) -> None:
        try:
            os.unlink(self._lease_path(task_id))
        except FileNotFoundError:
            pass

    def lease_info(self, task_id: str) -> dict[str, Any] | None:
        return _read_json(self._lease_path(task_id))

    def lease_age_s(self, task_id: str) -> float | None:
        """Seconds since the lease last heartbeat; None when unleased."""
        try:
            mtime = self._lease_path(task_id).stat().st_mtime
        except FileNotFoundError:
            return None
        return max(0.0, time.time() - mtime)

    # -- results --------------------------------------------------------- #
    def write_result(self, task_id: str, payload: Mapping[str, Any]) -> None:
        if payload.get("status") not in RESULT_STATUSES:
            raise ValueError(
                f"result status must be one of {RESULT_STATUSES}, "
                f"got {payload.get('status')!r}"
            )
        self.results_dir.mkdir(parents=True, exist_ok=True)
        _write_atomic(self._result_path(task_id), dict(payload))

    def read_result(self, task_id: str) -> dict[str, Any] | None:
        return _read_json(self._result_path(task_id))

    def clear_result(self, task_id: str) -> None:
        try:
            os.unlink(self._result_path(task_id))
        except FileNotFoundError:
            pass

    # -- robustness primitives ------------------------------------------- #
    def requeue(self, task_id: str) -> None:
        """Make a task claimable again: drop its lease and any result."""
        self.clear_result(task_id)
        self.release(task_id)

    def quarantine(self, task_id: str, error: str, attempts: int) -> None:
        """Pull a poison task out of circulation, keeping the evidence."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        task_path = self._task_path(task_id)
        target = self.quarantine_dir / task_path.name
        try:
            os.replace(task_path, target)
        except FileNotFoundError:
            pass
        _write_atomic(
            self.quarantine_dir / f"{task_id}.error.json",
            {"task_id": task_id, "error": error, "attempts": attempts},
        )
        self.requeue(task_id)

    def restore_quarantined(self, task_id: str) -> None:
        """Put a quarantined task back into circulation (manual recovery).

        The inverse of :meth:`quarantine`: the task file moves back into
        ``tasks/``, the preserved error evidence is dropped, and any stale
        lease or result is cleared so the task is immediately claimable.
        Raises ``KeyError`` when the task is not quarantined — requeuing a
        live task by mistake should be loud, not a silent no-op.
        """
        source = self.quarantine_dir / f"{task_id}.json"
        if not source.exists():
            raise KeyError(
                f"spool {self.root} has no quarantined task {task_id!r}"
            )
        self.ensure_layout()
        os.replace(source, self._task_path(task_id))
        try:
            os.unlink(self.quarantine_dir / f"{task_id}.error.json")
        except FileNotFoundError:
            pass
        self.requeue(task_id)

    def quarantined_ids(self) -> list[str]:
        if not self.quarantine_dir.exists():
            return []
        return sorted(
            path.stem for path in self.quarantine_dir.glob("*.json")
            if not path.name.endswith(".error.json")
        )

    # -- drain ----------------------------------------------------------- #
    def request_drain(self) -> None:
        """Tell every worker to exit instead of claiming more work."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.drain_path.touch()

    def clear_drain(self) -> None:
        try:
            os.unlink(self.drain_path)
        except FileNotFoundError:
            pass

    def drain_requested(self) -> bool:
        return self.drain_path.exists()

    # -- observability ---------------------------------------------------- #
    def status(self, *, lease_timeout_s: float = 30.0) -> dict[str, Any]:
        """One snapshot of the whole spool: per-state counts plus workers."""
        counts = {
            "pending": 0, "running": 0, "stale": 0,
            "done": 0, "oom": 0, "error": 0,
        }
        workers: dict[str, int] = {}
        for task_id in self.task_ids():
            result = self.read_result(task_id)
            if result is not None:
                counts[result.get("status", "error")] += 1
                continue
            age = self.lease_age_s(task_id)
            if age is None:
                counts["pending"] += 1
            elif age > lease_timeout_s:
                counts["stale"] += 1
            else:
                counts["running"] += 1
                lease = self.lease_info(task_id) or {}
                worker = str(lease.get("worker", "?"))
                workers[worker] = workers.get(worker, 0) + 1
        quarantined = self.quarantined_ids()
        return {
            **counts,
            "quarantined": len(quarantined),
            "tasks": sum(counts.values()) + len(quarantined),
            "drain": self.drain_requested(),
            "workers": workers,
        }
