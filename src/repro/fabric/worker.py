"""Fabric worker: claim tasks, memo-check the store, execute, ack.

A worker is a daemon loop over the spool: scan ``tasks/`` in order, claim
the first task that has neither a lease nor a result (atomic ``O_EXCL``
lease creation — see :mod:`repro.fabric.queue`), then

1. check the shared :class:`~repro.api.store.ArtifactStore` first when the
   task asks for reuse — a record filed under the spec's content hash with a
   matching code-provenance stamp is acked as a hit without executing
   anything (the store *is* the memo cache, exactly as in
   ``run_many(reuse=True)``);
2. execute misses through the one true :func:`repro.api.run`, stamp the
   task's sweep coordinates, and file the full-detail record into the
   shared store — the store is also the result transport, the ack only
   carries the ref;
3. write the terminal result file and release the lease (in that order, so
   a task is never simultaneously unleased and unacked, i.e. claimable
   twice).

While a task runs, a daemon heartbeat thread refreshes the lease mtime
every ``heartbeat_interval_s``; a worker that dies mid-task (crash, OOM
kill, lost host) simply stops heartbeating and the coordinator requeues the
task after ``lease_timeout_s``.  The simulator is deterministic, so a
re-executed task files a byte-identical record (modulo wall time) under the
same content hash — a requeue can never fork the results.

Failure acks: :class:`~repro.kvcache.capacity.OutOfMemoryError` is acked as
``oom`` (deterministic — retrying cannot help; the coordinator decides
whether it is tolerated), every other exception as ``error`` with the type
and message (the coordinator owns bounded retry and quarantine).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import TYPE_CHECKING, Any

from .queue import FabricSpool, FabricTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.store import ArtifactStore

__all__ = ["FabricWorker"]

#: Test seams (documented, like ``TDPIPE_CODE_FINGERPRINT``): a crash- or
#: failure-injection hook has to live *inside* the worker process to prove
#: the lease-expiry and retry paths end to end.
_ENV_TEST_DELAY = "TDPIPE_FABRIC_TEST_DELAY_S"
_ENV_TEST_FAIL = "TDPIPE_FABRIC_TEST_FAIL"


class _Heartbeat(threading.Thread):
    """Refresh one task's lease mtime until stopped (daemon thread)."""

    def __init__(
        self, spool: FabricSpool, task_id: str, worker_id: str, interval_s: float
    ) -> None:
        super().__init__(name=f"heartbeat-{task_id}", daemon=True)
        self.spool = spool
        self.task_id = task_id
        self.worker_id = worker_id
        self.interval_s = interval_s
        # Not named _stop: Thread's internals own that attribute.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            try:
                self.spool.heartbeat(self.task_id, self.worker_id)
            except OSError:  # pragma: no cover - transient fs hiccup
                pass

    def stop(self) -> None:
        self._halt.set()


class FabricWorker:
    """One worker process' claim-execute-ack loop over a shared spool."""

    def __init__(
        self,
        spool: FabricSpool | str | os.PathLike,
        store: "ArtifactStore | str | os.PathLike",
        *,
        worker_id: str | None = None,
        poll_interval_s: float = 0.2,
        heartbeat_interval_s: float = 1.0,
    ) -> None:
        from ..api.store import as_store

        self.spool = spool if isinstance(spool, FabricSpool) else FabricSpool(spool)
        self.store = as_store(store)
        if self.store.lean:
            raise ValueError(
                "fabric workers need a full-detail store: lean records cannot "
                "be reconstructed into the artifacts the coordinator collects"
            )
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s
        # Provenance stamp cache: the source-tree fingerprint walk is pure
        # function of this process' code, so one computation serves every
        # reuse check this worker ever makes (lazily filled on first use).
        self._stamp: dict[str, str] | None = None

    # -- the daemon loop ------------------------------------------------- #
    def run(
        self,
        *,
        max_tasks: int | None = None,
        idle_exit_s: float | None = None,
    ) -> dict[str, int]:
        """Claim and process tasks until drained (or bounded by the knobs).

        ``max_tasks`` caps how many tasks this worker processes;
        ``idle_exit_s`` exits after that long with nothing claimable
        (otherwise the worker polls forever, waiting for the drain
        sentinel).  Returns ``{"claimed", "executed", "reused", "failed"}``.
        """
        stats = {"claimed": 0, "executed": 0, "reused": 0, "failed": 0}
        idle_since: float | None = None
        while True:
            if self.spool.drain_requested():
                break
            if max_tasks is not None and stats["claimed"] >= max_tasks:
                break
            task = self._claim_next()
            if task is None:
                now = time.time()
                idle_since = idle_since if idle_since is not None else now
                if idle_exit_s is not None and now - idle_since >= idle_exit_s:
                    break
                time.sleep(self.poll_interval_s)
                continue
            idle_since = None
            stats["claimed"] += 1
            outcome = self._run_claimed(task)
            stats[outcome] += 1
        return stats

    def _claim_next(self) -> FabricTask | None:
        for task_id in self.spool.claim_order():
            if self.spool.read_result(task_id) is not None:
                continue
            if self.spool.lease_info(task_id) is not None:
                continue
            if not self.spool.claim(task_id, self.worker_id):
                continue  # lost the race — move on to the next task
            try:
                return self.spool.load_task(task_id)
            except KeyError:
                # Quarantined between scan and claim; give the lease back.
                self.spool.release(task_id)
        return None

    # -- one task --------------------------------------------------------- #
    def _run_claimed(self, task: FabricTask) -> str:
        heartbeat = _Heartbeat(
            self.spool, task.task_id, self.worker_id, self.heartbeat_interval_s
        )
        heartbeat.start()
        try:
            result = self._execute(task)
            self.spool.write_result(task.task_id, result)
        finally:
            heartbeat.stop()
            heartbeat.join(timeout=2.0)
            # Release strictly after the ack: between the two the task holds
            # both files, never neither, so it cannot be claimed twice.
            self.spool.release(task.task_id)
        status = result["status"]
        if status == "done":
            return "reused" if result.get("reused") else "executed"
        return "failed"

    def _execute(self, task: FabricTask) -> dict[str, Any]:
        from ..api.parallel import stored_artifact_for
        from ..api.runner import run
        from ..api.spec import ScenarioSpec
        from ..api.store.canonical import content_hash
        from ..kvcache.capacity import OutOfMemoryError

        base = {"worker": self.worker_id, "task_id": task.task_id}
        try:
            delay = float(os.environ.get(_ENV_TEST_DELAY, "0") or 0.0)
            if delay > 0:
                time.sleep(delay)
            if os.environ.get(_ENV_TEST_FAIL):
                raise RuntimeError(f"injected failure ({_ENV_TEST_FAIL})")
            spec = ScenarioSpec.from_dict(task.spec)
            if task.reuse:
                if self._stamp is None:
                    from ..api.provenance import provenance_stamp

                    self._stamp = provenance_stamp()
                hit = stored_artifact_for(self.store, spec, stamp=self._stamp)
                if hit is not None:
                    return {
                        **base,
                        "status": "done",
                        "ref": content_hash(spec),
                        "reused": True,
                    }
            artifact = run(spec)
            if task.overrides:
                artifact.overrides = dict(task.overrides)
            ref = self.store.put(artifact)
            return {**base, "status": "done", "ref": ref, "reused": False}
        except OutOfMemoryError as exc:
            return {**base, "status": "oom", "error": str(exc)}
        except Exception as exc:
            return {
                **base,
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
            }


def _worker_entry(
    spool_root: str,
    store_root: str,
    compress: bool,
    worker_id: str,
    poll_interval_s: float,
    heartbeat_interval_s: float,
) -> None:
    """Top-level process entry point for locally spawned workers."""
    from ..api.store import ArtifactStore

    worker = FabricWorker(
        FabricSpool(spool_root),
        ArtifactStore(store_root, compress=compress),
        worker_id=worker_id,
        poll_interval_s=poll_interval_s,
        heartbeat_interval_s=heartbeat_interval_s,
    )
    worker.run()
