"""Per-replica capacity scoring and fleet-spec parsing.

Heterogeneous fleets (mixed L20/A100 nodes) break raw-count load balancing:
three requests queued on an A100 replica represent far less *time* than three
on an L20.  The control plane therefore normalizes every load signal by a
**throughput score** — the tokens/s a replica sustains on a fixed reference
workload, evaluated through the replica's own roofline stage cost models
(which are built from its :class:`~repro.hardware.gpu.GPUSpec`).  Scores are
only ever used as ratios between replicas, so the choice of reference
workload shifts all scores together and cancels out.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["replica_capacity_score", "parse_fleet", "REF_PROMPT_LEN", "REF_DECODE_BATCH"]

#: Reference workload: prefill one prompt of this many tokens...
REF_PROMPT_LEN = 512
#: ...and run one decode step over a batch of this many resident requests,
#: each holding a REF_PROMPT_LEN-token context.
REF_DECODE_BATCH = 8


def replica_capacity_score(engine) -> float:
    """Tokens/s of the reference workload through ``engine``'s cost models.

    Pipeline throughput is bottleneck-bound, so per-phase time is the *max*
    over stages (stages overlap across batches), and the score is reference
    tokens divided by the summed phase times.  Objects without roofline stage
    models (e.g. test doubles) score a neutral 1.0, which degrades every
    normalized policy to its raw-count behaviour.
    """
    stage_models = getattr(engine, "stage_models", None)
    if not stage_models:
        return 1.0
    prefill_s = max(sm.prefill_time([REF_PROMPT_LEN]) for sm in stage_models)
    kv_tokens = float(REF_DECODE_BATCH * REF_PROMPT_LEN)
    decode_s = max(sm.decode_time(REF_DECODE_BATCH, kv_tokens) for sm in stage_models)
    tokens = REF_PROMPT_LEN + REF_DECODE_BATCH
    return tokens / (prefill_s + decode_s)


def parse_fleet(spec: str | Sequence[str]) -> list[str]:
    """Expand a fleet spec into one GPU/node name per replica.

    ``"l20:2,a100:2"`` -> ``["l20", "l20", "a100", "a100"]``; a bare name
    means count 1; a sequence of names passes through unchanged.
    """
    if not isinstance(spec, str):
        names = [str(n) for n in spec]
        if not names:
            raise ValueError("empty fleet spec")
        return names
    names = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count = part.partition(":")
        n = int(count) if count else 1
        if n < 1:
            raise ValueError(f"fleet count must be >= 1 in {part!r}")
        names.extend([name.strip()] * n)
    if not names:
        raise ValueError(f"empty fleet spec {spec!r}")
    return names
