"""Cluster control plane: routing, admission, and fleet sizing policies.

One normalized view of replica state (:class:`ReplicaSnapshot`, capacity
scores from the roofline model) feeds three pluggable policy families:

* routers (:mod:`.routing`) — where each arriving request lands;
* the autoscaler (:mod:`.autoscaler`) — how many replicas are active;
* the :class:`ControlPlane` (:mod:`.plane`) — admission (active/draining
  sets), policy execution on the shared clock, and fleet accounting.

``repro.cluster.routing`` re-exports the router classes for backward
compatibility; new code should import from this package.
"""

from .autoscaler import Autoscaler
from .capacity import parse_fleet, replica_capacity_score
from .incremental import LoadTracker
from .plane import ControlPlane
from .routing import (
    ROUTER_NAMES,
    ROUTERS,
    DeadlineAwareRouter,
    JoinShortestQueueRouter,
    LeastLoadedKVRouter,
    PhaseAwareRouter,
    RoundRobinRouter,
    Router,
    StaticRouter,
    make_router,
)
from .snapshot import (
    ReplicaSnapshot,
    SnapshotBuffer,
    SnapshotView,
    reset_snapshot_capture_count,
    snapshot_capture_count,
)

__all__ = [
    "Autoscaler",
    "ControlPlane",
    "LoadTracker",
    "ReplicaSnapshot",
    "SnapshotBuffer",
    "SnapshotView",
    "snapshot_capture_count",
    "reset_snapshot_capture_count",
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "LeastLoadedKVRouter",
    "PhaseAwareRouter",
    "DeadlineAwareRouter",
    "StaticRouter",
    "ROUTERS",
    "ROUTER_NAMES",
    "make_router",
    "parse_fleet",
    "replica_capacity_score",
]
