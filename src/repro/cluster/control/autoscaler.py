"""Fleet-sizing policy: scale the active replica set on queue pressure.

The autoscaler is evaluated periodically on the shared cluster clock by the
:class:`~repro.cluster.control.plane.ControlPlane`.  Its pressure signal is
capacity-normalized — estimated seconds of queued prefill work per unit of
active fleet capacity — so the same thresholds work for homogeneous and
mixed fleets.  Hysteresis comes from patience counters: pressure must sit
beyond a threshold for several consecutive ticks before the fleet changes,
and the up/down patience are asymmetric (scaling up is cheap in a simulator
but draining wastes warm capacity, so scale-down is the slower decision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .snapshot import ReplicaSnapshot

__all__ = ["Autoscaler"]


@dataclass
class Autoscaler:
    """Threshold/hysteresis fleet-sizing policy.

    ``decide`` returns +1 (activate a replica), -1 (drain one), or 0, given
    snapshots of the currently routable replicas.  The control plane owns
    *which* replica to start or drain and enforces the hard invariants
    (never below ``min_replicas``; a draining replica is only deactivated
    once it holds no resident requests).
    """

    #: Never drain the routable set below this size.
    min_replicas: int = 1
    #: Cap on active replicas (None = every provisioned replica may start).
    max_replicas: int | None = None
    #: How many replicas are active at t=0 (None = ``min_replicas``).
    initial_replicas: int | None = None
    #: Seconds of simulated time between control-loop evaluations.
    interval_s: float = 0.25
    #: Scale up when pending work exceeds this many seconds per unit capacity.
    up_threshold_s: float = 0.5
    #: Scale down when pending work falls below this level.
    down_threshold_s: float = 0.05
    #: Consecutive over-threshold ticks before scaling up.
    up_patience: int = 2
    #: Consecutive under-threshold ticks before draining (slower than up).
    down_patience: int = 8
    #: Pending-work allowance per resident request, in tokens.  Phase-batched
    #: engines admit their waiting queue into prefill quickly, so queued
    #: tokens alone read a saturated-but-decoding replica as idle; counting
    #: each in-system request as this many tokens of remaining work keeps
    #: the fleet from draining mid-decode-phase.
    work_per_resident_tokens: float = 64.0
    _over: int = field(default=0, repr=False)
    _under: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas is not None and self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.down_threshold_s >= self.up_threshold_s:
            raise ValueError("down_threshold_s must be below up_threshold_s")

    def reset(self) -> None:
        self._over = 0
        self._under = 0

    def pressure(self, snapshots: Sequence[ReplicaSnapshot]) -> float:
        """Seconds of pending work per unit of routable capacity."""
        capacity = sum(s.capacity for s in snapshots)
        if capacity <= 0:
            return 0.0
        work = sum(
            s.queued_tokens + self.work_per_resident_tokens * s.in_system
            for s in snapshots
        )
        return work / capacity

    def decide(self, snapshots: Sequence[ReplicaSnapshot]) -> int:
        """Hysteresis step: -1 / 0 / +1 fleet-size delta for this tick."""
        p = self.pressure(snapshots)
        if p > self.up_threshold_s:
            self._over += 1
            self._under = 0
            if self._over >= self.up_patience:
                self._over = 0
                return 1
        elif p < self.down_threshold_s:
            self._under += 1
            self._over = 0
            if self._under >= self.down_patience:
                self._under = 0
                return -1
        else:
            self._over = 0
            self._under = 0
        return 0
