"""Normalized replica state: the one view all control policies share.

A :class:`ReplicaSnapshot` is an immutable capture of the load signals a
production front-end would poll from a replica's stats endpoint — queue
depth, in-system count, queued prompt tokens, KV occupancy, temporal phase —
plus the replica's capacity score.  Routers and the autoscaler score
snapshots, never live engines, which makes two guarantees structural:
``choose`` cannot mutate replica state, and every policy reads the *same*
normalization (satisfying "JSQ counts in-system while phase-aware counts
waiting" drift by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReplicaSnapshot"]


@dataclass(frozen=True)
class ReplicaSnapshot:
    """Point-in-time load view of one replica."""

    #: Position of this replica in the fleet list the snapshot was taken from.
    index: int
    #: Requests waiting for admission (not yet prefillled).
    queue_depth: int
    #: Requests admitted but unfinished (waiting + resident).
    in_system: int
    #: Total prompt tokens of the waiting queue — the prefill work backlog.
    #: Costs O(queue) to read, so ``capture`` only fills it in when asked
    #: (deadline router, autoscaler); 0 otherwise.
    queued_tokens: int
    #: KV-cache block-pool occupancy in [0, 1].
    kv_usage: float
    #: Temporal phase ("prefill"/"decode") for TD-Pipe replicas, else None.
    phase: str | None
    #: Throughput score (reference tokens/s); see
    #: :func:`repro.cluster.control.capacity.replica_capacity_score`.
    capacity: float = 1.0

    @classmethod
    def capture(
        cls,
        replica,
        capacity: float = 1.0,
        index: int = 0,
        with_queued_tokens: bool = False,
    ) -> "ReplicaSnapshot":
        """Read a live engine's signals without touching its state.

        ``with_queued_tokens`` opts in to the O(queue) backlog-token sum;
        policies that only read counts keep routing O(1) per replica.
        """
        waiting = replica.waiting
        return cls(
            index=index,
            queue_depth=len(waiting),
            in_system=replica.in_system,
            queued_tokens=(
                sum(s.prefill_len for s in waiting) if with_queued_tokens else 0
            ),
            kv_usage=replica.block_manager.usage_ratio,
            phase=getattr(replica, "phase", None),
            capacity=capacity,
        )

    # ------------------------------------------------------------------ #
    # Capacity-normalized load signals (comparable across mixed fleets).
    # ------------------------------------------------------------------ #
    @property
    def load(self) -> float:
        """In-system requests per unit capacity — the normalized JSQ signal."""
        return self.in_system / self.capacity

    @property
    def queue_load(self) -> float:
        """Waiting requests per unit capacity."""
        return self.queue_depth / self.capacity

    @property
    def est_wait_s(self) -> float:
        """Estimated seconds of queued prefill work ahead of a newcomer."""
        return self.queued_tokens / self.capacity
