"""Normalized replica state: the one view all control policies share.

A :class:`ReplicaSnapshot` is an immutable capture of the load signals a
production front-end would poll from a replica's stats endpoint — queue
depth, in-system count, queued prompt tokens, KV occupancy, temporal phase —
plus the replica's capacity score.  Routers and the autoscaler score
snapshots, never live engines, which makes two guarantees structural:
``choose`` cannot mutate replica state, and every policy reads the *same*
normalization (satisfying "JSQ counts in-system while phase-aware counts
waiting" drift by construction).

Two representations share the signal definitions:

* :class:`ReplicaSnapshot` — the immutable per-capture dataclass.  One
  allocation per (replica, decision); the reference semantics, and what the
  autoscaler and the ``TDPIPE_ROUTING_SWEEP=1`` routing path consume.
* :class:`SnapshotBuffer` + :class:`SnapshotView` — a reusable
  struct-of-arrays buffer plus a single mutable view over it, refreshed only
  for replicas whose load changed since the previous decision.  Zero
  allocations per decision; the incremental routing fast path.  The view's
  derived properties (``load``/``queue_load``/``est_wait_s``) use the exact
  same expressions as the dataclass so scores are bit-identical floats.

``snapshot_capture_count`` counts ``ReplicaSnapshot.capture`` calls so the
perf harness can *assert* (not assume) that the incremental routing path
allocates no per-replica snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ReplicaSnapshot",
    "SnapshotBuffer",
    "SnapshotView",
    "snapshot_capture_count",
    "reset_snapshot_capture_count",
]

#: Number of ReplicaSnapshot.capture calls since the last reset (process
#: global; a measurement probe, not part of any policy contract).
_capture_count = 0


def snapshot_capture_count() -> int:
    """Process-wide count of :meth:`ReplicaSnapshot.capture` calls."""
    return _capture_count


def reset_snapshot_capture_count() -> None:
    global _capture_count
    _capture_count = 0


@dataclass(frozen=True)
class ReplicaSnapshot:
    """Point-in-time load view of one replica."""

    #: Position of this replica in the fleet list the snapshot was taken from.
    index: int
    #: Requests waiting for admission (not yet prefillled).
    queue_depth: int
    #: Requests admitted but unfinished (waiting + resident).
    in_system: int
    #: Total prompt tokens of the waiting queue — the prefill work backlog.
    #: Costs O(queue) to read, so ``capture`` only fills it in when asked
    #: (deadline router, autoscaler); 0 otherwise.
    queued_tokens: int
    #: KV-cache block-pool occupancy in [0, 1].
    kv_usage: float
    #: Temporal phase ("prefill"/"decode") for TD-Pipe replicas, else None.
    phase: str | None
    #: Throughput score (reference tokens/s); see
    #: :func:`repro.cluster.control.capacity.replica_capacity_score`.
    capacity: float = 1.0

    @classmethod
    def capture(
        cls,
        replica,
        capacity: float = 1.0,
        index: int = 0,
        with_queued_tokens: bool = False,
    ) -> "ReplicaSnapshot":
        """Read a live engine's signals without touching its state.

        ``with_queued_tokens`` opts in to the O(queue) backlog-token sum;
        policies that only read counts keep routing O(1) per replica.
        """
        global _capture_count
        _capture_count += 1
        waiting = replica.waiting
        return cls(
            index=index,
            queue_depth=len(waiting),
            in_system=replica.in_system,
            queued_tokens=(
                sum(s.prefill_len for s in waiting) if with_queued_tokens else 0
            ),
            kv_usage=replica.block_manager.usage_ratio,
            phase=getattr(replica, "phase", None),
            capacity=capacity,
        )

    # ------------------------------------------------------------------ #
    # Capacity-normalized load signals (comparable across mixed fleets).
    # ------------------------------------------------------------------ #
    @property
    def load(self) -> float:
        """In-system requests per unit capacity — the normalized JSQ signal."""
        return self.in_system / self.capacity

    @property
    def queue_load(self) -> float:
        """Waiting requests per unit capacity."""
        return self.queue_depth / self.capacity

    @property
    def est_wait_s(self) -> float:
        """Estimated seconds of queued prefill work ahead of a newcomer."""
        return self.queued_tokens / self.capacity


class SnapshotView:
    """A mutable, reusable stand-in for :class:`ReplicaSnapshot`.

    One instance is recycled across every replica and every routing decision
    (the allocation-free fast path).  Field names and derived-property
    expressions match the dataclass exactly, so ``Router.score`` receives
    bit-identical values from either representation.  Callers must treat a
    view as borrowed: it is only valid until the owning buffer's next
    :meth:`SnapshotBuffer.view` call.
    """

    __slots__ = (
        "index",
        "queue_depth",
        "in_system",
        "queued_tokens",
        "kv_usage",
        "phase",
        "capacity",
    )

    def __init__(self) -> None:
        self.index = 0
        self.queue_depth = 0
        self.in_system = 0
        self.queued_tokens = 0
        self.kv_usage = 0.0
        self.phase: str | None = None
        self.capacity = 1.0

    @property
    def load(self) -> float:
        return self.in_system / self.capacity

    @property
    def queue_load(self) -> float:
        return self.queue_depth / self.capacity

    @property
    def est_wait_s(self) -> float:
        return self.queued_tokens / self.capacity


class SnapshotBuffer:
    """Struct-of-arrays load signals for a fleet, refreshed replica-by-replica.

    The buffer holds one slot per *global* replica index.  ``refresh(i, ...)``
    re-reads replica ``i``'s live signals (the same reads as
    ``ReplicaSnapshot.capture``); ``view(i, index)`` projects slot ``i`` into
    the single reusable :class:`SnapshotView` with ``index`` set to the
    caller's position semantics (the sweep path stamps the replica's position
    in the routable subsequence, so the incremental path does too).
    """

    __slots__ = (
        "capacity",
        "queue_depth",
        "in_system",
        "queued_tokens",
        "kv_usage",
        "phase",
        "_view",
    )

    def __init__(self, capacities) -> None:
        n = len(capacities)
        self.capacity = [float(c) for c in capacities]
        self.queue_depth = [0] * n
        self.in_system = [0] * n
        self.queued_tokens = [0] * n
        self.kv_usage = [0.0] * n
        self.phase: list[str | None] = [None] * n
        self._view = SnapshotView()

    def refresh(self, i: int, replica, with_queued_tokens: bool = False) -> None:
        """Re-read replica ``i``'s live signals into slot ``i``."""
        waiting = replica.waiting
        self.queue_depth[i] = len(waiting)
        self.in_system[i] = replica.in_system
        self.queued_tokens[i] = (
            sum(s.prefill_len for s in waiting) if with_queued_tokens else 0
        )
        self.kv_usage[i] = replica.block_manager.usage_ratio
        self.phase[i] = getattr(replica, "phase", None)

    def view(self, i: int, index: int) -> SnapshotView:
        """Project slot ``i`` into the shared view (borrowed, not owned)."""
        v = self._view
        v.index = index
        v.queue_depth = self.queue_depth[i]
        v.in_system = self.in_system[i]
        v.queued_tokens = self.queued_tokens[i]
        v.kv_usage = self.kv_usage[i]
        v.phase = self.phase[i]
        v.capacity = self.capacity[i]
        return v
