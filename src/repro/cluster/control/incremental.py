"""Dirty-tracking substrate for incremental routing state.

The control plane's fast path replaces per-request O(fleet) snapshot sweeps
with state that is *maintained* instead of recomputed.  That requires an
invalidation signal, and this module is that signal:

* every replica engine gets a load observer (see
  :meth:`repro.runtime.base_engine.InferenceEngine.set_load_observer`) that
  fires whenever a routing-relevant signal changes — queue length, in-system
  count, KV occupancy, TD-Pipe phase;
* the observer marks the replica *dirty* in a :class:`LoadTracker`; consumers
  (routers) re-read only dirty replicas before the next decision;
* admission-set changes (activate/drain/deactivate, or an external write to
  ``plane.active``/``plane.draining``) bump a topology *epoch*, telling
  consumers to rebuild any structure keyed on routable positions.

The contract is deliberately one-sided: **over-notification is always safe**
(a spurious dirty mark costs one redundant refresh), while a missed
notification silently desynchronizes the incremental path from the
``TDPIPE_ROUTING_SWEEP=1`` reference.  Engine code should therefore notify
on any mutation that *might* change a signal rather than reason about
whether it did.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["LoadTracker"]


class LoadTracker:
    """Per-consumer dirty sets plus a fleet-topology epoch.

    Each consumer (a router instance, in practice) registers its own dirty
    set so independent consumers never steal each other's invalidations.
    Sets start all-dirty: a fresh consumer has seen nothing, so everything
    needs a first read.  Marks use *global* replica indices; a replica that
    goes dirty while un-routable simply stays marked until it rejoins the
    routable set and gets refreshed.
    """

    __slots__ = ("n", "epoch", "_dirty_sets")

    def __init__(self, n: int) -> None:
        self.n = n
        #: Bumped on every routable-set change; consumers compare against
        #: their last-seen value and rebuild position-keyed state on mismatch.
        self.epoch = 0
        self._dirty_sets: list[set[int]] = []

    def register(self) -> set[int]:
        """Add a consumer; returns its (initially all-dirty) dirty set.

        The caller owns the set: it discards indices as it refreshes them.
        """
        dirty = set(range(self.n))
        self._dirty_sets.append(dirty)
        return dirty

    def observer(self, i: int) -> Callable[[], None]:
        """A zero-arg callable marking replica ``i`` dirty for all consumers.

        Closes over the consumer list (not a snapshot of it), so consumers
        registered after the observer was installed still see the marks.
        """
        sets = self._dirty_sets

        def _mark() -> None:
            for dirty in sets:
                dirty.add(i)

        return _mark

    def mark_all(self) -> None:
        """Mark every replica dirty for every consumer (full re-read)."""
        everything = range(self.n)
        for dirty in self._dirty_sets:
            dirty.update(everything)

    def bump_epoch(self) -> None:
        """Record a routable-set change (activate/drain/external flag write)."""
        self.epoch += 1
