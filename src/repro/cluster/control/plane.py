"""The cluster control plane: routing, admission, and fleet sizing.

:class:`ControlPlane` owns the policy decisions a production front-end makes
outside any single replica:

* **admission** — which replicas are eligible targets right now (active and
  not draining);
* **routing** — which eligible replica each arriving request lands on,
  delegated to a pluggable :class:`~repro.cluster.control.routing.Router`
  scoring capacity-normalized snapshots;
* **fleet sizing** — when an :class:`~repro.cluster.control.autoscaler.
  Autoscaler` is attached, periodic control-loop ticks on the shared clock
  activate or drain replicas in response to queue pressure.

The plane also keeps the operator-facing accounting: a fleet-size timeline,
per-replica active-time totals, and an event log of every activation, drain
and deactivation.  Hard invariants enforced here rather than in any policy:
the routable set never shrinks below ``min_replicas``, and a replica is only
deactivated once it holds no resident requests.
"""

from __future__ import annotations

import os
from typing import Sequence

from ...sim.engine import Simulator
from ...workload.request import Request
from .autoscaler import Autoscaler
from .capacity import replica_capacity_score
from .incremental import LoadTracker
from .routing import Router
from .snapshot import ReplicaSnapshot

__all__ = ["ControlPlane"]


class _FlagList(list):
    """A ``list[bool]`` that notifies its owner on item mutation.

    ``active``/``draining`` are public state that tests and external tools
    write directly (``plane.draining[i] = True``), so the cached routable set
    can only be trusted if every write path — internal transitions *and*
    external pokes — invalidates it.
    """

    def __init__(self, values, on_change) -> None:
        super().__init__(values)
        self._on_change = on_change

    def __setitem__(self, index, value) -> None:
        super().__setitem__(index, value)
        self._on_change()


class ControlPlane:
    """Policy layer between arriving requests and the replica fleet."""

    def __init__(
        self,
        replicas: Sequence,
        router: Router,
        autoscaler: Autoscaler | None = None,
        routing_sweep: bool | None = None,
    ) -> None:
        self.replicas = list(replicas)
        self.router = router
        self.autoscaler = autoscaler
        #: Force the per-request snapshot-sweep routing path (the reference
        #: implementation) instead of the incremental fast path.  ``None``
        #: defers to the ``TDPIPE_ROUTING_SWEEP`` environment variable at
        #: ``begin`` time.
        self.routing_sweep = routing_sweep
        #: Dirty-tracking substrate for the incremental routing path; built
        #: in ``begin`` when the router and every replica support it, else
        #: None (sweep routing).  Must exist before the _FlagLists below —
        #: their write hook reads it.
        self._tracker: LoadTracker | None = None
        n = len(self.replicas)
        #: Throughput score per replica (roofline-derived, hardware-dependent).
        self.capacity_scores = [replica_capacity_score(r) for r in self.replicas]
        # Dirty-flag cache of the admission decision: `route` used to rebuild
        # the routable index list *and* its engine list for every request.
        self._all_indices = list(range(n))
        self._routable_cache: list[int] | None = None
        self._routable_engines: list | None = None
        self.active = _FlagList([True] * n, self._invalidate_routable)
        self.draining = _FlagList([False] * n, self._invalidate_routable)
        self._activated_at: list[float | None] = [None] * n
        #: Closed (start, end) activity intervals per replica.
        self._intervals: list[list[tuple[float, float]]] = [[] for _ in range(n)]
        #: Cumulative seconds each replica spent active (filled by finish()).
        self.active_time = [0.0] * n
        #: (time, active replica count) after every fleet-size change.
        self.timeline: list[tuple[float, int]] = []
        #: (time, event, replica index) log:
        #: "activate"/"drain"/"undrain"/"deactivate".
        self.events: list[tuple[float, str, int]] = []
        self._sim: Simulator | None = None
        self._total_requests = 0
        self._dispatched = 0

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    def begin(self, sim: Simulator, total_requests: int) -> None:
        """Reset per-run state and schedule the control loop at t=0."""
        self._sim = sim
        self._total_requests = total_requests
        self._dispatched = 0
        n = len(self.replicas)
        self._intervals = [[] for _ in range(n)]
        self.active_time = [0.0] * n
        self.timeline.clear()
        self.events.clear()
        self.router.reset(self.replicas)
        self._tracker = None
        if self._incremental_routing():
            self._tracker = LoadTracker(n)
            for i, replica in enumerate(self.replicas):
                replica.set_load_observer(self._tracker.observer(i))
            self.router.bind(self.replicas, self._tracker)
        if self.autoscaler is None:
            initial = n
        else:
            self.autoscaler.reset()
            initial = self.autoscaler.initial_replicas
            if initial is None:
                initial = self.autoscaler.min_replicas
            initial = max(1, min(initial, n))
        self.active = _FlagList(
            (i < initial for i in range(n)), self._invalidate_routable
        )
        self.draining = _FlagList([False] * n, self._invalidate_routable)
        self._invalidate_routable()
        self._activated_at = [0.0 if self.active[i] else None for i in range(n)]
        self.timeline.append((0.0, initial))
        if self.autoscaler is not None and n > 0:
            sim.schedule_callback(self.autoscaler.interval_s, self._tick)

    def finish(self, end_time: float) -> None:
        """Complete pending drains, close intervals, clamp to the makespan.

        After a successful run every replica is empty, so a replica still
        marked draining (its emptying raced the last control tick) can be
        deactivated here; replicas that were simply active stay active and
        just have their accounting interval closed.  Control ticks can fire
        up to one interval *after* the last completion (the trace makespan),
        so interval ends and timeline stamps are clamped to ``end_time`` —
        accounting never extends past the work it accounts for.
        """
        for i in range(len(self.replicas)):
            if self.active[i] and self.draining[i] and not self.replicas[i].in_system:
                self._deactivate(i, end_time)
        for i in range(len(self.replicas)):
            started = self._activated_at[i]
            if started is not None:
                self._intervals[i].append((started, end_time))
                self._activated_at[i] = None
            self.active_time[i] = sum(
                max(min(end, end_time) - min(start, end_time), 0.0)
                for start, end in self._intervals[i]
            )
        self.timeline = [(min(t, end_time), n) for t, n in self.timeline]

    # ------------------------------------------------------------------ #
    # Admission + routing.
    # ------------------------------------------------------------------ #
    def _incremental_routing(self) -> bool:
        """Whether this run can use the incremental routing fast path.

        Requires an opted-in router *and* replicas exposing the load-observer
        hook (bare test doubles silently fall back to sweeps — a double that
        never notifies would desynchronize the incremental state).  The
        ``TDPIPE_ROUTING_SWEEP`` environment variable (or the
        ``routing_sweep`` constructor flag) forces the sweep reference path.
        """
        sweep = self.routing_sweep
        if sweep is None:
            sweep = os.environ.get("TDPIPE_ROUTING_SWEEP", "") not in ("", "0")
        return (
            not sweep
            and self.router.supports_incremental
            and all(
                callable(getattr(r, "set_load_observer", None))
                for r in self.replicas
            )
        )

    def _invalidate_routable(self) -> None:
        self._routable_cache = None
        self._routable_engines = None
        # A routable-set change invalidates position-keyed router state too:
        # the epoch bump makes the router rebuild before its next decision.
        if self._tracker is not None:
            self._tracker.bump_epoch()

    def routable_indices(self) -> list[int]:
        """Replicas eligible for new requests: active and not draining.

        Cached until the next activate/drain/undrain/deactivate transition
        (or any direct write to ``active``/``draining``); callers must treat
        the returned list as read-only.
        """
        routable = self._routable_cache
        if routable is not None:
            return routable
        routable = [
            i
            for i in range(len(self.replicas))
            if self.active[i] and not self.draining[i]
        ]
        if not routable:
            # Degenerate fallback (e.g. externally forced drains): admit to
            # any active replica rather than losing the request.
            routable = [
                i for i in range(len(self.replicas)) if self.active[i]
            ] or list(self._all_indices)
        self._routable_cache = routable
        self._routable_engines = [self.replicas[i] for i in routable]
        return routable

    def route(self, request: Request) -> int:
        """Pick the destination replica for ``request`` (global index)."""
        if self.router.targets_global_indices:
            # Index-map routers (static pre-sharding) choose from the full
            # fleet; their assignment overrides dynamic admission.
            routable = self._all_indices
            engines = self.replicas
        else:
            routable = self.routable_indices()
            engines = self._routable_engines
        if self._tracker is not None and not self.router.targets_global_indices:
            pos = self.router.choose_incremental(
                request, routable, engines, self._tracker
            )
        else:
            pos = self.router.choose(request, engines)
        if not 0 <= pos < len(engines):
            raise ValueError(
                f"router {self.router.name!r} chose replica {pos} of {len(engines)}"
            )
        self.router.on_routed(request, pos)
        self._dispatched += 1
        return routable[pos]

    # ------------------------------------------------------------------ #
    # Fleet sizing (autoscaler control loop).
    # ------------------------------------------------------------------ #
    @property
    def num_active(self) -> int:
        return sum(self.active)

    def _snapshot(self, i: int) -> ReplicaSnapshot:
        # The autoscaler's pressure signal reads the backlog-token sum.
        return ReplicaSnapshot.capture(
            self.replicas[i],
            capacity=self.capacity_scores[i],
            index=i,
            with_queued_tokens=True,
        )

    def _activate(self, i: int, now: float) -> None:
        self.active[i] = True
        self.draining[i] = False
        self._activated_at[i] = now
        self.events.append((now, "activate", i))
        self.timeline.append((now, self.num_active))

    def _deactivate(self, i: int, now: float) -> None:
        if self.replicas[i].in_system:
            raise AssertionError(
                f"control plane bug: deactivating replica {i} with "
                f"{self.replicas[i].in_system} resident requests"
            )
        self.active[i] = False
        self.draining[i] = False
        started = self._activated_at[i]
        if started is not None:
            self._intervals[i].append((started, now))
        self._activated_at[i] = None
        self.events.append((now, "deactivate", i))
        self.timeline.append((now, self.num_active))

    def _tick(self) -> None:
        assert self._sim is not None and self.autoscaler is not None
        now = self._sim.now
        # Complete drains whose replicas have emptied out.
        for i in range(len(self.replicas)):
            if self.active[i] and self.draining[i] and not self.replicas[i].in_system:
                self._deactivate(i, now)

        routable = [
            i
            for i in range(len(self.replicas))
            if self.active[i] and not self.draining[i]
        ]
        decision = self.autoscaler.decide([self._snapshot(i) for i in routable])
        if decision > 0:
            self._scale_up(now)
        elif decision < 0:
            self._scale_down(routable, now)

        # Keep ticking while work remains anywhere in the system; stop once
        # quiescent so the shared event heap can drain and the run terminate.
        if self._dispatched < self._total_requests or any(
            r.in_system for r in self.replicas
        ):
            self._sim.schedule_callback(self.autoscaler.interval_s, self._tick)

    def _scale_up(self, now: float) -> None:
        limit = self.autoscaler.max_replicas or len(self.replicas)
        # Cancelling a drain first reuses a still-warm replica.  The fleet
        # *size* is unchanged (draining replicas still count as active), so
        # this is an event-log entry only, not a timeline step.
        for i in range(len(self.replicas)):
            if self.active[i] and self.draining[i]:
                self.draining[i] = False
                self.events.append((now, "undrain", i))
                return
        if self.num_active >= limit:
            return
        for i in range(len(self.replicas)):
            if not self.active[i]:
                self._activate(i, now)
                return

    def _scale_down(self, routable: list[int], now: float) -> None:
        if len(routable) <= self.autoscaler.min_replicas:
            return
        # Drain the least-loaded routable replica; ties go to the highest
        # index so the low-index core of the fleet stays stable.
        victim = min(routable, key=lambda i: (self.replicas[i].in_system, -i))
        self.draining[victim] = True
        self.events.append((now, "drain", victim))
        if not self.replicas[victim].in_system:
            self._deactivate(victim, now)
