"""Request routers: pick a replica for each arriving request.

All policies are deterministic so cluster runs are reproducible on the
shared event clock.  Load-aware policies score an immutable
:class:`~repro.cluster.control.snapshot.ReplicaSnapshot` per replica —
capacity-normalized via the roofline throughput score, so mixed L20/A100
fleets are first-class — and break score ties with a rotating cursor
(round-robin among the tied minima).  Ties are detected with a relative
tolerance: once scores are normalized floats, exact equality almost never
fires, which would silently disable the rotation and herd every tie onto the
lowest index.
"""

from __future__ import annotations

import abc
import heapq
import math
from typing import Callable, Sequence

from ...predictor.length_predictor import OutputLengthPredictor
from ...runtime.base_engine import InferenceEngine
from ...workload.request import Request
from .capacity import replica_capacity_score
from .incremental import LoadTracker
from .snapshot import ReplicaSnapshot, SnapshotBuffer

__all__ = [
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "LeastLoadedKVRouter",
    "PhaseAwareRouter",
    "DeadlineAwareRouter",
    "StaticRouter",
    "ROUTERS",
    "ROUTER_NAMES",
    "make_router",
]


class Router(abc.ABC):
    """Routing policy interface.

    ``choose`` must not mutate replica state; ``on_routed`` is the place for
    policy-internal bookkeeping (e.g. advancing a round-robin cursor).
    """

    name: str = "base"

    #: Whether ``choose`` returns indices into the *full* replica list
    #: rather than whatever subsequence it is handed.  Routers that carry an
    #: external index map (static pre-sharding) set this so the control
    #: plane never re-interprets their choice against a filtered subset.
    targets_global_indices: bool = False

    #: Whether this router implements the dirty-tracked incremental decision
    #: path (``bind`` + ``choose_incremental``).  The control plane falls
    #: back to per-request ``choose`` sweeps when False.
    supports_incremental: bool = False

    def reset(self, replicas: Sequence[InferenceEngine]) -> None:
        """Called once before a run; clear any per-run state."""

    def bind(self, replicas: Sequence[InferenceEngine], tracker: LoadTracker) -> None:
        """Attach incremental state to a fleet (called after ``reset``).

        ``tracker`` is the control plane's :class:`LoadTracker`; routers that
        support the incremental path register a dirty set here and build
        their reusable buffers.  The base implementation is a no-op.
        """

    @abc.abstractmethod
    def choose(self, request: Request, replicas: Sequence[InferenceEngine]) -> int:
        """Index of the replica this request should be sent to."""

    def choose_incremental(
        self,
        request: Request,
        routable: Sequence[int],
        replicas: Sequence[InferenceEngine],
        tracker: LoadTracker,
    ) -> int:
        """Position (within ``routable``) chosen using incremental state.

        Must make the *same decision* ``choose(request, replicas)`` would —
        the incremental path is an optimization, never a policy change.  The
        base implementation simply delegates to ``choose``.
        """
        return self.choose(request, replicas)

    def on_routed(self, request: Request, replica_index: int) -> None:
        """Notification that ``request`` was dispatched to ``replica_index``."""


class _ScoredRouter(Router):
    """Choose the minimum-score replica, rotating round-robin among ties.

    Scores are computed over :class:`ReplicaSnapshot` captures; capacity
    scores are cached per replica (they depend only on hardware + model, not
    on load).  Near-ties count as ties: capacity-normalized scores are float
    quotients, so two equally-idle replicas can differ in the last few ulps —
    a relative tolerance keeps the anti-herding rotation alive.
    """

    #: Scores within this relative band of the minimum rotate as ties.
    tie_rel_tol = 1e-9
    tie_abs_tol = 1e-12

    #: Set by policies whose score reads ``snapshot.queued_tokens`` /
    #: ``est_wait_s`` (an O(queue) signal to capture).
    needs_queued_tokens = False

    supports_incremental = True

    #: True when ``score`` reads only replica state (never the request), so
    #: scores can be cached per replica and maintained lazily in a heap.
    #: Request-dependent policies keep this False and get the allocation-free
    #: buffer scan instead.  Subclasses that override ``score`` with
    #: request-dependent logic **must** set this back to False.
    request_independent = False

    def __init__(self) -> None:
        self._cursor = 0
        self._capacity: dict[int, float] = {}
        self._bound = False

    def reset(self, replicas: Sequence[InferenceEngine]) -> None:
        self._cursor = 0
        self._capacity = {id(r): replica_capacity_score(r) for r in replicas}
        self._bound = False

    # ------------------------------------------------------------------ #
    # Incremental decision path.
    # ------------------------------------------------------------------ #
    def bind(self, replicas: Sequence[InferenceEngine], tracker: LoadTracker) -> None:
        """Build per-fleet incremental state (buffer, score cache, heap)."""
        n = len(replicas)
        self._replicas = list(replicas)
        self._dirty = tracker.register()
        self._buf = SnapshotBuffer(
            [
                self._capacity.get(id(r)) or replica_capacity_score(r)
                for r in replicas
            ]
        )
        #: Cached score per *global* replica index (request-independent only).
        self._scores = [0.0] * n
        #: Lazy-deletion min-heap of (score, global index); an entry is stale
        #: when its score no longer matches the cache.
        self._heap: list[tuple[float, int]] = []
        #: Position-keyed state for the current topology epoch.
        self._inc_epoch: int | None = None
        self._routable: list[int] = []
        self._pos_of: dict[int, int] = {}
        #: Reusable per-decision score scratch (request-dependent scan).
        self._scratch: list[float] = []
        self._bound = True

    def _rebind_routable(self, routable: Sequence[int], tracker: LoadTracker) -> None:
        """Rebuild position-keyed state after a routable-set change.

        Runs O(routable) once per topology transition (activate/drain/...),
        which is rare next to per-request decisions.  Request-independent
        routers rescore every member because a score may read
        ``snapshot.index`` — a *position*, which just changed.
        """
        self._inc_epoch = tracker.epoch
        self._routable = list(routable)
        self._pos_of = {g: p for p, g in enumerate(self._routable)}
        n = len(self._routable)
        if len(self._scratch) < n:
            self._scratch = [0.0] * n
        if self.request_independent:
            dirty, buf, scores = self._dirty, self._buf, self._scores
            nqt = self.needs_queued_tokens
            for p, g in enumerate(self._routable):
                if g in dirty:
                    buf.refresh(g, self._replicas[g], nqt)
                    dirty.discard(g)
                scores[g] = self.score(None, buf.view(g, p))
            self._heap = [(scores[g], g) for g in self._routable]
            heapq.heapify(self._heap)

    def _refresh_dirty(self) -> None:
        """Re-read signals + scores of dirtied routable replicas (lazy heap)."""
        dirty = self._dirty
        pos_of = self._pos_of
        marked = [g for g in dirty if g in pos_of]
        if not marked:
            return
        buf, heap, scores = self._buf, self._heap, self._scores
        nqt = self.needs_queued_tokens
        for g in marked:
            buf.refresh(g, self._replicas[g], nqt)
            dirty.discard(g)
            s = self.score(None, buf.view(g, pos_of[g]))
            if s != scores[g]:
                scores[g] = s
                heapq.heappush(heap, (s, g))
        # Stale entries accumulate one push per score change; compact once
        # they dominate so the heap stays O(routable) in steady state.
        if len(heap) > 64 and len(heap) > 4 * len(pos_of):
            fresh = [(scores[g], g) for g in self._routable]
            heapq.heapify(fresh)
            self._heap = fresh

    def choose_incremental(
        self,
        request: Request,
        routable: Sequence[int],
        replicas: Sequence[InferenceEngine],
        tracker: LoadTracker,
    ) -> int:
        """The sweep decision, computed from incrementally maintained state.

        Equivalence argument: cached signals equal live signals (every engine
        mutation marks its replica dirty, and dirty replicas are re-read
        here before scoring); scores are computed by the same ``score``
        method over bit-identical snapshot values; the minimum and the
        rotating tolerance tie-break then see the same inputs as
        ``choose``'s full sweep and make the same pick.
        """
        if not self._bound:
            return self.choose(request, replicas)
        if self._inc_epoch != tracker.epoch:
            self._rebind_routable(routable, tracker)
        rel, abs_ = self.tie_rel_tol, self.tie_abs_tol
        n = len(routable)
        cursor = self._cursor
        if self.request_independent:
            self._refresh_dirty()
            heap, scores = self._heap, self._scores
            while heap and heap[0][0] != scores[heap[0][1]]:
                heapq.heappop(heap)
            # Heap top is the global minimum over valid + stale entries, and
            # every routable replica keeps one valid entry, so a non-stale
            # top *is* min(current scores).
            best = heap[0][0]
            for offset in range(n):
                pos = (cursor + offset) % n
                if math.isclose(scores[routable[pos]], best, rel_tol=rel, abs_tol=abs_):
                    return pos
            return min(range(n), key=lambda p: scores[routable[p]])  # unreachable
        # Request-dependent scores: refresh dirty signals, then scan the
        # buffer through the single reusable view — same arithmetic as the
        # sweep, zero snapshot allocations.
        dirty = self._dirty
        if dirty:
            pos_of = self._pos_of
            marked = [g for g in dirty if g in pos_of]
            if marked:
                buf = self._buf
                nqt = self.needs_queued_tokens
                for g in marked:
                    buf.refresh(g, self._replicas[g], nqt)
                    dirty.discard(g)
        buf = self._buf
        scratch = self._scratch
        score = self.score
        best = math.inf
        for pos in range(n):
            s = score(request, buf.view(routable[pos], pos))
            scratch[pos] = s
            if s < best:
                best = s
        for offset in range(n):
            pos = (cursor + offset) % n
            if math.isclose(scratch[pos], best, rel_tol=rel, abs_tol=abs_):
                return pos
        return scratch.index(best)  # unreachable: best itself always matches

    def _snapshot(self, replica: InferenceEngine, index: int) -> ReplicaSnapshot:
        cap = self._capacity.get(id(replica))
        if cap is None:
            cap = self._capacity[id(replica)] = replica_capacity_score(replica)
        return ReplicaSnapshot.capture(
            replica,
            capacity=cap,
            index=index,
            with_queued_tokens=self.needs_queued_tokens,
        )

    @abc.abstractmethod
    def score(self, request: Request, snapshot: ReplicaSnapshot) -> float:
        """Lower is better; near-equal scores rotate."""

    def choose(self, request: Request, replicas: Sequence[InferenceEngine]) -> int:
        n = len(replicas)
        scores = [
            self.score(request, self._snapshot(replicas[i], i)) for i in range(n)
        ]
        best = min(scores)
        for offset in range(n):
            i = (self._cursor + offset) % n
            if math.isclose(
                scores[i], best, rel_tol=self.tie_rel_tol, abs_tol=self.tie_abs_tol
            ):
                return i
        return scores.index(best)  # unreachable: best itself always matches

    def on_routed(self, request: Request, replica_index: int) -> None:
        self._cursor = replica_index + 1


class RoundRobinRouter(_ScoredRouter):
    """Cycle through replicas regardless of load (the classic L4 default).

    A constant score makes every choice a tie, so the rotating tie-break *is*
    the round-robin cycle.
    """

    name = "round-robin"
    request_independent = True

    def score(self, request: Request, snapshot: ReplicaSnapshot) -> float:
        return 0.0


class JoinShortestQueueRouter(_ScoredRouter):
    """Send to the replica with the least normalized in-system load.

    "In system" counts waiting + resident requests, i.e. everything admitted
    but unfinished — the standard JSQ load signal.  By default the count is
    divided by the replica's capacity score, so an A100 replica absorbs
    proportionally more of a mixed fleet's traffic; ``normalized=False``
    (router name ``jsq-raw``) is the classic raw-count baseline the
    heterogeneous-fleet experiment compares against.
    """

    request_independent = True

    def __init__(self, normalized: bool = True) -> None:
        super().__init__()
        self.normalized = normalized
        self.name = "jsq" if normalized else "jsq-raw"

    def score(self, request: Request, snapshot: ReplicaSnapshot) -> float:
        return snapshot.load if self.normalized else float(snapshot.in_system)


class LeastLoadedKVRouter(_ScoredRouter):
    """Send to the replica with the most free KV-cache headroom.

    KV occupancy is the memory-pressure signal: a replica with a nearly full
    block pool defers new prefills (watermark) or evicts for re-computation,
    both of which inflate TTFT.  Normalized in-system load breaks near-ties
    so empty clusters still spread.
    """

    name = "least-kv"
    request_independent = True

    def score(self, request: Request, snapshot: ReplicaSnapshot) -> float:
        # Occupancy dominates; load is a tie-shader well below one block.
        return snapshot.kv_usage + 1e-6 * snapshot.load


class PhaseAwareRouter(_ScoredRouter):
    """Route using each TD-Pipe replica's temporal phase and predicted length.

    Temporal disaggregation makes admission latency phase-dependent, but not
    in the naive direction.  TD-Pipe's decode-switch policy is *reactive*:
    it compares the intensity of pending prefill work against the remaining
    decode work, and only fires when the waiting queue is non-empty.  A
    replica mid-decode-phase with an empty queue therefore decodes to
    exhaustion, while a newcomer routed to it gives the switch policy a
    reason to fire and is then prefilled at the head of a fresh prefill
    phase.  Conversely, a replica mid-prefill-phase is about to *enter* a
    long decode phase — a newcomer that just misses its prefill window waits
    that whole phase out.  So on top of the normalized load score, decode-
    phase replicas get a *bonus* (negative penalty) worth
    ``decode_phase_bonus`` in-system requests on that replica.

    The output-length predictor modulates the bonus: prefill-heavy requests
    (predicted output short relative to the prompt) get the full bonus —
    their TTFT is dominated by admission, and their high spatial intensity
    makes the decode-switch fire promptly.  Decode-heavy requests amortise
    admission over a long generation and take half, letting load balance
    dominate for them.

    Replicas without a ``phase`` attribute (non-TD-Pipe systems) just score
    by normalized load, so mixed clusters degrade gracefully.
    """

    name = "phase-aware"

    def __init__(
        self,
        predictor: OutputLengthPredictor | None = None,
        decode_phase_bonus: float = 1.5,
    ) -> None:
        super().__init__()
        self.predictor = predictor
        self.decode_phase_bonus = decode_phase_bonus

    def score(self, request: Request, snapshot: ReplicaSnapshot) -> float:
        score = snapshot.load
        if snapshot.phase == "decode":
            bonus = self.decode_phase_bonus
            if self.predictor is not None and request is not None:
                predicted = float(self.predictor.predict_length(request))
                if predicted >= request.prompt_len:  # decode-heavy
                    bonus *= 0.5
            # Same units as the load signal: a bonus of B is worth B
            # in-system requests *on this replica*.
            score -= bonus / snapshot.capacity
        return score


class DeadlineAwareRouter(_ScoredRouter):
    """Route by estimated queueing delay against each request's TTFT deadline.

    The score is the replica's estimated prefill-backlog wait minus a slack
    allowance proportional to the request's TTFT deadline, floored at zero:

    * every replica whose backlog fits inside the slack scores 0, so relaxed
      traffic (``batch``) rotates round-robin across *all feasible* replicas
      — including slower or busier ones — keeping fast replicas unsaturated;
    * tight-deadline traffic (``interactive``) has little slack and chases
      the minimum-wait replica like a normalized JSQ;
    * when no replica is feasible, the policy minimises lateness.

    Backlog estimates are capacity-normalized (seconds of queued prefill
    work), so the same deadline maps to different queue depths on L20 and
    A100 replicas.  Requests without an SLO class get zero slack.
    """

    name = "deadline"
    needs_queued_tokens = True

    def __init__(self, headroom: float = 0.5) -> None:
        super().__init__()
        #: Fraction of the TTFT deadline a replica's backlog may consume
        #: before this policy stops considering it "free".
        self.headroom = headroom

    def score(self, request: Request, snapshot: ReplicaSnapshot) -> float:
        slack = 0.0
        slo = getattr(request, "slo", None)
        if slo is not None and math.isfinite(slo.ttft_deadline_s):
            slack = self.headroom * slo.ttft_deadline_s
        return max(0.0, snapshot.est_wait_s - slack)


class StaticRouter(Router):
    """Fixed request->replica map (pre-sharded workloads, e.g.
    :func:`repro.workload.split_round_robin`).

    ``strict`` (the default) raises on requests missing from the map — a
    pre-sharded workload with an unmapped request is a bug, and the old
    silent ``request_id % len(replicas)`` fallback masked exactly that.
    Pass ``strict=False`` to restore the modulo fallback for ad-hoc use.

    Assignments are indices into the full replica list; the control plane
    honours them even for replicas the autoscaler has deactivated (a
    pre-sharded workload overrides dynamic admission).
    """

    name = "static"
    targets_global_indices = True

    def __init__(
        self, assignment: dict[int, int] | None = None, strict: bool = True
    ) -> None:
        self.assignment = dict(assignment or {})
        self.strict = strict

    def choose(self, request: Request, replicas: Sequence[InferenceEngine]) -> int:
        idx = self.assignment.get(request.request_id)
        if idx is None:
            if self.strict:
                raise ValueError(
                    f"request {request.request_id} has no static assignment "
                    f"({len(self.assignment)} mapped); pass strict=False for "
                    "the modulo fallback"
                )
            idx = request.request_id % len(replicas)
        if not 0 <= idx < len(replicas):
            raise ValueError(
                f"static assignment {idx} out of range for {len(replicas)} replicas"
            )
        return idx


#: Router names swept by the cluster-scaling experiment.
ROUTERS = ("round-robin", "jsq", "least-kv", "phase-aware", "deadline")

_BY_NAME: dict[str, Callable[[], Router]] = {
    "round-robin": RoundRobinRouter,
    "jsq": JoinShortestQueueRouter,
    "jsq-raw": lambda: JoinShortestQueueRouter(normalized=False),
    "least-kv": LeastLoadedKVRouter,
    "phase-aware": PhaseAwareRouter,
    "deadline": DeadlineAwareRouter,
    "static": StaticRouter,
}

#: Dynamic-policy names exposed to the CLI (superset of ROUTERS; ``static``
#: is excluded — it needs an assignment map no CLI flag can supply).
ROUTER_NAMES = tuple(sorted(n for n in _BY_NAME if n != "static"))


def make_router(
    router: str | Router,
    predictor: OutputLengthPredictor | None = None,
) -> Router:
    """Instantiate a router by name (or pass an instance through).

    ``predictor`` is forwarded to policies that can use it (phase-aware).
    """
    if isinstance(router, Router):
        return router
    try:
        factory = _BY_NAME[router]
    except KeyError:
        raise ValueError(
            f"unknown router {router!r}; options: {sorted(_BY_NAME)}"
        ) from None
    if factory is PhaseAwareRouter:
        return PhaseAwareRouter(predictor=predictor)
    return factory()
