"""Request routers: pick a replica for each arriving request.

All policies are deterministic so cluster runs are reproducible on the
shared event clock.  Load-aware policies break score ties with a rotating
cursor (round-robin among the tied minima) — with a fixed lowest-index
tie-break, every idle-cluster tie would herd onto replica 0.  A router sees
the live replica engines, which is exactly the information a production
router would poll from replica health/stats endpoints: queue depth, KV-cache
occupancy, and — for TD-Pipe replicas — the current temporal phase.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

from ..predictor.length_predictor import OutputLengthPredictor
from ..runtime.base_engine import InferenceEngine
from ..workload.request import Request

__all__ = [
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "LeastLoadedKVRouter",
    "PhaseAwareRouter",
    "StaticRouter",
    "ROUTERS",
    "make_router",
]


class Router(abc.ABC):
    """Routing policy interface.

    ``choose`` must not mutate replica state; ``on_routed`` is the place for
    policy-internal bookkeeping (e.g. advancing a round-robin cursor).
    """

    name: str = "base"

    def reset(self, replicas: Sequence[InferenceEngine]) -> None:
        """Called once before a run; clear any per-run state."""

    @abc.abstractmethod
    def choose(self, request: Request, replicas: Sequence[InferenceEngine]) -> int:
        """Index of the replica this request should be sent to."""

    def on_routed(self, request: Request, replica_index: int) -> None:
        """Notification that ``request`` was dispatched to ``replica_index``."""


class _ScoredRouter(Router):
    """Choose the minimum-score replica, rotating round-robin among ties."""

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self, replicas: Sequence[InferenceEngine]) -> None:
        self._cursor = 0

    @abc.abstractmethod
    def score(self, request: Request, replica: InferenceEngine) -> float:
        """Lower is better; equal scores rotate."""

    def choose(self, request: Request, replicas: Sequence[InferenceEngine]) -> int:
        n = len(replicas)
        scores = [self.score(request, replicas[i]) for i in range(n)]
        best = min(scores)
        for offset in range(n):
            i = (self._cursor + offset) % n
            if scores[i] == best:
                return i
        return 0  # unreachable

    def on_routed(self, request: Request, replica_index: int) -> None:
        self._cursor = replica_index + 1


class RoundRobinRouter(_ScoredRouter):
    """Cycle through replicas regardless of load (the classic L4 default).

    A constant score makes every choice a tie, so the rotating tie-break *is*
    the round-robin cycle.
    """

    name = "round-robin"

    def score(self, request: Request, replica: InferenceEngine) -> float:
        return 0.0


class JoinShortestQueueRouter(_ScoredRouter):
    """Send to the replica with the fewest in-system requests.

    "In system" counts waiting + resident requests, i.e. everything admitted
    but unfinished — the standard JSQ load signal.
    """

    name = "jsq"

    def score(self, request: Request, replica: InferenceEngine) -> float:
        return float(replica.in_system)


class LeastLoadedKVRouter(_ScoredRouter):
    """Send to the replica with the most free KV-cache headroom.

    KV occupancy is the memory-pressure signal: a replica with a nearly full
    block pool defers new prefills (watermark) or evicts for re-computation,
    both of which inflate TTFT.  In-system load breaks near-ties so empty
    clusters still spread.
    """

    name = "least-kv"

    def score(self, request: Request, replica: InferenceEngine) -> float:
        # Occupancy dominates; load is a tie-shader well below one block.
        return replica.block_manager.usage_ratio + 1e-6 * replica.in_system


class PhaseAwareRouter(_ScoredRouter):
    """Route using each TD-Pipe replica's temporal phase and predicted length.

    Temporal disaggregation makes admission latency phase-dependent, but not
    in the naive direction.  TD-Pipe's decode-switch policy is *reactive*:
    it compares the intensity of pending prefill work against the remaining
    decode work, and only fires when the waiting queue is non-empty.  A
    replica mid-decode-phase with an empty queue therefore decodes to
    exhaustion, while a newcomer routed to it gives the switch policy a
    reason to fire and is then prefilled at the head of a fresh prefill
    phase.  Conversely, a replica mid-prefill-phase is about to *enter* a
    long decode phase — a newcomer that just misses its prefill window waits
    that whole phase out.  So on top of the queue-depth score, decode-phase
    replicas get a *bonus* (negative penalty).

    The output-length predictor modulates the bonus: prefill-heavy requests
    (predicted output short relative to the prompt) get the full bonus —
    their TTFT is dominated by admission, and their high spatial intensity
    makes the decode-switch fire promptly.  Decode-heavy requests amortise
    admission over a long generation and take half, letting queue balance
    dominate for them.

    Replicas without a ``phase`` attribute (non-TD-Pipe systems) just score
    by queue depth, so mixed clusters degrade gracefully.
    """

    name = "phase-aware"

    def __init__(
        self,
        predictor: OutputLengthPredictor | None = None,
        decode_phase_bonus: float = 1.5,
    ) -> None:
        super().__init__()
        self.predictor = predictor
        self.decode_phase_bonus = decode_phase_bonus

    def score(self, request: Request, replica: InferenceEngine) -> float:
        score = float(len(replica.waiting))
        if getattr(replica, "phase", None) == "decode":
            bonus = self.decode_phase_bonus
            if self.predictor is not None:
                predicted = float(self.predictor.predict_length(request))
                if predicted >= request.prompt_len:  # decode-heavy
                    bonus *= 0.5
            score -= bonus
        return score


class StaticRouter(Router):
    """Fixed request->replica map (pre-sharded workloads, e.g.
    :func:`repro.workload.split_round_robin`).  Requests missing from the map
    fall back to ``request_id % num_replicas``."""

    name = "static"

    def __init__(self, assignment: dict[int, int] | None = None) -> None:
        self.assignment = dict(assignment or {})

    def choose(self, request: Request, replicas: Sequence[InferenceEngine]) -> int:
        idx = self.assignment.get(request.request_id, request.request_id % len(replicas))
        if not 0 <= idx < len(replicas):
            raise ValueError(
                f"static assignment {idx} out of range for {len(replicas)} replicas"
            )
        return idx


#: Router names accepted by :func:`make_router` (sweep-relevant policies).
ROUTERS = ("round-robin", "jsq", "least-kv", "phase-aware")

_BY_NAME: dict[str, Callable[[], Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    JoinShortestQueueRouter.name: JoinShortestQueueRouter,
    LeastLoadedKVRouter.name: LeastLoadedKVRouter,
    PhaseAwareRouter.name: PhaseAwareRouter,
    StaticRouter.name: StaticRouter,
}


def make_router(
    router: str | Router,
    predictor: OutputLengthPredictor | None = None,
) -> Router:
    """Instantiate a router by name (or pass an instance through).

    ``predictor`` is forwarded to policies that can use it (phase-aware).
    """
    if isinstance(router, Router):
        return router
    try:
        cls = _BY_NAME[router]
    except KeyError:
        raise ValueError(
            f"unknown router {router!r}; options: {sorted(_BY_NAME)}"
        ) from None
    if cls is PhaseAwareRouter:
        return PhaseAwareRouter(predictor=predictor)
    return cls()
