"""Back-compat shim: routers now live in :mod:`repro.cluster.control.routing`.

The PR-1 import path ``repro.cluster.routing`` keeps working; new code should
import from :mod:`repro.cluster.control` (which also exposes the control
plane, snapshots, capacity scoring and the autoscaler).
"""

from .control.routing import (
    ROUTER_NAMES,
    ROUTERS,
    DeadlineAwareRouter,
    JoinShortestQueueRouter,
    LeastLoadedKVRouter,
    PhaseAwareRouter,
    RoundRobinRouter,
    Router,
    StaticRouter,
    make_router,
)

__all__ = [
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "LeastLoadedKVRouter",
    "PhaseAwareRouter",
    "DeadlineAwareRouter",
    "StaticRouter",
    "ROUTERS",
    "ROUTER_NAMES",
    "make_router",
]
