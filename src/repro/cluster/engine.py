"""Multi-replica serving cluster on one shared discrete-event clock.

A :class:`ClusterEngine` owns a single :class:`~repro.sim.engine.Simulator`
and hands it to every replica engine, so the replicas' pipelines interleave
deterministically on one event heap (time, insertion-order).  Requests arrive
at the *cluster*; the :class:`~repro.cluster.control.plane.ControlPlane`
picks a replica at each request's arrival instant — the same moment a
production front-end would make the decision — and the request enters that
replica exactly like a stamped online arrival.  Replicas may be
heterogeneous (different nodes, different systems), and an optional
:class:`~repro.cluster.control.autoscaler.Autoscaler` grows and drains the
active fleet on the same clock.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..metrics.cluster import ClusterResult
from ..metrics.latency import compute_latency_stats
from ..metrics.slo import compute_slo_attainment
from ..runtime.base_engine import InferenceEngine
from ..sim.engine import Simulator
from ..workload.request import Request
from .control.autoscaler import Autoscaler
from .control.plane import ControlPlane
from .control.routing import PhaseAwareRouter, Router, make_router

__all__ = ["ClusterEngine", "ReplicaFactory"]

#: A replica constructor: receives the shared clock, returns an engine on it.
ReplicaFactory = Callable[[Simulator], InferenceEngine]


class ClusterEngine:
    """N independent replica engines behind a control plane, one shared clock.

    Parameters
    ----------
    factories:
        One constructor per replica.  Each is called with the shared
        :class:`Simulator` and must return an :class:`InferenceEngine` built
        on it.  Replicas may be different systems or different hardware
        (mixed fleets are first-class: routing normalizes load by each
        replica's roofline capacity score).
    router:
        Routing policy name (see :data:`repro.cluster.control.ROUTERS`) or a
        :class:`Router` instance.
    autoscaler:
        Optional fleet-sizing policy.  When given, only the autoscaler's
        initial replica set is active at t=0; the rest are provisioned
        headroom it can activate (and later drain) on queue pressure.
    routing_sweep:
        Force per-request snapshot-sweep routing (the reference path)
        instead of the incremental fast path; ``None`` defers to the
        ``TDPIPE_ROUTING_SWEEP`` environment variable.  Decisions are
        identical either way — this is a verification/benchmark knob.

    Example
    -------
    >>> factories = [
    ...     lambda sim: TDPipeEngine(node, model, predictor, sim=sim)
    ...     for _ in range(4)
    ... ]
    >>> cluster = ClusterEngine(factories, router="phase-aware")
    >>> result = cluster.run(requests)          # -> ClusterResult
    """

    def __init__(
        self,
        factories: Sequence[ReplicaFactory],
        router: str | Router = "round-robin",
        max_events: int | None = None,
        autoscaler: Autoscaler | None = None,
        routing_sweep: bool | None = None,
    ) -> None:
        if not factories:
            raise ValueError("a cluster needs at least one replica")
        self.sim = Simulator()
        self.replicas: list[InferenceEngine] = [f(self.sim) for f in factories]
        for i, replica in enumerate(self.replicas):
            if replica.sim is not self.sim:
                raise ValueError(
                    f"replica {i} ({replica.system_name}) was not built on the "
                    "shared simulator; factories must pass `sim=` through"
                )
        router = make_router(router)
        if isinstance(router, PhaseAwareRouter) and router.predictor is None:
            # Borrow a replica's length predictor so a by-name "phase-aware"
            # router gets its documented prediction modulation by default.
            router.predictor = next(
                (r.predictor for r in self.replicas if hasattr(r, "predictor")), None
            )
        self.control = ControlPlane(
            self.replicas,
            router=router,
            autoscaler=autoscaler,
            routing_sweep=routing_sweep,
        )
        self.max_events = max_events
        #: request_id -> replica index, filled in during the run.
        self.assignments: dict[int, int] = {}

    @property
    def router(self) -> Router:
        return self.control.router

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def system_label(self) -> str:
        names = [r.system_name for r in self.replicas]
        uniq = sorted(set(names))
        return uniq[0] if len(uniq) == 1 else "+".join(uniq)

    # ------------------------------------------------------------------ #
    def _dispatch(self, request: Request) -> None:
        idx = self.control.route(request)
        self.assignments[request.request_id] = idx
        self.replicas[idx].enqueue(request)

    def run(self, requests: Iterable[Request]) -> ClusterResult:
        """Route and simulate the workload; aggregate per-replica results."""
        reqs = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        if not reqs:
            raise ValueError("empty workload")
        if len({r.request_id for r in reqs}) != len(reqs):
            raise ValueError("duplicate request_ids in cluster workload")

        self.assignments.clear()
        self.control.begin(self.sim, total_requests=len(reqs))
        # Replicas bootstrap empty (and go idle); every request then reaches
        # its replica through a routing event at its arrival instant, so the
        # control plane always observes replica state *at that simulated
        # time*.  Inactive replicas are provisioned-but-idle headroom.
        for replica in self.replicas:
            replica.start([], allow_empty=True)
        for req in reqs:
            self.sim.schedule_callback_at(
                max(req.arrival_time, 0.0), lambda r=req: self._dispatch(r)
            )

        max_events = self.max_events
        if max_events is None:
            max_events = sum(r.config.max_events for r in self.replicas)
        self.sim.run(max_events=max_events)

        results = [replica.finalize() for replica in self.replicas]
        makespan = max((r.makespan for r in results), default=0.0)
        self.control.finish(makespan)
        counts = [0] * self.num_replicas
        for idx in self.assignments.values():
            counts[idx] += 1
        pooled = [s for replica in self.replicas for s in replica.finished]
        return ClusterResult(
            system=self.system_label,
            router=self.router.name,
            num_replicas=self.num_replicas,
            makespan=makespan,
            completed_requests=sum(r.completed_requests for r in results),
            total_prompt_tokens=sum(r.total_prompt_tokens for r in results),
            total_output_tokens=sum(r.total_output_tokens for r in results),
            replica_results=results,
            requests_per_replica=counts,
            latency=compute_latency_stats(pooled),
            slo_attainment=compute_slo_attainment(pooled),
            fleet_timeline=list(self.control.timeline),
            replica_active_time=list(self.control.active_time),
            capacity_scores=list(self.control.capacity_scores),
            extras={"fleet_nodes": [r.node.name for r in self.replicas]},
        )
