"""Multi-replica serving cluster on one shared discrete-event clock.

A :class:`ClusterEngine` owns a single :class:`~repro.sim.engine.Simulator`
and hands it to every replica engine, so the replicas' pipelines interleave
deterministically on one event heap (time, insertion-order).  Requests arrive
at the *cluster*; a :class:`~repro.cluster.routing.Router` picks a replica at
each request's arrival instant — the same moment a production front-end would
make the decision — and the request enters that replica exactly like a
stamped online arrival.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..metrics.cluster import ClusterResult
from ..metrics.latency import compute_latency_stats
from ..runtime.base_engine import InferenceEngine
from ..sim.engine import Simulator
from ..workload.request import Request
from .routing import PhaseAwareRouter, Router, make_router

__all__ = ["ClusterEngine", "ReplicaFactory"]

#: A replica constructor: receives the shared clock, returns an engine on it.
ReplicaFactory = Callable[[Simulator], InferenceEngine]


class ClusterEngine:
    """N independent replica engines behind a router, one shared clock.

    Parameters
    ----------
    factories:
        One constructor per replica.  Each is called with the shared
        :class:`Simulator` and must return an :class:`InferenceEngine` built
        on it.  Replicas may be different systems (mixed fleets are allowed).
    router:
        Routing policy name (see :data:`repro.cluster.routing.ROUTERS`) or a
        :class:`Router` instance.

    Example
    -------
    >>> factories = [
    ...     lambda sim: TDPipeEngine(node, model, predictor, sim=sim)
    ...     for _ in range(4)
    ... ]
    >>> cluster = ClusterEngine(factories, router="phase-aware")
    >>> result = cluster.run(requests)          # -> ClusterResult
    """

    def __init__(
        self,
        factories: Sequence[ReplicaFactory],
        router: str | Router = "round-robin",
        max_events: int | None = None,
    ) -> None:
        if not factories:
            raise ValueError("a cluster needs at least one replica")
        self.sim = Simulator()
        self.replicas: list[InferenceEngine] = [f(self.sim) for f in factories]
        for i, replica in enumerate(self.replicas):
            if replica.sim is not self.sim:
                raise ValueError(
                    f"replica {i} ({replica.system_name}) was not built on the "
                    "shared simulator; factories must pass `sim=` through"
                )
        self.router = make_router(router)
        if isinstance(self.router, PhaseAwareRouter) and self.router.predictor is None:
            # Borrow a replica's length predictor so a by-name "phase-aware"
            # router gets its documented prediction modulation by default.
            self.router.predictor = next(
                (r.predictor for r in self.replicas if hasattr(r, "predictor")), None
            )
        self.max_events = max_events
        #: request_id -> replica index, filled in during the run.
        self.assignments: dict[int, int] = {}

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def system_label(self) -> str:
        names = [r.system_name for r in self.replicas]
        uniq = sorted(set(names))
        return uniq[0] if len(uniq) == 1 else "+".join(uniq)

    # ------------------------------------------------------------------ #
    def _dispatch(self, request: Request) -> None:
        idx = self.router.choose(request, self.replicas)
        if not 0 <= idx < self.num_replicas:
            raise ValueError(
                f"router {self.router.name!r} chose replica {idx} "
                f"of {self.num_replicas}"
            )
        self.assignments[request.request_id] = idx
        self.replicas[idx].enqueue(request)
        self.router.on_routed(request, idx)

    def run(self, requests: Iterable[Request]) -> ClusterResult:
        """Route and simulate the workload; aggregate per-replica results."""
        reqs = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        if not reqs:
            raise ValueError("empty workload")
        if len({r.request_id for r in reqs}) != len(reqs):
            raise ValueError("duplicate request_ids in cluster workload")

        self.assignments.clear()
        self.router.reset(self.replicas)
        # Replicas bootstrap empty (and go idle); every request then reaches
        # its replica through a routing event at its arrival instant, so the
        # router always observes replica state *at that simulated time*.
        for replica in self.replicas:
            replica.start([], allow_empty=True)
        for req in reqs:
            self.sim.schedule_at(max(req.arrival_time, 0.0), lambda r=req: self._dispatch(r))

        max_events = self.max_events
        if max_events is None:
            max_events = sum(r.config.max_events for r in self.replicas)
        self.sim.run(max_events=max_events)

        results = [replica.finalize() for replica in self.replicas]
        counts = [0] * self.num_replicas
        for idx in self.assignments.values():
            counts[idx] += 1
        pooled = [s for replica in self.replicas for s in replica.finished]
        return ClusterResult(
            system=self.system_label,
            router=self.router.name,
            num_replicas=self.num_replicas,
            makespan=max((r.makespan for r in results), default=0.0),
            completed_requests=sum(r.completed_requests for r in results),
            total_prompt_tokens=sum(r.total_prompt_tokens for r in results),
            total_output_tokens=sum(r.total_output_tokens for r in results),
            replica_results=results,
            requests_per_replica=counts,
            latency=compute_latency_stats(pooled),
        )
