"""Cluster-scale serving: replicated engines behind a control plane.

The paper's TD-Pipe engine is a single-node system.  This package scales the
reproduction to the fleet level: a :class:`ClusterEngine` instantiates N
replica engines — any of the five systems, mixable, on homogeneous or mixed
L20/A100 hardware — on **one shared simulator clock**, so cross-replica
event ordering is deterministic and cluster metrics (pooled tail latency,
per-SLO-class attainment, utilisation imbalance) are measured on a common
timeline.

The :mod:`repro.cluster.control` package owns the policy layer: routing,
admission (active/draining sets) and fleet sizing all score one normalized
view of replica state (:class:`ReplicaSnapshot`), with load signals divided
by a roofline-derived per-replica throughput score so heterogeneous fleets
compare correctly.

Routing policies (:mod:`repro.cluster.control.routing`)
-------------------------------------------------------
``round-robin``
    Cycle through replicas, load-blind.  The baseline any smarter policy
    must beat.
``jsq`` / ``jsq-raw``
    Join-shortest-queue on capacity-normalized (resp. raw-count) in-system
    load.  ``jsq-raw`` exists as the baseline the heterogeneous-fleet
    experiment measures the normalization against.
``least-kv``
    Most free KV-cache headroom; avoids replicas whose block pools are near
    the watermark (imminent admission stalls / recompute evictions).
``phase-aware``
    TD-Pipe-specific: normalized load plus a bonus for replicas currently in
    their *decode* phase (which will admit a newcomer at the head of a fresh
    prefill phase once the decode-switch fires), modulated by the
    output-length predictor.
``deadline``
    SLO-aware: estimated queued-work seconds against each request's TTFT
    deadline — relaxed traffic spreads over any feasible replica, tight
    traffic chases the fastest.
``static``
    Fixed request->replica map for pre-sharded workloads
    (:func:`repro.workload.split_round_robin`); strict by default (unmapped
    requests raise instead of being silently misrouted).

Fleet sizing
------------
:class:`Autoscaler` (attached via ``ClusterEngine(..., autoscaler=...)``)
activates and drains replicas on the shared clock in response to
capacity-normalized queue pressure, with hysteresis; draining replicas stop
receiving traffic and are deactivated only once empty.  The
:class:`~repro.metrics.cluster.ClusterResult` records the fleet-size
timeline and per-replica active seconds.
"""

from .control import (
    ROUTER_NAMES,
    ROUTERS,
    Autoscaler,
    ControlPlane,
    DeadlineAwareRouter,
    JoinShortestQueueRouter,
    LeastLoadedKVRouter,
    PhaseAwareRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    Router,
    StaticRouter,
    make_router,
    parse_fleet,
    replica_capacity_score,
)
from .engine import ClusterEngine, ReplicaFactory

__all__ = [
    "ClusterEngine",
    "ReplicaFactory",
    "ControlPlane",
    "Autoscaler",
    "ReplicaSnapshot",
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "LeastLoadedKVRouter",
    "PhaseAwareRouter",
    "DeadlineAwareRouter",
    "StaticRouter",
    "ROUTERS",
    "ROUTER_NAMES",
    "make_router",
    "parse_fleet",
    "replica_capacity_score",
]
