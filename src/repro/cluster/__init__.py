"""Cluster-scale serving: replicated engines behind a request router.

The paper's TD-Pipe engine is a single-node system.  This package scales the
reproduction to the fleet level: a :class:`ClusterEngine` instantiates N
independent replica engines — any of the five systems, mixable — on **one
shared simulator clock**, so cross-replica event ordering is deterministic
and cluster metrics (pooled tail latency, per-replica utilisation imbalance)
are measured on a common timeline.

API
---
:class:`ClusterEngine`
    ``ClusterEngine(factories, router=...)`` where each factory is
    ``Callable[[Simulator], InferenceEngine]``; ``run(requests)`` routes every
    request at its arrival instant and returns a
    :class:`~repro.metrics.cluster.ClusterResult`.  The convenience wrapper
    :func:`repro.experiments.common.run_cluster` builds homogeneous (or
    mixed) clusters by system name.

Routing policies (:mod:`repro.cluster.routing`)
-----------------------------------------------
``round-robin``
    Cycle through replicas, load-blind.  The baseline any smarter policy
    must beat.
``jsq``
    Join-shortest-queue: fewest in-system (waiting + resident) requests.
``least-kv``
    Most free KV-cache headroom; avoids replicas whose block pools are near
    the watermark (imminent admission stalls / recompute evictions).
``phase-aware``
    TD-Pipe-specific: combines the JSQ load score with a penalty for
    replicas currently in their *decode* phase (which will not admit new
    prefills until their decode-switch fires), modulated by the output-length
    predictor — prefill-heavy requests avoid decode-phase replicas hardest.
``static``
    Fixed request->replica map for pre-sharded workloads
    (:func:`repro.workload.split_round_robin`); not part of the sweep set.

All policies are deterministic; load-aware policies rotate round-robin among
score-tied replicas (a fixed tie-break would herd every idle-cluster tie onto
replica 0).
"""

from .engine import ClusterEngine, ReplicaFactory
from .routing import (
    ROUTERS,
    JoinShortestQueueRouter,
    LeastLoadedKVRouter,
    PhaseAwareRouter,
    RoundRobinRouter,
    Router,
    StaticRouter,
    make_router,
)

__all__ = [
    "ClusterEngine",
    "ReplicaFactory",
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "LeastLoadedKVRouter",
    "PhaseAwareRouter",
    "StaticRouter",
    "ROUTERS",
    "make_router",
]
