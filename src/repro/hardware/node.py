"""Multi-GPU node descriptions (paper Figure 4 and Table 1).

A :class:`NodeSpec` bundles a homogeneous set of GPUs with the PCIe-switch
interconnect they share.  The two presets correspond to the paper's testbeds:
a 4x L20 node and a 4x A100 node.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .gpu import A100, L20, GPUSpec, get_gpu
from .interconnect import InterconnectSpec, pcie_switch

__all__ = ["NodeSpec", "L20_NODE", "A100_NODE", "make_node", "NODE_PRESETS"]


@dataclass(frozen=True)
class NodeSpec:
    """A single multi-GPU server."""

    name: str
    gpu: GPUSpec
    num_gpus: int
    interconnect: InterconnectSpec

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")

    @property
    def total_memory_bytes(self) -> float:
        """Aggregate device memory across the node in bytes."""
        return self.gpu.memory_bytes * self.num_gpus

    def with_num_gpus(self, num_gpus: int) -> "NodeSpec":
        """Return a copy of this node restricted/expanded to ``num_gpus`` devices."""
        return replace(self, num_gpus=num_gpus, name=f"{num_gpus}x{self.gpu.name}")


# Per-node achieved all-reduce efficiency at transformer message sizes,
# calibrated against the paper's Figure 6 communication shares (47% on L20,
# 54% on A100 at 4 GPUs).
_L20_AR_EFF = 0.45
_A100_AR_EFF = 0.85

#: The paper's 4x NVIDIA L20 testbed (PCIe switch, 14.65 GB/s all-reduce).
L20_NODE = NodeSpec(
    name="4xL20",
    gpu=L20,
    num_gpus=4,
    interconnect=pcie_switch(L20.allreduce_bw_gbps, name="L20-pcie", allreduce_efficiency=_L20_AR_EFF),
)

#: The paper's 4x NVIDIA A100 testbed (PCIe switch, 14.82 GB/s all-reduce).
A100_NODE = NodeSpec(
    name="4xA100",
    gpu=A100,
    num_gpus=4,
    interconnect=pcie_switch(A100.allreduce_bw_gbps, name="A100-pcie", allreduce_efficiency=_A100_AR_EFF),
)

NODE_PRESETS: dict[str, NodeSpec] = {"L20": L20_NODE, "A100": A100_NODE}


def make_node(gpu_name: str, num_gpus: int) -> NodeSpec:
    """Build a node of ``num_gpus`` GPUs of the named preset type."""
    gpu = get_gpu(gpu_name)
    eff = {"L20": _L20_AR_EFF, "A100": _A100_AR_EFF}.get(gpu.name)
    return NodeSpec(
        name=f"{num_gpus}x{gpu.name}",
        gpu=gpu,
        num_gpus=num_gpus,
        interconnect=pcie_switch(
            gpu.allreduce_bw_gbps, name=f"{gpu.name}-pcie", allreduce_efficiency=eff
        ),
    )
