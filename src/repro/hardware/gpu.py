"""GPU device specifications (paper Table 1).

The reproduction replaces real GPUs with parameterised specifications that feed
the roofline cost model in :mod:`repro.costmodel`.  The two presets below carry
exactly the numbers the paper reports for its two testbeds: an NVIDIA L20 node
and an NVIDIA A100 node, both PCIe-connected.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUSpec", "L20", "A100", "A10", "RTX4090", "L40S", "GPU_PRESETS", "get_gpu"]

_GB = 1e9
_TFLOP = 1e12


@dataclass(frozen=True)
class GPUSpec:
    """A single GPU device model.

    Attributes mirror paper Table 1 plus efficiency knobs used by the roofline
    cost model.  Efficiencies are fractions of the theoretical peak actually
    achieved by fused transformer kernels; they are deliberately *shared*
    between TD-Pipe and all baselines so relative comparisons are fair.
    """

    name: str
    #: Peak FP16/BF16 tensor-core throughput in TFLOPS (Table 1).
    fp16_tflops: float
    #: Peak HBM bandwidth in GB/s (Table 1).
    mem_bandwidth_gbps: float
    #: Device memory in GB (Table 1).
    memory_gb: float
    #: Measured all-reduce bandwidth over the node's PCIe switch in GB/s (Table 1).
    allreduce_bw_gbps: float
    #: Fraction of peak FLOPS achieved by large compute-bound (prefill) kernels.
    flops_efficiency: float = 0.42
    #: Fraction of peak FLOPS achieved by small decode-phase GEMMs.
    flops_efficiency_decode: float = 0.30
    #: Fraction of peak HBM bandwidth achieved by bandwidth-bound kernels.
    mem_efficiency: float = 0.82
    #: Fixed per-transformer-layer overhead (kernel launches, norms, rotary) in s.
    kernel_overhead_s: float = 12e-6
    #: GEMM efficiency saturation: at M tokens, achieved compute efficiency is
    #: ``flops_efficiency * M / (M + gemm_halfsat_tokens)``.  Small batches
    #: (e.g. 512-token chunked-prefill steps) underutilise tensor cores
    #: relative to full prefill batches — the mechanism behind the paper's
    #: "chunked prefill depends on the prefill-to-decode ratio" observation.
    gemm_halfsat_tokens: float = 128.0
    #: Memory reserved for activations / workspace / framework in bytes.
    reserved_bytes: float = 2.5e9

    # ------------------------------------------------------------------ #
    # Derived quantities (SI units).
    # ------------------------------------------------------------------ #
    @property
    def flops(self) -> float:
        """Peak FP16 throughput in FLOP/s."""
        return self.fp16_tflops * _TFLOP

    @property
    def effective_flops(self) -> float:
        """Achievable compute-bound throughput in FLOP/s (large batches)."""
        return self.flops * self.flops_efficiency

    def effective_flops_at(self, tokens: float) -> float:
        """Achievable compute throughput for a GEMM over ``tokens`` rows."""
        if tokens <= 0:
            return self.effective_flops
        sat = tokens / (tokens + self.gemm_halfsat_tokens)
        return self.flops * self.flops_efficiency * sat

    @property
    def effective_flops_decode(self) -> float:
        """Achievable decode-GEMM throughput in FLOP/s."""
        return self.flops * self.flops_efficiency_decode

    @property
    def mem_bandwidth(self) -> float:
        """Peak HBM bandwidth in B/s."""
        return self.mem_bandwidth_gbps * _GB

    @property
    def effective_mem_bandwidth(self) -> float:
        """Achievable HBM bandwidth in B/s."""
        return self.mem_bandwidth * self.mem_efficiency

    @property
    def memory_bytes(self) -> float:
        """Device memory in bytes."""
        return self.memory_gb * _GB

    @property
    def usable_memory_bytes(self) -> float:
        """Memory available to weights + KV cache after the framework reserve."""
        return max(self.memory_bytes - self.reserved_bytes, 0.0)

    def with_overrides(self, **kwargs: float) -> "GPUSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


#: NVIDIA L20 (Table 1): 119.5 TFLOPS FP16, 864 GB/s, 48 GB, 14.65 GB/s all-reduce.
L20 = GPUSpec(
    name="L20",
    fp16_tflops=119.5,
    mem_bandwidth_gbps=864.0,
    memory_gb=48.0,
    allreduce_bw_gbps=14.65,
)

#: NVIDIA A100 (Table 1): 312 TFLOPS FP16, 1935 GB/s, 80 GB, 14.82 GB/s all-reduce.
A100 = GPUSpec(
    name="A100",
    fp16_tflops=312.0,
    mem_bandwidth_gbps=1935.0,
    memory_gb=80.0,
    allreduce_bw_gbps=14.82,
)

#: NVIDIA A10: the 24 GB commodity device the paper's Section 2.2.1 cites as
#: typical of memory-constrained deployments.
A10 = GPUSpec(
    name="A10",
    fp16_tflops=125.0,
    mem_bandwidth_gbps=600.0,
    memory_gb=24.0,
    allreduce_bw_gbps=10.0,
    reserved_bytes=2.0e9,
)

#: GeForce RTX 4090 (24 GB): consumer device, also cited in Section 2.2.1.
RTX4090 = GPUSpec(
    name="RTX4090",
    fp16_tflops=165.0,
    mem_bandwidth_gbps=1008.0,
    memory_gb=24.0,
    allreduce_bw_gbps=8.0,
    reserved_bytes=2.0e9,
)

#: NVIDIA L40S (48 GB): the L20's datacentre sibling, for what-if studies.
L40S = GPUSpec(
    name="L40S",
    fp16_tflops=183.0,
    mem_bandwidth_gbps=864.0,
    memory_gb=48.0,
    allreduce_bw_gbps=14.0,
)

GPU_PRESETS: dict[str, GPUSpec] = {
    "L20": L20,
    "A100": A100,
    "A10": A10,
    "RTX4090": RTX4090,
    "L40S": L40S,
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU preset by (case-insensitive) name."""
    try:
        return GPU_PRESETS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown GPU {name!r}; available presets: {sorted(GPU_PRESETS)}"
        ) from None
