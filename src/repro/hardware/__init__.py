"""Hardware substrate: GPU specs, interconnect, and node presets (Table 1)."""

from .gpu import A10, A100, GPU_PRESETS, L20, L40S, RTX4090, GPUSpec, get_gpu
from .interconnect import InterconnectSpec, allreduce_time, p2p_time, pcie_switch
from .node import A100_NODE, L20_NODE, NODE_PRESETS, NodeSpec, make_node

__all__ = [
    "GPUSpec",
    "L20",
    "A100",
    "A10",
    "RTX4090",
    "L40S",
    "GPU_PRESETS",
    "get_gpu",
    "InterconnectSpec",
    "pcie_switch",
    "allreduce_time",
    "p2p_time",
    "NodeSpec",
    "L20_NODE",
    "A100_NODE",
    "NODE_PRESETS",
    "make_node",
]
