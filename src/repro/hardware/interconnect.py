"""Interconnect models for the multi-GPU node (paper Figure 4).

The paper's testbeds connect 4 GPUs to one CPU through a PCIe switch with
GPUDirect P2P; measured all-reduce bandwidth is 14.65 GB/s (L20 node) and
14.82 GB/s (A100 node).  Tensor parallelism pays two all-reduces per
transformer layer; pipeline parallelism pays one point-to-point activation
transfer per stage boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InterconnectSpec", "pcie_switch", "allreduce_time", "p2p_time"]

_GB = 1e9


@dataclass(frozen=True)
class InterconnectSpec:
    """Latency/bandwidth description of the intra-node fabric.

    ``allreduce_bw_gbps`` is the *algorithm* bandwidth of a ring all-reduce as
    measured end to end (the Table 1 numbers), so the time of one all-reduce is
    simply ``latency + bytes / bw``.
    """

    name: str
    #: Measured peak all-reduce algorithm bandwidth in GB/s (Table 1).
    allreduce_bw_gbps: float
    #: Fraction of the peak algorithm bandwidth achieved by the MB-sized
    #: per-layer all-reduces inside a transformer forward pass.  The Table 1
    #: numbers are large-message peaks; NCCL over a PCIe switch reaches
    #: roughly half of that at the 1-30 MB message sizes TP emits, which is
    #: what drives the ~50% communication share in the paper's Figure 6.
    allreduce_efficiency: float = 0.6
    #: Fixed all-reduce launch/synchronisation latency per operation in s.
    allreduce_latency_s: float = 60e-6
    #: GPUDirect P2P bandwidth through the PCIe switch in GB/s.
    p2p_bw_gbps: float = 12.0
    #: P2P transfer latency in s.
    p2p_latency_s: float = 25e-6
    #: Control-plane RPC latency (engine <-> worker metadata messages) in s.
    rpc_latency_s: float = 150e-6

    @property
    def allreduce_bandwidth(self) -> float:
        """Achieved all-reduce algorithm bandwidth in B/s."""
        return self.allreduce_bw_gbps * _GB * self.allreduce_efficiency

    @property
    def p2p_bandwidth(self) -> float:
        """P2P bandwidth in B/s."""
        return self.p2p_bw_gbps * _GB


def pcie_switch(
    allreduce_bw_gbps: float,
    name: str = "pcie-switch",
    allreduce_efficiency: float | None = None,
) -> InterconnectSpec:
    """Build the paper's PCIe-switch interconnect with a measured all-reduce bw."""
    if allreduce_efficiency is None:
        return InterconnectSpec(name=name, allreduce_bw_gbps=allreduce_bw_gbps)
    return InterconnectSpec(
        name=name,
        allreduce_bw_gbps=allreduce_bw_gbps,
        allreduce_efficiency=allreduce_efficiency,
    )


def allreduce_time(nbytes: float, world_size: int, spec: InterconnectSpec) -> float:
    """Time of one all-reduce of ``nbytes`` across ``world_size`` ranks.

    A single-rank "all-reduce" is a no-op.  The measured algorithm bandwidth
    already folds in the ``2(n-1)/n`` ring factor, so we charge plain
    ``bytes / bw`` plus a fixed latency.
    """
    if world_size <= 1:
        return 0.0
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    return spec.allreduce_latency_s + nbytes / spec.allreduce_bandwidth


def p2p_time(nbytes: float, spec: InterconnectSpec) -> float:
    """Time of one point-to-point activation transfer between pipeline stages."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    if nbytes == 0:
        return 0.0
    return spec.p2p_latency_s + nbytes / spec.p2p_bandwidth
