"""Output-length prediction substrate (paper Figure 8 / µ-Serve model)."""

from .bins import DEFAULT_PERCENTILES, PercentileBins
from .classifier import SoftmaxClassifier, TrainStats
from .evaluate import AccumulatedErrorResult, accumulated_error, accumulated_error_curve
from .length_predictor import (
    ConstantPredictor,
    LengthPredictor,
    OraclePredictor,
    OutputLengthPredictor,
    train_length_predictor,
)

__all__ = [
    "PercentileBins",
    "DEFAULT_PERCENTILES",
    "SoftmaxClassifier",
    "TrainStats",
    "LengthPredictor",
    "OraclePredictor",
    "ConstantPredictor",
    "OutputLengthPredictor",
    "train_length_predictor",
    "AccumulatedErrorResult",
    "accumulated_error",
    "accumulated_error_curve",
]
