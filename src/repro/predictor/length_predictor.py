"""Output-length predictors used by the AI-based greedy prefill approach.

:class:`LengthPredictor` is the trained bins + classifier pipeline (paper
Figure 8).  :class:`OraclePredictor` and :class:`ConstantPredictor` exist for
ablations: the oracle upper-bounds what prediction can buy, while constant
predictors emulate static reservations (e.g. always assume P99 output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..workload.request import Request
from .bins import DEFAULT_PERCENTILES, PercentileBins
from .classifier import SoftmaxClassifier, TrainStats

__all__ = [
    "OutputLengthPredictor",
    "LengthPredictor",
    "OraclePredictor",
    "ConstantPredictor",
    "train_length_predictor",
]


class OutputLengthPredictor(Protocol):
    """What the greedy-prefill scheduler needs from a predictor."""

    def predict_length(self, request: Request) -> float:
        """Predicted number of output tokens for the request."""
        ...


@dataclass
class LengthPredictor:
    """Trained percentile-bin classifier (the paper's predictor)."""

    bins: PercentileBins
    classifier: SoftmaxClassifier
    train_stats: TrainStats | None = None

    def predict_bin(self, request: Request) -> int:
        return int(self.classifier.predict(request.features[None, :])[0])

    def predict_length(self, request: Request) -> float:
        return float(self.bins.length_of(self.predict_bin(request)))

    def predict_lengths(self, requests: Sequence[Request]) -> np.ndarray:
        """Vectorised prediction for many requests at once."""
        if not requests:
            return np.zeros(0)
        X = np.stack([r.features for r in requests])
        return self.bins.length_of(self.classifier.predict(X))

    def bin_accuracy(self, requests: Sequence[Request]) -> float:
        """Per-request bin accuracy (paper Section 4.4.1: 0.52–0.58)."""
        if not requests:
            return float("nan")
        X = np.stack([r.features for r in requests])
        y = self.bins.bin_of(np.array([r.output_len for r in requests]))
        return self.classifier.accuracy(X, y)


@dataclass
class OraclePredictor:
    """Knows the true output length (upper bound for ablations)."""

    def predict_length(self, request: Request) -> float:
        return float(request.output_len)

    def predict_lengths(self, requests: Sequence[Request]) -> np.ndarray:
        return np.array([r.output_len for r in requests], dtype=float)


@dataclass
class ConstantPredictor:
    """Predicts the same length for every request (static reservation)."""

    length: float

    def predict_length(self, request: Request) -> float:
        return self.length

    def predict_lengths(self, requests: Sequence[Request]) -> np.ndarray:
        return np.full(len(requests), self.length)


def train_length_predictor(
    train: Sequence[Request],
    val: Sequence[Request] | None = None,
    percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
    seed: int = 0,
    **clf_kwargs: object,
) -> LengthPredictor:
    """Fit bins on training output lengths, then train the classifier.

    Mirrors the paper's protocol: bins are percentile ranges of the training
    distribution; the classifier maps request features to a bin; the predicted
    length is the training-set mean of the predicted bin.
    """
    if not train:
        raise ValueError("empty training set")
    lengths = np.array([r.output_len for r in train], dtype=float)
    bins = PercentileBins.fit(lengths, percentiles)
    X = np.stack([r.features for r in train])
    y = bins.bin_of(lengths)
    clf = SoftmaxClassifier(n_classes=bins.n_bins, seed=seed, **clf_kwargs)  # type: ignore[arg-type]
    if val:
        Xv = np.stack([r.features for r in val])
        yv = bins.bin_of(np.array([r.output_len for r in val], dtype=float))
        stats = clf.fit(X, y, Xv, yv)
    else:
        stats = clf.fit(X, y)
    return LengthPredictor(bins=bins, classifier=clf, train_stats=stats)
