"""Multinomial logistic-regression classifier (NumPy, no external ML deps).

Stand-in for the BERT-based multi-class classifier of µ-Serve / paper
Figure 8: the paper's model feeds the [CLS] hidden state through a two-layer
feed-forward head; here the synthetic workload already provides a compact
feature embedding per request, so a linear softmax head (trained with
mini-batch Adam and early stopping on a validation split) plays the role of
that head.  What the scheduler consumes is identical: a predicted length bin
per request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SoftmaxClassifier", "TrainStats"]


@dataclass
class TrainStats:
    """Summary of one training run."""

    epochs_run: int
    final_train_loss: float
    best_val_accuracy: float


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


@dataclass
class SoftmaxClassifier:
    """L2-regularised multinomial logistic regression trained with Adam."""

    n_classes: int
    lr: float = 0.05
    l2: float = 1e-4
    epochs: int = 200
    batch_size: int = 256
    patience: int = 12
    seed: int = 0
    W: np.ndarray | None = field(default=None, repr=False)
    b: np.ndarray | None = field(default=None, repr=False)
    _mu: np.ndarray | None = field(default=None, repr=False)
    _sigma: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    def _standardize(self, X: np.ndarray) -> np.ndarray:
        assert self._mu is not None and self._sigma is not None
        return (X - self._mu) / self._sigma

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        X_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> TrainStats:
        """Train; early-stops on validation accuracy when a val split is given."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D with one row per label")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ValueError("labels out of range")
        n, d = X.shape
        self._mu = X.mean(axis=0)
        self._sigma = X.std(axis=0) + 1e-8
        Xs = self._standardize(X)
        rng = np.random.default_rng(self.seed)
        W = rng.normal(scale=0.01, size=(d, self.n_classes))
        b = np.zeros(self.n_classes)
        # Adam state.
        mW = np.zeros_like(W); vW = np.zeros_like(W)
        mb = np.zeros_like(b); vb = np.zeros_like(b)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        t = 0

        onehot = np.eye(self.n_classes)[y]
        best_val, best_W, best_b, stall = -1.0, W.copy(), b.copy(), 0
        loss = float("nan")
        epochs_run = 0
        for epoch in range(self.epochs):
            epochs_run = epoch + 1
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb = Xs[idx], onehot[idx]
                probs = _softmax(xb @ W + b)
                grad = probs - yb
                gW = xb.T @ grad / len(idx) + self.l2 * W
                gb = grad.mean(axis=0)
                t += 1
                mW = beta1 * mW + (1 - beta1) * gW
                vW = beta2 * vW + (1 - beta2) * gW**2
                mb = beta1 * mb + (1 - beta1) * gb
                vb = beta2 * vb + (1 - beta2) * gb**2
                W -= self.lr * (mW / (1 - beta1**t)) / (np.sqrt(vW / (1 - beta2**t)) + eps)
                b -= self.lr * (mb / (1 - beta1**t)) / (np.sqrt(vb / (1 - beta2**t)) + eps)
            probs = _softmax(Xs @ W + b)
            loss = float(-np.log(probs[np.arange(n), y] + 1e-12).mean())
            if X_val is not None and y_val is not None:
                self.W, self.b = W, b
                acc = self.accuracy(X_val, y_val)
                if acc > best_val:
                    best_val, best_W, best_b, stall = acc, W.copy(), b.copy(), 0
                else:
                    stall += 1
                    if stall >= self.patience:
                        break
        if X_val is not None and y_val is not None:
            self.W, self.b = best_W, best_b
        else:
            self.W, self.b = W, b
            best_val = float("nan")
        return TrainStats(epochs_run=epochs_run, final_train_loss=loss, best_val_accuracy=best_val)

    # ------------------------------------------------------------------ #
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.W is None or self.b is None:
            raise RuntimeError("classifier is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return _softmax(self._standardize(X) @ self.W + self.b)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y)).mean())
