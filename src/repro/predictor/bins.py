"""Percentile bins for output-length classification (paper Figure 8).

The µ-Serve predictor classifies each request into one of five output-length
ranges: [P0, P25), [P25, P50), [P50, P75), [P75, P99), [P99, +inf).  The
predicted length assigned to a request is the *mean* output length of its
predicted bin in the training set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PercentileBins", "DEFAULT_PERCENTILES"]

DEFAULT_PERCENTILES: tuple[float, ...] = (25.0, 50.0, 75.0, 99.0)


@dataclass
class PercentileBins:
    """Length bins with training-set means per bin."""

    edges: np.ndarray  # ascending inner boundaries, len = n_bins - 1
    bin_means: np.ndarray  # mean training length per bin, len = n_bins

    @classmethod
    def fit(
        cls, lengths: np.ndarray, percentiles: tuple[float, ...] = DEFAULT_PERCENTILES
    ) -> "PercentileBins":
        """Derive bin boundaries and means from training output lengths."""
        lengths = np.asarray(lengths, dtype=float)
        if lengths.size == 0:
            raise ValueError("cannot fit bins on an empty training set")
        if list(percentiles) != sorted(percentiles):
            raise ValueError("percentiles must be ascending")
        edges = np.percentile(lengths, percentiles)
        # Collapse duplicate edges (degenerate distributions) while keeping
        # the bin count; np.searchsorted handles equal edges consistently.
        labels = np.searchsorted(edges, lengths, side="right")
        n_bins = len(percentiles) + 1
        means = np.empty(n_bins)
        for b in range(n_bins):
            sel = lengths[labels == b]
            # An empty bin (possible with tiny training sets) falls back to the
            # nearest boundary so predictions stay finite.
            if sel.size:
                means[b] = sel.mean()
            elif b < len(edges):
                means[b] = edges[b]
            else:
                means[b] = edges[-1]
        return cls(edges=np.asarray(edges, dtype=float), bin_means=means)

    @property
    def n_bins(self) -> int:
        return len(self.bin_means)

    def bin_of(self, lengths: np.ndarray | float) -> np.ndarray:
        """Map true lengths to bin indices."""
        return np.searchsorted(self.edges, np.asarray(lengths, dtype=float), side="right")

    def length_of(self, bins: np.ndarray | int) -> np.ndarray:
        """Map bin indices to predicted lengths (training-set bin means)."""
        return self.bin_means[np.asarray(bins, dtype=int)]

    def describe(self) -> list[str]:
        """Human-readable bin ranges, e.g. for documentation tables."""
        bounds = [0.0, *self.edges.tolist(), float("inf")]
        return [
            f"[{bounds[i]:.0f}, {bounds[i + 1]:.0f})" for i in range(self.n_bins)
        ]
