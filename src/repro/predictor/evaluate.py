"""Predictor evaluation: accumulated relative error (paper Figure 14).

The paper argues that although per-request bin accuracy is only ≈0.52–0.58,
over- and under-estimates cancel when summed over a batch, so the *accumulated*
error of the total predicted length shrinks with the group size (≈3–6 % at
256 requests).  This module reproduces that measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..workload.request import Request
from .length_predictor import LengthPredictor, OutputLengthPredictor

__all__ = ["AccumulatedErrorResult", "accumulated_error", "accumulated_error_curve"]


@dataclass
class AccumulatedErrorResult:
    """Mean relative |predicted_total - true_total| / true_total per group size."""

    group_sizes: list[int]
    errors: list[float]

    def as_dict(self) -> dict[int, float]:
        return dict(zip(self.group_sizes, self.errors))


def _predict_all(predictor: OutputLengthPredictor, requests: Sequence[Request]) -> np.ndarray:
    if isinstance(predictor, LengthPredictor):
        return predictor.predict_lengths(requests)
    return np.array([predictor.predict_length(r) for r in requests], dtype=float)


def accumulated_error(
    predictor: OutputLengthPredictor,
    requests: Sequence[Request],
    group_size: int,
    seed: int = 0,
) -> float:
    """Mean relative error of total predicted length over random groups.

    Requests are shuffled and partitioned into consecutive groups of
    ``group_size``; the relative error of each group's predicted total output
    length is averaged (the paper's "accumulating and averaging the relative
    difference ... in all groups").
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if len(requests) < group_size:
        raise ValueError("not enough requests for one group")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(requests))
    preds = _predict_all(predictor, requests)[order]
    truth = np.array([r.output_len for r in requests], dtype=float)[order]
    n_groups = len(requests) // group_size
    errors = []
    for g in range(n_groups):
        sl = slice(g * group_size, (g + 1) * group_size)
        t = truth[sl].sum()
        p = preds[sl].sum()
        errors.append(abs(p - t) / t)
    return float(np.mean(errors))


def accumulated_error_curve(
    predictor: OutputLengthPredictor,
    requests: Sequence[Request],
    group_sizes: Sequence[int] = (2, 4, 8, 16, 32, 64, 128, 256, 512),
    seed: int = 0,
) -> AccumulatedErrorResult:
    """Figure 14: accumulated error for each group size."""
    sizes = [g for g in group_sizes if g <= len(requests)]
    errs = [accumulated_error(predictor, requests, g, seed) for g in sizes]
    return AccumulatedErrorResult(group_sizes=sizes, errors=errs)
