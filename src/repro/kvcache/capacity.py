"""KV-cache capacity computation for a given parallel layout.

How many tokens of KV cache fit is the central resource constraint in the
paper: it bounds decode batch sizes (and therefore computational intensity)
and drives both phase-switching policies.

* Under **tensor parallelism**, every GPU stores ``1/tp`` of each token's KV
  for *all* layers, next to ``1/tp`` of all weights.
* Under **pipeline parallelism**, each stage stores the *full* KV of its own
  layers for *every* running token, next to that stage's weights.  System
  capacity is the minimum over stages.
"""

from __future__ import annotations

from ..hardware.gpu import GPUSpec
from ..models.partition import pipeline_shards
from ..models.spec import ModelSpec

__all__ = ["OutOfMemoryError", "kv_token_capacity", "fits_in_memory"]


class OutOfMemoryError(RuntimeError):
    """Model weights (plus reserve) do not fit in the given layout."""


def kv_token_capacity(
    model: ModelSpec,
    gpu: GPUSpec,
    pp_degree: int = 1,
    tp_degree: int = 1,
    min_tokens: int = 2048,
) -> int:
    """Number of KV-cache tokens the layout can hold system-wide.

    Raises :class:`OutOfMemoryError` when the weights do not fit or fewer than
    ``min_tokens`` tokens would remain — matching the paper's "OOM" entries in
    Figure 11 (a configuration that cannot hold even one modest batch is
    unusable in practice).
    """
    capacity = None
    for shard in pipeline_shards(model, pp_degree, tp_degree):
        free = gpu.usable_memory_bytes - shard.weight_bytes_per_gpu
        if free <= 0:
            raise OutOfMemoryError(
                f"{model.short_name} weights ({shard.weight_bytes_per_gpu / 1e9:.1f} GB "
                f"on stage {shard.stage_index}) exceed {gpu.name} usable memory "
                f"({gpu.usable_memory_bytes / 1e9:.1f} GB) with pp={pp_degree}, tp={tp_degree}"
            )
        stage_tokens = int(free / shard.kv_bytes_per_token_per_gpu)
        capacity = stage_tokens if capacity is None else min(capacity, stage_tokens)
    assert capacity is not None
    if capacity < min_tokens:
        raise OutOfMemoryError(
            f"{model.short_name} on {gpu.name} (pp={pp_degree}, tp={tp_degree}) leaves "
            f"room for only {capacity} KV tokens (< {min_tokens}); effectively OOM"
        )
    return capacity


def fits_in_memory(
    model: ModelSpec,
    gpu: GPUSpec,
    pp_degree: int = 1,
    tp_degree: int = 1,
    min_tokens: int = 2048,
) -> bool:
    """True when the layout is runnable (inverse of the Figure 11 OOM cases)."""
    try:
        kv_token_capacity(model, gpu, pp_degree, tp_degree, min_tokens)
    except OutOfMemoryError:
        return False
    return True
