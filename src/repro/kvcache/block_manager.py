"""Paged KV-cache block manager (vLLM-style PagedAttention bookkeeping).

The scheduler side of vLLM only needs the *accounting* semantics of paged
attention: tokens are stored in fixed-size blocks, a request's last block may
be partially filled, and blocks return to the free pool when a request
finishes or is preempted.  This module reproduces those semantics exactly;
physical copies are irrelevant to scheduling decisions and are not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KVCacheOverflow", "RequestAllocation", "BlockManager"]


class KVCacheOverflow(RuntimeError):
    """Raised when an allocation is forced beyond capacity."""


@dataclass
class RequestAllocation:
    """KV-cache bookkeeping of one request."""

    request_id: int
    num_tokens: int
    num_blocks: int
    #: Monotonic admission stamp; larger = more recently admitted.  The
    #: paper's re-computation policy evicts the most recent requests first.
    admit_seq: int


class BlockManager:
    """Fixed-capacity paged allocator measured in tokens.

    Parameters
    ----------
    capacity_tokens:
        Total KV-cache capacity of the (pipeline-stage-limited) system in
        tokens; see :func:`repro.kvcache.capacity.kv_token_capacity`.
    block_size:
        Tokens per block (vLLM default 16).
    """

    def __init__(self, capacity_tokens: int, block_size: int = 16) -> None:
        if capacity_tokens < 0:
            raise ValueError(f"capacity_tokens must be >= 0, got {capacity_tokens}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self.num_blocks = capacity_tokens // block_size
        self._free_blocks = self.num_blocks
        self._allocs: dict[int, RequestAllocation] = {}
        self._admit_counter = 0

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    @property
    def capacity_tokens(self) -> int:
        """Usable capacity (rounded down to whole blocks)."""
        return self.num_blocks * self.block_size

    @property
    def free_blocks(self) -> int:
        return self._free_blocks

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - self._free_blocks

    @property
    def num_requests(self) -> int:
        return len(self._allocs)

    @property
    def total_tokens(self) -> int:
        """Tokens currently stored (partial blocks count their actual tokens)."""
        return sum(a.num_tokens for a in self._allocs.values())

    @property
    def usage_ratio(self) -> float:
        """Fraction of blocks in use — the paper's Figure 12 y-axis."""
        if self.num_blocks == 0:
            return 0.0
        return self.used_blocks / self.num_blocks

    def tokens_of(self, request_id: int) -> int:
        return self._allocs[request_id].num_tokens

    def contains(self, request_id: int) -> bool:
        return request_id in self._allocs

    def blocks_needed(self, num_tokens: int) -> int:
        return -(-num_tokens // self.block_size)

    def can_allocate(self, num_tokens: int) -> bool:
        """Whether a fresh request of ``num_tokens`` fits right now."""
        return self.blocks_needed(num_tokens) <= self._free_blocks

    def can_append(self, request_id: int, n: int = 1) -> bool:
        """Whether ``n`` more tokens fit onto an existing request."""
        a = self._allocs[request_id]
        new_blocks = self.blocks_needed(a.num_tokens + n) - a.num_blocks
        return new_blocks <= self._free_blocks

    # ------------------------------------------------------------------ #
    # Mutation.
    # ------------------------------------------------------------------ #
    def allocate(self, request_id: int, num_tokens: int) -> None:
        """Admit a request with ``num_tokens`` of KV (its prompt)."""
        if request_id in self._allocs:
            raise KVCacheOverflow(f"request {request_id} already allocated")
        if num_tokens < 1:
            raise ValueError(f"num_tokens must be >= 1, got {num_tokens}")
        blocks = self.blocks_needed(num_tokens)
        if blocks > self._free_blocks:
            raise KVCacheOverflow(
                f"need {blocks} blocks for request {request_id}, "
                f"only {self._free_blocks} free"
            )
        self._free_blocks -= blocks
        self._allocs[request_id] = RequestAllocation(
            request_id=request_id,
            num_tokens=num_tokens,
            num_blocks=blocks,
            admit_seq=self._admit_counter,
        )
        self._admit_counter += 1

    def append(self, request_id: int, n: int = 1) -> None:
        """Grow a request by ``n`` decoded tokens."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        a = self._allocs[request_id]
        new_total = a.num_tokens + n
        new_blocks = self.blocks_needed(new_total)
        extra = new_blocks - a.num_blocks
        if extra > self._free_blocks:
            raise KVCacheOverflow(
                f"request {request_id} needs {extra} more blocks, "
                f"only {self._free_blocks} free"
            )
        self._free_blocks -= extra
        a.num_tokens = new_total
        a.num_blocks = new_blocks

    def free(self, request_id: int) -> int:
        """Release a request's blocks; returns the tokens freed."""
        a = self._allocs.pop(request_id)
        self._free_blocks += a.num_blocks
        return a.num_tokens

    def evict_newest(self) -> int:
        """Free the most recently admitted request (re-computation policy).

        Returns the evicted ``request_id``.  The caller is responsible for
        pushing the victim back onto the waiting queue so its prompt is
        re-prefetched ("re-computation" in the paper's terminology).
        """
        if not self._allocs:
            raise KVCacheOverflow("no requests to evict")
        victim = max(self._allocs.values(), key=lambda a: a.admit_seq)
        self.free(victim.request_id)
        return victim.request_id

    def admit_seq_of(self, request_id: int) -> int:
        """Admission stamp of a request (newest = largest)."""
        return self._allocs[request_id].admit_seq

    def request_ids(self) -> list[int]:
        """Currently admitted request ids (admission order)."""
        return sorted(self._allocs, key=lambda r: self._allocs[r].admit_seq)
