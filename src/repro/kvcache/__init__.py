"""Paged KV-cache substrate: block manager and capacity accounting."""

from .block_manager import BlockManager, KVCacheOverflow, RequestAllocation
from .capacity import OutOfMemoryError, fits_in_memory, kv_token_capacity

__all__ = [
    "BlockManager",
    "KVCacheOverflow",
    "RequestAllocation",
    "OutOfMemoryError",
    "kv_token_capacity",
    "fits_in_memory",
]
