"""Declarative scenario specifications: one serializable tree per experiment.

A :class:`ScenarioSpec` is the single front door to the whole system: it
names a workload (:class:`WorkloadSpec`), the hardware fleet
(:class:`FleetSpec`), the engine configuration (:class:`EngineSpec`) and the
cluster control plane (:class:`ControlSpec`), and :func:`repro.api.run`
turns it into a :class:`~repro.api.runner.RunArtifact`.  Every scenario the
legacy entry points (``run_system``, ``run_cluster``, ``tdpipe-bench
cluster`` flags) can express is expressible here — and because specs are
plain data with a strict JSON round-trip, a scenario is a *file*, not a
function signature: benchmark artifacts embed their resolved spec and can be
replayed bit-for-bit.

Design rules
------------
* **Frozen dataclasses** — specs are value objects; deriving a variant goes
  through :meth:`ScenarioSpec.with_overrides` (dotted paths, the same
  mechanism the CLI's ``--set key=value`` uses).
* **Strict construction** — unknown fields, unknown system/router/policy
  names and malformed values raise ``ValueError`` at build time, not at
  kilometre 40 of a sweep.
* **Versioned schema** — ``schema_version`` rides inside every serialized
  spec so future migrations can detect old artifacts.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from ..cluster.control.autoscaler import Autoscaler
from ..cluster.control.capacity import parse_fleet
from ..cluster.control.routing import ROUTER_NAMES
from ..hardware.gpu import GPU_PRESETS
from ..models.spec import MODEL_PRESETS
from ..runtime.config import EngineConfig
from ..workload.regimes import RegimeSpec
from ..workload.slo import parse_mix_string, parse_slo_mix

__all__ = [
    "SCHEMA_VERSION",
    "WorkloadSpec",
    "FleetSpec",
    "EngineSpec",
    "ControlSpec",
    "ScenarioSpec",
    "spec_from_dict",
    "spec_from_json",
]

#: Bump on any backward-incompatible change to the spec tree.
SCHEMA_VERSION = 1

ARRIVALS = ("offline", "poisson", "uniform", "burst", "regime")

#: Arrival parameters each process actually consumes.  Anything else set on
#: the workload is rejected — ``arrival="offline"`` with a stray
#: ``rate_rps=5`` used to be silently ignored, which read like a 5 rps run.
_ARRIVAL_FIELDS: dict[str, frozenset[str]] = {
    "offline": frozenset(),
    "poisson": frozenset({"rate_rps"}),
    "uniform": frozenset({"rate_rps"}),
    "burst": frozenset({"burst_size", "burst_interval_s"}),
    "regime": frozenset({"regime"}),
}

_ARRIVAL_PARAMS = ("rate_rps", "burst_size", "burst_interval_s", "regime")

PREFILL_POLICIES = ("greedy", "occupancy")
DECODE_POLICIES = ("intensity", "finish-ratio")

PREDICTOR_KINDS = ("trained", "oracle", "constant")

_CONFIG_FIELDS = {f.name for f in fields(EngineConfig)}
_AUTOSCALER_FIELDS = {
    f.name for f in fields(Autoscaler) if not f.name.startswith("_")
}


def _known_systems() -> tuple[str, ...]:
    # Imported lazily: repro.experiments imports repro.api.registry at module
    # level, so a module-level import here would be circular.
    from ..experiments.common import SYSTEMS

    return SYSTEMS


def _reject_unknown(cls: type, data: Mapping[str, Any]) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown field(s) {unknown} for {cls.__name__}; "
            f"known fields: {sorted(known)}"
        )


def _build(cls: type, data: Any, where: str):
    if not isinstance(data, Mapping):
        raise ValueError(f"{where} must be a mapping, got {type(data).__name__}")
    _reject_unknown(cls, data)
    return cls(**data)


# --------------------------------------------------------------------- #
# Leaf specs.
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkloadSpec:
    """What traffic hits the system, and when.

    ``scale`` is the :class:`~repro.experiments.common.ExperimentScale`
    factor relative to the paper's 5,000-request evaluation; ``num_requests``
    overrides the derived request count without changing the corpus (and
    therefore the trained predictor).  ``arrival`` selects the arrival
    process; ``offline`` is the paper's setting (everything at t=0).
    ``slo_mix`` stamps SLO classes (``{"interactive": 0.7, "batch": 0.3}``;
    the CLI string form is accepted and normalized to a dict).

    ``arrival="regime"`` runs a declarative traffic timeline: ``regime``
    holds a :class:`~repro.workload.regimes.RegimeSpec` in plain-dict form
    (normalized through the regime parser at build time, so it is strictly
    validated and serializes canonically).  The regime decides the request
    count, so ``num_requests`` is rejected; ``slo_mix`` becomes the default
    mix that segments without their own ``slo_mix`` fall back to.
    Parameters irrelevant to the selected arrival process are rejected
    rather than silently ignored.
    """

    scale: float = 0.1
    seed: int = 0
    num_requests: int | None = None
    arrival: str = "offline"
    rate_rps: float | None = None
    burst_size: int | None = None
    burst_interval_s: float | None = None
    slo_mix: dict[str, float] | None = None
    regime: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"workload scale must be positive, got {self.scale}")
        if self.num_requests is not None and self.num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; options: {ARRIVALS}"
            )
        allowed = _ARRIVAL_FIELDS[self.arrival]
        stray = sorted(
            f
            for f in _ARRIVAL_PARAMS
            if f not in allowed and getattr(self, f) is not None
        )
        if stray:
            raise ValueError(
                f"arrival {self.arrival!r} does not take {stray} "
                f"(allowed parameters: {sorted(allowed) or 'none'}); "
                "stray knobs used to be silently ignored — drop them or "
                "switch the arrival process"
            )
        if self.arrival in ("poisson", "uniform"):
            if self.rate_rps is None or self.rate_rps <= 0:
                raise ValueError(
                    f"arrival {self.arrival!r} needs a positive rate_rps, "
                    f"got {self.rate_rps}"
                )
        if self.arrival == "burst":
            if not self.burst_size or self.burst_size < 1:
                raise ValueError("burst arrivals need burst_size >= 1")
            if self.burst_interval_s is None or self.burst_interval_s < 0:
                raise ValueError("burst arrivals need burst_interval_s >= 0")
        if self.arrival == "regime":
            if self.regime is None:
                raise ValueError(
                    'arrival "regime" needs a regime block '
                    "(see repro.workload.regimes)"
                )
            if self.num_requests is not None:
                raise ValueError(
                    "regime workloads derive num_requests from the timeline; "
                    "drop num_requests (stretch segment durations instead)"
                )
            parsed = (
                self.regime
                if isinstance(self.regime, RegimeSpec)
                else RegimeSpec.from_dict(self.regime)
            )
            # Store the canonical plain-dict form so to_dict/from_dict
            # round-trips exactly and the content hash is stable.
            object.__setattr__(self, "regime", parsed.to_dict())
        if self.slo_mix is not None:
            if isinstance(self.slo_mix, str):
                # Normalize the CLI string form into the canonical dict form
                # so serialization is uniform.
                object.__setattr__(self, "slo_mix", parse_mix_string(self.slo_mix))
            parse_slo_mix(self.slo_mix)  # raises on bad classes/weights/sums

    def regime_spec(self) -> RegimeSpec:
        """The parsed regime timeline (only valid when ``arrival="regime"``)."""
        if self.regime is None:
            raise ValueError("workload has no regime block")
        return RegimeSpec.from_dict(self.regime)


@dataclass(frozen=True)
class FleetSpec:
    """The hardware the scenario runs on.

    ``fleet`` (e.g. ``"l20:2,a100:2"``) overrides ``node``/``replicas`` with
    one node name per replica, making heterogeneous fleets first-class.
    ``allreduce_efficiency`` overrides the node preset's calibrated fabric
    efficiency (the sensitivity-sweep knob).
    """

    node: str = "L20"
    num_gpus: int = 4
    replicas: int = 1
    fleet: str | None = None
    allreduce_efficiency: float | None = None

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.allreduce_efficiency is not None and not (
            0.0 < self.allreduce_efficiency <= 1.0
        ):
            raise ValueError(
                "allreduce_efficiency must be in (0, 1], "
                f"got {self.allreduce_efficiency}"
            )
        for name in self.node_names():
            if name.upper() not in GPU_PRESETS:
                raise ValueError(
                    f"unknown node/GPU preset {name!r}; "
                    f"options: {sorted(GPU_PRESETS)}"
                )

    def node_names(self) -> list[str]:
        """One node-preset name per replica (fleet string expanded)."""
        if self.fleet is not None:
            return parse_fleet(self.fleet)
        return [self.node] * self.replicas

    @property
    def num_replicas(self) -> int:
        return len(self.node_names())


@dataclass(frozen=True)
class EngineSpec:
    """Which serving system runs on each replica, and how it is tuned.

    ``system`` names one of the five systems for every replica; ``systems``
    (one name per replica) overrides it for mixed clusters.  ``config`` holds
    :class:`~repro.runtime.config.EngineConfig` field overrides — only the
    non-default knobs a scenario actually touches.  ``predictor`` selects
    the output-length predictor (``trained`` | ``oracle`` | ``constant``;
    ``None`` = trained when the scenario needs one).  The switch policies
    mirror the paper's ablations: ``{"name": "occupancy", "ratio": 0.8}``
    or ``{"name": "finish-ratio", "ratio": 0.5}``.
    """

    system: str = "TD-Pipe"
    systems: tuple[str, ...] | None = None
    model: str = "13B"
    config: dict[str, Any] = field(default_factory=dict)
    predictor: str | None = None
    predictor_constant: float | None = None
    prefill_policy: dict[str, Any] | None = None
    decode_policy: dict[str, Any] | None = None
    work_stealing: bool = True

    def __post_init__(self) -> None:
        known = _known_systems()
        if self.systems is not None and not isinstance(self.systems, tuple):
            object.__setattr__(self, "systems", tuple(self.systems))
        for name in self.system_names(None):
            if name not in known:
                raise ValueError(f"unknown system {name!r}; options: {known}")
        if self.model.upper() not in MODEL_PRESETS:
            raise ValueError(
                f"unknown model {self.model!r}; options: {sorted(MODEL_PRESETS)}"
            )
        unknown = sorted(set(self.config) - _CONFIG_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown EngineConfig field(s) {unknown}; "
                f"known: {sorted(_CONFIG_FIELDS)}"
            )
        if self.predictor is not None and self.predictor not in PREDICTOR_KINDS:
            raise ValueError(
                f"unknown predictor {self.predictor!r}; options: {PREDICTOR_KINDS}"
            )
        if self.predictor == "constant" and self.predictor_constant is None:
            raise ValueError('predictor "constant" needs predictor_constant')
        _validate_policy(self.prefill_policy, PREFILL_POLICIES, "prefill_policy")
        _validate_policy(self.decode_policy, DECODE_POLICIES, "decode_policy")

    def system_names(self, replicas: int | None) -> tuple[str, ...]:
        """One system name per replica (``systems`` override expanded)."""
        if self.systems is not None:
            if replicas is not None and len(self.systems) != replicas:
                raise ValueError(
                    f"got {len(self.systems)} system names for {replicas} replicas"
                )
            return self.systems
        return (self.system,) * (replicas or 1)


#: Keys each switch policy actually consumes — anything else is rejected so
#: a knob that would be silently dropped at build time fails loudly instead.
_POLICY_KEYS: dict[str, frozenset[str]] = {
    "greedy": frozenset(),
    "occupancy": frozenset({"ratio"}),
    "intensity": frozenset({"peak_batch_size", "check_interval"}),
    "finish-ratio": frozenset({"ratio"}),
}


def _validate_policy(
    policy: Mapping[str, Any] | None, options: tuple[str, ...], what: str
) -> None:
    if policy is None:
        return
    if not isinstance(policy, Mapping) or "name" not in policy:
        raise ValueError(f'{what} must be a dict with a "name" key, got {policy!r}')
    name = policy["name"]
    if name not in options:
        raise ValueError(f"unknown {what} {name!r}; options: {options}")
    extra = sorted(set(policy) - {"name"} - _POLICY_KEYS[name])
    if extra:
        raise ValueError(
            f"unknown {what} key(s) {extra} for policy {name!r}; "
            f"allowed: {sorted(_POLICY_KEYS[name])}"
        )
    if name in ("occupancy", "finish-ratio") and "ratio" not in policy:
        raise ValueError(f'{what} {name!r} needs a "ratio" key')


@dataclass(frozen=True)
class ControlSpec:
    """Cluster control plane: routing, admission and fleet sizing.

    ``autoscaler`` holds :class:`~repro.cluster.control.autoscaler.Autoscaler`
    field overrides; ``autoscale=True`` with no overrides attaches the
    default policy.
    """

    router: str = "round-robin"
    autoscale: bool = False
    autoscaler: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.router not in ROUTER_NAMES:
            raise ValueError(
                f"unknown router {self.router!r}; options: {ROUTER_NAMES}"
            )
        if self.autoscaler is not None:
            unknown = sorted(set(self.autoscaler) - _AUTOSCALER_FIELDS)
            if unknown:
                raise ValueError(
                    f"unknown Autoscaler field(s) {unknown}; "
                    f"known: {sorted(_AUTOSCALER_FIELDS)}"
                )
            Autoscaler(**self.autoscaler)  # field-level validation

    @property
    def wants_autoscaler(self) -> bool:
        return self.autoscale or self.autoscaler is not None

    def build_autoscaler(self) -> Autoscaler | None:
        if not self.wants_autoscaler:
            return None
        return Autoscaler(**(self.autoscaler or {}))


# --------------------------------------------------------------------- #
# The scenario root.
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable experiment description.

    ``mode`` selects the execution path: ``"engine"`` (one engine, a
    :class:`~repro.metrics.results.RunResult`) or ``"cluster"`` (a routed
    replica fleet, a :class:`~repro.metrics.cluster.ClusterResult`).
    ``"auto"`` resolves to ``cluster`` when the spec names more than one
    replica, a heterogeneous fleet, or an autoscaler.
    """

    name: str | None = None
    mode: str = "auto"
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    control: ControlSpec = field(default_factory=ControlSpec)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "engine", "cluster"):
            raise ValueError(
                f"mode must be auto|engine|cluster, got {self.mode!r}"
            )
        if self.schema_version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schema_version {self.schema_version} "
                f"(this build speaks version {SCHEMA_VERSION})"
            )
        if self.mode == "engine":
            if self.fleet.num_replicas != 1:
                raise ValueError(
                    "mode='engine' requires exactly one replica; "
                    f"fleet names {self.fleet.num_replicas}"
                )
            if self.control.wants_autoscaler:
                raise ValueError("mode='engine' cannot autoscale")
        # Cross-field check: mixed-system lists must match the fleet size.
        self.engine.system_names(self.fleet.num_replicas)

    # -- resolution ---------------------------------------------------- #
    @property
    def resolved_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        if (
            self.fleet.fleet is not None
            or self.fleet.replicas > 1
            or self.control.wants_autoscaler
        ):
            return "cluster"
        return "engine"

    def resolved(self) -> "ScenarioSpec":
        """A copy with ``mode`` pinned (what artifacts embed)."""
        if self.mode != "auto":
            return self
        return replace(self, mode=self.resolved_mode)

    # -- overrides ------------------------------------------------------ #
    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """Derive a new spec from dotted-path overrides.

        ``{"control.router": "jsq", "engine.config.max_num_seqs": 128}`` —
        the mechanism behind sweep axes and the CLI's ``--set``.  Paths walk
        dataclass fields; a final segment landing in a dict field sets that
        key.
        """
        spec = self
        for path, value in overrides.items():
            spec = _set_path(spec, path.split("."), value, path)
        return spec

    # -- serialization -------------------------------------------------- #
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (all fields, fully explicit)."""
        return dataclasses.asdict(self)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Strict inverse of :meth:`to_dict`: unknown fields raise."""
        if not isinstance(data, Mapping):
            raise ValueError(f"spec must be a mapping, got {type(data).__name__}")
        _reject_unknown(cls, data)
        kwargs: dict[str, Any] = dict(data)
        for key, sub in (
            ("workload", WorkloadSpec),
            ("fleet", FleetSpec),
            ("engine", EngineSpec),
            ("control", ControlSpec),
        ):
            if key in kwargs and not isinstance(kwargs[key], sub):
                kwargs[key] = _build(sub, kwargs[key], key)
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- display --------------------------------------------------------- #
    def describe(self) -> str:
        """One-line human summary for CLI output."""
        names = self.fleet.node_names()
        fleet = (
            f"{len(names)}x{names[0]}" if len(set(names)) == 1 else "+".join(names)
        )
        systems = self.engine.system_names(self.fleet.num_replicas)
        system = systems[0] if len(set(systems)) == 1 else "+".join(systems)
        arrival = self.workload.arrival
        if self.workload.rate_rps is not None:
            arrival += f"@{self.workload.rate_rps:g}rps"
        if self.workload.arrival == "regime" and self.workload.regime is not None:
            arrival = self.workload.regime_spec().describe()
        bits = [
            self.name or "scenario",
            f"[{self.resolved_mode}]",
            f"{system} on {fleet} ({self.engine.model})",
            arrival,
        ]
        if self.resolved_mode == "cluster":
            bits.append(f"router={self.control.router}")
        if self.workload.slo_mix:
            bits.append(
                "slo=" + ",".join(f"{k}:{v:g}" for k, v in self.workload.slo_mix.items())
            )
        if self.control.wants_autoscaler:
            bits.append("autoscale")
        return " ".join(bits)


def _is_dict_field(cls: type, name: str) -> bool:
    """Whether a dataclass field is dict-typed (possibly ``| None``)."""
    hint = next(f.type for f in fields(cls) if f.name == name)
    return str(hint).startswith("dict")


def _set_path(obj: Any, parts: list[str], value: Any, full: str) -> Any:
    """Immutable dotted-path set over nested frozen dataclasses / dicts."""
    head = parts[0]
    if dataclasses.is_dataclass(obj):
        known = {f.name for f in fields(type(obj))}
        if head not in known:
            raise ValueError(
                f"unknown field {head!r} in override {full!r}; "
                f"known: {sorted(known)}"
            )
        current = getattr(obj, head)
        if len(parts) == 1:
            return replace(obj, **{head: value})
        if isinstance(current, dict) or (
            current is None and _is_dict_field(type(obj), head)
        ):
            if len(parts) != 2:
                raise ValueError(f"override {full!r} descends past dict key")
            new = dict(current or {})
            new[parts[1]] = value
            return replace(obj, **{head: new})
        return replace(obj, **{head: _set_path(current, parts[1:], value, full)})
    raise ValueError(f"cannot descend into {type(obj).__name__} at {full!r}")


def parse_set_override(text: str) -> tuple[str, Any]:
    """Parse one CLI ``--set key=value`` into ``(dotted_path, value)``.

    Values are JSON-decoded when possible (so ``128``, ``0.5``, ``true``,
    ``null``, ``[1,2]`` and ``{"a":1}`` all work) and fall back to the raw
    string (``jsq`` needs no quotes).
    """
    key, sep, raw = text.partition("=")
    if not sep or not key.strip():
        raise ValueError(f"--set expects key=value, got {text!r}")
    raw = raw.strip()
    try:
        value = json.loads(raw)
    except (json.JSONDecodeError, ValueError):
        value = raw
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(f"non-finite override value in {text!r}")
    return key.strip(), value


def spec_from_dict(data: Mapping[str, Any]) -> "ScenarioSpec":
    """Module-level alias (mirrors :meth:`ScenarioSpec.from_dict`)."""
    return ScenarioSpec.from_dict(data)


def spec_from_json(text: str) -> "ScenarioSpec":
    return ScenarioSpec.from_json(text)
