"""Replay stored runs on the current code and diff the metrics.

``replay(ref, store)`` closes the reproducibility loop the artifact store
opens: load a record, rebuild its scenario from the embedded spec, execute
it on *today's* code, and structurally compare the fresh metric record
against the stored one.  The simulator is deterministic, so on unchanged
code a replay reports **zero drift**; after an optimization, the drift *is*
the regression/improvement report.

Comparison semantics
--------------------
Only the flat metric keys of a record are compared (``throughput_tps``,
``ttft_p99_s``, ``requests_per_replica[i]``, ``slo_attainment.<class>``,
...).  Bookkeeping keys (``spec``, ``wall_time_s``, ``detail``, ...) are
excluded: wall time legitimately varies per host, and the full-fidelity
detail section is reconstruction payload, not a metric.  Numeric drift is
judged per metric against a :class:`Tolerance` (``abs + rel * |recorded|``);
integers and strings compare exactly.  ``strict=True`` zeroes every
tolerance — any drift at all fails.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..spec import ScenarioSpec
from .canonical import short_ref
from .store import ArtifactStore, as_store

__all__ = [
    "MISSING",
    "Tolerance",
    "MetricDiff",
    "ReplayReport",
    "DiffReport",
    "DEFAULT_TOLERANCES",
    "compare_records",
    "replay",
    "replay_all",
    "diff_refs",
]


@dataclass(frozen=True)
class Tolerance:
    """Allowed drift for one metric: ``|fresh - recorded| <= abs + rel*|recorded|``."""

    rel: float = 0.0
    abs: float = 0.0

    def allows(self, recorded: float, fresh: float) -> bool:
        return abs(fresh - recorded) <= self.abs + self.rel * abs(recorded)


#: Exact match — what ``--strict`` applies to every metric.
EXACT = Tolerance()

#: Default float slack: absorbs cross-platform libm noise, nothing more.
#: The simulator itself is deterministic, so even this is usually unused.
DEFAULT_FLOAT_TOLERANCE = Tolerance(rel=1e-9, abs=1e-12)

#: Per-metric defaults, keyed by the flattened metric path with list indices
#: stripped (``requests_per_replica[3]`` looks up ``requests_per_replica``).
#: Extend via the ``tolerances`` argument of :func:`replay` / :func:`diff_refs`.
DEFAULT_TOLERANCES: dict[str, Tolerance] = {}

#: Record keys that are bookkeeping, not metrics.
_SKIP_KEYS = {
    "schema_version",
    "kind",
    "spec",
    "wall_time_s",
    "overrides",
    "opaque_overrides",
    "provenance",
    "detail",
}

_INDEX_RE = re.compile(r"\[\d+\]")


class _MissingType:
    """Sentinel for a metric present on only one side of a comparison.

    Distinct from ``None``: a record can legitimately hold a ``null`` metric
    (``rate_rps: null``), and a diff must not render "this side recorded
    null" the same as "this side has no such key"."""

    _instance: "_MissingType | None" = None

    def __new__(cls) -> "_MissingType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<missing>"


#: The one-sided-diff marker carried in :class:`MetricDiff.recorded`/``fresh``.
MISSING = _MissingType()


@dataclass(frozen=True)
class MetricDiff:
    """One compared metric: recorded vs fresh value and the verdict."""

    metric: str
    #: Either side is :data:`MISSING` when the key exists only on the other
    #: side (never conflated with a recorded ``null``/``None`` value).
    recorded: Any
    fresh: Any
    within: bool

    @property
    def one_sided(self) -> bool:
        return self.recorded is MISSING or self.fresh is MISSING

    @property
    def delta(self) -> float | None:
        # One-sided diffs (and non-numeric values) have no numeric delta;
        # MISSING is not numeric, so the isinstance guard covers both.
        if isinstance(self.recorded, (int, float)) and isinstance(
            self.fresh, (int, float)
        ):
            return self.fresh - self.recorded
        return None

    @property
    def rel_delta(self) -> float | None:
        delta = self.delta
        if delta is None:
            return None
        if self.recorded == 0:
            return float("inf") if delta else 0.0
        return delta / abs(self.recorded)

    def describe(self) -> str:
        if self.delta is None:
            return f"{self.metric}: {self.recorded!r} -> {self.fresh!r}"
        rel = self.rel_delta
        rel_txt = "" if rel is None or rel == 0 else f" (rel {rel:+.3g})"
        return f"{self.metric}: {self.recorded:g} -> {self.fresh:g}{rel_txt}"


def _tolerance_for(
    path: str,
    tolerances: Mapping[str, Tolerance],
    default: Tolerance,
) -> Tolerance:
    base = _INDEX_RE.sub("", path)
    for key in (path, base):
        if key in tolerances:
            return tolerances[key]
    return default


def _compare_leaf(
    path: str,
    recorded: Any,
    fresh: Any,
    out: list[MetricDiff],
    tolerances: Mapping[str, Tolerance],
    default: Tolerance,
) -> None:
    if recorded is MISSING or fresh is MISSING:
        # Keep the sentinel: collapsing the absent side to None would make
        # a one-sided key indistinguishable from a recorded null.
        out.append(MetricDiff(path, recorded, fresh, False))
        return
    numeric = (
        isinstance(recorded, (int, float))
        and isinstance(fresh, (int, float))
        and not isinstance(recorded, bool)
        and not isinstance(fresh, bool)
    )
    if numeric:
        if isinstance(recorded, int) and isinstance(fresh, int):
            within = recorded == fresh  # counts compare exactly
        else:
            tol = _tolerance_for(path, tolerances, default)
            within = tol.allows(float(recorded), float(fresh))
        out.append(MetricDiff(path, recorded, fresh, within))
        return
    out.append(MetricDiff(path, recorded, fresh, recorded == fresh))


def _walk(
    path: str,
    recorded: Any,
    fresh: Any,
    out: list[MetricDiff],
    tolerances: Mapping[str, Tolerance],
    default: Tolerance,
) -> None:
    if isinstance(recorded, dict) and isinstance(fresh, dict):
        for key in sorted(set(recorded) | set(fresh)):
            if not path and key in _SKIP_KEYS:
                continue
            sub = f"{path}.{key}" if path else str(key)
            _walk(
                sub,
                recorded.get(key, MISSING),
                fresh.get(key, MISSING),
                out,
                tolerances,
                default,
            )
        return
    if isinstance(recorded, list) and isinstance(fresh, list):
        if len(recorded) != len(fresh):
            out.append(
                MetricDiff(f"{path}.length", len(recorded), len(fresh), False)
            )
        for i, (a, b) in enumerate(zip(recorded, fresh)):
            _walk(f"{path}[{i}]", a, b, out, tolerances, default)
        return
    _compare_leaf(path, recorded, fresh, out, tolerances, default)


def compare_records(
    recorded: Mapping[str, Any],
    fresh: Mapping[str, Any],
    *,
    tolerances: Mapping[str, Tolerance] | None = None,
    strict: bool = False,
) -> list[MetricDiff]:
    """Structurally compare the metric keys of two artifact records.

    Returns one :class:`MetricDiff` per compared metric (not only the
    drifted ones — ``[d for d in diffs if not d.within]`` filters those).
    """
    if strict:
        tolerances, default = {}, EXACT
    else:
        merged = dict(DEFAULT_TOLERANCES)
        merged.update(tolerances or {})
        tolerances, default = merged, DEFAULT_FLOAT_TOLERANCE
    out: list[MetricDiff] = []
    _walk("", dict(recorded), dict(fresh), out, tolerances, default)
    return out


@dataclass
class ReplayReport:
    """Outcome of re-executing one stored record on the current code."""

    ref: str
    spec: ScenarioSpec
    recorded: dict[str, Any]
    fresh: dict[str, Any]
    diffs: list[MetricDiff] = field(default_factory=list)
    strict: bool = False

    @property
    def drifted(self) -> list[MetricDiff]:
        return [d for d in self.diffs if not d.within]

    @property
    def ok(self) -> bool:
        return not self.drifted

    def summary(self) -> str:
        lines = [f"replay {short_ref(self.ref)}  {self.spec.describe()}"]
        mode = " (strict)" if self.strict else ""
        if self.ok:
            lines.append(
                f"  {len(self.diffs)} metrics compared{mode}: zero drift"
            )
        else:
            lines.append(
                f"  DRIFT in {len(self.drifted)}/{len(self.diffs)} metrics{mode}:"
            )
            lines.extend(f"    {d.describe()}" for d in self.drifted)
        return "\n".join(lines)


@dataclass
class DiffReport:
    """Structural metric diff between two stored records."""

    ref_a: str
    ref_b: str
    record_a: dict[str, Any]
    record_b: dict[str, Any]
    diffs: list[MetricDiff] = field(default_factory=list)

    @property
    def drifted(self) -> list[MetricDiff]:
        return [d for d in self.diffs if not d.within]

    @property
    def ok(self) -> bool:
        return not self.drifted

    def summary(self) -> str:
        lines = [f"diff {short_ref(self.ref_a)} -> {short_ref(self.ref_b)}"]
        if self.ok:
            lines.append(f"  {len(self.diffs)} metrics compared: identical")
        else:
            lines.append(
                f"  {len(self.drifted)}/{len(self.diffs)} metrics differ:"
            )
            lines.extend(f"    {d.describe()}" for d in self.drifted)
        return "\n".join(lines)


def replay(
    ref: str,
    store: ArtifactStore | str | os.PathLike,
    *,
    tolerances: Mapping[str, Tolerance] | None = None,
    strict: bool = False,
) -> ReplayReport:
    """Re-execute a stored record's spec and diff fresh vs recorded metrics."""
    from ..runner import run

    store = as_store(store)
    full = store.resolve(ref)
    record = store.get_record(full)
    spec = ScenarioSpec.from_dict(record["spec"])
    # detail=False: comparison skips the reconstruction payload anyway, so
    # don't serialize full traces just to walk past them.
    fresh = run(spec).to_record(detail=False)
    diffs = compare_records(record, fresh, tolerances=tolerances, strict=strict)
    return ReplayReport(
        ref=full, spec=spec, recorded=record, fresh=fresh, diffs=diffs,
        strict=strict,
    )


def replay_all(
    store: ArtifactStore | str | os.PathLike,
    *,
    refs: Sequence[str] | None = None,
    tolerances: Mapping[str, Tolerance] | None = None,
    strict: bool = False,
    jobs: int | None = None,
) -> list[ReplayReport]:
    """Replay every record in the store (the full regression gate).

    ``refs`` restricts the replay to the given refs (hash/prefix/name, in
    the given order) instead of the whole store.  ``jobs`` re-executes the
    stored specs on a process pool (the comparison itself stays in the
    parent); reports are identical to the serial default because replay is
    a pure function of each stored spec.
    """
    from ..parallel import resolve_jobs, run_fresh_records

    store = as_store(store)
    if refs is None:
        refs = store.refs()
    else:
        refs = [store.resolve(ref) for ref in refs]
    if resolve_jobs(jobs) <= 1:
        return [
            replay(ref, store, tolerances=tolerances, strict=strict)
            for ref in refs
        ]
    records = [store.get_record(ref) for ref in refs]
    fresh_records = run_fresh_records([r["spec"] for r in records], jobs=jobs)
    reports = []
    for ref, record, fresh in zip(refs, records, fresh_records):
        diffs = compare_records(record, fresh, tolerances=tolerances, strict=strict)
        reports.append(
            ReplayReport(
                ref=ref,
                spec=ScenarioSpec.from_dict(record["spec"]),
                recorded=record,
                fresh=fresh,
                diffs=diffs,
                strict=strict,
            )
        )
    return reports


def diff_refs(
    ref_a: str,
    ref_b: str,
    store: ArtifactStore | str | os.PathLike,
    *,
    store_b: ArtifactStore | str | os.PathLike | None = None,
    tolerances: Mapping[str, Tolerance] | None = None,
    strict: bool = False,
) -> DiffReport:
    """Diff two stored records (optionally across two stores).

    With one store, compare two scenarios recorded side by side; with
    ``store_b`` (e.g. a store recorded before a change vs one after),
    compare the *same* ref across code versions.
    """
    store = as_store(store)
    other = store if store_b is None else as_store(store_b)
    full_a = store.resolve(ref_a)
    full_b = other.resolve(ref_b)
    record_a = store.get_record(full_a)
    record_b = other.get_record(full_b)
    diffs = compare_records(
        record_a, record_b, tolerances=tolerances, strict=strict
    )
    return DiffReport(
        ref_a=full_a, ref_b=full_b, record_a=record_a, record_b=record_b,
        diffs=diffs,
    )
