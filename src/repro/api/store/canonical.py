"""Canonical serialization and content addressing for scenario specs.

A stored run's identity is the SHA-256 hash of its *canonicalized resolved
spec*: the same scenario always lands on the same key, regardless of which
process produced it, how its dict keys were ordered on the way in, or
whether a rate was spelled ``8`` or ``8.0``.  That is what lets
``tdpipe-bench replay`` answer "did this PR change the numbers for scenario
X?" — X *is* the hash.

Canonicalization rules
----------------------
* mappings sort by key; tuples become lists (JSON has no tuple),
* integral floats collapse to ints (``8.0`` → ``8``) and ``-0.0`` to ``0``,
  so numerically-equal specs (which also compare equal as dataclasses,
  since ``8 == 8.0`` in Python) hash equal,
* non-finite floats are rejected — a spec carrying NaN/inf has no stable
  identity and is a bug upstream,
* the encoded form is minified ASCII JSON with sorted keys.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any

from ..spec import ScenarioSpec

__all__ = ["canonicalize", "canonical_json", "content_hash", "short_ref"]

#: Length of the abbreviated hash shown in indexes and CLI output.
SHORT_REF_LEN = 12


def canonicalize(value: Any) -> Any:
    """Recursively normalize plain data into its canonical JSON form."""
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"non-finite float {value!r} has no canonical form")
        if value.is_integer():
            return int(value)
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


def canonical_json(value: Any) -> str:
    """Minified, key-sorted, ASCII JSON of the canonical form."""
    return json.dumps(
        canonicalize(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def content_hash(spec: ScenarioSpec) -> str:
    """SHA-256 hex digest of the canonicalized *resolved* spec.

    Resolution pins ``mode="auto"`` first, so a spec and its resolved copy
    (what artifacts embed) share one identity.  The human label ``name`` is
    excluded: renaming a scenario does not change what runs, so it must not
    change the key either (the store index carries names separately).
    """
    data = spec.resolved().to_dict()
    data.pop("name", None)
    return hashlib.sha256(canonical_json(data).encode("ascii")).hexdigest()


def short_ref(ref: str) -> str:
    """Abbreviated display form of a content hash."""
    return ref[:SHORT_REF_LEN]
