"""Content-addressed artifact store and the record/replay/diff workflow.

The results side of the declarative API: every :class:`~repro.api.runner.
RunArtifact` serializes to a canonical record (full ``from_record`` round
trip), an :class:`ArtifactStore` files records under the SHA-256 hash of
their canonicalized resolved spec, and :func:`replay` re-executes any
stored spec on the current code and diffs fresh metrics against the record
with per-metric tolerances::

    from repro import api

    store = api.ArtifactStore("tdpipe-store")
    api.run(spec, store=store)                      # record
    report = api.replay(spec.name, store, strict=True)
    assert report.ok, report.summary()              # regression gate

CLI: ``tdpipe-bench record <spec|name>``, ``tdpipe-bench replay [REF]
[--strict]``, ``tdpipe-bench diff REF_A REF_B``.
"""

from .canonical import canonical_json, canonicalize, content_hash, short_ref
from .replay import (
    DEFAULT_TOLERANCES,
    MISSING,
    DiffReport,
    MetricDiff,
    ReplayReport,
    Tolerance,
    compare_records,
    diff_refs,
    replay,
    replay_all,
)
from .store import DEFAULT_STORE_PATH, ArtifactStore, as_store

__all__ = [
    "ArtifactStore",
    "as_store",
    "DEFAULT_STORE_PATH",
    "MISSING",
    "canonicalize",
    "canonical_json",
    "content_hash",
    "short_ref",
    "Tolerance",
    "MetricDiff",
    "ReplayReport",
    "DiffReport",
    "DEFAULT_TOLERANCES",
    "compare_records",
    "replay",
    "replay_all",
    "diff_refs",
]
